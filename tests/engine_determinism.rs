//! Determinism harness for the parallel execution engine (§ training
//! and batched inference): a fixed seed must give bit-identical
//! models and predictions regardless of the thread count, and a
//! trained system must survive a save/load roundtrip with its
//! inference output unchanged.

use cati::{Cati, Config};
use cati_synbin::{build_corpus, Corpus, CorpusConfig};

fn train_with_threads(corpus: &Corpus, threads: usize) -> Cati {
    let config = Config {
        threads,
        ..Config::small()
    };
    Cati::train(&corpus.train, &config, |_| {})
}

#[test]
fn thread_count_does_not_change_the_model() {
    let corpus = build_corpus(&CorpusConfig::small(13));
    let one = train_with_threads(&corpus, 1);
    let four = train_with_threads(&corpus, 4);
    // The configs differ only in the `threads` knob; everything
    // training produced must be bit-identical, so the serialized
    // forms must match byte for byte.
    assert_eq!(
        serde_json::to_string(&one.stages).unwrap(),
        serde_json::to_string(&four.stages).unwrap(),
        "stage models diverged across thread counts"
    );
    assert_eq!(
        serde_json::to_string(&one.embedder).unwrap(),
        serde_json::to_string(&four.embedder).unwrap(),
        "embedders diverged across thread counts"
    );
    // Inference over a held-out stripped binary must agree exactly.
    let stripped = corpus.test[0].binary.strip();
    assert_eq!(
        one.infer(&stripped).unwrap(),
        four.infer(&stripped).unwrap(),
        "inference diverged across thread counts"
    );
}

#[test]
fn golden_retrain_and_save_load_roundtrip() {
    let corpus = build_corpus(&CorpusConfig::small(13));
    let a = train_with_threads(&corpus, 0);
    let b = train_with_threads(&corpus, 0);
    // Same seed, same corpus: retraining reproduces the exact system.
    assert_eq!(a, b, "retraining with a fixed seed is not deterministic");

    // Save/load roundtrip preserves inference on a held-out stripped
    // binary exactly.
    let stripped = corpus.test.last().unwrap().binary.strip();
    let before = a.infer(&stripped).unwrap();
    assert!(!before.is_empty(), "held-out binary yielded no variables");
    let path = std::env::temp_dir().join(format!("cati_golden_{}.json", std::process::id()));
    a.save(&path).unwrap();
    let loaded = Cati::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(
        loaded.infer(&stripped).unwrap(),
        before,
        "save/load roundtrip changed inference output"
    );
}
