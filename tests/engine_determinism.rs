//! Determinism harness for the parallel execution engine (§ training
//! and batched inference): a fixed seed must give bit-identical
//! models and predictions regardless of the thread count — with
//! telemetry enabled — and a trained system must survive a save/load
//! roundtrip with its inference output unchanged.

use cati::obs::{Recorder, RecorderConfig};
use cati::{ArtifactCache, Cati, Config, EmbeddedExtraction};
use cati_analysis::{extract, FeatureView};
use cati_synbin::{build_corpus, Corpus, CorpusConfig};

/// Trains under a live [`Recorder`] (not the no-op observer), so this
/// harness also proves instrumentation never perturbs the engine.
fn train_with_threads(corpus: &Corpus, threads: usize) -> (Cati, Recorder) {
    let config = Config {
        threads,
        ..Config::small()
    };
    let recorder = Recorder::new(RecorderConfig {
        batch_stats: true,
        ..RecorderConfig::default()
    });
    let cati = Cati::train(&corpus.train, &config, &recorder);
    (cati, recorder)
}

#[test]
fn thread_count_does_not_change_the_model() {
    let corpus = build_corpus(&CorpusConfig::small(13));
    let (one, obs_one) = train_with_threads(&corpus, 1);
    let (four, obs_four) = train_with_threads(&corpus, 4);
    // The configs differ only in the `threads` knob; everything
    // training produced must be bit-identical, so the serialized
    // forms must match byte for byte.
    assert_eq!(
        serde_json::to_string(&one.stages).unwrap(),
        serde_json::to_string(&four.stages).unwrap(),
        "stage models diverged across thread counts"
    );
    assert_eq!(
        serde_json::to_string(&one.embedder).unwrap(),
        serde_json::to_string(&four.embedder).unwrap(),
        "embedders diverged across thread counts"
    );
    // Inference over a held-out stripped binary must agree exactly.
    let stripped = corpus.test[0].binary.strip();
    assert_eq!(
        one.infer(&stripped).unwrap(),
        four.infer(&stripped).unwrap(),
        "inference diverged across thread counts"
    );
    // Telemetry content (not timings) must also agree: identical
    // training observes identical losses and counts, whatever the
    // thread count. Losses may arrive in any order across workers, so
    // compare them sorted.
    for obs in [&obs_one, &obs_four] {
        let spans = obs.span_totals();
        for stage in [
            "Stage1", "Stage2-1", "Stage2-2", "Stage3-1", "Stage3-2", "Stage3-3",
        ] {
            assert!(
                spans.iter().any(|(p, _)| p == &format!("train.{stage}")),
                "missing span for {stage}: {spans:?}"
            );
        }
    }
    let sorted = |r: &Recorder| {
        let mut l = r.losses();
        l.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
        l
    };
    assert_eq!(
        sorted(&obs_one),
        sorted(&obs_four),
        "observed losses diverged across thread counts"
    );
    assert_eq!(
        obs_one.metrics().counter_value("train.samples"),
        obs_four.metrics().counter_value("train.samples"),
        "observed sample counts diverged across thread counts"
    );
}

#[test]
fn thread_count_does_not_change_the_streamed_model() {
    // The out-of-core path inherits the same guarantee: training from
    // on-disk shards with one worker or four must be bit-identical —
    // the shard-order reduction, not scheduling, decides the sums.
    let corpus = build_corpus(&CorpusConfig::small(13));
    let streamed = |threads: usize| {
        let config = Config {
            threads,
            ..Config::small()
        };
        let dir =
            std::env::temp_dir().join(format!("cati_det_stream_t{threads}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cati = Cati::train_streamed(
            &corpus.train,
            &config,
            &dir,
            cati::StreamOptions::default(),
            &cati::obs::NOOP,
        )
        .expect("streamed training failed")
        .expect("full streamed run must produce a system");
        std::fs::remove_dir_all(&dir).ok();
        cati
    };
    let one = streamed(1);
    let four = streamed(4);
    // Whole-system equality would also compare the config, whose
    // `threads` knob intentionally differs; everything training
    // *produced* must match bit for bit.
    assert_eq!(
        serde_json::to_string(&one.stages).unwrap(),
        serde_json::to_string(&four.stages).unwrap(),
        "streamed stage models diverged across thread counts"
    );
    assert_eq!(
        serde_json::to_string(&one.embedder).unwrap(),
        serde_json::to_string(&four.embedder).unwrap(),
        "streamed embedders diverged across thread counts"
    );
    let stripped = corpus.test[0].binary.strip();
    assert_eq!(
        one.infer(&stripped).unwrap(),
        four.infer(&stripped).unwrap(),
        "streamed-model inference diverged across thread counts"
    );
}

#[test]
fn golden_retrain_and_save_load_roundtrip() {
    let corpus = build_corpus(&CorpusConfig::small(13));
    let (a, _) = train_with_threads(&corpus, 0);
    let (b, _) = train_with_threads(&corpus, 0);
    // Same seed, same corpus: retraining reproduces the exact system.
    assert_eq!(a, b, "retraining with a fixed seed is not deterministic");

    // Save/load roundtrip preserves inference on a held-out stripped
    // binary exactly.
    let stripped = corpus.test.last().unwrap().binary.strip();
    let before = a.infer(&stripped).unwrap();
    assert!(!before.is_empty(), "held-out binary yielded no variables");
    let path = std::env::temp_dir().join(format!("cati_golden_{}.json", std::process::id()));
    a.save(&path).unwrap();
    let loaded = Cati::load(&path).unwrap();

    // A corrupted model must fail to load with an error that names
    // the file and its size — not silently misparse or panic.
    let corrupt = std::env::temp_dir().join(format!("cati_corrupt_{}.json", std::process::id()));
    let mut bytes = std::fs::read(&path).unwrap();
    let cut = bytes.len() / 2;
    bytes.truncate(cut);
    std::fs::write(&corrupt, &bytes).unwrap();
    let err = Cati::load(&corrupt).expect_err("truncated model must not load");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let msg = err.to_string();
    assert!(
        msg.contains("cati_corrupt") && msg.contains(&format!("{cut} bytes")),
        "load error lacks path/size context: {msg}"
    );
    let err = Cati::load(std::env::temp_dir().join("cati_no_such_model.json"))
        .expect_err("missing model must not load");
    assert!(
        err.to_string().contains("cati_no_such_model"),
        "read error lacks path context: {err}"
    );
    std::fs::remove_file(&corrupt).ok();
    std::fs::remove_file(&path).ok();

    assert_eq!(
        loaded.infer(&stripped).unwrap(),
        before,
        "save/load roundtrip changed inference output"
    );
}

#[test]
fn lenient_mode_is_bit_identical_to_strict_on_clean_binaries() {
    // The error-path machinery must be invisible on healthy input:
    // lenient inference routes through the same strict sweep first,
    // so on an unmutated binary its output — and its coverage
    // accounting — must match the strict path bit for bit.
    let corpus = build_corpus(&CorpusConfig::small(13));
    let (cati, _) = train_with_threads(&corpus, 0);
    for built in corpus.test.iter().take(3) {
        let stripped = built.binary.strip();
        let symbols_only = cati_asm::binary::Binary {
            debug: None,
            ..built.binary.clone()
        };
        for bin in [&stripped, &symbols_only] {
            let strict = cati.infer(bin).unwrap();
            let report = cati.infer_lenient(bin);
            assert_eq!(
                report.vars, strict,
                "{}: lenient inference diverged from strict on clean input",
                bin.name
            );
            assert!(
                report.diagnostics.is_empty(),
                "{}: clean binary produced diagnostics: {:?}",
                bin.name,
                report.diagnostics
            );
            assert!(
                report.coverage.is_complete(),
                "{}: clean binary reported incomplete coverage: {:?}",
                bin.name,
                report.coverage
            );
            assert_eq!(report.coverage.bytes_skipped, 0);
            assert_eq!(report.coverage.functions_skipped, 0);
        }
    }
}

#[test]
fn profiling_does_not_perturb_inference_output() {
    // The profiler must be a pure observer: inference under a live
    // recorder (span tree, phase metrics) is bit-identical to the
    // unobserved path, and with profiling off (no `alloc-profile`
    // feature) the span tree carries no allocation columns at all.
    let corpus = build_corpus(&CorpusConfig::small(13));
    let (cati, _) = train_with_threads(&corpus, 0);
    let stripped = corpus.test[0].binary.strip();

    let unobserved = cati.infer(&stripped).unwrap();
    let recorder = Recorder::silent();
    let observed = cati.infer_observed(&stripped, &recorder).unwrap();
    assert_eq!(
        serde_json::to_string(&unobserved).unwrap(),
        serde_json::to_string(&observed).unwrap(),
        "profiling perturbed inference output"
    );

    // The observed run did produce a span tree.
    let tree = recorder.span_tree();
    assert!(tree.total_ns() > 0, "observed run produced no spans");

    // Without the counting allocator, allocation accounting must be
    // exactly zero everywhere — not merely small.
    #[cfg(not(feature = "alloc-profile"))]
    {
        let mut alloc_total = 0u64;
        tree.walk(|node, _| alloc_total += node.alloc_bytes + node.alloc_count);
        assert_eq!(
            alloc_total, 0,
            "allocation columns nonzero without the alloc-profile feature"
        );
    }
}

#[test]
fn sessions_and_artifact_cache_do_not_change_results() {
    let corpus = build_corpus(&CorpusConfig::small(13));
    let (cati, _) = train_with_threads(&corpus, 0);
    let stripped = corpus.test[0].binary.strip();

    // The plain path embeds internally; the session path embeds once
    // up front through the memoizing per-instruction cache. Both must
    // produce the same evaluation bit for bit.
    let ex = extract(&stripped, FeatureView::Stripped).unwrap();
    let plain = cati.evaluate(&ex);
    let session = EmbeddedExtraction::new(&cati.embedder, &ex);
    assert_eq!(
        plain,
        cati.evaluate_session(&session, &cati::obs::NOOP),
        "session evaluation diverged from the plain path"
    );

    // Cold then warm on-disk artifact cache: inference must be
    // bit-identical to the uncached path both times, and the warm run
    // must actually serve from the cache.
    let uncached = cati.infer(&stripped).unwrap();
    let dir = std::env::temp_dir().join(format!("cati_artifacts_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cache = ArtifactCache::open(&dir).unwrap();
    let cold_rec = Recorder::silent();
    let cold = cati
        .infer_cached(&stripped, Some(&cache), &cold_rec)
        .unwrap();
    let warm_rec = Recorder::silent();
    let warm = cati
        .infer_cached(&stripped, Some(&cache), &warm_rec)
        .unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(uncached, cold, "cold artifact cache changed inference");
    assert_eq!(uncached, warm, "warm artifact cache changed inference");
    assert_eq!(
        cold_rec.metrics().counter_value("cache.hit"),
        0,
        "cold run unexpectedly hit the artifact cache"
    );
    assert!(
        warm_rec.metrics().counter_value("cache.hit") >= 2,
        "warm run should hit both the extraction and embedding entries"
    );
    assert_eq!(
        warm_rec.metrics().counter_value("cache.miss"),
        0,
        "warm run should not miss the artifact cache"
    );
    // The warm path reuses stored embeddings, so it must not re-embed.
    assert_eq!(
        warm_rec.metrics().counter_value("embed.windows"),
        0,
        "warm run re-embedded windows despite the cache"
    );
}
