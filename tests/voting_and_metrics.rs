//! Voting behaviour and metric plumbing across the pipeline.

use cati::{
    pipeline_accuracy, stage_var_metrics, stage_vuc_metrics, Cati, Config, EmbeddedExtraction,
};
use cati_analysis::{extract, Extraction, FeatureView};
use cati_dwarf::StageId;
use cati_synbin::{build_corpus, CorpusConfig};

fn setup() -> (Cati, Vec<Extraction>) {
    let corpus = build_corpus(&CorpusConfig::small(31337));
    let cati = Cati::train(&corpus.train, &Config::small(), &cati::obs::NOOP);
    let exs = corpus
        .test
        .iter()
        .take(8)
        .map(|b| extract(&b.binary, FeatureView::Stripped).unwrap())
        .collect();
    (cati, exs)
}

#[test]
fn voting_does_not_hurt_aggregate_accuracy_much() {
    // Paper Table VI: voting lifts variable accuracy ~3 points above
    // VUC accuracy. At test scale we assert the weaker invariant that
    // voting does not collapse performance.
    let (cati, exs) = setup();
    let mut vuc_ok = 0.0;
    let mut vuc_n = 0u64;
    let mut var_ok = 0.0;
    let mut var_n = 0u64;
    for ex in &exs {
        let (va, vn, ra, rn) = pipeline_accuracy(&cati, ex);
        vuc_ok += va * vn as f64;
        vuc_n += vn;
        var_ok += ra * rn as f64;
        var_n += rn;
    }
    let vuc_acc = vuc_ok / vuc_n.max(1) as f64;
    let var_acc = var_ok / var_n.max(1) as f64;
    assert!(
        var_acc >= vuc_acc - 0.10,
        "voting collapsed accuracy: VUC {vuc_acc:.3} vs var {var_acc:.3}"
    );
}

#[test]
fn stage_metrics_are_consistent() {
    let (cati, exs) = setup();
    let refs: Vec<EmbeddedExtraction> = exs
        .iter()
        .map(|ex| EmbeddedExtraction::new(&cati.embedder, ex))
        .collect();
    for stage in StageId::ALL {
        let (prf_vuc, conf_vuc) = stage_vuc_metrics(&cati, &refs, stage);
        let (prf_var, conf_var) = stage_var_metrics(&cati, &refs, stage);
        // Metric ranges.
        for prf in [prf_vuc, prf_var] {
            assert!(
                (0.0..=1.0).contains(&prf.precision),
                "{stage} P {}",
                prf.precision
            );
            assert!((0.0..=1.0).contains(&prf.recall));
            assert!((0.0..=1.0).contains(&prf.f1));
        }
        // Variables never outnumber VUCs.
        assert!(conf_var.total() <= conf_vuc.total(), "{stage}");
        // Confusion matrices have the stage's class count.
        assert_eq!(conf_vuc.classes(), stage.num_classes());
    }
    // Stage 1 must carry the overwhelming majority of samples.
    let (_, c1) = stage_vuc_metrics(&cati, &refs, StageId::Stage1);
    let (_, c32) = stage_vuc_metrics(&cati, &refs, StageId::Stage3Float);
    assert!(c1.total() > c32.total());
}

#[test]
fn stage1_generalizes_to_unseen_apps() {
    let (cati, exs) = setup();
    let refs: Vec<EmbeddedExtraction> = exs
        .iter()
        .map(|ex| EmbeddedExtraction::new(&cati.embedder, ex))
        .collect();
    let (prf, conf) = stage_vuc_metrics(&cati, &refs, StageId::Stage1);
    assert!(conf.total() > 200);
    // Pointer vs non-pointer is the paper's easiest stage (~0.9 F1);
    // at test scale it must still be clearly above the majority-class
    // baseline.
    let majority = (0..2).map(|c| conf.support(c)).max().unwrap_or(0) as f64 / conf.total() as f64;
    assert!(
        prf.recall > majority.min(0.85) - 0.05,
        "stage1 recall {:.3} vs majority {majority:.3}",
        prf.recall
    );
    assert!(
        conf.accuracy() > 0.55,
        "stage1 accuracy {:.3}",
        conf.accuracy()
    );
}
