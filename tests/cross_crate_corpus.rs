//! Cross-crate corpus invariants: synbin binaries decode, strip
//! cleanly, label consistently, and generalize with high coverage.

use cati::embedding_sentences;
use cati_analysis::{extract, FeatureView, WINDOW};
use cati_dwarf::{DebugInfo, TypeClass};
use cati_embedding::{VucEmbedder, W2vConfig, Word2Vec};
use cati_synbin::{build_corpus, CorpusConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn every_corpus_binary_decodes_and_labels() {
    let corpus = build_corpus(&CorpusConfig::small(555));
    for built in corpus.train.iter().chain(&corpus.test) {
        let insns = built.binary.disassemble().expect("decode");
        assert!(!insns.is_empty());
        let di = DebugInfo::parse(built.binary.debug.as_ref().unwrap()).expect("debug info");
        assert!(di.var_count() > 0);
        let ex = extract(&built.binary, FeatureView::WithSymbols).expect("extract");
        for (_, var) in ex.labeled_vars() {
            assert!(TypeClass::ALL.contains(&var.class.unwrap()));
        }
        for vuc in &ex.vucs {
            assert!(vuc.class(&ex.vars).is_some());
            assert_ne!(vuc.insns[WINDOW].mnemonic(), "BLANK");
        }
    }
}

#[test]
fn stripping_preserves_code_and_removes_metadata() {
    let corpus = build_corpus(&CorpusConfig::small(556));
    for built in corpus.test.iter().take(6) {
        let stripped = built.binary.strip();
        assert_eq!(stripped.text, built.binary.text);
        assert!(stripped.symbols.is_empty());
        assert!(stripped.debug.is_none());
        let ex = extract(&stripped, FeatureView::Stripped).unwrap();
        assert!(!ex.vars.is_empty(), "{}", built.binary.name);
    }
}

#[test]
fn generalization_covers_unseen_binaries() {
    // Train the embedding vocabulary on one seed's corpus and measure
    // token coverage on a different seed — the paper's ">99% of the
    // instructions for newly come samples" claim (§IV-B).
    let train = build_corpus(&CorpusConfig::small(100));
    let unseen = build_corpus(&CorpusConfig::small(200));
    let mut rng = StdRng::seed_from_u64(0);
    let sentences = embedding_sentences(&train.train, 0, &mut rng);
    let embedder = VucEmbedder::new(Word2Vec::train(&sentences, W2vConfig::tiny()));

    let mut windows = Vec::new();
    for built in unseen.test.iter().take(8) {
        let ex = extract(&built.binary, FeatureView::WithSymbols).unwrap();
        windows.extend(ex.vucs.into_iter().map(|v| v.insns));
    }
    assert!(windows.len() > 100);
    let coverage = embedder.coverage(windows.iter());
    assert!(
        coverage > 0.99,
        "token coverage {coverage:.4} below the paper's 99%"
    );
}

#[test]
fn opt_levels_and_compilers_shift_the_instruction_mix() {
    use cati_synbin::{build_app, AppProfile, CodegenOptions, Compiler, OptLevel};
    let profile = AppProfile::new("mix");
    let mut rng = StdRng::seed_from_u64(4);
    let gcc_o0 = build_app(
        &profile,
        CodegenOptions {
            compiler: Compiler::Gcc,
            opt: OptLevel::O0,
        },
        0.5,
        &mut rng,
    );
    let mut rng = StdRng::seed_from_u64(4);
    let clang_o0 = build_app(
        &profile,
        CodegenOptions {
            compiler: Compiler::Clang,
            opt: OptLevel::O0,
        },
        0.5,
        &mut rng,
    );
    let text = |b: &cati_synbin::BuiltBinary| {
        let insns = b.binary.disassemble().unwrap();
        insns
            .iter()
            .map(|l| l.insn.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let g = text(&gcc_o0[0]);
    let c = text(&clang_o0[0]);
    assert_ne!(g, c, "compiler profiles must produce different code");
    // Scratch-register habits differ: Clang leans on %ecx/%rcx.
    let count = |s: &str, needle: &str| s.matches(needle).count();
    assert!(
        count(&c, "%ecx") + count(&c, "%rcx") > count(&g, "%ecx") + count(&g, "%rcx"),
        "expected Clang to use %rcx more than GCC"
    );
}
