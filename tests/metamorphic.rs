//! Metamorphic properties of the extraction pipeline (ISSUE 4): known
//! relations between a binary and a transformed twin that must hold
//! *exactly*, because every feature CATI consumes is local to a
//! function body.
//!
//! 1. Stripping symbols never changes the extracted VUC windows of
//!    surviving functions.
//! 2. Deleting one function's body removes exactly that function's
//!    variables and nothing else — the remaining votes are
//!    bit-identical.
//! 3. Inter-function junk padding changes no vote: the lenient path
//!    skips exactly the junk and infers the same variables.

use std::sync::OnceLock;

use cati::obs::NOOP;
use cati::{Cati, Config, PipelineStage};
use cati_analysis::{
    extract, split_functions, symbol_byte_ranges, Extraction, FeatureView, Variable,
};
use cati_asm::binary::Binary;
use cati_dwarf::DebugInfo;
use cati_synbin::{build_corpus, Corpus, CorpusConfig};

fn trained() -> &'static (Cati, Corpus) {
    static CELL: OnceLock<(Cati, Corpus)> = OnceLock::new();
    CELL.get_or_init(|| {
        let corpus = build_corpus(&CorpusConfig::small(29));
        let n = corpus.train.len().min(4);
        let cati = Cati::train(&corpus.train[..n], &Config::small(), &NOOP);
        (cati, corpus)
    })
}

/// A binary with its symbol table but no debug section.
fn symbols_only(bin: &Binary) -> Binary {
    Binary {
        debug: None,
        ..bin.clone()
    }
}

/// The VUC windows of one variable, in VUC order.
fn windows_of(ex: &Extraction, var: &Variable) -> Vec<Vec<cati_asm::generalize::GenInsn>> {
    var.vucs
        .iter()
        .map(|&i| ex.vucs[i as usize].insns.clone())
        .collect()
}

#[test]
fn stripping_symbols_never_changes_vuc_windows() {
    let (_, corpus) = trained();
    let mut compared = 0usize;
    for built in &corpus.test {
        let bin = &built.binary;
        let with_syms = symbols_only(bin);
        let stripped = bin.strip();
        // Symbol-table splitting and ret-boundary splitting can
        // legitimately disagree (e.g. tail duplication); the window
        // property is only claimed where the splits agree.
        let insns = bin.disassemble().unwrap();
        if split_functions(&insns, &with_syms) != split_functions(&insns, &stripped) {
            continue;
        }
        let a = extract(&with_syms, FeatureView::Stripped).unwrap();
        let b = extract(&stripped, FeatureView::Stripped).unwrap();
        assert_eq!(
            a.vars, b.vars,
            "{}: stripping changed recovered variables",
            bin.name
        );
        assert_eq!(
            a.vucs, b.vucs,
            "{}: stripping changed VUC windows",
            bin.name
        );
        compared += 1;
    }
    assert!(
        compared >= 3,
        "only {compared} binaries had agreeing splits; property untested"
    );
}

/// Removes the highest-addressed function (text bytes, symbol and
/// debug record) from `bin` without moving anything else.
fn drop_last_function(bin: &Binary) -> (Binary, u32) {
    let last = bin
        .symbols
        .iter()
        .filter(|s| s.addr >= bin.text_base)
        .max_by_key(|s| s.addr)
        .expect("binary has no text symbols")
        .clone();
    let cut = (last.addr - bin.text_base) as usize;
    let last_idx = (symbol_byte_ranges(bin).len() - 1) as u32;
    let mut small = bin.clone();
    small.text.truncate(cut);
    small
        .symbols
        .retain(|s| s.addr < bin.text_base || s.addr != last.addr);
    if let Some(debug) = &bin.debug {
        let mut di = DebugInfo::parse(debug).unwrap();
        di.functions.retain(|f| f.entry != last.addr);
        small.debug = Some(di.to_bytes());
    }
    (small, last_idx)
}

#[test]
fn deleting_a_function_only_removes_its_variables() {
    let (_, corpus) = trained();
    for built in corpus.test.iter().take(3) {
        let bin = &built.binary;
        let (small, last_idx) = drop_last_function(bin);
        // The Stripped feature view keeps windows independent of the
        // symbol table, so the surviving functions' features cannot be
        // perturbed by the deleted call target.
        let full = extract(bin, FeatureView::Stripped).unwrap();
        let cut = extract(&small, FeatureView::Stripped).unwrap();
        let expected: Vec<&Variable> = full
            .vars
            .iter()
            .filter(|v| v.key.func != last_idx)
            .collect();
        assert_eq!(
            cut.vars.len(),
            expected.len(),
            "{}: variable count changed beyond the deleted function",
            bin.name
        );
        for (got, want) in cut.vars.iter().zip(&expected) {
            assert_eq!(got.key, want.key, "{}: variable identity moved", bin.name);
            assert_eq!(got.name, want.name);
            assert_eq!(got.class, want.class);
            assert_eq!(
                windows_of(&cut, got),
                windows_of(&full, want),
                "{}: windows of a surviving variable changed",
                bin.name
            );
        }
    }
}

#[test]
fn deleting_a_function_keeps_remaining_votes_bit_identical() {
    let (cati, corpus) = trained();
    let bin = &corpus.test[0].binary;
    let (small, last_idx) = drop_last_function(bin);
    let full = cati.infer(&symbols_only(bin)).unwrap();
    let cut = cati.infer(&symbols_only(&small)).unwrap();
    let expected: Vec<_> = full
        .iter()
        .filter(|v| v.key.func != last_idx)
        .cloned()
        .collect();
    assert_eq!(
        cut, expected,
        "votes of surviving variables changed after deleting one function"
    );
}

/// Interprocedural extension of the deletion property: splicing makes
/// windows depend on call *edges*, so deleting a function that is
/// never called and itself calls nothing must still change no
/// surviving window or vote — there was no edge to lose.
#[test]
fn deleting_an_uncalled_function_changes_no_interproc_window() {
    let (_, corpus) = trained();
    let mut tested = 0usize;
    for built in corpus.test.iter().chain(corpus.train.iter()) {
        let bin = &built.binary;
        let insns = match bin.disassemble() {
            Ok(i) => i,
            Err(_) => continue,
        };
        let ranges = split_functions(&insns, bin);
        if ranges.len() < 2 {
            continue;
        }
        let bodies: Vec<Option<&[cati_asm::codec::Located]>> = ranges
            .iter()
            .map(|&(start, end)| Some(&insns[start..end]))
            .collect();
        let graph = cati_analysis::CallGraph::build(&bodies);
        let last = (ranges.len() - 1) as u32;
        // Only the isolated case carries the property: an uncalled
        // function with no outgoing local calls sits on no edge, so
        // no splice anywhere can reference it.
        let isolated = !graph.is_called(last) && !graph.sites().iter().any(|s| s.caller == last);
        if !isolated {
            continue;
        }
        let (small, last_idx) = drop_last_function(bin);
        assert_eq!(last_idx, last);
        let full = cati_analysis::extract_mode(
            bin,
            FeatureView::Stripped,
            cati_analysis::ContextMode::Interprocedural,
        )
        .unwrap();
        let cut = cati_analysis::extract_mode(
            &small,
            FeatureView::Stripped,
            cati_analysis::ContextMode::Interprocedural,
        )
        .unwrap();
        let expected: Vec<&Variable> = full.vars.iter().filter(|v| v.key.func != last).collect();
        assert_eq!(cut.vars.len(), expected.len(), "{}", bin.name);
        for (got, want) in cut.vars.iter().zip(&expected) {
            assert_eq!(got.key, want.key, "{}: variable identity moved", bin.name);
            assert_eq!(
                windows_of(&cut, got),
                windows_of(&full, want),
                "{}: an interproc window of a surviving variable changed",
                bin.name
            );
        }
        tested += 1;
    }
    assert!(
        tested >= 1,
        "no binary ended in an isolated function; property untested"
    );
}

/// Inserts runs of undecodable bytes between function bodies and
/// shifts the symbols accordingly; returns the padded binary and the
/// number of junk bytes inserted.
fn pad_with_junk(bin: &Binary) -> (Binary, u64) {
    const JUNK: u8 = 0xFF; // far beyond Mnemonic::ALL: never decodes
    let ranges = symbol_byte_ranges(bin);
    let mut text = Vec::with_capacity(bin.text.len() + 8 * ranges.len());
    let mut symbols: Vec<_> = bin
        .symbols
        .iter()
        .filter(|s| s.addr < bin.text_base)
        .cloned()
        .collect();
    let mut junk_total = 0u64;
    for (i, &(start, end)) in ranges.iter().enumerate() {
        if i > 0 {
            let pad = 1 + (i % 7);
            text.extend(std::iter::repeat_n(JUNK, pad));
            junk_total += pad as u64;
        }
        let old_addr = bin.text_base + start as u64;
        let mut sym = bin
            .symbols
            .iter()
            .find(|s| s.addr == old_addr)
            .expect("range without a symbol")
            .clone();
        sym.addr = bin.text_base + text.len() as u64;
        symbols.push(sym);
        text.extend_from_slice(&bin.text[start..end]);
    }
    text.extend(std::iter::repeat_n(JUNK, 3));
    junk_total += 3;
    let padded = Binary {
        text,
        symbols,
        debug: None,
        ..bin.clone()
    };
    (padded, junk_total)
}

#[test]
fn junk_padding_between_functions_changes_no_vote() {
    let (cati, corpus) = trained();
    let bin = &corpus.test[0].binary;
    let (padded, junk_total) = pad_with_junk(bin);

    // Strict mode refuses the padded binary with a typed decode error.
    let err = cati
        .infer(&padded)
        .expect_err("junk padding must fail strict inference");
    assert_eq!(err.stage(), PipelineStage::Decode);

    // Lenient mode skips exactly the junk and nothing else...
    let report = cati.infer_lenient(&padded);
    assert_eq!(report.coverage.bytes_total, padded.text.len() as u64);
    assert_eq!(
        report.coverage.bytes_skipped, junk_total,
        "lenient mode skipped something other than the junk"
    );
    assert_eq!(report.coverage.functions_skipped, 0);
    assert!(!report.coverage.is_complete());

    // ...so every vote is bit-identical to the unpadded binary's.
    let unpadded = cati.infer(&symbols_only(bin)).unwrap();
    assert_eq!(
        report.vars, unpadded,
        "junk between functions changed at least one vote"
    );
}
