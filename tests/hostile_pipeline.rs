//! Hostile-input fuzz harness (ISSUE 4 tentpole coverage): every
//! mutator class is driven through the full pipeline with several
//! seeds. The pipeline must never panic — there is deliberately no
//! `catch_unwind` anywhere in here, so a panic in any stage fails the
//! test instead of being masked. Strict mode must fail with a *typed*
//! error; lenient mode must always return, and whenever it degrades
//! it must say so through diagnostics or incomplete coverage.

use std::path::PathBuf;
use std::sync::OnceLock;

use cati::obs::{Recorder, NOOP};
use cati::{ArtifactCache, Cati, CatiError, Config, PipelineStage};
use cati_analysis::{extract, extract_lenient, FeatureView};
use cati_dwarf::{
    CType, DebugInfo, DwarfError, FuncRecord, IntWidth, Signedness, VarLocation, VarRecord,
};
use cati_synbin::{build_corpus, Corpus, CorpusConfig, MutationKind};
use proptest::prelude::*;

fn fixture_dir() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/hostile"
    ))
}

/// One small trained system shared by every test in this file.
fn trained() -> &'static (Cati, Corpus) {
    static CELL: OnceLock<(Cati, Corpus)> = OnceLock::new();
    CELL.get_or_init(|| {
        let corpus = build_corpus(&CorpusConfig::small(4));
        let n = corpus.train.len().min(4);
        let cati = Cati::train(&corpus.train[..n], &Config::small(), &NOOP);
        (cati, corpus)
    })
}

/// Extraction-level sweep: broad (every mutator × seeds × binaries)
/// because extraction is cheap. Strict returns a typed `Result`;
/// lenient returns internally consistent coverage and never hides a
/// degradation.
#[test]
fn every_mutator_class_degrades_honestly_at_extraction() {
    let (_, corpus) = trained();
    for (bi, built) in corpus.test.iter().take(2).enumerate() {
        for kind in MutationKind::ALL {
            for s in 0..3u64 {
                let seed = 1000 * (bi as u64 + 1) + s;
                let (mutant, record) = cati_synbin::mutate(&built.binary, kind, seed);
                let strict = extract(&mutant, FeatureView::Stripped);
                let lenient = extract_lenient(&mutant, FeatureView::Stripped);
                let cov = &lenient.coverage;
                assert_eq!(
                    cov.bytes_total,
                    mutant.text.len() as u64,
                    "coverage lies about the text size on {record}"
                );
                assert!(
                    cov.functions_skipped <= cov.functions_total,
                    "skipped more functions than exist on {record}"
                );
                assert!(
                    cov.bytes_skipped <= cov.bytes_total,
                    "skipped more bytes than exist on {record}"
                );
                assert_eq!(
                    cov.vars,
                    lenient.extraction.vars.len() as u64,
                    "coverage var count disagrees with the extraction on {record}"
                );
                match strict {
                    Ok(_) => {}
                    Err(e) => {
                        // A typed failure with a stage attribution and a
                        // human-readable message...
                        assert!(!e.to_string().is_empty());
                        let _: PipelineStage = e.stage();
                        // ...and the lenient run must not pretend the
                        // binary was clean.
                        assert!(
                            !lenient.diagnostics.is_empty() || !cov.is_complete(),
                            "strict failed ({e}) but lenient reported a \
                             complete, diagnostic-free run on {record}"
                        );
                    }
                }
                if cov.functions_skipped > 0 {
                    assert!(
                        !lenient.diagnostics.is_empty(),
                        "functions were skipped silently on {record}"
                    );
                }
            }
        }
    }
}

/// Interprocedural lenient extraction under corruption: a corrupt
/// callee must degrade its splices back to the function-local BLANKs
/// instead of poisoning caller windows, and splicing must never move
/// variable identity — on any mutant, the surviving `VarKey`s are the
/// same set in both context modes, and every slot the function-local
/// window fills is byte-identical in the interprocedural window.
#[test]
fn interproc_lenient_degrades_splices_without_poisoning() {
    use cati_analysis::{extract_lenient_mode, extract_mode, ContextMode};
    use cati_asm::generalize::GenInsn;
    let (_, corpus) = trained();
    let blank = GenInsn::blank();
    for (bi, built) in corpus.test.iter().take(2).enumerate() {
        // Clean baseline: lenient interproc equals strict interproc.
        let strict = extract_mode(
            &built.binary.strip(),
            FeatureView::Stripped,
            ContextMode::Interprocedural,
        )
        .unwrap();
        let clean = extract_lenient_mode(
            &built.binary.strip(),
            FeatureView::Stripped,
            ContextMode::Interprocedural,
        );
        assert_eq!(strict.vars, clean.extraction.vars, "clean lenient drifted");
        assert_eq!(strict.vucs, clean.extraction.vucs, "clean lenient drifted");

        for kind in MutationKind::ALL {
            for s in 0..2u64 {
                let seed = 5000 * (bi as u64 + 1) + s;
                let (mutant, record) = cati_synbin::mutate(&built.binary, kind, seed);
                let ip = extract_lenient_mode(
                    &mutant,
                    FeatureView::Stripped,
                    ContextMode::Interprocedural,
                );
                let fl = extract_lenient_mode(
                    &mutant,
                    FeatureView::Stripped,
                    ContextMode::FunctionLocal,
                );
                let ip_keys: Vec<_> = ip.extraction.vars.iter().map(|v| v.key).collect();
                let fl_keys: Vec<_> = fl.extraction.vars.iter().map(|v| v.key).collect();
                assert_eq!(
                    ip_keys, fl_keys,
                    "context mode changed surviving variable identity on {record}"
                );
                assert_eq!(
                    ip.extraction.vucs.len(),
                    fl.extraction.vucs.len(),
                    "context mode changed VUC count on {record}"
                );
                for (wi, (iw, fw)) in ip
                    .extraction
                    .vucs
                    .iter()
                    .zip(&fl.extraction.vucs)
                    .enumerate()
                {
                    for (slot, (is_, fs)) in iw.insns.iter().zip(&fw.insns).enumerate() {
                        if *fs != blank {
                            assert_eq!(
                                is_, fs,
                                "window {wi} slot {slot}: splicing rewrote a local \
                                 instruction on {record}"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Model-level sweep: one seed per mutator class through full strict
/// and lenient inference. Lenient inference must return a partial
/// result whose coverage matches the report.
#[test]
fn lenient_inference_returns_partial_results_on_every_mutator_class() {
    let (cati, corpus) = trained();
    let built = &corpus.test[0];
    for (i, kind) in MutationKind::ALL.into_iter().enumerate() {
        let (mutant, record) = cati_synbin::mutate(&built.binary, kind, 7000 + i as u64);
        // Strict inference on the stripped mutant: Ok or a typed error,
        // never a panic (nothing here catches unwinds).
        let strict = cati.infer(&mutant.strip());
        let report = cati.infer_lenient(&mutant);
        assert_eq!(
            report.vars.len() as u64,
            report.coverage.vars,
            "report var count disagrees with its coverage on {record}"
        );
        assert_eq!(
            report.coverage.bytes_total,
            mutant.text.len() as u64,
            "coverage lies about the text size on {record}"
        );
        for v in &report.vars {
            assert!(
                v.confidence.is_finite() && v.confidence >= 0.0,
                "non-finite confidence on {record}"
            );
        }
        if strict.is_err() && mutant.symbols.is_empty() {
            // Without symbols the lenient path resynchronizes; it must
            // still have explained itself.
            assert!(
                !report.diagnostics.is_empty() || !report.coverage.is_complete(),
                "silent degradation on {record}"
            );
        }
    }
}

/// Strict mode is a contract: an undecodable text section surfaces as
/// `CatiError::Decode` attributed to the decode stage, end to end.
#[test]
fn strict_mode_surfaces_typed_decode_errors() {
    let (cati, corpus) = trained();
    let built = &corpus.test[0];
    let mut seen_decode_err = false;
    for seed in 0..6u64 {
        let (mutant, _) = cati_synbin::mutate(&built.binary, MutationKind::SpliceOpcode, seed);
        match cati.infer(&mutant.strip()) {
            Ok(_) => {}
            Err(e @ CatiError::Decode(_)) => {
                assert_eq!(e.stage(), PipelineStage::Decode);
                assert!(
                    e.to_string().contains("undecodable"),
                    "unhelpful decode error: {e}"
                );
                seen_decode_err = true;
            }
            Err(other) => panic!("splice produced a non-decode error: {other}"),
        }
    }
    assert!(
        seen_decode_err,
        "no spliced mutant tripped the strict decoder in six seeds"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A corrupted on-disk artifact-cache entry — bit flip, truncation
    /// or wholesale garbage — is always detected by the integrity
    /// envelope and recomputed bit-identically, never deserialized.
    #[test]
    fn corrupt_artifact_cache_entries_recompute_bit_identically(
        file_pick in any::<prop::sample::Index>(),
        byte_pick in any::<prop::sample::Index>(),
        bit in 0u8..8,
        shape in 0u8..3,
        case in 0u32..1_000_000,
    ) {
        let (cati, corpus) = trained();
        let stripped = corpus.test[0].binary.strip();
        let baseline = cati.infer(&stripped).unwrap();

        let dir = std::env::temp_dir().join(format!(
            "cati_hostile_cache_{}_{case}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let cache = ArtifactCache::open(&dir).unwrap();
        let cold = cati.infer_cached(&stripped, Some(&cache), &Recorder::silent()).unwrap();
        prop_assert_eq!(&cold, &baseline);

        // Corrupt one stored entry.
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_file())
            .collect();
        files.sort();
        prop_assert!(!files.is_empty(), "cold run stored no artifacts");
        let victim = &files[file_pick.index(files.len())];
        let mut bytes = std::fs::read(victim).unwrap();
        match shape {
            0 => {
                let i = byte_pick.index(bytes.len());
                bytes[i] ^= 1 << bit;
            }
            1 => bytes.truncate(byte_pick.index(bytes.len())),
            _ => bytes = b"not an artifact at all".to_vec(),
        }
        std::fs::write(victim, &bytes).unwrap();

        // The warm run must detect the damage, recompute, and agree
        // with the uncached result bit for bit.
        let warm_rec = Recorder::silent();
        let warm = cati.infer_cached(&stripped, Some(&cache), &warm_rec).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(&warm, &baseline, "corruption leaked into inference");
        prop_assert!(
            warm_rec.metrics().counter_value("cache.miss") >= 1,
            "corrupted entry was served as a hit"
        );
    }
}

// ---------------------------------------------------------------------------
// Minimized regression fixtures for previously-panicking sites.
// ---------------------------------------------------------------------------

/// Rebuilds `tests/fixtures/hostile/`. Run manually after changing the
/// fixture set:
/// `cargo test -p cati --test hostile_pipeline regenerate -- --ignored`
#[test]
#[ignore = "fixture regenerator; run with -- --ignored to rebuild"]
fn regenerate_hostile_fixtures() {
    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).unwrap();

    // 1. A debug section whose variable references struct #7 of an
    //    empty table (used to drive `size_of` out of bounds).
    let bad_ref = DebugInfo {
        types: cati_dwarf::TypeTable {
            structs: vec![],
            enums: vec![],
        },
        functions: vec![FuncRecord {
            name: "f".into(),
            entry: 0x40_1000,
            code_len: 16,
            vars: vec![VarRecord {
                name: "v".into(),
                ty: CType::Struct(7),
                location: VarLocation::Frame(-8),
                is_param: false,
            }],
        }],
    };
    std::fs::write(dir.join("dwarf_bad_struct_index.bin"), bad_ref.to_bytes()).unwrap();

    // 2. An array whose element-count × element-size overflows u32
    //    (used to panic size_of under debug assertions).
    let overflow = DebugInfo {
        types: cati_dwarf::TypeTable {
            structs: vec![],
            enums: vec![],
        },
        functions: vec![FuncRecord {
            name: "g".into(),
            entry: 0x40_1000,
            code_len: 16,
            vars: vec![VarRecord {
                name: "huge".into(),
                ty: CType::Array(
                    Box::new(CType::Integer(IntWidth::Int, Signedness::Signed)),
                    u32::MAX,
                ),
                location: VarLocation::Frame(-8),
                is_param: false,
            }],
        }],
    };
    std::fs::write(dir.join("dwarf_array_overflow.bin"), overflow.to_bytes()).unwrap();

    // 3. AT&T lines with a close-paren before the open-paren (used to
    //    slice-panic the memory-operand parser).
    std::fs::write(
        dir.join("asm_mem_close_before_open.txt"),
        "movq )x(,%rax\nmov )(\nleaq )-8(%rbp,%rax,4(,%rcx\naddl )),%eax\n",
    )
    .unwrap();

    // 4. A whole binary desynchronized mid-function (stale symbols),
    //    serialized as JSON.
    let corpus = build_corpus(&CorpusConfig::small(4));
    let (mutant, record) = cati_synbin::mutate(&corpus.test[0].binary, MutationKind::Desync, 11);
    let json = serde_json::to_string(&serde_json::json!({
        "mutation": record,
        "binary": mutant,
    }))
    .unwrap();
    std::fs::write(dir.join("desync_mid_function.json"), json).unwrap();
}

#[test]
fn fixture_dangling_struct_ref_is_rejected_not_panicking() {
    let bytes = std::fs::read(fixture_dir().join("dwarf_bad_struct_index.bin"))
        .expect("missing fixture; run the regenerator");
    match DebugInfo::parse(&bytes) {
        Err(DwarfError::BadTypeRef { index: 7, .. }) => {}
        other => panic!("expected BadTypeRef {{ index: 7 }}, got {other:?}"),
    }
}

#[test]
fn fixture_array_overflow_saturates_instead_of_panicking() {
    let bytes = std::fs::read(fixture_dir().join("dwarf_array_overflow.bin"))
        .expect("missing fixture; run the regenerator");
    let di = DebugInfo::parse(&bytes).unwrap();
    let ty = &di.functions[0].vars[0].ty;
    // Under debug assertions the old multiply panicked; now it must
    // saturate and stay total.
    assert_eq!(di.types.size_of(ty), u32::MAX);
    assert!(di.types.align_of(ty) >= 1);
}

#[test]
fn fixture_malformed_att_lines_parse_to_errors() {
    let text = std::fs::read_to_string(fixture_dir().join("asm_mem_close_before_open.txt"))
        .expect("missing fixture; run the regenerator");
    for line in text.lines() {
        assert!(
            cati_asm::parse::parse_insn(line).is_err(),
            "malformed line parsed: {line}"
        );
    }
}

#[test]
fn fixture_desynchronized_binary_is_isolated_not_fatal() {
    let json = std::fs::read_to_string(fixture_dir().join("desync_mid_function.json"))
        .expect("missing fixture; run the regenerator");
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    let mutant: cati_asm::binary::Binary =
        serde_json::from_str(&serde_json::to_string(&value["binary"]).unwrap()).unwrap();
    // The stale symbol table no longer matches the shifted bytes:
    // strict extraction must fail typed, lenient must salvage what it
    // can and account for the rest.
    let lenient = extract_lenient(&mutant, FeatureView::Stripped);
    if extract(&mutant, FeatureView::Stripped).is_err() {
        assert!(!lenient.diagnostics.is_empty() || !lenient.coverage.is_complete());
    }
    assert_eq!(lenient.coverage.bytes_total, mutant.text.len() as u64);
}
