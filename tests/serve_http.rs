//! End-to-end tests of the serve daemon (ISSUE 6 tentpole): an
//! in-process server on an ephemeral port, exercised by raw
//! `TcpStream` clients through the crate's own minimal HTTP layer.
//!
//! The core contract under test: a served `/infer` response body is
//! **bit-identical** to what `cati infer --json` prints for the same
//! binary — across concurrency, micro-batching, backpressure, and a
//! model hot-swap. Overload and deadline behavior must be clean
//! protocol answers (503/504), never hangs or panics.

use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use cati::obs::{MetricsSnapshot, NOOP};
use cati::{Cati, Config, InferReport};
use cati_asm::binary::Binary;
use cati_serve::{roundtrip, roundtrip_with_timeout, Request, Response, ServeConfig, Server};
use cati_synbin::{build_corpus, Corpus, CorpusConfig};

/// One small trained system + corpus shared by every test in this
/// file (training is the expensive part).
fn trained() -> &'static (Cati, Corpus) {
    static CELL: OnceLock<(Cati, Corpus)> = OnceLock::new();
    CELL.get_or_init(|| {
        let corpus = build_corpus(&CorpusConfig::small(4));
        let n = corpus.train.len().min(4);
        let cati = Cati::train(&corpus.train[..n], &Config::small(), &NOOP);
        (cati, corpus)
    })
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cati_serve_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// What `cati infer --model M BIN --json` prints (sans the trailing
/// newline `println!` adds): sorted vars, pretty-printed.
fn one_shot_strict(cati: &Cati, binary: &Binary) -> String {
    let mut vars = cati.infer(binary).expect("strict inference");
    vars.sort_by_key(|v| (v.key.func, v.key.offset));
    serde_json::to_string_pretty(&vars).unwrap()
}

/// What `cati infer --lenient --json` prints: the full report with
/// sorted vars.
fn one_shot_lenient(cati: &Cati, binary: &Binary) -> String {
    let mut report = cati.infer_lenient(binary);
    report.vars.sort_by_key(|v| (v.key.func, v.key.offset));
    serde_json::to_string_pretty(&report).unwrap()
}

fn infer_request(binary: &Binary) -> Request {
    Request::new("POST", "/infer").with_body(serde_json::to_vec(binary).unwrap())
}

fn start(cfg: ServeConfig) -> cati_serve::ServerHandle {
    let (cati, _) = trained();
    Server::start(cati.clone(), cfg).expect("server start")
}

fn ephemeral(mut cfg: ServeConfig) -> ServeConfig {
    cfg.addr = "127.0.0.1:0".to_string();
    cfg
}

/// The tentpole contract: with 8 clients hammering the daemon
/// concurrently, every response body is byte-identical to the
/// one-shot CLI output for its binary, and every response names the
/// serving model version.
#[test]
fn served_inference_is_bit_identical_under_concurrent_clients() {
    let (cati, corpus) = trained();
    let handle = start(ephemeral(ServeConfig::default()));
    let addr = handle.addr();
    let version = handle.model_version();

    let cases: Vec<(Binary, String)> = corpus
        .test
        .iter()
        .cycle()
        .take(8)
        .map(|built| {
            let stripped = built.binary.strip();
            let expected = one_shot_strict(cati, &stripped);
            (stripped, expected)
        })
        .collect();

    let threads: Vec<_> = cases
        .into_iter()
        .map(|(binary, expected)| {
            let version = version.clone();
            std::thread::spawn(move || {
                let response = roundtrip(addr, &infer_request(&binary)).expect("roundtrip");
                assert_eq!(response.status, 200, "body: {}", text(&response));
                assert_eq!(response.header("content-type"), Some("application/json"));
                assert_eq!(
                    response.header("x-cati-model-version"),
                    Some(version.as_str())
                );
                assert_eq!(
                    text(&response),
                    expected,
                    "served body must be bit-identical to one-shot inference"
                );
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    assert!(snapshot(&handle).counter("serve.requests").unwrap_or(0) >= 8);
}

#[test]
fn lenient_mode_serves_the_full_report() {
    let (cati, corpus) = trained();
    let handle = start(ephemeral(ServeConfig::default()));
    let binary = &corpus.test[0].binary;
    let expected = one_shot_lenient(cati, binary);

    // Via query string...
    let request =
        Request::new("POST", "/infer?mode=lenient").with_body(serde_json::to_vec(binary).unwrap());
    let response = roundtrip(handle.addr(), &request).unwrap();
    assert_eq!(response.status, 200, "body: {}", text(&response));
    assert_eq!(text(&response), expected);
    let report: InferReport = serde_json::from_slice(&response.body).unwrap();
    assert_eq!(report.coverage.bytes_total, binary.text.len() as u64);

    // ...and via the header form.
    let request = infer_request(binary).with_header("x-cati-mode", "lenient");
    let response = roundtrip(handle.addr(), &request).unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(text(&response), expected);
}

/// Requests that arrive while the single worker is busy must coalesce
/// into one micro-batch — and still yield bit-identical bodies.
#[test]
fn concurrent_requests_coalesce_into_micro_batches() {
    let (cati, corpus) = trained();
    let mut cfg = ephemeral(ServeConfig::default());
    cfg.workers = 1;
    cfg.allow_test_delay = true;
    let handle = start(cfg);
    let addr = handle.addr();

    let binary = corpus.test[0].binary.strip();
    let expected = one_shot_strict(cati, &binary);

    // Occupy the worker: a request whose processing sleeps 400ms.
    let blocker = {
        let binary = binary.clone();
        std::thread::spawn(move || {
            let request = infer_request(&binary).with_header("x-cati-test-sleep-ms", 400);
            roundtrip(addr, &request).expect("blocker roundtrip")
        })
    };
    std::thread::sleep(Duration::from_millis(150));

    // These four queue up behind the blocker and drain as one batch.
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let binary = binary.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let response = roundtrip(addr, &infer_request(&binary)).expect("roundtrip");
                assert_eq!(response.status, 200, "body: {}", text(&response));
                assert_eq!(text(&response), expected);
            })
        })
        .collect();
    for t in clients {
        t.join().expect("client thread");
    }
    assert_eq!(blocker.join().expect("blocker").status, 200);

    let histogram = snapshot(&handle);
    let batches = histogram
        .histogram("serve.batch_size")
        .expect("batch-size histogram");
    // 5 requests in fewer than 5 batches ⇒ some batch held > 1
    // request. (sum = total requests, count = number of batches.)
    assert!(
        batches.sum > batches.count as f64,
        "no coalescing: {} requests in {} batches",
        batches.sum,
        batches.count
    );
}

/// A full queue answers 503 immediately (`serve.rejected`); admitted
/// requests still complete correctly.
#[test]
fn full_queue_sheds_load_with_deterministic_503() {
    let (cati, corpus) = trained();
    let mut cfg = ephemeral(ServeConfig::default());
    cfg.workers = 1;
    cfg.queue_capacity = 1;
    cfg.allow_test_delay = true;
    let handle = start(cfg);
    let addr = handle.addr();

    let binary = corpus.test[0].binary.strip();
    let expected = one_shot_strict(cati, &binary);

    // A occupies the worker (600ms of "work")...
    let a = {
        let binary = binary.clone();
        std::thread::spawn(move || {
            let request = infer_request(&binary).with_header("x-cati-test-sleep-ms", 600);
            roundtrip(addr, &request).expect("A")
        })
    };
    std::thread::sleep(Duration::from_millis(200));
    // ...B fills the queue's single slot...
    let b = {
        let binary = binary.clone();
        std::thread::spawn(move || roundtrip(addr, &infer_request(&binary)).expect("B"))
    };
    std::thread::sleep(Duration::from_millis(100));
    // ...so C must be shed, fast.
    let t0 = Instant::now();
    let c = roundtrip(addr, &infer_request(&binary)).expect("C");
    assert_eq!(c.status, 503, "body: {}", text(&c));
    assert!(
        t0.elapsed() < Duration::from_millis(300),
        "503 must be immediate, took {:?}",
        t0.elapsed()
    );
    assert!(text(&c).contains("queue full"));

    for (name, response) in [("A", a.join().unwrap()), ("B", b.join().unwrap())] {
        assert_eq!(response.status, 200, "{name} body: {}", text(&response));
        assert_eq!(text(&response), expected, "{name} served a wrong body");
    }
    assert!(snapshot(&handle).counter("serve.rejected").unwrap_or(0) >= 1);
}

/// `POST /admin/reload` swaps the model under live traffic: no
/// request fails, every response belongs to exactly one of the two
/// versions, and post-swap responses are bit-identical to one-shot
/// inference under the new model.
#[test]
fn hot_swap_keeps_every_inflight_request_correct() {
    let (_, corpus) = trained();
    let dir = temp_dir("swap");
    let v1_path = dir.join("v1.cati");
    let v2_path = dir.join("v2.cati");
    trained().0.save(&v1_path).unwrap();
    let v2 = {
        let corpus2 = build_corpus(&CorpusConfig::small(9));
        let n = corpus2.train.len().min(3);
        Cati::train(&corpus2.train[..n], &Config::small(), &NOOP)
    };
    v2.save(&v2_path).unwrap();

    let handle = Server::start_from_path(&v1_path, ephemeral(ServeConfig::default())).unwrap();
    let addr = handle.addr();
    let v1 = Cati::load(&v1_path).unwrap();
    let v2 = Cati::load(&v2_path).unwrap();
    let v1_version = cati_serve::model_version(&v1);
    let v2_version = cati_serve::model_version(&v2);
    assert_ne!(v1_version, v2_version, "test needs two distinct models");
    assert_eq!(handle.model_version(), v1_version);

    let binary = corpus.test[0].binary.strip();
    let expected_v1 = one_shot_strict(&v1, &binary);
    let expected_v2 = one_shot_strict(&v2, &binary);

    let served_after_swap = Arc::new(AtomicU64::new(0));
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let binary = binary.clone();
            let (v1_version, v2_version) = (v1_version.clone(), v2_version.clone());
            let (expected_v1, expected_v2) = (expected_v1.clone(), expected_v2.clone());
            let served_after_swap = Arc::clone(&served_after_swap);
            std::thread::spawn(move || {
                for _ in 0..6 {
                    let response = roundtrip(addr, &infer_request(&binary)).expect("roundtrip");
                    assert_eq!(response.status, 200, "body: {}", text(&response));
                    let version = response.header("x-cati-model-version").unwrap().to_string();
                    // Each response is internally consistent: the body
                    // matches the version that stamped it.
                    let expected = if version == v1_version {
                        &expected_v1
                    } else if version == v2_version {
                        served_after_swap.fetch_add(1, Ordering::SeqCst);
                        &expected_v2
                    } else {
                        panic!("unknown model version {version}");
                    };
                    assert_eq!(&text(&response), expected);
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(50));
    let reload = Request::new("POST", "/admin/reload").with_body(format!(
        "{{\"model\": {:?}}}",
        v2_path.display().to_string()
    ));
    let response = roundtrip(addr, &reload).unwrap();
    assert_eq!(response.status, 200, "body: {}", text(&response));
    assert_eq!(
        response.header("x-cati-model-version"),
        Some(v2_version.as_str())
    );
    for t in clients {
        t.join().expect("client thread");
    }

    // The swap is total: a fresh request is served by v2, body
    // bit-identical to one-shot inference under v2.
    assert_eq!(handle.model_version(), v2_version);
    let response = roundtrip(addr, &infer_request(&binary)).unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(
        response.header("x-cati-model-version"),
        Some(v2_version.as_str())
    );
    assert_eq!(text(&response), expected_v2);
    assert!(snapshot(&handle).counter("serve.reloads").unwrap_or(0) >= 1);
}

/// A request whose hang limit is below its processing time gets a
/// clean 504 within 2× the limit — and the server keeps serving.
#[test]
fn deadline_miss_is_a_fast_504_and_the_server_survives() {
    let (cati, corpus) = trained();
    let mut cfg = ephemeral(ServeConfig::default());
    cfg.workers = 1;
    cfg.allow_test_delay = true;
    let handle = start(cfg);
    let addr = handle.addr();
    let binary = corpus.test[0].binary.strip();

    let limit_ms = 500u64;
    let request = infer_request(&binary)
        .with_header("x-cati-test-sleep-ms", 2500)
        .with_header("x-cati-hang-limit-ms", limit_ms);
    let t0 = Instant::now();
    let response = roundtrip_with_timeout(addr, &request, Some(Duration::from_secs(10))).unwrap();
    let elapsed = t0.elapsed();
    assert_eq!(response.status, 504, "body: {}", text(&response));
    assert!(
        elapsed < Duration::from_millis(2 * limit_ms),
        "504 took {elapsed:?}, over 2x the {limit_ms}ms limit"
    );
    assert!(
        snapshot(&handle)
            .counter("serve.deadline_expired")
            .unwrap_or(0)
            >= 1
    );

    // The abandoned computation finishes in the background and the
    // next (unlimited) request is served correctly.
    let response = roundtrip(addr, &infer_request(&binary)).unwrap();
    assert_eq!(response.status, 200, "body: {}", text(&response));
    assert_eq!(text(&response), one_shot_strict(cati, &binary));

    // The worker's late result was dropped, not delivered.
    let t0 = Instant::now();
    loop {
        if snapshot(&handle)
            .counter("serve.deadline_dropped")
            .unwrap_or(0)
            >= 1
        {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "late result never recorded as dropped"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Protocol-level garbage gets protocol-level answers, never a crash.
#[test]
fn malformed_traffic_gets_4xx_and_the_server_stays_up() {
    let handle = start(ephemeral(ServeConfig::default()));
    let addr = handle.addr();

    // Raw garbage on the wire → 400.
    let mut stream = TcpStream::connect(addr).unwrap();
    std::io::Write::write_all(&mut stream, b"GARBAGE\r\n\r\n").unwrap();
    let response = read_response(stream);
    assert_eq!(response.status, 400);

    // A declared body over the hard cap → 413, refused before buffering.
    let mut stream = TcpStream::connect(addr).unwrap();
    std::io::Write::write_all(
        &mut stream,
        b"POST /infer HTTP/1.1\r\ncontent-length: 999999999999\r\n\r\n",
    )
    .unwrap();
    let response = read_response(stream);
    assert_eq!(response.status, 413);

    // Unknown route → 404; wrong method → 405; non-Binary JSON → 400.
    let response = roundtrip(addr, &Request::new("GET", "/nope")).unwrap();
    assert_eq!(response.status, 404);
    let response = roundtrip(addr, &Request::new("GET", "/infer")).unwrap();
    assert_eq!(response.status, 405);
    let response = roundtrip(
        addr,
        &Request::new("POST", "/infer").with_body(&b"not json"[..]),
    )
    .unwrap();
    assert_eq!(response.status, 400);

    // And the daemon is still healthy.
    let response = roundtrip(addr, &Request::new("GET", "/health")).unwrap();
    assert_eq!(response.status, 200);
    assert!(snapshot(&handle).counter("serve.errors").unwrap_or(0) >= 4);
}

#[test]
fn health_and_metrics_expose_the_live_registry() {
    let (_, corpus) = trained();
    let handle = start(ephemeral(ServeConfig::default()));
    let addr = handle.addr();

    let response = roundtrip(addr, &Request::new("GET", "/health")).unwrap();
    assert_eq!(response.status, 200);
    let health: serde_json::Value = serde_json::from_slice(&response.body).unwrap();
    assert_eq!(
        health["model_version"].as_str(),
        Some(handle.model_version().as_str())
    );

    let binary = corpus.test[0].binary.strip();
    roundtrip(addr, &infer_request(&binary)).unwrap();

    // The worker stamps `serve.served` *after* waking the client, so a fast
    // scrape can race it: poll until the counter lands.
    let deadline = Instant::now() + Duration::from_secs(5);
    let scraped = loop {
        let response = roundtrip(addr, &Request::new("GET", "/metrics")).unwrap();
        assert_eq!(response.status, 200);
        let scraped: MetricsSnapshot = serde_json::from_slice(&response.body).unwrap();
        if scraped.counter("serve.served").unwrap_or(0) >= 1 || Instant::now() >= deadline {
            break scraped;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(scraped.counter("serve.requests").unwrap_or(0) >= 1);
    assert!(scraped.counter("serve.served").unwrap_or(0) >= 1);
    assert!(scraped.histogram("serve.latency_ms").is_some());
}

/// A failed reload must not disturb the serving model.
#[test]
fn reload_of_a_bad_model_is_rejected_and_harmless() {
    let (cati, corpus) = trained();
    let handle = start(ephemeral(ServeConfig::default()));
    let addr = handle.addr();
    let version = handle.model_version();

    let reload = Request::new("POST", "/admin/reload")
        .with_body(&br#"{"model": "/nonexistent/model.cati"}"#[..]);
    let response = roundtrip(addr, &reload).unwrap();
    assert_eq!(response.status, 422, "body: {}", text(&response));
    assert_eq!(
        handle.model_version(),
        version,
        "failed reload must not swap"
    );

    let reload = Request::new("POST", "/admin/reload").with_body(&b"{}"[..]);
    let response = roundtrip(addr, &reload).unwrap();
    assert_eq!(response.status, 400);

    let binary = corpus.test[0].binary.strip();
    let response = roundtrip(addr, &infer_request(&binary)).unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(text(&response), one_shot_strict(cati, &binary));
}

/// Every response carries a trace id; generated ids are unique across
/// 8 concurrent clients and a caller-supplied id is echoed verbatim.
#[test]
fn trace_ids_are_unique_and_caller_ids_are_echoed() {
    let (_, corpus) = trained();
    let handle = start(ephemeral(ServeConfig::default()));
    let addr = handle.addr();
    let binary = corpus.test[0].binary.strip();

    let threads: Vec<_> = (0..8)
        .map(|_| {
            let binary = binary.clone();
            std::thread::spawn(move || {
                let response = roundtrip(addr, &infer_request(&binary)).expect("roundtrip");
                assert_eq!(response.status, 200);
                response
                    .header("x-cati-trace-id")
                    .expect("every response carries a trace id")
                    .to_string()
            })
        })
        .collect();
    let ids: Vec<String> = threads
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();
    let unique: std::collections::HashSet<&String> = ids.iter().collect();
    assert_eq!(
        unique.len(),
        ids.len(),
        "generated trace ids collided: {ids:?}"
    );

    // A caller-supplied id is honored; hostile ones are replaced.
    let tagged = infer_request(&binary).with_header("x-cati-trace-id", "req-42-from-client");
    let response = roundtrip(addr, &tagged).unwrap();
    assert_eq!(
        response.header("x-cati-trace-id"),
        Some("req-42-from-client")
    );

    let hostile = infer_request(&binary).with_header("x-cati-trace-id", "bad id with spaces");
    let response = roundtrip(addr, &hostile).unwrap();
    let got = response.header("x-cati-trace-id").expect("replacement id");
    assert_ne!(got, "bad id with spaces");
}

/// `GET /metrics?format=prometheus` answers well-formed text
/// exposition: parses, carries the serve families, and each histogram
/// is structurally consistent (`+Inf` bucket == `_count`).
#[test]
fn metrics_prometheus_exposition_is_well_formed() {
    let (_, corpus) = trained();
    let handle = start(ephemeral(ServeConfig::default()));
    let addr = handle.addr();
    let response = roundtrip(addr, &infer_request(&corpus.test[0].binary.strip())).unwrap();
    assert_eq!(response.status, 200);

    let response = roundtrip(addr, &Request::new("GET", "/metrics?format=prometheus")).unwrap();
    assert_eq!(response.status, 200);
    assert!(response
        .header("content-type")
        .is_some_and(|ct| ct.starts_with("text/plain")));
    let body = text(&response);
    let exposition = cati::obs::prometheus::parse(&body)
        .unwrap_or_else(|e| panic!("exposition rejected: {e}\n{body}"));
    assert!(
        exposition.value("serve_requests").is_some(),
        "serve.requests counter missing:\n{body}"
    );
    for phase in ["queue_wait", "embed", "batch_wait", "leaf", "vote"] {
        let count = exposition.value(&format!("serve_phase_{phase}_ms_count"));
        assert!(
            count.is_some_and(|c| c >= 1.0),
            "serve.phase.{phase}_ms histogram missing or empty:\n{body}"
        );
    }
}

/// The JSON `/metrics` histograms carry estimated p50/p95/p99.
#[test]
fn metrics_json_histograms_carry_quantiles() {
    let (_, corpus) = trained();
    let handle = start(ephemeral(ServeConfig::default()));
    let addr = handle.addr();
    let response = roundtrip(addr, &infer_request(&corpus.test[0].binary.strip())).unwrap();
    assert_eq!(response.status, 200);

    let response = roundtrip(addr, &Request::new("GET", "/metrics")).unwrap();
    assert_eq!(response.status, 200);
    let v: serde_json::Value = serde_json::from_str(&text(&response)).expect("metrics json");
    let histograms = v["histograms"].as_array().expect("histograms array");
    let latency = histograms
        .iter()
        .find(|h| h["name"] == "serve.latency_ms")
        .expect("serve.latency_ms histogram");
    for q in ["p50", "p95", "p99"] {
        assert!(
            latency[q].as_f64().is_some_and(f64::is_finite),
            "serve.latency_ms lacks {q}: {latency:?}"
        );
    }
}

/// `GET /debug/profile` dumps the aggregated span tree, including the
/// batched-classification span after traffic has flowed.
#[test]
fn debug_profile_exposes_the_span_tree() {
    let (_, corpus) = trained();
    let handle = start(ephemeral(ServeConfig::default()));
    let addr = handle.addr();
    let response = roundtrip(addr, &infer_request(&corpus.test[0].binary.strip())).unwrap();
    assert_eq!(response.status, 200);

    // The batch span closes when the worker's drain loop returns —
    // shortly *after* the response is delivered — so poll briefly.
    let deadline = Instant::now() + Duration::from_secs(5);
    let batch = loop {
        let response = roundtrip(addr, &Request::new("GET", "/debug/profile")).unwrap();
        assert_eq!(response.status, 200);
        let v: serde_json::Value = serde_json::from_str(&text(&response)).expect("profile json");
        let roots = v["span_tree"]["roots"]
            .as_array()
            .expect("roots array")
            .clone();
        // Dotted paths nest: `serve.batch` is root `serve`, child `batch`.
        if let Some(batch) = roots
            .iter()
            .filter_map(|n| n["children"].as_array())
            .flatten()
            .find(|n| n["path"] == "serve.batch")
        {
            break batch.clone();
        }
        assert!(
            Instant::now() < deadline,
            "no serve.batch span in profile after 5s: {v:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(batch["calls"].as_u64().is_some_and(|c| c >= 1));
    assert!(batch["total_ns"].as_u64().is_some_and(|ns| ns > 0));
}

fn text(response: &Response) -> String {
    String::from_utf8_lossy(&response.body).into_owned()
}

fn snapshot(handle: &cati_serve::ServerHandle) -> MetricsSnapshot {
    handle.recorder().metrics().snapshot()
}

fn read_response(stream: TcpStream) -> Response {
    let mut reader = std::io::BufReader::new(stream);
    Response::read_from(&mut reader).expect("response")
}
