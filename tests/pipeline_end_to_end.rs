//! End-to-end integration: corpus → training → inference on unseen
//! stripped binaries.

use cati::{pipeline_accuracy, Cati, Config};
use cati_analysis::{extract, FeatureView};
use cati_synbin::{build_corpus, Corpus, CorpusConfig};

fn small_corpus() -> Corpus {
    build_corpus(&CorpusConfig::small(2024))
}

fn train_small(corpus: &Corpus) -> Cati {
    Cati::train(&corpus.train, &Config::small(), &cati::obs::NOOP)
}

#[test]
fn trained_system_beats_chance_on_unseen_binaries() {
    let corpus = small_corpus();
    let cati = train_small(&corpus);
    let mut vuc_ok = 0.0;
    let mut vuc_n = 0u64;
    let mut var_ok = 0.0;
    let mut var_n = 0u64;
    for built in corpus.test.iter().take(6) {
        let ex = extract(&built.binary, FeatureView::Stripped).unwrap();
        let (va, vn, ra, rn) = pipeline_accuracy(&cati, &ex);
        vuc_ok += va * vn as f64;
        vuc_n += vn;
        var_ok += ra * rn as f64;
        var_n += rn;
    }
    assert!(vuc_n > 100, "need a real test sample, got {vuc_n} VUCs");
    let vuc_acc = vuc_ok / vuc_n as f64;
    let var_acc = var_ok / var_n as f64;
    // 19 classes => chance is ~5%, majority class well under 40%.
    // Even the tiny test-scale model must clearly beat chance.
    assert!(
        vuc_acc > 0.25,
        "VUC accuracy {vuc_acc:.3} is at chance level"
    );
    assert!(
        var_acc > 0.25,
        "variable accuracy {var_acc:.3} is at chance level"
    );
}

#[test]
fn inference_on_stripped_binary_produces_located_typed_vars() {
    let corpus = small_corpus();
    let cati = train_small(&corpus);
    let built = &corpus.test[0];
    let stripped = built.binary.strip();
    assert!(stripped.is_stripped());
    let inferred = cati.infer(&stripped).unwrap();
    assert!(!inferred.is_empty());
    for var in &inferred {
        assert!(var.vuc_count >= 1);
        assert!(var.confidence > 0.0 && var.confidence <= 1.0);
    }
    // The inferred variable locations cover most of the oracle's
    // (stripped recovery also finds excluded-class slots).
    let oracle = extract(&built.binary, FeatureView::WithSymbols).unwrap();
    let inferred_keys: std::collections::HashSet<_> = inferred.iter().map(|v| v.key).collect();
    let covered = oracle
        .vars
        .iter()
        .filter(|v| inferred_keys.contains(&v.key))
        .count();
    assert!(
        covered * 2 >= oracle.vars.len(),
        "only {covered}/{} oracle variables located on stripped input",
        oracle.vars.len()
    );
}

#[test]
fn model_save_load_roundtrip_preserves_predictions() {
    let corpus = small_corpus();
    let cati = train_small(&corpus);
    let path = std::env::temp_dir().join("cati_model_roundtrip.json");
    cati.save(&path).unwrap();
    let loaded = Cati::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let ex = extract(&corpus.test[0].binary, FeatureView::Stripped).unwrap();
    let a = cati.evaluate(&ex);
    let b = loaded.evaluate(&ex);
    assert_eq!(a.vuc_preds, b.vuc_preds);
    assert_eq!(a.var_preds, b.var_preds);
}

#[test]
fn training_is_reproducible() {
    let corpus = small_corpus();
    let a = train_small(&corpus);
    let b = train_small(&corpus);
    let ex = extract(&corpus.test[0].binary, FeatureView::Stripped).unwrap();
    assert_eq!(a.evaluate(&ex).vuc_preds, b.evaluate(&ex).vuc_preds);
}
