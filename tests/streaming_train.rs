//! Parity and crash-safety harness for out-of-core streaming training
//! (§ on-disk shards + epoch checkpoint/resume).
//!
//! The streaming path makes three strong promises, and this file holds
//! it to every one of them at the byte level:
//!
//! 1. **Streamed == in-memory.** Training from on-disk shards produces
//!    a system bit-identical to [`Cati::train`] on the same corpus.
//! 2. **Resume == uninterrupted.** Pausing at *every* epoch boundary
//!    and resuming yields the exact bytes of a run that never stopped.
//! 3. **Kill-anywhere safety.** A subprocess SIGKILLed mid-training
//!    resumes to the uninterrupted result, and damaged state (corrupt
//!    or truncated shards, corrupt checkpoints, a foreign config) is
//!    refused with a typed error — never silently retrained wrong.

use cati::obs::NOOP;
use cati::{Cati, CheckpointError, Config, ShardError, StreamError, StreamOptions};
use cati_synbin::{build_corpus, Corpus, CorpusConfig};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

fn test_corpus() -> Corpus {
    build_corpus(&CorpusConfig::small(13))
}

/// Three epochs so resume can be probed at interior boundaries, not
/// just the trivial first/last ones.
fn test_config() -> Config {
    Config {
        epochs: 3,
        ..Config::small()
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cati_stream_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Runs a full streamed training pass from scratch in `dir`.
fn stream_full(corpus: &Corpus, config: &Config, dir: &Path) -> Cati {
    Cati::train_streamed(&corpus.train, config, dir, StreamOptions::default(), &NOOP)
        .expect("streamed training failed")
        .expect("full run must produce a system")
}

/// Serialized model bytes, the currency of every parity assertion.
fn saved_bytes(cati: &Cati, tag: &str) -> Vec<u8> {
    let path = std::env::temp_dir().join(format!("cati_stream_{tag}_{}.json", std::process::id()));
    cati.save(&path).expect("save failed");
    let bytes = std::fs::read(&path).expect("read saved model");
    std::fs::remove_file(&path).ok();
    bytes
}

#[test]
fn streamed_training_is_bit_identical_to_in_memory() {
    let corpus = test_corpus();
    let config = test_config();
    let in_memory = Cati::train(&corpus.train, &config, &NOOP);
    let dir = fresh_dir("parity");
    let streamed = stream_full(&corpus, &config, &dir);
    assert_eq!(
        in_memory, streamed,
        "streamed training diverged from the in-memory path"
    );
    assert_eq!(
        saved_bytes(&in_memory, "parity_mem"),
        saved_bytes(&streamed, "parity_str"),
        "serialized models differ between streamed and in-memory training"
    );
    // And inference downstream of both agrees exactly.
    let stripped = corpus.test[0].binary.strip();
    assert_eq!(
        in_memory.infer(&stripped).unwrap(),
        streamed.infer(&stripped).unwrap(),
        "inference diverged between streamed and in-memory models"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_at_every_epoch_boundary_is_byte_identical() {
    let corpus = test_corpus();
    let config = test_config();
    let base_dir = fresh_dir("resume_base");
    let uninterrupted = stream_full(&corpus, &config, &base_dir);
    let golden = saved_bytes(&uninterrupted, "resume_golden");
    std::fs::remove_dir_all(&base_dir).ok();

    for stop_at in 1..config.epochs {
        let dir = fresh_dir(&format!("resume_{stop_at}"));
        let paused = Cati::train_streamed(
            &corpus.train,
            &config,
            &dir,
            StreamOptions {
                stop_after_epoch: Some(stop_at),
                ..StreamOptions::default()
            },
            &NOOP,
        )
        .expect("partial streamed run failed");
        assert!(
            paused.is_none(),
            "run stopped at epoch {stop_at} should not yield a finished system"
        );
        let resumed = Cati::train_streamed(
            &corpus.train,
            &config,
            &dir,
            StreamOptions {
                resume: true,
                ..StreamOptions::default()
            },
            &NOOP,
        )
        .expect("resume failed")
        .expect("resumed run must finish");
        assert_eq!(
            saved_bytes(&resumed, &format!("resume_{stop_at}")),
            golden,
            "resume after epoch {stop_at} diverged from the uninterrupted run"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn corrupt_or_truncated_shards_are_refused_with_typed_errors() {
    let corpus = test_corpus();
    let config = test_config();
    let dir = fresh_dir("badshard");
    stream_full(&corpus, &config, &dir);
    let shard = std::fs::read_dir(dir.join("shards"))
        .expect("shards dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "cshard"))
        .expect("no shard file written");

    // A single flipped bit in the middle of the payload must fail the
    // digest check on resume.
    let pristine = std::fs::read(&shard).expect("read shard");
    let mut bytes = pristine.clone();
    bytes[pristine.len() / 2] ^= 0x10;
    std::fs::write(&shard, &bytes).expect("write corrupt shard");
    let err = Cati::train_streamed(
        &corpus.train,
        &config,
        &dir,
        StreamOptions {
            resume: true,
            ..StreamOptions::default()
        },
        &NOOP,
    )
    .expect_err("corrupt shard must refuse to resume");
    assert!(
        matches!(err, StreamError::Shard(ShardError::DigestMismatch { .. })),
        "expected a digest mismatch, got {err}"
    );

    // Truncation must also surface as a typed shard error.
    std::fs::write(&shard, &pristine[..pristine.len() - 7]).expect("truncate shard");
    let err = Cati::train_streamed(
        &corpus.train,
        &config,
        &dir,
        StreamOptions {
            resume: true,
            ..StreamOptions::default()
        },
        &NOOP,
    )
    .expect_err("truncated shard must refuse to resume");
    assert!(
        matches!(
            err,
            StreamError::Shard(ShardError::Truncated { .. } | ShardError::DigestMismatch { .. })
        ),
        "expected truncation/digest error, got {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_checkpoints_and_foreign_configs_are_refused() {
    let corpus = test_corpus();
    let config = test_config();
    let dir = fresh_dir("badckpt");
    stream_full(&corpus, &config, &dir);
    let ckpt = std::fs::read_dir(&dir)
        .expect("checkpoint dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "ckpt"))
        .expect("no stage checkpoint written");

    // Resuming under a different config must be refused: these
    // checkpoints describe someone else's training run.
    let foreign = Config {
        lr: config.lr * 2.0,
        ..config
    };
    let err = Cati::train_streamed(
        &corpus.train,
        &foreign,
        &dir,
        StreamOptions {
            resume: true,
            ..StreamOptions::default()
        },
        &NOOP,
    )
    .expect_err("foreign config must refuse to resume");
    assert!(
        matches!(
            err,
            StreamError::Checkpoint(CheckpointError::Mismatch { .. })
        ),
        "expected an identity mismatch, got {err}"
    );

    // A bit flip inside a checkpoint must be a typed corruption error.
    let mut bytes = std::fs::read(&ckpt).expect("read checkpoint");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    std::fs::write(&ckpt, &bytes).expect("write corrupt checkpoint");
    let err = Cati::train_streamed(
        &corpus.train,
        &config,
        &dir,
        StreamOptions {
            resume: true,
            ..StreamOptions::default()
        },
        &NOOP,
    )
    .expect_err("corrupt checkpoint must refuse to resume");
    assert!(
        matches!(
            err,
            StreamError::Checkpoint(CheckpointError::Corrupt { .. })
        ),
        "expected typed corruption, got {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Env var carrying the checkpoint dir into the subprocess victim.
const KILL_DIR_ENV: &str = "CATI_TEST_KILL_DIR";

/// Subprocess victim for [`kill_mid_epoch_then_resume_matches_uninterrupted`]:
/// runs a slowed-down streamed training pass that the parent SIGKILLs
/// partway through. Ignored so it never runs on its own; the parent
/// re-executes this test binary with `--ignored --exact` to invoke it.
#[test]
#[ignore = "subprocess victim; driven by the kill-and-resume test"]
fn child_streaming_kill_victim() {
    let Ok(dir) = std::env::var(KILL_DIR_ENV) else {
        return; // invoked outside the harness; nothing to do
    };
    let corpus = test_corpus();
    let config = test_config();
    let outcome = Cati::train_streamed(
        &corpus.train,
        &config,
        Path::new(&dir),
        StreamOptions {
            // Slow each epoch so the parent reliably wins the race to
            // SIGKILL us between checkpoint writes.
            epoch_sleep_ms: 500,
            ..StreamOptions::default()
        },
        &NOOP,
    );
    if outcome.is_ok() {
        // The parent asserts this marker is absent: its presence means
        // the kill landed too late and the test run proves nothing.
        std::fs::write(Path::new(&dir).join("FINISHED"), b"").ok();
    }
}

#[test]
fn kill_mid_epoch_then_resume_matches_uninterrupted() {
    let corpus = test_corpus();
    let config = test_config();

    // Golden: the run that never stops.
    let base_dir = fresh_dir("kill_base");
    let uninterrupted = stream_full(&corpus, &config, &base_dir);
    let golden = saved_bytes(&uninterrupted, "kill_golden");
    std::fs::remove_dir_all(&base_dir).ok();

    // Victim: this same test binary, re-executed to run the ignored
    // child above, then SIGKILLed once the first epoch checkpoint
    // lands on disk — i.e. genuinely mid-training.
    let dir = fresh_dir("kill_victim");
    let exe = std::env::current_exe().expect("current_exe");
    let mut child = Command::new(&exe)
        .args(["--ignored", "--exact", "child_streaming_kill_victim"])
        .env(KILL_DIR_ENV, &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn victim");

    let deadline = Instant::now() + Duration::from_secs(120);
    let first_ckpt_seen = loop {
        let seen = std::fs::read_dir(&dir).ok().is_some_and(|entries| {
            entries
                .filter_map(|e| e.ok())
                .any(|e| e.path().extension().is_some_and(|x| x == "ckpt"))
        });
        if seen {
            break true;
        }
        if child.try_wait().expect("try_wait").is_some() || Instant::now() > deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(first_ckpt_seen, "victim never wrote a checkpoint");
    child.kill().expect("SIGKILL victim");
    let status = child.wait().expect("wait for victim");
    assert!(!status.success(), "victim should have died by signal");
    assert!(
        !dir.join("FINISHED").exists(),
        "victim finished before the kill; the test raced and proves nothing"
    );

    // Resume from whatever the kill left behind; the result must be
    // byte-for-byte the uninterrupted run.
    let resumed = Cati::train_streamed(
        &corpus.train,
        &config,
        &dir,
        StreamOptions {
            resume: true,
            ..StreamOptions::default()
        },
        &NOOP,
    )
    .expect("resume after kill failed")
    .expect("resumed run must finish");
    assert_eq!(
        saved_bytes(&resumed, "kill_resumed"),
        golden,
        "resume after SIGKILL diverged from the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}
