//! Model container format tests: the committed golden CATI1 fixture
//! must keep loading byte-for-byte, and a legacy JSON model must
//! migrate to CATI1 without changing a single prediction.
//!
//! The fixture pins the on-disk format: if an encoder change produces
//! different bytes for the same model, the golden test fails and the
//! change needs a format version bump (plus a regenerated fixture via
//! `cargo test -p cati --test model_format -- --ignored`).

use cati::{encode_cati1, encode_cati1_v1, is_cati1, Cati, Config};
use cati_synbin::{build_corpus, Corpus, CorpusConfig};
use std::path::PathBuf;

/// Corpus seed the fixture model was trained from. Distinct from the
/// seeds other test harnesses use, so corpus tweaks elsewhere do not
/// silently alter this fixture's provenance.
const FIXTURE_SEED: u64 = 47;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/model")
}

fn fixture_corpus() -> Corpus {
    build_corpus(&CorpusConfig::small(FIXTURE_SEED))
}

/// The deterministic tiny system the fixture records: two training
/// binaries at the small scale. Retraining reproduces it exactly
/// (engine determinism), which is what lets the golden bytes live in
/// the repository at all.
fn fixture_model(corpus: &Corpus) -> Cati {
    Cati::train(&corpus.train[..2], &Config::small(), &cati::obs::NOOP)
}

/// Predictions over the first stripped test binary, as a JSON value —
/// the comparison currency of the recorded-predictions fixture.
fn fixture_predictions(cati: &Cati, corpus: &Corpus) -> serde_json::Value {
    let stripped = corpus.test[0].binary.strip();
    let mut vars = cati.infer(&stripped).expect("fixture inference");
    vars.sort_by_key(|v| (v.key.func, v.key.offset));
    serde_json::to_value(&vars).expect("predictions to JSON")
}

#[test]
fn golden_cati1_fixture_still_loads_and_predicts_identically() {
    let dir = fixture_dir();
    let model_path = dir.join("golden.cati");
    let bytes = std::fs::read(&model_path).expect("read golden.cati (regenerate with --ignored)");
    assert!(is_cati1(&bytes), "golden fixture lost its CATI1 magic");

    let cati = Cati::load(&model_path).expect("load golden fixture");

    // The committed fixture is a v1 container — it pins the legacy
    // packed layout. Re-encoding the loaded system *as v1* must
    // reproduce the committed bytes exactly: the legacy encoder (and
    // the weights inside it) have not drifted.
    assert_eq!(
        encode_cati1_v1(&cati),
        bytes,
        "re-encoding the golden model as v1 produced different bytes — \
         legacy format drift without a version bump?"
    );

    // Upgrading it to the current v2 container must round-trip to the
    // identical system (the v1 -> v2 migration path).
    let v2 = encode_cati1(&cati);
    assert!(is_cati1(&v2));
    assert_ne!(v2, bytes, "v2 should differ from the packed v1 layout");
    assert_eq!(
        cati::decode_cati1(&v2).expect("v2 re-encode must decode"),
        cati,
        "v1 -> v2 migration changed the model"
    );

    // And the model must still say exactly what it said when the
    // fixture was recorded.
    let recorded: serde_json::Value = serde_json::from_slice(
        &std::fs::read(dir.join("golden_predictions.json")).expect("read golden_predictions.json"),
    )
    .expect("parse golden_predictions.json");
    assert_eq!(
        fixture_predictions(&cati, &fixture_corpus()),
        recorded,
        "golden model's predictions drifted from the recorded fixture"
    );
}

#[test]
fn v1_golden_migrated_to_v2_loads_zero_copy_with_identical_predictions() {
    let dir = fixture_dir();
    let cati = Cati::load(dir.join("golden.cati")).expect("load golden fixture");
    let tmp = std::env::temp_dir().join(format!("cati_v2_migrate_{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();

    // save() writes the current (v2) container; loading it back goes
    // through the mmap path.
    let v2_path = tmp.join("golden_v2.cati");
    cati.save(&v2_path).unwrap();
    let mapped = Cati::load(&v2_path).expect("v2 model must load");
    assert_eq!(mapped, cati, "v1 -> v2 migration changed the model");
    #[cfg(unix)]
    assert!(
        mapped.mapped_param_count() > 0,
        "a v2 load on unix should keep weights memory-mapped"
    );

    // The mmap-backed model predicts exactly what the recorded
    // fixture says — zero-copy weights are bit-identical weights.
    let recorded: serde_json::Value = serde_json::from_slice(
        &std::fs::read(dir.join("golden_predictions.json")).expect("read golden_predictions.json"),
    )
    .expect("parse golden_predictions.json");
    assert_eq!(
        fixture_predictions(&mapped, &fixture_corpus()),
        recorded,
        "mmap-loaded model's predictions drifted from the recorded fixture"
    );
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn json_model_migrates_to_cati1_without_changing_inference() {
    let corpus = fixture_corpus();
    let cati = fixture_model(&corpus);
    let dir = std::env::temp_dir().join(format!("cati_migrate_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // A legacy JSON model still loads through the same entry point
    // (format sniffing), bit-identical to the in-memory system.
    let json_path = dir.join("legacy.json");
    cati.save_json(&json_path).unwrap();
    let legacy = Cati::load(&json_path).expect("legacy JSON model must still load");
    assert_eq!(legacy, cati, "JSON roundtrip changed the model");

    // Migrating it: save writes CATI1, loading that gives the same
    // system back, and re-saving is byte-identical (the encoder is
    // deterministic, so migrated models diff clean).
    let cati1_path = dir.join("migrated.cati");
    legacy.save(&cati1_path).unwrap();
    let first = std::fs::read(&cati1_path).unwrap();
    assert!(is_cati1(&first), "save did not emit a CATI1 container");
    let migrated = Cati::load(&cati1_path).expect("migrated model must load");
    assert_eq!(migrated, cati, "JSON -> CATI1 migration changed the model");
    let resaved_path = dir.join("resaved.cati");
    migrated.save(&resaved_path).unwrap();
    assert_eq!(
        std::fs::read(&resaved_path).unwrap(),
        first,
        "re-saving a migrated model is not byte-identical"
    );

    // The migrated model predicts exactly what the original did.
    let stripped = corpus.test[0].binary.strip();
    assert_eq!(
        migrated.infer(&stripped).unwrap(),
        cati.infer(&stripped).unwrap(),
        "migration changed inference output"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unrecognized_model_format_reports_a_hex_preview() {
    let dir = std::env::temp_dir().join(format!("cati_badfmt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("not_a_model.bin");
    std::fs::write(&path, b"\x7fELF\x02\x01\x01\x00junk").unwrap();
    let err = Cati::load(&path).expect_err("garbage must not load");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let msg = err.to_string();
    assert!(
        msg.contains("7f") && msg.contains("expected CATI1 magic or JSON model"),
        "unrecognized-format error lacks hex preview or hint: {msg}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Regenerates the golden fixture. Run explicitly after an intended
/// format or model change:
///
/// ```sh
/// cargo test -p cati --test model_format -- --ignored
/// ```
#[test]
#[ignore = "writes tests/fixtures/model; run explicitly to regenerate"]
fn regenerate_golden_fixture() {
    let corpus = fixture_corpus();
    let cati = fixture_model(&corpus);
    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).unwrap();
    // The fixture deliberately stays a v1 container: it pins the
    // legacy packed layout and keeps the v1 decode path exercised.
    std::fs::write(dir.join("golden.cati"), encode_cati1_v1(&cati)).unwrap();
    let preds = fixture_predictions(&cati, &corpus);
    std::fs::write(
        dir.join("golden_predictions.json"),
        serde_json::to_string_pretty(&preds).unwrap(),
    )
    .unwrap();
    println!("regenerated {}", dir.display());
}
