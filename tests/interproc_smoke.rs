//! Interprocedural-context smoke: both context modes train and infer
//! end-to-end on a small multi-function corpus, and the
//! function-local output is pinned byte-for-byte against a committed
//! baseline — the whole-pipeline proof that the `ContextAssembler`
//! refactor left the paper's mode untouched. CI runs this as the
//! `interproc-smoke` step.

use cati::obs::{Recorder, RecorderConfig, NOOP};
use cati::{Cati, Config, ContextMode};
use cati_synbin::{build_corpus, Corpus, CorpusConfig};
use std::path::PathBuf;

/// Corpus seed of the committed baseline. Distinct from every other
/// fixture seed so unrelated harness tweaks never silently alter this
/// baseline's provenance.
const FIXTURE_SEED: u64 = 53;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/interproc")
}

fn fixture_corpus() -> Corpus {
    build_corpus(&CorpusConfig::small(FIXTURE_SEED))
}

fn train(corpus: &Corpus, mode: ContextMode) -> Cati {
    let config = Config::small().with_context_mode(mode);
    Cati::train(&corpus.train[..2], &config, &NOOP)
}

/// Sorted predictions over the first stripped test binary, pretty
/// JSON — the byte-for-byte comparison currency of the baseline.
fn predictions(cati: &Cati, corpus: &Corpus) -> String {
    let stripped = corpus.test[0].binary.strip();
    let mut vars = cati.infer(&stripped).expect("smoke inference");
    vars.sort_by_key(|v| (v.key.func, v.key.offset));
    serde_json::to_string_pretty(&serde_json::to_value(&vars).expect("predictions to JSON"))
        .expect("render predictions")
}

#[test]
fn function_local_output_matches_committed_baseline() {
    let corpus = fixture_corpus();
    let cati = train(&corpus, ContextMode::FunctionLocal);
    let recorded = std::fs::read_to_string(fixture_dir().join("function_local_predictions.json"))
        .expect("read function_local_predictions.json (regenerate with --ignored)");
    assert_eq!(
        predictions(&cati, &corpus),
        recorded,
        "function-local end-to-end output drifted from the committed baseline"
    );
}

#[test]
fn interproc_mode_trains_infers_and_actually_splices() {
    let corpus = fixture_corpus();
    let cati = train(&corpus, ContextMode::Interprocedural);
    assert_eq!(cati.config.context_mode, ContextMode::Interprocedural);

    // The mode round-trips through the model container.
    let dir = std::env::temp_dir().join(format!("cati_ip_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ip.cati");
    cati.save(&path).unwrap();
    let loaded = Cati::load(&path).expect("interproc model must load");
    assert_eq!(loaded.config.context_mode, ContextMode::Interprocedural);
    std::fs::remove_dir_all(&dir).ok();

    // Inference works and the extraction it runs truly splices: the
    // window counters across the test split must show spliced slots.
    let rec = Recorder::new(RecorderConfig::default());
    let mut inferred_total = 0usize;
    for built in &corpus.test {
        inferred_total += cati
            .infer_observed(&built.binary.strip(), &rec)
            .expect("interproc inference")
            .len();
    }
    assert!(inferred_total > 0, "interproc inference typed no variables");
    let spliced = rec.metrics().counter_value("extract.windows_spliced");
    assert!(
        spliced > 0,
        "no window was spliced across the whole test split"
    );
}

/// Regenerates the committed baseline. Run explicitly after an
/// intended change to the function-local pipeline:
///
/// ```sh
/// cargo test -p cati --test interproc_smoke -- --ignored
/// ```
#[test]
#[ignore = "writes tests/fixtures/interproc; run explicitly to regenerate"]
fn regenerate_function_local_baseline() {
    let corpus = fixture_corpus();
    let cati = train(&corpus, ContextMode::FunctionLocal);
    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("function_local_predictions.json"),
        predictions(&cati, &corpus),
    )
    .unwrap();
    println!("regenerated {}", dir.display());
}
