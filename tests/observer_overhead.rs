//! Overhead budget check for the telemetry layer (ignored by default;
//! run with `cargo test --release --test observer_overhead -- --ignored
//! --nocapture`): trains the same corpus under the no-op observer and
//! under a live [`Recorder`], and reports the relative cost. The
//! numbers quoted in DESIGN.md §Telemetry come from this harness.

use cati::obs::{Recorder, RecorderConfig, NOOP};
use cati::{Cati, Config};
use cati_synbin::{build_corpus, CorpusConfig};
use std::time::Instant;

#[test]
#[ignore = "timing harness; run explicitly in --release"]
fn noop_observer_overhead_is_within_budget() {
    let corpus = build_corpus(&CorpusConfig::small(2020));
    let config = Config::small();
    // Warm up (page in the corpus, JIT-free but caches matter).
    let _ = Cati::train(&corpus.train, &config, &NOOP);

    let reps = 5;
    let mut noop_s = f64::MAX;
    let mut live_s = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        let _ = Cati::train(&corpus.train, &config, &NOOP);
        noop_s = noop_s.min(t.elapsed().as_secs_f64());

        let recorder = Recorder::new(RecorderConfig::default());
        let t = Instant::now();
        let _ = Cati::train(&corpus.train, &config, &recorder);
        live_s = live_s.min(t.elapsed().as_secs_f64());
    }
    let overhead_pct = (live_s - noop_s) / noop_s * 100.0;
    println!(
        "train (best of {reps}): noop {noop_s:.3}s, live recorder {live_s:.3}s, \
         overhead {overhead_pct:+.2}%"
    );
    // The live recorder bounds the no-op cost from above: the no-op
    // path does strictly less work per event. Allow generous slack —
    // this guards against regressions like per-sample events, not
    // scheduler jitter.
    assert!(
        overhead_pct < 10.0,
        "live-recorder overhead {overhead_pct:.2}% suggests telemetry landed on a hot path"
    );
}
