//! Lowering the typed IR to x86-64 instructions.
//!
//! This module is the substitute for GCC/Clang in the CATI pipeline:
//! it emits the *per-type instruction idioms* a real compiler would —
//! width-suffixed moves, sign/zero extensions, SSE vs x87 float code,
//! `setcc` for bools, scaled effective addresses for arrays, member
//! stores for structs — together with the optimization-level and
//! compiler-profile variation the paper's corpus has. Generated code
//! is structurally plausible (prologue/epilogue, coherent def-use,
//! sane branch targets) but never executed.

use crate::ir::{BinOp, Callee, CmpOp, Cond, Function, LocalId, Operand2, Rhs, Stmt};
use crate::profile::{layout_frame, CodegenOptions, Compiler, Frame, Slot};
use cati_asm::insn::{Insn, MemRef, Operand};
use cati_asm::mnemonic::{Kind, Mnemonic};
use cati_asm::reg::{gprnum, regs, Gpr, Width, Xmm};
#[cfg(test)]
use cati_dwarf::IntWidth;
use cati_dwarf::{CType, FloatWidth, TypeTable};
use rand::rngs::StdRng;
use rand::Rng;

/// Scalar shape of a type from the code generator's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarKind {
    /// Integer-like: bool, char/short/int/long families, enums and
    /// pointers.
    Int {
        /// Storage width.
        width: Width,
        /// Whether loads sign-extend.
        signed: bool,
    },
    /// `float` — SSE scalar single.
    F32,
    /// `double` — SSE scalar double.
    F64,
    /// `long double` — x87 80-bit.
    F80,
}

impl ScalarKind {
    /// The scalar kind of a (resolved) type, or `None` for aggregates.
    pub fn of(ty: &CType) -> Option<ScalarKind> {
        Some(match ty.resolve() {
            CType::Bool => ScalarKind::Int {
                width: Width::B1,
                signed: false,
            },
            CType::Integer(w, s) => ScalarKind::Int {
                width: Width::from_bytes(w.size()).expect("int widths are powers of two"),
                signed: s.is_signed(),
            },
            CType::Enum(_) => ScalarKind::Int {
                width: Width::B4,
                signed: true,
            },
            CType::Pointer(_) => ScalarKind::Int {
                width: Width::B8,
                signed: false,
            },
            CType::Float(FloatWidth::Float) => ScalarKind::F32,
            CType::Float(FloatWidth::Double) => ScalarKind::F64,
            CType::Float(FloatWidth::LongDouble) => ScalarKind::F80,
            _ => return None,
        })
    }

    /// Width integer arithmetic is performed at (C integer promotion:
    /// sub-`int` widths promote to 32 bits).
    pub fn promoted_width(self) -> Width {
        match self {
            ScalarKind::Int {
                width: Width::B8, ..
            } => Width::B8,
            _ => Width::B4,
        }
    }
}

/// One lowered function, pending final address resolution.
#[derive(Debug, Clone)]
pub struct FuncCode {
    /// Instructions; `Addr` operands of intra-function branches are
    /// *function-relative* byte offsets until the linker rebases them.
    pub insns: Vec<Insn>,
    /// Indices of branch instructions whose `Addr` operand needs the
    /// function base address added.
    pub branch_insns: Vec<usize>,
    /// `(instruction index, callee)` pairs whose `Addr` operand must
    /// be patched with the callee's entry address.
    pub call_fixups: Vec<(usize, Callee)>,
    /// The frame layout (drives debug-info emission).
    pub frame: Frame,
}

#[derive(Debug, Clone)]
enum Item {
    Insn(Insn),
    Label(u32),
    Branch(Mnemonic, u32),
    Call(Callee),
}

struct Lower<'a> {
    func: &'a Function,
    types: &'a TypeTable,
    opts: CodegenOptions,
    frame: Frame,
    items: Vec<Item>,
    next_label: u32,
    rng: &'a mut StdRng,
}

const INT_ARG_REGS: [u8; 6] = [
    gprnum::RDI,
    gprnum::RSI,
    gprnum::RDX,
    gprnum::RCX,
    gprnum::R8,
    gprnum::R9,
];

fn mov_for(width: Width) -> Mnemonic {
    match width {
        Width::B1 => Mnemonic::MovB,
        Width::B2 => Mnemonic::MovW,
        Width::B4 => Mnemonic::MovL,
        Width::B8 => Mnemonic::MovQ,
    }
}

fn cmp_for(width: Width) -> Mnemonic {
    match width {
        Width::B1 => Mnemonic::CmpB,
        Width::B2 => Mnemonic::CmpW,
        Width::B4 => Mnemonic::CmpL,
        Width::B8 => Mnemonic::CmpQ,
    }
}

/// Load mnemonic that brings a stored value of (`width`, `signed`)
/// into a register at the promoted width.
fn load_ext_for(width: Width, signed: bool) -> Mnemonic {
    match (width, signed) {
        (Width::B1, true) => Mnemonic::Movsbl,
        (Width::B1, false) => Mnemonic::Movzbl,
        (Width::B2, true) => Mnemonic::Movswl,
        (Width::B2, false) => Mnemonic::Movzwl,
        (Width::B4, _) => Mnemonic::MovL,
        (Width::B8, _) => Mnemonic::MovQ,
    }
}

fn jcc_for(op: CmpOp, signed: bool, invert: bool) -> Mnemonic {
    let op = if invert {
        match op {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    } else {
        op
    };
    match (op, signed) {
        (CmpOp::Eq, _) => Mnemonic::Je,
        (CmpOp::Ne, _) => Mnemonic::Jne,
        (CmpOp::Lt, true) => Mnemonic::Jl,
        (CmpOp::Le, true) => Mnemonic::Jle,
        (CmpOp::Gt, true) => Mnemonic::Jg,
        (CmpOp::Ge, true) => Mnemonic::Jge,
        (CmpOp::Lt, false) => Mnemonic::Jb,
        (CmpOp::Le, false) => Mnemonic::Jbe,
        (CmpOp::Gt, false) => Mnemonic::Ja,
        (CmpOp::Ge, false) => Mnemonic::Jae,
    }
}

fn setcc_for(op: CmpOp, signed: bool) -> Mnemonic {
    match (op, signed) {
        (CmpOp::Eq, _) => Mnemonic::Sete,
        (CmpOp::Ne, _) => Mnemonic::Setne,
        (CmpOp::Lt, true) => Mnemonic::Setl,
        (CmpOp::Le, true) => Mnemonic::Setle,
        (CmpOp::Gt, true) => Mnemonic::Setg,
        (CmpOp::Ge, true) => Mnemonic::Setge,
        (CmpOp::Lt, false) => Mnemonic::Setb,
        (CmpOp::Le, false) => Mnemonic::Setbe,
        (CmpOp::Gt, false) => Mnemonic::Seta,
        (CmpOp::Ge, false) => Mnemonic::Setae,
    }
}

impl<'a> Lower<'a> {
    fn emit(&mut self, insn: Insn) {
        self.items.push(Item::Insn(insn));
    }

    fn label(&mut self) -> u32 {
        self.next_label += 1;
        self.next_label - 1
    }

    fn place(&mut self, label: u32) {
        self.items.push(Item::Label(label));
    }

    fn branch(&mut self, mn: Mnemonic, label: u32) {
        self.items.push(Item::Branch(mn, label));
    }

    fn scratch1(&self, w: Width) -> Gpr {
        Gpr::new(gprnum::RAX, w)
    }

    fn scratch2(&self, w: Width) -> Gpr {
        self.opts.compiler.scratch2().with_width(w)
    }

    fn scratch3(&self, w: Width) -> Gpr {
        self.opts.compiler.scratch3().with_width(w)
    }

    fn mem(&self, off: i32) -> MemRef {
        MemRef::base_disp(self.frame.base, off)
    }

    fn kind_of(&self, id: LocalId) -> ScalarKind {
        ScalarKind::of(&self.func.local(id).ty).unwrap_or(ScalarKind::Int {
            width: Width::B8,
            signed: false,
        })
    }

    /// `movl $0x0,%reg` (GCC) or `xor %reg,%reg` (Clang).
    fn zero_reg(&mut self, reg: Gpr) {
        match self.opts.compiler {
            Compiler::Gcc => self.emit(Insn::op2(
                mov_for(reg.width().max(Width::B4)),
                Operand::Imm(0),
                reg.with_width(reg.width().max(Width::B4)),
            )),
            Compiler::Clang => {
                let r = reg.with_width(Width::B4.max(reg.width().min(Width::B4)));
                self.emit(Insn::op2(
                    Mnemonic::XorL,
                    r.with_width(Width::B4),
                    r.with_width(Width::B4),
                ));
            }
        }
    }

    /// Loads an integer-like local into `dst` (a GPR number) at its
    /// promoted width, returning the register actually holding it.
    fn load_int(&mut self, id: LocalId, dst: Gpr) -> Gpr {
        let ScalarKind::Int { width, signed } = self.kind_of(id) else {
            panic!("load_int on non-integer local");
        };
        let pw = self.kind_of(id).promoted_width();
        let dst = dst.with_width(pw);
        match self.frame.slot(id) {
            Slot::Frame(off) => {
                let mn = load_ext_for(width, signed);
                self.emit(Insn::op2(mn, self.mem(off), dst));
            }
            Slot::Reg(r) => {
                if width < Width::B4 {
                    self.emit(Insn::op2(
                        load_ext_for(width, signed),
                        r.with_width(width),
                        dst,
                    ));
                } else {
                    self.emit(Insn::op2(mov_for(pw), r.with_width(pw), dst));
                }
            }
        }
        dst
    }

    /// Stores the value in `src` (viewed at the local's storage width)
    /// into the local.
    fn store_int(&mut self, src: Gpr, id: LocalId) {
        let ScalarKind::Int { width, .. } = self.kind_of(id) else {
            panic!("store_int on non-integer local");
        };
        match self.frame.slot(id) {
            Slot::Frame(off) => {
                self.emit(Insn::op2(
                    mov_for(width),
                    src.with_width(width),
                    self.mem(off),
                ));
            }
            Slot::Reg(r) => {
                let w = width.max(Width::B4);
                self.emit(Insn::op2(mov_for(w), src.with_width(w), r.with_width(w)));
            }
        }
    }

    /// Loads a float local into an XMM register (F32/F64) or onto the
    /// x87 stack (F80).
    fn load_float(&mut self, id: LocalId, xmm: Xmm) {
        let off = match self.frame.slot(id) {
            Slot::Frame(off) => off,
            Slot::Reg(_) => unreachable!("floats are never promoted"),
        };
        match self.kind_of(id) {
            ScalarKind::F32 => self.emit(Insn::op2(Mnemonic::Movss, self.mem(off), xmm)),
            ScalarKind::F64 => self.emit(Insn::op2(Mnemonic::Movsd, self.mem(off), xmm)),
            ScalarKind::F80 => self.emit(Insn::op1(Mnemonic::Fldt, self.mem(off))),
            ScalarKind::Int { .. } => panic!("load_float on integer local"),
        }
    }

    fn store_float(&mut self, xmm: Xmm, id: LocalId) {
        let off = match self.frame.slot(id) {
            Slot::Frame(off) => off,
            Slot::Reg(_) => unreachable!("floats are never promoted"),
        };
        match self.kind_of(id) {
            ScalarKind::F32 => self.emit(Insn::op2(Mnemonic::Movss, xmm, self.mem(off))),
            ScalarKind::F64 => self.emit(Insn::op2(Mnemonic::Movsd, xmm, self.mem(off))),
            ScalarKind::F80 => self.emit(Insn::op1(Mnemonic::Fstpt, self.mem(off))),
            ScalarKind::Int { .. } => panic!("store_float on integer local"),
        }
    }

    /// A fake `.rodata` address for float literals (`movsd 0x402010,%xmm0`).
    fn rodata_addr(&mut self) -> u64 {
        0x40_2000 + u64::from(self.rng.gen_range(0u32..0x200)) * 8
    }

    fn lower_const_store(&mut self, dst: LocalId, value: i64) {
        match self.kind_of(dst) {
            ScalarKind::Int { width, .. } => match self.frame.slot(dst) {
                Slot::Frame(off) => {
                    if width == Width::B8 && i32::try_from(value).is_err() {
                        self.emit(Insn::op2(
                            Mnemonic::MovabsQ,
                            Operand::Imm(value),
                            regs::rax(),
                        ));
                        self.emit(Insn::op2(Mnemonic::MovQ, regs::rax(), self.mem(off)));
                    } else {
                        self.emit(Insn::op2(
                            mov_for(width),
                            Operand::Imm(value),
                            self.mem(off),
                        ));
                    }
                }
                Slot::Reg(r) => {
                    if value == 0 {
                        self.zero_reg(r);
                    } else if i32::try_from(value).is_err() {
                        self.emit(Insn::op2(Mnemonic::MovabsQ, Operand::Imm(value), r));
                    } else {
                        let w = width.max(Width::B4);
                        self.emit(Insn::op2(mov_for(w), Operand::Imm(value), r.with_width(w)));
                    }
                }
            },
            ScalarKind::F32 => {
                let a = self.rodata_addr();
                self.emit(Insn::op2(Mnemonic::Movss, Operand::Abs(a), Xmm::new(0)));
                self.store_float(Xmm::new(0), dst);
            }
            ScalarKind::F64 => {
                let a = self.rodata_addr();
                self.emit(Insn::op2(Mnemonic::Movsd, Operand::Abs(a), Xmm::new(0)));
                self.store_float(Xmm::new(0), dst);
            }
            ScalarKind::F80 => {
                let mn = if value == 0 {
                    Mnemonic::Fldz
                } else {
                    Mnemonic::Fld1
                };
                self.emit(Insn::op0(mn));
                self.store_float(Xmm::new(0), dst);
            }
        }
    }

    /// Loads `op2` into the secondary scratch at width `pw`.
    fn load_operand2_int(&mut self, op: &Operand2, pw: Width, signed_hint: bool) -> Gpr {
        let s2 = self.scratch2(pw);
        match op {
            Operand2::Const(v) => {
                self.emit(Insn::op2(mov_for(pw), Operand::Imm(*v), s2));
            }
            Operand2::Local(id) => {
                let _ = signed_hint;
                let r = self.load_int(*id, self.scratch2(Width::B8));
                // Normalize to pw (load_int may produce the local's own
                // promoted width, which can differ under casts).
                // Narrowing is implicit via the sub-register; only
                // widening to B8 needs an instruction.
                if r.width() != pw && pw == Width::B8 {
                    self.emit(Insn::op0(Mnemonic::Cltq));
                }
                return self.scratch2(pw);
            }
        }
        s2
    }

    fn lower_int_binop(&mut self, dst: LocalId, op: BinOp, a: LocalId, b: &Operand2) {
        let ka = self.kind_of(a);
        let (pw, signed) = match self.kind_of(dst) {
            ScalarKind::Int { signed, .. } => (
                // Arithmetic happens at the wider of the operands'
                // promoted widths.
                self.kind_of(dst).promoted_width().max(ka.promoted_width()),
                signed,
            ),
            _ => (Width::B4, true),
        };
        let acc = self.scratch1(pw);
        let loaded = self.load_int(a, self.scratch1(Width::B8));
        if loaded.width() < pw {
            // Promote to 64-bit for pointer-width arithmetic.
            let ScalarKind::Int {
                signed: asigned, ..
            } = ka
            else {
                unreachable!()
            };
            if asigned {
                self.emit(Insn::op0(Mnemonic::Cltq));
            } else {
                self.emit(Insn::op2(
                    Mnemonic::MovL,
                    loaded.with_width(Width::B4),
                    acc.with_width(Width::B4),
                ));
            }
        }
        match op {
            BinOp::Add | BinOp::Sub | BinOp::And | BinOp::Or | BinOp::Xor => {
                let mn = match (op, pw) {
                    (BinOp::Add, Width::B8) => Mnemonic::AddQ,
                    (BinOp::Add, _) => Mnemonic::AddL,
                    (BinOp::Sub, Width::B8) => Mnemonic::SubQ,
                    (BinOp::Sub, _) => Mnemonic::SubL,
                    (BinOp::And, Width::B8) => Mnemonic::AndQ,
                    (BinOp::And, _) => Mnemonic::AndL,
                    (BinOp::Or, Width::B8) => Mnemonic::OrQ,
                    (BinOp::Or, _) => Mnemonic::OrL,
                    (BinOp::Xor, Width::B8) => Mnemonic::XorQ,
                    (BinOp::Xor, _) => Mnemonic::XorL,
                    _ => unreachable!(),
                };
                match b {
                    Operand2::Const(v) => self.emit(Insn::op2(mn, Operand::Imm(*v), acc)),
                    Operand2::Local(id) => match self.frame.slot(*id) {
                        // Fold the memory operand at -O1+ (a dereference
                        // target instruction); -O0 loads it first.
                        Slot::Frame(off) if self.opts.opt.0 >= 1 => {
                            self.emit(Insn::op2(mn, self.mem(off), acc));
                        }
                        _ => {
                            let r = self.load_operand2_int(b, pw, signed);
                            self.emit(Insn::op2(mn, r, acc));
                        }
                    },
                }
            }
            BinOp::Mul => {
                let mn = if pw == Width::B8 {
                    Mnemonic::ImulQ
                } else {
                    Mnemonic::ImulL
                };
                let r = self.load_operand2_int(b, pw, signed);
                self.emit(Insn::op2(mn, r, acc));
            }
            BinOp::Div => {
                // Dividend in rax; sign-extend or zero rdx; divisor in
                // memory, a register, or scratch3.
                if signed {
                    self.emit(Insn::op0(if pw == Width::B8 {
                        Mnemonic::Cqto
                    } else {
                        Mnemonic::Cltd
                    }));
                } else {
                    self.zero_reg(Gpr::new(gprnum::RDX, pw));
                }
                let div_mn = match (pw, signed) {
                    (Width::B8, true) => Mnemonic::IdivQ,
                    (Width::B8, false) => Mnemonic::DivQ,
                    (_, true) => Mnemonic::IdivL,
                    (_, false) => Mnemonic::DivL,
                };
                match b {
                    Operand2::Local(id) => match self.frame.slot(*id) {
                        Slot::Frame(off) => self.emit(Insn::op1(div_mn, self.mem(off))),
                        Slot::Reg(r) => self.emit(Insn::op1(div_mn, r.with_width(pw))),
                    },
                    Operand2::Const(v) => {
                        let s3 = self.scratch3(pw);
                        self.emit(Insn::op2(mov_for(pw), Operand::Imm(*v), s3));
                        self.emit(Insn::op1(div_mn, s3));
                    }
                }
            }
            BinOp::Shl | BinOp::Shr => {
                // Generator only produces constant shift amounts.
                let amount = match b {
                    Operand2::Const(v) => *v & 0x3f,
                    Operand2::Local(_) => 1,
                };
                let mn = match (op, pw, signed) {
                    (BinOp::Shl, Width::B8, _) => Mnemonic::ShlQ,
                    (BinOp::Shl, _, _) => Mnemonic::ShlL,
                    (BinOp::Shr, Width::B8, true) => Mnemonic::SarQ,
                    (BinOp::Shr, _, true) => Mnemonic::SarL,
                    (BinOp::Shr, Width::B8, false) => Mnemonic::ShrQ,
                    _ => Mnemonic::ShrL,
                };
                self.emit(Insn::op2(mn, Operand::Imm(amount), acc));
            }
        }
        self.store_int(self.scratch1(Width::B8), dst);
    }

    fn lower_float_binop(&mut self, dst: LocalId, op: BinOp, a: LocalId, b: &Operand2) {
        let kind = self.kind_of(dst);
        if kind == ScalarKind::F80 {
            self.load_float(a, Xmm::new(0));
            match b {
                Operand2::Local(id) => self.load_float(*id, Xmm::new(1)),
                Operand2::Const(_) => self.emit(Insn::op0(Mnemonic::Fld1)),
            }
            let mn = match op {
                BinOp::Add => Mnemonic::Faddp,
                BinOp::Sub => Mnemonic::Fsubp,
                BinOp::Mul => Mnemonic::Fmulp,
                _ => Mnemonic::Fdivp,
            };
            self.emit(Insn::op0(mn));
            self.store_float(Xmm::new(0), dst);
            return;
        }
        let single = kind == ScalarKind::F32;
        self.load_float(a, Xmm::new(0));
        let mn = match (op, single) {
            (BinOp::Add, true) => Mnemonic::Addss,
            (BinOp::Add, false) => Mnemonic::Addsd,
            (BinOp::Sub, true) => Mnemonic::Subss,
            (BinOp::Sub, false) => Mnemonic::Subsd,
            (BinOp::Mul, true) => Mnemonic::Mulss,
            (BinOp::Mul, false) => Mnemonic::Mulsd,
            (_, true) => Mnemonic::Divss,
            (_, false) => Mnemonic::Divsd,
        };
        match b {
            // -O1+ folds the second operand from memory.
            Operand2::Local(id) if self.opts.opt.0 >= 1 => {
                if let Slot::Frame(off) = self.frame.slot(*id) {
                    self.emit(Insn::op2(mn, self.mem(off), Xmm::new(0)));
                } else {
                    unreachable!("floats are never promoted");
                }
            }
            Operand2::Local(id) => {
                self.load_float(*id, Xmm::new(1));
                self.emit(Insn::op2(mn, Xmm::new(1), Xmm::new(0)));
            }
            Operand2::Const(_) => {
                let addr = self.rodata_addr();
                let load = if single {
                    Mnemonic::Movss
                } else {
                    Mnemonic::Movsd
                };
                self.emit(Insn::op2(load, Operand::Abs(addr), Xmm::new(1)));
                self.emit(Insn::op2(mn, Xmm::new(1), Xmm::new(0)));
            }
        }
        self.store_float(Xmm::new(0), dst);
    }

    /// Copy/cast `src` into `dst`, choosing extension or conversion
    /// instructions from the (src, dst) kind pair.
    fn lower_copy(&mut self, dst: LocalId, src: LocalId) {
        let ks = self.kind_of(src);
        let kd = self.kind_of(dst);
        match (ks, kd) {
            (ScalarKind::Int { .. }, ScalarKind::Int { width: dw, .. }) => {
                let r = self.load_int(src, self.scratch1(Width::B8));
                if dw == Width::B8 && r.width() == Width::B4 {
                    let ScalarKind::Int { signed, .. } = ks else {
                        unreachable!()
                    };
                    if signed {
                        self.emit(Insn::op0(Mnemonic::Cltq));
                    }
                }
                self.store_int(self.scratch1(Width::B8), dst);
            }
            (ScalarKind::Int { .. }, ScalarKind::F32) => {
                let r = self.load_int(src, self.scratch1(Width::B8));
                self.emit(Insn::op2(Mnemonic::Cvtsi2ss, r, Xmm::new(0)));
                self.store_float(Xmm::new(0), dst);
            }
            (ScalarKind::Int { .. }, ScalarKind::F64) => {
                let r = self.load_int(src, self.scratch1(Width::B8));
                self.emit(Insn::op2(Mnemonic::Cvtsi2sd, r, Xmm::new(0)));
                self.store_float(Xmm::new(0), dst);
            }
            (ScalarKind::F32, ScalarKind::Int { .. }) => {
                self.load_float(src, Xmm::new(0));
                self.emit(Insn::op2(
                    Mnemonic::Cvttss2si,
                    Xmm::new(0),
                    self.scratch1(Width::B4),
                ));
                self.store_int(self.scratch1(Width::B8), dst);
            }
            (ScalarKind::F64, ScalarKind::Int { .. }) => {
                self.load_float(src, Xmm::new(0));
                self.emit(Insn::op2(
                    Mnemonic::Cvttsd2si,
                    Xmm::new(0),
                    self.scratch1(Width::B4),
                ));
                self.store_int(self.scratch1(Width::B8), dst);
            }
            (ScalarKind::F32, ScalarKind::F64) => {
                self.load_float(src, Xmm::new(0));
                self.emit(Insn::op2(Mnemonic::Cvtss2sd, Xmm::new(0), Xmm::new(0)));
                self.store_float(Xmm::new(0), dst);
            }
            (ScalarKind::F64, ScalarKind::F32) => {
                self.load_float(src, Xmm::new(0));
                self.emit(Insn::op2(Mnemonic::Cvtsd2ss, Xmm::new(0), Xmm::new(0)));
                self.store_float(Xmm::new(0), dst);
            }
            (ScalarKind::F32, ScalarKind::F32) | (ScalarKind::F64, ScalarKind::F64) => {
                self.load_float(src, Xmm::new(0));
                self.store_float(Xmm::new(0), dst);
            }
            // x87 conversions: load whatever is there onto the x87
            // stack and store at the destination precision.
            (ScalarKind::F80, _) | (_, ScalarKind::F80) => {
                let src_off = match self.frame.slot(src) {
                    Slot::Frame(off) => off,
                    Slot::Reg(_) => {
                        // Integer source: go through memory-free cvt.
                        let r = self.load_int(src, self.scratch1(Width::B8));
                        self.emit(Insn::op2(Mnemonic::Cvtsi2sd, r, Xmm::new(0)));
                        self.store_float(Xmm::new(0), dst);
                        return;
                    }
                };
                let load = match ks {
                    ScalarKind::F32 => Mnemonic::Flds,
                    ScalarKind::F64 => Mnemonic::Fldl,
                    ScalarKind::F80 => Mnemonic::Fldt,
                    ScalarKind::Int { .. } => {
                        // int -> long double via x87: fild is outside the
                        // subset; emulate with a plain load idiom.
                        Mnemonic::Fldl
                    }
                };
                let dst_off = match self.frame.slot(dst) {
                    Slot::Frame(off) => Some(off),
                    // Integer destination promoted to a register:
                    // truncate through SSE instead (fistp is outside
                    // the subset), reading the source slot directly.
                    Slot::Reg(_) => None,
                };
                let Some(dst_off) = dst_off else {
                    self.emit(Insn::op2(
                        Mnemonic::Cvttsd2si,
                        self.mem(src_off),
                        self.scratch1(Width::B4),
                    ));
                    self.store_int(self.scratch1(Width::B8), dst);
                    return;
                };
                self.emit(Insn::op1(load, self.mem(src_off)));
                let store = match kd {
                    ScalarKind::F32 => Mnemonic::Fstps,
                    ScalarKind::F64 => Mnemonic::Fstpl,
                    ScalarKind::F80 => Mnemonic::Fstpt,
                    // long double -> integer kept in memory: store the
                    // truncated value at integer width via x87 pop to
                    // the slot (fistp stand-in).
                    ScalarKind::Int { .. } => Mnemonic::Fstpl,
                };
                self.emit(Insn::op1(store, self.mem(dst_off)));
            }
        }
    }

    fn typed_store_to(&mut self, mem: MemRef, ty: &CType, src: &Operand2) {
        let kind = ScalarKind::of(ty).unwrap_or(ScalarKind::Int {
            width: Width::B8,
            signed: false,
        });
        match kind {
            ScalarKind::Int { width, .. } => match src {
                Operand2::Const(v) => {
                    self.emit(Insn::op2(mov_for(width), Operand::Imm(*v), mem));
                }
                Operand2::Local(id) => {
                    let r = self.load_int(*id, self.scratch1(Width::B8));
                    self.emit(Insn::op2(mov_for(width), r.with_width(width), mem));
                }
            },
            ScalarKind::F32 | ScalarKind::F64 => {
                let mn = if kind == ScalarKind::F32 {
                    Mnemonic::Movss
                } else {
                    Mnemonic::Movsd
                };
                match src {
                    Operand2::Const(_) => {
                        let a = self.rodata_addr();
                        self.emit(Insn::op2(mn, Operand::Abs(a), Xmm::new(0)));
                    }
                    Operand2::Local(id) => self.load_float(*id, Xmm::new(0)),
                }
                self.emit(Insn::op2(mn, Xmm::new(0), mem));
            }
            ScalarKind::F80 => {
                match src {
                    Operand2::Const(_) => self.emit(Insn::op0(Mnemonic::Fld1)),
                    Operand2::Local(id) => self.load_float(*id, Xmm::new(0)),
                }
                self.emit(Insn::op1(Mnemonic::Fstpt, mem));
            }
        }
    }

    fn typed_load_from(&mut self, mem: MemRef, ty: &CType, dst: LocalId) {
        let kind = ScalarKind::of(ty).unwrap_or(ScalarKind::Int {
            width: Width::B8,
            signed: false,
        });
        match kind {
            ScalarKind::Int { width, signed } => {
                let mn = load_ext_for(width, signed);
                let pw = if width == Width::B8 {
                    Width::B8
                } else {
                    Width::B4
                };
                self.emit(Insn::op2(mn, mem, self.scratch2(pw)));
                self.store_int(self.scratch2(Width::B8), dst);
            }
            ScalarKind::F32 => {
                self.emit(Insn::op2(Mnemonic::Movss, mem, Xmm::new(0)));
                self.store_float(Xmm::new(0), dst);
            }
            ScalarKind::F64 => {
                self.emit(Insn::op2(Mnemonic::Movsd, mem, Xmm::new(0)));
                self.store_float(Xmm::new(0), dst);
            }
            ScalarKind::F80 => {
                self.emit(Insn::op1(Mnemonic::Fldt, mem));
                self.store_float(Xmm::new(0), dst);
            }
        }
    }

    /// Loads the pointer local into `%rax` and returns it.
    fn load_ptr(&mut self, ptr: LocalId) -> Gpr {
        let rax = regs::rax();
        match self.frame.slot(ptr) {
            Slot::Frame(off) => self.emit(Insn::op2(Mnemonic::MovQ, self.mem(off), rax)),
            Slot::Reg(r) => self.emit(Insn::op2(Mnemonic::MovQ, r, rax)),
        }
        rax
    }

    /// Loads an index local into scratch2 as a 64-bit value
    /// (`movslq %edx,%rdx` style) and returns the 64-bit register.
    fn load_index(&mut self, index: LocalId) -> Gpr {
        let r = self.load_int(index, self.scratch2(Width::B8));
        if r.width() == Width::B4 {
            let r64 = self.scratch2(Width::B8);
            self.emit(Insn::op2(Mnemonic::Movslq, r, r64));
            r64
        } else {
            r
        }
    }

    fn array_elem_mem(&mut self, base: LocalId, index: LocalId, elem_size: u32) -> MemRef {
        let idx = self.load_index(index);
        let Slot::Frame(off) = self.frame.slot(base) else {
            unreachable!("arrays always live in the frame");
        };
        let scale = match elem_size {
            1 | 2 | 4 | 8 => elem_size as u8,
            _ => 1,
        };
        MemRef::base_index(self.frame.base, idx, scale, off)
    }

    fn lower_cond(&mut self, cond: &Cond, target: u32, invert: bool) {
        match self.kind_of(cond.lhs) {
            ScalarKind::Int { width, signed } => {
                match (&cond.rhs, self.frame.slot(cond.lhs)) {
                    // GCC-style memory-immediate compare: the compare
                    // itself is a target instruction on the variable.
                    (Operand2::Const(v), Slot::Frame(off)) => {
                        self.emit(Insn::op2(cmp_for(width), Operand::Imm(*v), self.mem(off)));
                    }
                    _ => {
                        let pw = self.kind_of(cond.lhs).promoted_width();
                        let acc = self.load_int(cond.lhs, self.scratch1(Width::B8));
                        match &cond.rhs {
                            Operand2::Const(v) => {
                                self.emit(Insn::op2(cmp_for(pw), Operand::Imm(*v), acc))
                            }
                            Operand2::Local(id) => match self.frame.slot(*id) {
                                Slot::Frame(off) => {
                                    self.emit(Insn::op2(cmp_for(pw), self.mem(off), acc))
                                }
                                Slot::Reg(r) => {
                                    self.emit(Insn::op2(cmp_for(pw), r.with_width(pw), acc))
                                }
                            },
                        }
                    }
                }
                self.branch(jcc_for(cond.op, signed, invert), target);
            }
            ScalarKind::F32 | ScalarKind::F64 => {
                let single = self.kind_of(cond.lhs) == ScalarKind::F32;
                self.load_float(cond.lhs, Xmm::new(0));
                let cmp = if single {
                    Mnemonic::Ucomiss
                } else {
                    Mnemonic::Ucomisd
                };
                match &cond.rhs {
                    Operand2::Local(id) => {
                        if let Slot::Frame(off) = self.frame.slot(*id) {
                            self.emit(Insn::op2(cmp, self.mem(off), Xmm::new(0)));
                        }
                    }
                    Operand2::Const(_) => {
                        let a = self.rodata_addr();
                        let load = if single {
                            Mnemonic::Movss
                        } else {
                            Mnemonic::Movsd
                        };
                        self.emit(Insn::op2(load, Operand::Abs(a), Xmm::new(1)));
                        self.emit(Insn::op2(cmp, Xmm::new(1), Xmm::new(0)));
                    }
                }
                self.branch(jcc_for(cond.op, false, invert), target);
            }
            ScalarKind::F80 => {
                self.load_float(cond.lhs, Xmm::new(0));
                if let Operand2::Local(id) = &cond.rhs {
                    if self.kind_of(*id) == ScalarKind::F80 {
                        self.load_float(*id, Xmm::new(1));
                    } else {
                        self.emit(Insn::op0(Mnemonic::Fldz));
                    }
                } else {
                    self.emit(Insn::op0(Mnemonic::Fldz));
                }
                self.emit(Insn::op0(Mnemonic::Fucomip));
                self.branch(jcc_for(cond.op, false, invert), target);
            }
        }
    }

    fn lower_call(&mut self, callee: Callee, args: &[LocalId], dst: Option<LocalId>) {
        let mut int_args = 0usize;
        let mut sse_args = 0u8;
        for &arg in args {
            match self.kind_of(arg) {
                ScalarKind::Int { width, signed } => {
                    if int_args >= INT_ARG_REGS.len() {
                        continue;
                    }
                    let areg = Gpr::new(INT_ARG_REGS[int_args], Width::B8);
                    int_args += 1;
                    let pw = if width == Width::B8 {
                        Width::B8
                    } else {
                        Width::B4
                    };
                    match self.frame.slot(arg) {
                        Slot::Frame(off) => {
                            let mn = load_ext_for(width, signed);
                            self.emit(Insn::op2(mn, self.mem(off), areg.with_width(pw)));
                        }
                        Slot::Reg(r) => {
                            self.emit(Insn::op2(
                                mov_for(pw),
                                r.with_width(pw),
                                areg.with_width(pw),
                            ));
                        }
                    }
                }
                ScalarKind::F32 | ScalarKind::F64 | ScalarKind::F80 => {
                    if sse_args >= 8 {
                        continue;
                    }
                    let x = Xmm::new(sse_args);
                    sse_args += 1;
                    if self.kind_of(arg) == ScalarKind::F80 {
                        // long double passes on the stack in reality;
                        // approximate with an x87 load (context signal
                        // is what matters).
                        self.load_float(arg, x);
                    } else {
                        self.load_float(arg, x);
                    }
                }
            }
        }
        // Variadic-call convention: %eax holds the number of vector
        // registers used (GCC zeroes it with mov, Clang with xor).
        if matches!(callee, Callee::Extern(_)) && sse_args == 0 {
            self.zero_reg(regs::rax());
        }
        self.items.push(Item::Call(callee));
        if let Some(dst) = dst {
            match self.kind_of(dst) {
                ScalarKind::Int { .. } => self.store_int(regs::rax(), dst),
                ScalarKind::F32 | ScalarKind::F64 => self.store_float(Xmm::new(0), dst),
                ScalarKind::F80 => self.store_float(Xmm::new(0), dst),
            }
        }
    }

    fn lower_stmt(&mut self, stmt: &Stmt, depth: u32) {
        match stmt {
            Stmt::Assign { dst, rhs } => self.lower_assign(*dst, rhs),
            Stmt::StoreDeref { ptr, src } => {
                // Evaluate the source first so %rax can hold the pointer.
                let pointee = match self.func.local(*ptr).ty.resolve() {
                    CType::Pointer(inner) => (**inner).clone(),
                    _ => CType::int(),
                };
                let kind = ScalarKind::of(&pointee).unwrap_or(ScalarKind::Int {
                    width: Width::B8,
                    signed: false,
                });
                match (src, kind) {
                    (Operand2::Const(v), ScalarKind::Int { width, .. }) => {
                        let p = self.load_ptr(*ptr);
                        self.emit(Insn::op2(
                            mov_for(width),
                            Operand::Imm(*v),
                            MemRef::base_disp(p, 0),
                        ));
                    }
                    (Operand2::Local(id), ScalarKind::Int { width, .. }) => {
                        let r = self.load_int(*id, self.scratch2(Width::B8));
                        let _ = r;
                        let p = self.load_ptr(*ptr);
                        let s2 = self.scratch2(width);
                        self.emit(Insn::op2(mov_for(width), s2, MemRef::base_disp(p, 0)));
                    }
                    (_, ScalarKind::F32 | ScalarKind::F64) => {
                        if let Operand2::Local(id) = src {
                            self.load_float(*id, Xmm::new(0));
                        } else {
                            let a = self.rodata_addr();
                            self.emit(Insn::op2(Mnemonic::Movsd, Operand::Abs(a), Xmm::new(0)));
                        }
                        let p = self.load_ptr(*ptr);
                        let mn = if kind == ScalarKind::F32 {
                            Mnemonic::Movss
                        } else {
                            Mnemonic::Movsd
                        };
                        self.emit(Insn::op2(mn, Xmm::new(0), MemRef::base_disp(p, 0)));
                    }
                    (_, ScalarKind::F80) => {
                        if let Operand2::Local(id) = src {
                            self.load_float(*id, Xmm::new(0));
                        } else {
                            self.emit(Insn::op0(Mnemonic::Fld1));
                        }
                        let p = self.load_ptr(*ptr);
                        self.emit(Insn::op1(Mnemonic::Fstpt, MemRef::base_disp(p, 0)));
                    }
                }
            }
            Stmt::StoreMember {
                base,
                offset,
                member_ty,
                src,
            } => {
                let Slot::Frame(slot) = self.frame.slot(*base) else {
                    unreachable!("structs always live in the frame");
                };
                let mem = self.mem(slot + *offset as i32);
                self.typed_store_to(mem, member_ty, src);
            }
            Stmt::StoreMemberPtr {
                ptr,
                offset,
                member_ty,
                src,
            } => {
                // Evaluate src into scratch2/xmm first, then the pointer.
                match src {
                    Operand2::Local(id) if matches!(self.kind_of(*id), ScalarKind::Int { .. }) => {
                        let kind = ScalarKind::of(member_ty).unwrap_or(ScalarKind::Int {
                            width: Width::B4,
                            signed: true,
                        });
                        let ScalarKind::Int { width, .. } = kind else {
                            unreachable!()
                        };
                        self.load_int(*id, self.scratch2(Width::B8));
                        let p = self.load_ptr(*ptr);
                        let s2 = self.scratch2(width);
                        self.emit(Insn::op2(
                            mov_for(width),
                            s2,
                            MemRef::base_disp(p, *offset as i32),
                        ));
                    }
                    _ => {
                        let p = self.load_ptr(*ptr);
                        let mem = MemRef::base_disp(p, *offset as i32);
                        self.typed_store_to(mem, member_ty, src);
                    }
                }
            }
            Stmt::StoreIndexed {
                base,
                index,
                elem_ty,
                src,
            } => {
                let size = self.types.size_of(elem_ty).max(1);
                match src {
                    Operand2::Const(v) => {
                        let mem = self.array_elem_mem(*base, *index, size);
                        let kind = ScalarKind::of(elem_ty).unwrap_or(ScalarKind::Int {
                            width: Width::B4,
                            signed: true,
                        });
                        if let ScalarKind::Int { width, .. } = kind {
                            self.emit(Insn::op2(mov_for(width), Operand::Imm(*v), mem));
                        } else {
                            self.typed_store_to(mem, elem_ty, src);
                        }
                    }
                    Operand2::Local(id) => {
                        // Value into %rax-family, index into scratch2.
                        match ScalarKind::of(elem_ty) {
                            Some(ScalarKind::Int { width, .. }) => {
                                self.load_int(*id, self.scratch1(Width::B8));
                                let mem = self.array_elem_mem(*base, *index, size);
                                self.emit(Insn::op2(
                                    mov_for(width),
                                    self.scratch1(Width::B8).with_width(width),
                                    mem,
                                ));
                            }
                            _ => {
                                self.load_float(*id, Xmm::new(0));
                                let mem = self.array_elem_mem(*base, *index, size);
                                let mn = if ScalarKind::of(elem_ty) == Some(ScalarKind::F32) {
                                    Mnemonic::Movss
                                } else {
                                    Mnemonic::Movsd
                                };
                                self.emit(Insn::op2(mn, Xmm::new(0), mem));
                            }
                        }
                    }
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let else_l = self.label();
                let end_l = self.label();
                self.lower_cond(cond, else_l, true);
                for s in then_body {
                    self.lower_stmt(s, depth + 1);
                }
                if !else_body.is_empty() {
                    self.branch(Mnemonic::Jmp, end_l);
                }
                self.place(else_l);
                for s in else_body {
                    self.lower_stmt(s, depth + 1);
                }
                self.place(end_l);
            }
            Stmt::While { cond, body } => {
                // Unroll once at -O3 (shallow loops only).
                if self.opts.opt.unrolls() && depth == 0 && body.len() <= 4 {
                    for s in body {
                        self.lower_stmt(s, depth + 1);
                    }
                }
                // GCC shape: jmp to the condition at the bottom.
                let cond_l = self.label();
                let body_l = self.label();
                self.branch(Mnemonic::Jmp, cond_l);
                self.place(body_l);
                for s in body {
                    self.lower_stmt(s, depth + 1);
                }
                self.place(cond_l);
                self.lower_cond(cond, body_l, false);
            }
            Stmt::CallStmt { callee, args } => self.lower_call(*callee, args, None),
            Stmt::Return(val) => {
                if let Some(id) = val {
                    match self.kind_of(*id) {
                        ScalarKind::Int { .. } => {
                            self.load_int(*id, self.scratch1(Width::B8));
                        }
                        _ => self.load_float(*id, Xmm::new(0)),
                    }
                }
                self.branch(Mnemonic::Jmp, EPILOGUE_LABEL);
            }
        }
    }

    fn lower_assign(&mut self, dst: LocalId, rhs: &Rhs) {
        match rhs {
            Rhs::Const(v) => self.lower_const_store(dst, *v),
            Rhs::Local(src) => self.lower_copy(dst, *src),
            Rhs::Bin(op, a, b) => match self.kind_of(dst) {
                ScalarKind::Int { .. } => self.lower_int_binop(dst, *op, *a, b),
                _ => self.lower_float_binop(dst, *op, *a, b),
            },
            Rhs::Neg(a) => match self.kind_of(dst) {
                ScalarKind::Int { width, .. } => {
                    let r = self.load_int(*a, self.scratch1(Width::B8));
                    let mn = if width == Width::B8 {
                        Mnemonic::NegQ
                    } else {
                        Mnemonic::NegL
                    };
                    self.emit(Insn::op1(mn, r));
                    self.store_int(self.scratch1(Width::B8), dst);
                }
                ScalarKind::F80 => {
                    self.load_float(*a, Xmm::new(0));
                    self.emit(Insn::op0(Mnemonic::Fchs));
                    self.store_float(Xmm::new(0), dst);
                }
                kind => {
                    // SSE negation: xorps/xorpd with a sign mask.
                    self.load_float(*a, Xmm::new(0));
                    let mn = if kind == ScalarKind::F32 {
                        Mnemonic::Xorps
                    } else {
                        Mnemonic::Xorpd
                    };
                    self.emit(Insn::op2(mn, Xmm::new(1), Xmm::new(0)));
                    self.store_float(Xmm::new(0), dst);
                }
            },
            Rhs::Call(callee, args) => self.lower_call(*callee, args, Some(dst)),
            Rhs::AddrOf(src) => {
                let Slot::Frame(off) = self.frame.slot(*src) else {
                    unreachable!("address-taken locals are never promoted");
                };
                self.emit(Insn::op2(Mnemonic::LeaQ, self.mem(off), regs::rax()));
                self.store_int(regs::rax(), dst);
            }
            Rhs::Deref(ptr) => {
                let pointee = match self.func.local(*ptr).ty.resolve() {
                    CType::Pointer(inner) => (**inner).clone(),
                    _ => CType::int(),
                };
                let p = self.load_ptr(*ptr);
                self.typed_load_from(MemRef::base_disp(p, 0), &pointee, dst);
            }
            Rhs::MemberOfPtr(ptr, offset, member_ty) => {
                let p = self.load_ptr(*ptr);
                self.typed_load_from(
                    MemRef::base_disp(p, *offset as i32),
                    &member_ty.clone(),
                    dst,
                );
            }
            Rhs::Member(base, offset, member_ty) => {
                let Slot::Frame(slot) = self.frame.slot(*base) else {
                    unreachable!("structs always live in the frame");
                };
                let mem = self.mem(slot + *offset as i32);
                self.typed_load_from(mem, &member_ty.clone(), dst);
            }
            Rhs::LoadIndexed {
                base,
                index,
                elem_ty,
            } => {
                let size = self.types.size_of(elem_ty).max(1);
                let mem = self.array_elem_mem(*base, *index, size);
                self.typed_load_from(mem, &elem_ty.clone(), dst);
            }
            Rhs::Cmp(op, a, b) => {
                let signed = matches!(self.kind_of(*a), ScalarKind::Int { signed: true, .. });
                let pw = self.kind_of(*a).promoted_width();
                let acc = self.load_int(*a, self.scratch1(Width::B8));
                match b {
                    Operand2::Const(v) => self.emit(Insn::op2(cmp_for(pw), Operand::Imm(*v), acc)),
                    Operand2::Local(id) => match self.frame.slot(*id) {
                        Slot::Frame(off) => self.emit(Insn::op2(cmp_for(pw), self.mem(off), acc)),
                        Slot::Reg(r) => self.emit(Insn::op2(cmp_for(pw), r.with_width(pw), acc)),
                    },
                }
                let al = regs::rax().with_width(Width::B1);
                self.emit(Insn::op1(setcc_for(*op, signed), al));
                if self.opts.compiler == Compiler::Clang {
                    // Clang masks the flag byte.
                    self.emit(Insn::op2(Mnemonic::AndB, Operand::Imm(1), al));
                }
                self.store_int(regs::rax(), dst);
            }
        }
    }

    fn prologue(&mut self) {
        if self.opts.uses_frame_pointer() {
            self.emit(Insn::op1(Mnemonic::PushQ, regs::rbp()));
            self.emit(Insn::op2(Mnemonic::MovQ, regs::rsp(), regs::rbp()));
        }
        for reg in self.frame.saved.clone() {
            self.emit(Insn::op1(Mnemonic::PushQ, reg));
        }
        if self.frame.size > 0 {
            self.emit(Insn::op2(
                Mnemonic::SubQ,
                Operand::Imm(self.frame.size as i64),
                regs::rsp(),
            ));
        }
        // Move parameters to their home (frame slot or promoted reg).
        let mut int_args = 0usize;
        let mut sse_args = 0u8;
        let param_order: Vec<u32> = match self.opts.compiler {
            Compiler::Gcc => (0..self.func.num_params).collect(),
            Compiler::Clang => (0..self.func.num_params).rev().collect(),
        };
        // Argument registers are fixed by arrival order, not spill order.
        let mut arg_assignment = Vec::new();
        for i in 0..self.func.num_params {
            let id = LocalId(i);
            match self.kind_of(id) {
                ScalarKind::Int { .. } => {
                    if int_args < INT_ARG_REGS.len() {
                        arg_assignment.push(Some((false, int_args as u8)));
                        int_args += 1;
                    } else {
                        arg_assignment.push(None);
                    }
                }
                _ => {
                    if sse_args < 8 {
                        arg_assignment.push(Some((true, sse_args)));
                        sse_args += 1;
                    } else {
                        arg_assignment.push(None);
                    }
                }
            }
        }
        for i in param_order {
            let id = LocalId(i);
            let Some(Some((is_sse, n))) = arg_assignment.get(i as usize).copied() else {
                continue;
            };
            if is_sse {
                let x = Xmm::new(n);
                if let Slot::Frame(off) = self.frame.slot(id) {
                    let mn = match self.kind_of(id) {
                        ScalarKind::F32 => Mnemonic::Movss,
                        _ => Mnemonic::Movsd,
                    };
                    self.emit(Insn::op2(mn, x, self.mem(off)));
                }
            } else {
                let areg = Gpr::new(INT_ARG_REGS[n as usize], Width::B8);
                match self.frame.slot(id) {
                    Slot::Frame(off) => {
                        let ScalarKind::Int { width, .. } = self.kind_of(id) else {
                            unreachable!()
                        };
                        self.emit(Insn::op2(
                            mov_for(width),
                            areg.with_width(width),
                            self.mem(off),
                        ));
                    }
                    Slot::Reg(r) => {
                        self.emit(Insn::op2(Mnemonic::MovQ, areg, r));
                    }
                }
            }
        }
    }

    fn epilogue(&mut self) {
        self.place(EPILOGUE_LABEL);
        if self.frame.size > 0 && !self.opts.uses_frame_pointer() {
            self.emit(Insn::op2(
                Mnemonic::AddQ,
                Operand::Imm(self.frame.size as i64),
                regs::rsp(),
            ));
        }
        for reg in self.frame.saved.clone().into_iter().rev() {
            self.emit(Insn::op1(Mnemonic::PopQ, reg));
        }
        if self.opts.uses_frame_pointer() {
            self.emit(Insn::op0(Mnemonic::Leave));
        }
        self.emit(Insn::op0(Mnemonic::Ret));
    }
}

/// Label 0 is reserved for the function epilogue.
const EPILOGUE_LABEL: u32 = 0;

/// Locals whose address is taken (or that are aggregates) must keep a
/// stack slot.
fn no_promote_mask(func: &Function, types: &TypeTable) -> Vec<bool> {
    let mut mask: Vec<bool> = func
        .locals
        .iter()
        .map(|l| ScalarKind::of(&l.ty).is_none() || types.size_of(&l.ty) > 8)
        .collect();
    for stmt in func.walk_stmts() {
        if let Stmt::Assign {
            rhs: Rhs::AddrOf(src),
            ..
        } = stmt
        {
            mask[src.0 as usize] = true;
        }
    }
    mask
}

/// Approximate register read/write sets for the scheduler's
/// independence check. Flags and memory are modeled as pseudo-registers
/// 100 and 101; the x87 stack as 102.
fn rw_sets(insn: &Insn) -> (Vec<u16>, Vec<u16>) {
    const FLAGS: u16 = 100;
    const MEM: u16 = 101;
    const X87: u16 = 102;
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    let n = insn.operands.len();
    for (i, op) in insn.operands.iter().enumerate() {
        let is_dst = i + 1 == n && n == 2;
        match op {
            Operand::Reg(r) => {
                if is_dst {
                    writes.push(r.num() as u16);
                    if !matches!(
                        insn.mnemonic.kind(),
                        Kind::Move | Kind::Ext { .. } | Kind::Lea
                    ) {
                        reads.push(r.num() as u16);
                    }
                } else {
                    reads.push(r.num() as u16);
                }
            }
            Operand::Xmm(x) => {
                let id = 32 + x.num() as u16;
                if is_dst {
                    writes.push(id);
                    if !matches!(insn.mnemonic.kind(), Kind::SseMove) {
                        reads.push(id);
                    }
                } else {
                    reads.push(id);
                }
            }
            Operand::Mem(m) => {
                if let Some(b) = m.base {
                    reads.push(b.num() as u16);
                }
                if let Some((ix, _)) = m.index {
                    reads.push(ix.num() as u16);
                }
                if !matches!(insn.mnemonic.kind(), Kind::Lea) {
                    if is_dst {
                        writes.push(MEM);
                    } else {
                        reads.push(MEM);
                    }
                }
            }
            Operand::Abs(_) => reads.push(MEM),
            Operand::Imm(_) | Operand::Addr(_) => {}
        }
    }
    match insn.mnemonic.kind() {
        Kind::Arith | Kind::Compare | Kind::Unary | Kind::Shift | Kind::Mul | Kind::SseCmp => {
            writes.push(FLAGS)
        }
        Kind::Div | Kind::SignCvt => {
            reads.push(0);
            writes.push(0);
            writes.push(2);
            writes.push(FLAGS);
        }
        Kind::Jcc | Kind::SetCc => reads.push(FLAGS),
        Kind::X87Load | Kind::X87Store | Kind::X87Arith => {
            reads.push(X87);
            writes.push(X87);
        }
        Kind::Push | Kind::Pop => {
            reads.push(4);
            writes.push(4);
            writes.push(MEM);
        }
        _ => {}
    }
    // One-operand RMW forms write their single operand.
    if n == 1 {
        if let Some(Operand::Reg(r)) = insn.operands.first() {
            if matches!(insn.mnemonic.kind(), Kind::Unary | Kind::SetCc | Kind::Pop) {
                writes.push(r.num() as u16);
            }
        }
    }
    (reads, writes)
}

fn independent(a: &Insn, b: &Insn) -> bool {
    if a.mnemonic.is_control_flow() || b.mnemonic.is_control_flow() {
        return false;
    }
    let (ra, wa) = rw_sets(a);
    let (rb, wb) = rw_sets(b);
    let hit = |xs: &[u16], ys: &[u16]| xs.iter().any(|x| ys.contains(x));
    !hit(&wa, &rb) && !hit(&wa, &wb) && !hit(&wb, &ra)
}

/// Post-pass: swap adjacent independent instructions with small
/// probability, imitating `-O2` instruction scheduling.
fn schedule_jitter(items: &mut [Item], rng: &mut StdRng) {
    for i in 0..items.len().saturating_sub(1) {
        if !rng.gen_bool(0.2) {
            continue;
        }
        let (left, right) = items.split_at_mut(i + 1);
        if let (Item::Insn(a), Item::Insn(b)) = (&left[i], &right[0]) {
            if independent(a, b) {
                std::mem::swap(&mut left[i], &mut right[0]);
            }
        }
    }
}

/// Lowers one function to code.
///
/// Returned branch `Addr` operands are function-relative byte offsets;
/// see [`FuncCode`].
pub fn lower_function(
    func: &Function,
    types: &TypeTable,
    opts: CodegenOptions,
    rng: &mut StdRng,
) -> FuncCode {
    let no_promote = no_promote_mask(func, types);
    let frame = layout_frame(func, types, opts, &no_promote);
    let mut lower = Lower {
        func,
        types,
        opts,
        frame,
        items: Vec::new(),
        next_label: 1, // 0 is the epilogue
        rng,
    };
    lower.prologue();
    for stmt in &func.body {
        // Alignment padding between statements, as compilers emit
        // before hot blocks; also dilutes context windows.
        if lower.rng.gen_bool(0.04) {
            lower.emit(Insn::op0(Mnemonic::Nop));
        }
        lower.lower_stmt(stmt, 0);
    }
    lower.epilogue();

    let frame = lower.frame;
    let mut items = lower.items;
    if opts.opt.schedules() {
        schedule_jitter(&mut items, rng);
    }

    // Resolve labels: compute byte offsets, then emit final insns.
    let mut scratch = Vec::new();
    let mut offsets = Vec::with_capacity(items.len());
    let mut labels = std::collections::HashMap::new();
    let mut off = 0usize;
    for item in &items {
        offsets.push(off);
        match item {
            Item::Insn(i) => {
                scratch.clear();
                off += cati_asm::codec::encode_insn(&mut scratch, i);
            }
            Item::Label(l) => {
                labels.insert(*l, off);
            }
            Item::Branch(mn, _) => {
                scratch.clear();
                off +=
                    cati_asm::codec::encode_insn(&mut scratch, &Insn::op1(*mn, Operand::Addr(0)));
            }
            Item::Call(_) => {
                scratch.clear();
                off += cati_asm::codec::encode_insn(
                    &mut scratch,
                    &Insn::op1(Mnemonic::CallQ, Operand::Addr(0)),
                );
            }
        }
    }

    let mut insns = Vec::new();
    let mut branch_insns = Vec::new();
    let mut call_fixups = Vec::new();
    for item in items {
        match item {
            Item::Insn(i) => insns.push(i),
            Item::Label(_) => {}
            Item::Branch(mn, l) => {
                let target = labels[&l] as u64;
                branch_insns.push(insns.len());
                insns.push(Insn::op1(mn, Operand::Addr(target)));
            }
            Item::Call(callee) => {
                call_fixups.push((insns.len(), callee));
                insns.push(Insn::op1(Mnemonic::CallQ, Operand::Addr(0)));
            }
        }
    }
    FuncCode {
        insns,
        branch_insns,
        call_fixups,
        frame,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Local;
    use crate::profile::OptLevel;
    use rand::SeedableRng;

    fn lower_simple(tys: Vec<CType>, body: Vec<Stmt>, opts: CodegenOptions) -> FuncCode {
        let locals = tys
            .into_iter()
            .enumerate()
            .map(|(i, ty)| Local {
                name: format!("v{i}"),
                ty,
            })
            .collect();
        let func = Function {
            name: "f".into(),
            num_params: 0,
            locals,
            ret: None,
            body,
        };
        let types = TypeTable::new();
        let mut rng = StdRng::seed_from_u64(7);
        lower_function(&func, &types, opts, &mut rng)
    }

    fn text(code: &FuncCode) -> Vec<String> {
        code.insns.iter().map(|i| i.to_string()).collect()
    }

    const GCC_O0: CodegenOptions = CodegenOptions {
        compiler: Compiler::Gcc,
        opt: OptLevel::O0,
    };

    #[test]
    fn int_const_store_uses_movl() {
        let code = lower_simple(
            vec![CType::int()],
            vec![Stmt::Assign {
                dst: LocalId(0),
                rhs: Rhs::Const(8),
            }],
            GCC_O0,
        );
        let t = text(&code);
        assert!(
            t.iter()
                .any(|s| s.starts_with("movl $0x8,") && s.contains("(%rbp)")),
            "{t:?}"
        );
    }

    #[test]
    fn bool_cmp_materializes_setcc() {
        let code = lower_simple(
            vec![CType::Bool, CType::int()],
            vec![Stmt::Assign {
                dst: LocalId(0),
                rhs: Rhs::Cmp(CmpOp::Lt, LocalId(1), Operand2::Const(10)),
            }],
            GCC_O0,
        );
        let t = text(&code);
        assert!(t.iter().any(|s| s.starts_with("setl %al")), "{t:?}");
        assert!(t.iter().any(|s| s.starts_with("mov %al,")), "{t:?}");
    }

    #[test]
    fn char_load_sign_extends() {
        let code = lower_simple(
            vec![CType::char(), CType::char()],
            vec![Stmt::Assign {
                dst: LocalId(0),
                rhs: Rhs::Local(LocalId(1)),
            }],
            GCC_O0,
        );
        let t = text(&code);
        assert!(t.iter().any(|s| s.starts_with("movsbl ")), "{t:?}");
    }

    #[test]
    fn double_uses_sse() {
        let d = CType::Float(FloatWidth::Double);
        let code = lower_simple(
            vec![d.clone(), d.clone(), d],
            vec![Stmt::Assign {
                dst: LocalId(0),
                rhs: Rhs::Bin(BinOp::Add, LocalId(1), Operand2::Local(LocalId(2))),
            }],
            GCC_O0,
        );
        let t = text(&code);
        assert!(t.iter().any(|s| s.contains("movsd")), "{t:?}");
        assert!(t.iter().any(|s| s.contains("addsd")), "{t:?}");
    }

    #[test]
    fn long_double_uses_x87() {
        let ld = CType::Float(FloatWidth::LongDouble);
        let code = lower_simple(
            vec![ld.clone(), ld],
            vec![Stmt::Assign {
                dst: LocalId(0),
                rhs: Rhs::Local(LocalId(1)),
            }],
            GCC_O0,
        );
        let t = text(&code);
        assert!(t.iter().any(|s| s.starts_with("fldt ")), "{t:?}");
        assert!(t.iter().any(|s| s.starts_with("fstpt ")), "{t:?}");
    }

    #[test]
    fn addr_of_uses_lea() {
        let code = lower_simple(
            vec![CType::ptr_to(CType::int()), CType::int()],
            vec![Stmt::Assign {
                dst: LocalId(0),
                rhs: Rhs::AddrOf(LocalId(1)),
            }],
            GCC_O0,
        );
        let t = text(&code);
        assert!(
            t.iter()
                .any(|s| s.starts_with("lea ") && s.contains("(%rbp),%rax")),
            "{t:?}"
        );
    }

    #[test]
    fn unsigned_division_zeroes_rdx_and_uses_div() {
        let u = CType::Integer(IntWidth::Int, cati_dwarf::Signedness::Unsigned);
        let code = lower_simple(
            vec![u.clone(), u.clone(), u],
            vec![Stmt::Assign {
                dst: LocalId(0),
                rhs: Rhs::Bin(BinOp::Div, LocalId(1), Operand2::Local(LocalId(2))),
            }],
            GCC_O0,
        );
        let t = text(&code);
        assert!(t.iter().any(|s| s.starts_with("divl ")), "{t:?}");
        assert!(t.iter().any(|s| s == "mov $0x0,%edx"), "{t:?}");
    }

    #[test]
    fn signed_long_division_uses_cqto_idivq() {
        let l = CType::Integer(IntWidth::Long, cati_dwarf::Signedness::Signed);
        let code = lower_simple(
            vec![l.clone(), l.clone(), l],
            vec![Stmt::Assign {
                dst: LocalId(0),
                rhs: Rhs::Bin(BinOp::Div, LocalId(1), Operand2::Local(LocalId(2))),
            }],
            GCC_O0,
        );
        let t = text(&code);
        assert!(t.iter().any(|s| s == "cqto"), "{t:?}");
        assert!(t.iter().any(|s| s.starts_with("idivq ")), "{t:?}");
    }

    #[test]
    fn while_loop_has_backward_branch() {
        let code = lower_simple(
            vec![CType::int()],
            vec![Stmt::While {
                cond: Cond {
                    lhs: LocalId(0),
                    op: CmpOp::Lt,
                    rhs: Operand2::Const(10),
                },
                body: vec![Stmt::Assign {
                    dst: LocalId(0),
                    rhs: Rhs::Bin(BinOp::Add, LocalId(0), Operand2::Const(1)),
                }],
            }],
            GCC_O0,
        );
        assert!(!code.branch_insns.is_empty());
        // Some branch target precedes its own instruction (a back edge).
        let has_back_edge = code.branch_insns.iter().any(|&i| {
            let Some(t) = code.insns[i].target() else {
                return false;
            };
            // Compute this insn's own offset.
            let mut off = 0u64;
            let mut scratch = Vec::new();
            for insn in &code.insns[..i] {
                scratch.clear();
                off += cati_asm::codec::encode_insn(&mut scratch, insn) as u64;
            }
            t < off
        });
        assert!(has_back_edge, "expected a backward branch in a while loop");
    }

    #[test]
    fn clang_uses_xor_zeroing_and_rcx_scratch() {
        let opts = CodegenOptions {
            compiler: Compiler::Clang,
            opt: OptLevel::O0,
        };
        let code = lower_simple(
            vec![CType::int(), CType::int(), CType::int()],
            vec![
                Stmt::Assign {
                    dst: LocalId(0),
                    rhs: Rhs::Const(0),
                },
                Stmt::Assign {
                    dst: LocalId(1),
                    rhs: Rhs::Bin(BinOp::Add, LocalId(0), Operand2::Local(LocalId(2))),
                },
            ],
            opts,
        );
        // No xor at O0 for frame stores; but scratch2 is rcx for binops
        // at O0 (loads go through %ecx).
        let t = text(&code);
        assert!(
            t.iter().any(|s| s.contains("%ecx") || s.contains("%rcx")),
            "{t:?}"
        );
    }

    #[test]
    fn gcc_o2_promotes_and_schedules_deterministically() {
        let opts = CodegenOptions {
            compiler: Compiler::Gcc,
            opt: OptLevel::O2,
        };
        let body = vec![
            Stmt::Assign {
                dst: LocalId(0),
                rhs: Rhs::Const(3),
            },
            Stmt::Assign {
                dst: LocalId(1),
                rhs: Rhs::Bin(BinOp::Add, LocalId(0), Operand2::Const(4)),
            },
            Stmt::Return(Some(LocalId(1))),
        ];
        let code = lower_simple(vec![CType::int(), CType::int()], body, opts);
        // Promoted scalars: some callee-saved register appears.
        let t = text(&code);
        assert!(
            t.iter().any(|s| s.contains("%rbx")
                || s.contains("%ebx")
                || s.contains("%r12")
                || s.contains("%r13")),
            "{t:?}"
        );
        assert!(
            t.iter()
                .any(|s| s.starts_with("push %rbx") || s.contains("push %r")),
            "{t:?}"
        );
    }

    #[test]
    fn indexed_store_uses_scaled_address() {
        let arr = CType::Array(Box::new(CType::int()), 8);
        let code = lower_simple(
            vec![arr, CType::int()],
            vec![Stmt::StoreIndexed {
                base: LocalId(0),
                index: LocalId(1),
                elem_ty: CType::int(),
                src: Operand2::Const(5),
            }],
            GCC_O0,
        );
        let t = text(&code);
        assert!(t.iter().any(|s| s.contains(",4)")), "{t:?}");
        assert!(t.iter().any(|s| s.starts_with("movslq ")), "{t:?}");
    }

    #[test]
    fn epilogue_shape_matches_frame_kind() {
        let gcc_o0 = lower_simple(
            vec![CType::int()],
            vec![Stmt::Assign {
                dst: LocalId(0),
                rhs: Rhs::Const(1),
            }],
            GCC_O0,
        );
        let t0 = text(&gcc_o0);
        assert_eq!(t0.last().unwrap(), "ret");
        assert!(t0.contains(&"leave".to_string()));
        assert_eq!(t0[0], "push %rbp");

        let gcc_o1 = lower_simple(
            vec![CType::int()],
            vec![Stmt::Assign {
                dst: LocalId(0),
                rhs: Rhs::Const(1),
            }],
            CodegenOptions {
                compiler: Compiler::Gcc,
                opt: OptLevel::O1,
            },
        );
        let t1 = text(&gcc_o1);
        assert!(!t1.contains(&"leave".to_string()));
        assert!(
            t1.iter()
                .any(|s| s.starts_with("sub $") && s.contains("%rsp")),
            "{t1:?}"
        );
        assert!(t1.iter().any(|s| s.contains("(%rsp)")), "{t1:?}");
    }

    #[test]
    fn call_loads_args_into_abi_registers() {
        let code = lower_simple(
            vec![CType::int(), CType::ptr_to(CType::char())],
            vec![Stmt::CallStmt {
                callee: Callee::Extern(0),
                args: vec![LocalId(0), LocalId(1)],
            }],
            GCC_O0,
        );
        let t = text(&code);
        assert!(t.iter().any(|s| s.contains("%edi")), "{t:?}");
        assert!(t.iter().any(|s| s.contains("%rsi")), "{t:?}");
        assert_eq!(code.call_fixups.len(), 1);
    }

    #[test]
    fn scheduler_never_swaps_dependent_pairs() {
        use cati_asm::insn::Operand as Op;
        let a = Insn::op2(
            Mnemonic::MovL,
            Op::Imm(1),
            regs::rax().with_width(Width::B4),
        );
        let b = Insn::op2(
            Mnemonic::AddL,
            regs::rax().with_width(Width::B4),
            regs::rdx().with_width(Width::B4),
        );
        assert!(!independent(&a, &b));
        let c = Insn::op2(
            Mnemonic::MovL,
            Op::Imm(1),
            regs::rcx().with_width(Width::B4),
        );
        let d = Insn::op2(Mnemonic::MovQ, regs::rdi(), regs::rsi());
        assert!(independent(&c, &d));
    }
}
