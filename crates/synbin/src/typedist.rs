//! Per-application type distributions.
//!
//! The paper's corpus spans OS tools, network programs and
//! compute-heavy projects whose variable-type mixes differ strongly
//! (e.g. `R` holds >10k float-family variables while `gzip`, `nano`
//! and `sed` have none — visible in Table III's Stage 3-2 dashes).
//! Each [`AppProfile`] gives one application a type mix and size
//! parameters; the default weights approximate Table V's support
//! column.

use cati_dwarf::TypeClass;
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Sampling weights over the 19 type classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypeMix {
    weights: [f64; 19],
}

impl TypeMix {
    /// Weights approximating the paper's overall corpus (Table V
    /// support column).
    pub fn paper_default() -> TypeMix {
        // Weights are tuned so the distribution of *extracted*
        // variables matches Table V's support column: aggregates keep
        // their frame slots while hot scalars are register-promoted at
        // -O2/-O3 and disappear from the frame, so scalar classes get
        // proportionally more sampling weight than their final share.
        let mut weights = [0.0; 19];
        let set = |w: &mut [f64; 19], c: TypeClass, v: f64| w[c.index()] = v;
        set(&mut weights, TypeClass::Bool, 1.4);
        set(&mut weights, TypeClass::Struct, 2.2);
        set(&mut weights, TypeClass::Char, 4.5);
        set(&mut weights, TypeClass::UnsignedChar, 0.5);
        set(&mut weights, TypeClass::Float, 0.05);
        set(&mut weights, TypeClass::Double, 4.5);
        set(&mut weights, TypeClass::LongDouble, 0.15);
        set(&mut weights, TypeClass::Enum, 3.8);
        set(&mut weights, TypeClass::Int, 34.0);
        set(&mut weights, TypeClass::ShortInt, 0.06);
        set(&mut weights, TypeClass::LongInt, 7.0);
        set(&mut weights, TypeClass::LongLongInt, 0.04);
        set(&mut weights, TypeClass::UnsignedInt, 2.4);
        set(&mut weights, TypeClass::ShortUnsignedInt, 0.08);
        set(&mut weights, TypeClass::LongUnsignedInt, 8.0);
        set(&mut weights, TypeClass::LongLongUnsignedInt, 0.04);
        set(&mut weights, TypeClass::PtrVoid, 3.2);
        set(&mut weights, TypeClass::PtrStruct, 28.0);
        set(&mut weights, TypeClass::PtrArith, 9.0);
        TypeMix { weights }
    }

    /// Sets the weight of one class, returning `self` for chaining.
    pub fn with(mut self, class: TypeClass, weight: f64) -> TypeMix {
        self.weights[class.index()] = weight;
        self
    }

    /// Scales the whole float family (float/double/long double).
    pub fn scale_floats(mut self, factor: f64) -> TypeMix {
        for c in [TypeClass::Float, TypeClass::Double, TypeClass::LongDouble] {
            self.weights[c.index()] *= factor;
        }
        self
    }

    /// The weight of a class.
    pub fn weight(&self, class: TypeClass) -> f64 {
        self.weights[class.index()]
    }

    /// Samples a class.
    ///
    /// # Panics
    ///
    /// Panics if every weight is zero.
    pub fn sample(&self, rng: &mut StdRng) -> TypeClass {
        let dist = WeightedIndex::new(self.weights.iter().map(|w| w.max(0.0)))
            .expect("at least one positive weight");
        TypeClass::ALL[dist.sample(rng)]
    }
}

/// Size and shape parameters of one synthetic application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Application name (matches the paper's test-set naming).
    pub name: String,
    /// Type mix of its variables.
    pub mix: TypeMix,
    /// Number of binaries (translation units) in the application.
    pub binaries: u32,
    /// Functions per binary.
    pub functions_per_binary: u32,
    /// Mean locals per function.
    pub locals_per_function: u32,
    /// Mean statement episodes per function.
    pub episodes_per_function: u32,
    /// Probability that a statement episode is a call episode
    /// (argument registers loaded from frame slots, a return value
    /// stored back). 0.12 reproduces the historical corpora
    /// byte-for-byte; interprocedural-context experiments raise it
    /// with [`AppProfile::with_call_density`] to densify cross-call
    /// data flow.
    pub call_density: f64,
}

impl AppProfile {
    /// A medium-sized application with the default mix.
    pub fn new(name: impl Into<String>) -> AppProfile {
        AppProfile {
            name: name.into(),
            mix: TypeMix::paper_default(),
            binaries: 2,
            functions_per_binary: 12,
            locals_per_function: 7,
            episodes_per_function: 18,
            call_density: 0.12,
        }
    }

    /// This profile with a different call-episode probability.
    pub fn with_call_density(mut self, p: f64) -> AppProfile {
        self.call_density = p;
        self
    }

    /// The 12 test applications of paper Tables III/IV/VI, with mixes
    /// tuned to the paper's observations (R float-heavy; gzip, nano
    /// and sed float-free; inetutils largest).
    pub fn test_apps() -> Vec<AppProfile> {
        let base = TypeMix::paper_default;
        vec![
            AppProfile {
                binaries: 3,
                ..AppProfile {
                    mix: base(),
                    ..AppProfile::new("bash")
                }
            },
            AppProfile::new("bison"),
            AppProfile {
                binaries: 1,
                ..AppProfile {
                    mix: base().scale_floats(0.3),
                    ..AppProfile::new("cflow")
                }
            },
            AppProfile {
                binaries: 3,
                ..AppProfile {
                    mix: base(),
                    ..AppProfile::new("gawk")
                }
            },
            AppProfile {
                mix: base()
                    .with(TypeClass::PtrArith, 14.0)
                    .with(TypeClass::Char, 6.0),
                ..AppProfile::new("grep")
            },
            AppProfile {
                binaries: 1,
                functions_per_binary: 8,
                ..AppProfile {
                    mix: base().scale_floats(0.0),
                    ..AppProfile::new("gzip")
                }
            },
            AppProfile {
                binaries: 5,
                ..AppProfile {
                    mix: base()
                        .with(TypeClass::Struct, 10.0)
                        .with(TypeClass::PtrStruct, 36.0),
                    ..AppProfile::new("inetutils")
                }
            },
            AppProfile {
                binaries: 1,
                ..AppProfile {
                    mix: base().scale_floats(0.2),
                    ..AppProfile::new("less")
                }
            },
            AppProfile {
                binaries: 1,
                ..AppProfile {
                    mix: base().scale_floats(0.0),
                    ..AppProfile::new("nano")
                }
            },
            AppProfile {
                binaries: 8,
                functions_per_binary: 16,
                ..AppProfile {
                    mix: base()
                        .with(TypeClass::Float, 1.0)
                        .with(TypeClass::Double, 16.0)
                        .with(TypeClass::LongDouble, 0.4),
                    ..AppProfile::new("R")
                }
            },
            AppProfile {
                binaries: 1,
                ..AppProfile {
                    mix: base().scale_floats(0.0),
                    ..AppProfile::new("sed")
                }
            },
            AppProfile {
                binaries: 2,
                ..AppProfile {
                    mix: base().with(TypeClass::PtrArith, 12.0),
                    ..AppProfile::new("wget")
                }
            },
        ]
    }

    /// Training-project profiles (paper §VII-A: GCC, coreutils,
    /// binutils, php, nginx, xpdf, zlib, Python, ...). `count` scales
    /// how many of the pool to use.
    pub fn training_projects(count: usize) -> Vec<AppProfile> {
        let base = TypeMix::paper_default;
        let pool: Vec<AppProfile> = vec![
            AppProfile {
                binaries: 4,
                ..AppProfile::new("coreutils")
            },
            AppProfile {
                binaries: 4,
                ..AppProfile::new("binutils")
            },
            AppProfile {
                binaries: 4,
                ..AppProfile {
                    mix: base().with(TypeClass::Enum, 5.0),
                    ..AppProfile::new("gcc")
                }
            },
            AppProfile {
                binaries: 3,
                ..AppProfile {
                    mix: base().with(TypeClass::PtrStruct, 36.0),
                    ..AppProfile::new("php")
                }
            },
            AppProfile {
                binaries: 2,
                ..AppProfile {
                    mix: base().with(TypeClass::Struct, 9.0),
                    ..AppProfile::new("nginx")
                }
            },
            AppProfile {
                binaries: 2,
                ..AppProfile {
                    mix: base()
                        .with(TypeClass::Double, 10.0)
                        .with(TypeClass::Float, 0.6),
                    ..AppProfile::new("xpdf")
                }
            },
            AppProfile {
                binaries: 1,
                ..AppProfile {
                    mix: base()
                        .with(TypeClass::UnsignedInt, 6.0)
                        .with(TypeClass::LongUnsignedInt, 9.0),
                    ..AppProfile::new("zlib")
                }
            },
            AppProfile {
                binaries: 4,
                ..AppProfile {
                    mix: base()
                        .with(TypeClass::Double, 8.0)
                        .with(TypeClass::Float, 0.5),
                    ..AppProfile::new("python")
                }
            },
            AppProfile {
                binaries: 3,
                ..AppProfile {
                    mix: base().with(TypeClass::Double, 14.0),
                    ..AppProfile::new("r-base")
                }
            },
            AppProfile {
                binaries: 2,
                ..AppProfile {
                    mix: base().scale_floats(0.1),
                    ..AppProfile::new("findutils")
                }
            },
            AppProfile {
                binaries: 2,
                ..AppProfile {
                    mix: base().with(TypeClass::Char, 5.0),
                    ..AppProfile::new("diffutils")
                }
            },
            AppProfile {
                binaries: 2,
                ..AppProfile {
                    mix: base().with(TypeClass::Bool, 3.0),
                    ..AppProfile::new("tar")
                }
            },
        ];
        pool.into_iter().cycle().take(count).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn default_mix_samples_every_common_class() {
        let mix = TypeMix::paper_default();
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20_000 {
            seen.insert(mix.sample(&mut rng));
        }
        for c in [
            TypeClass::Int,
            TypeClass::PtrStruct,
            TypeClass::Struct,
            TypeClass::Bool,
            TypeClass::Double,
            TypeClass::Char,
            TypeClass::Enum,
        ] {
            assert!(seen.contains(&c), "never sampled {c}");
        }
    }

    #[test]
    fn float_free_apps_have_zero_float_weight() {
        let apps = AppProfile::test_apps();
        for name in ["gzip", "nano", "sed"] {
            let app = apps.iter().find(|a| a.name == name).unwrap();
            assert_eq!(app.mix.weight(TypeClass::Float), 0.0);
            assert_eq!(app.mix.weight(TypeClass::Double), 0.0);
        }
        let r = apps.iter().find(|a| a.name == "R").unwrap();
        assert!(r.mix.weight(TypeClass::Double) > 10.0);
    }

    #[test]
    fn twelve_test_apps_match_paper() {
        let apps = AppProfile::test_apps();
        assert_eq!(apps.len(), 12);
        let names: Vec<&str> = apps.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "bash",
                "bison",
                "cflow",
                "gawk",
                "grep",
                "gzip",
                "inetutils",
                "less",
                "nano",
                "R",
                "sed",
                "wget"
            ]
        );
    }

    #[test]
    fn training_pool_cycles() {
        assert_eq!(AppProfile::training_projects(30).len(), 30);
        assert!(AppProfile::training_projects(3).len() == 3);
    }
}
