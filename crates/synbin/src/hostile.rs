//! Seeded corruption engine for robustness testing.
//!
//! Real stripped binaries are not merely unlabeled — they are packed,
//! truncated by transfer errors, patched by hand, protected by
//! deliberate anti-disassembly, and shipped with debug info that lies.
//! This module manufactures those conditions on demand: each
//! [`MutationKind`] is one corruption family, and [`mutate`] applies
//! it deterministically from a seed, returning both the damaged binary
//! and a machine-readable [`Mutation`] record that is sufficient to
//! regenerate the exact mutant (kind + seed + the source binary).
//!
//! The engine is the input half of the fuzz harness: `cati fuzz`
//! drives these mutators against the full pipeline and demands typed
//! errors or degraded-but-honest partial results — never panics.

use cati_asm::binary::{Binary, Symbol};
use cati_asm::codec;
use cati_asm::mnemonic::Mnemonic;
use cati_dwarf::{CType, DebugInfo};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One family of hostile-input corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MutationKind {
    /// Cut the text section short, ending it mid-instruction.
    TruncateText,
    /// Flip random bits anywhere in the text section.
    FlipBytes,
    /// Overwrite opcode bytes at instruction boundaries with bytes no
    /// mnemonic uses.
    SpliceOpcode,
    /// Insert bytes mid-stream, desynchronizing every later
    /// instruction from the symbol table's idea of where code lives.
    Desync,
    /// Forge symbols: lengths that spill into neighbours, entries
    /// pointing outside the text section, overlaps.
    ForgeSymbols,
    /// Duplicate and alias existing symbols.
    DuplicateSymbols,
    /// Flip random bits in the serialized debug section.
    CorruptDebug,
    /// Semantically corrupt parseable debug info so it *lies*:
    /// dangling type references, absurd array counts.
    LyingDebug,
    /// Cut the debug section short.
    TruncateDebug,
    /// Append junk bytes past the last symbol's end.
    JunkPadding,
}

impl MutationKind {
    /// Every corruption family, in a fixed order (the fuzz loop cycles
    /// through this).
    pub const ALL: [MutationKind; 10] = [
        MutationKind::TruncateText,
        MutationKind::FlipBytes,
        MutationKind::SpliceOpcode,
        MutationKind::Desync,
        MutationKind::ForgeSymbols,
        MutationKind::DuplicateSymbols,
        MutationKind::CorruptDebug,
        MutationKind::LyingDebug,
        MutationKind::TruncateDebug,
        MutationKind::JunkPadding,
    ];

    /// Stable lowercase identifier, used in reproducer files.
    pub fn name(self) -> &'static str {
        match self {
            MutationKind::TruncateText => "truncate-text",
            MutationKind::FlipBytes => "flip-bytes",
            MutationKind::SpliceOpcode => "splice-opcode",
            MutationKind::Desync => "desync",
            MutationKind::ForgeSymbols => "forge-symbols",
            MutationKind::DuplicateSymbols => "duplicate-symbols",
            MutationKind::CorruptDebug => "corrupt-debug",
            MutationKind::LyingDebug => "lying-debug",
            MutationKind::TruncateDebug => "truncate-debug",
            MutationKind::JunkPadding => "junk-padding",
        }
    }

    /// Parses [`MutationKind::name`] back into a kind.
    pub fn from_name(name: &str) -> Option<MutationKind> {
        MutationKind::ALL.iter().copied().find(|k| k.name() == name)
    }
}

impl fmt::Display for MutationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Machine-readable record of one applied mutation. Together with the
/// source binary, `(kind, seed)` regenerates the mutant exactly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mutation {
    /// The corruption family applied.
    pub kind: MutationKind,
    /// Seed the mutator ran with.
    pub seed: u64,
    /// Name of the binary that was mutated.
    pub binary: String,
    /// What exactly was damaged (offsets, counts, values).
    pub detail: String,
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} seed={} on {}: {}",
            self.kind, self.seed, self.binary, self.detail
        )
    }
}

/// The smallest byte value that is not a valid opcode.
fn first_invalid_opcode() -> u8 {
    debug_assert!(
        Mnemonic::ALL.len() < 0x100,
        "need at least one invalid byte"
    );
    Mnemonic::ALL.len().min(0xFF) as u8
}

/// Applies `kind` to a copy of `binary`, deterministically from
/// `seed`. The source binary is never modified; the returned
/// [`Mutation`] describes the damage.
pub fn mutate(binary: &Binary, kind: MutationKind, seed: u64) -> (Binary, Mutation) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = binary.clone();
    let detail = match kind {
        MutationKind::TruncateText => truncate_text(&mut out, &mut rng),
        MutationKind::FlipBytes => flip_bytes(&mut out, &mut rng),
        MutationKind::SpliceOpcode => splice_opcode(&mut out, &mut rng),
        MutationKind::Desync => desync(&mut out, &mut rng),
        MutationKind::ForgeSymbols => forge_symbols(&mut out, &mut rng),
        MutationKind::DuplicateSymbols => duplicate_symbols(&mut out, &mut rng),
        MutationKind::CorruptDebug => corrupt_debug(&mut out, &mut rng),
        MutationKind::LyingDebug => lying_debug(&mut out, &mut rng),
        MutationKind::TruncateDebug => truncate_debug(&mut out, &mut rng),
        MutationKind::JunkPadding => junk_padding(&mut out, &mut rng),
    };
    let mutation = Mutation {
        kind,
        seed,
        binary: binary.name.clone(),
        detail,
    };
    (out, mutation)
}

fn truncate_text(bin: &mut Binary, rng: &mut StdRng) -> String {
    if bin.text.is_empty() {
        return "text already empty; unchanged".into();
    }
    let keep = rng.gen_range(0..bin.text.len());
    bin.text.truncate(keep);
    format!("text truncated to {keep} byte(s)")
}

fn flip_bytes(bin: &mut Binary, rng: &mut StdRng) -> String {
    if bin.text.is_empty() {
        return "text empty; unchanged".into();
    }
    let n = rng.gen_range(1..=8usize);
    let mut sites = Vec::with_capacity(n);
    for _ in 0..n {
        let at = rng.gen_range(0..bin.text.len());
        let bit = rng.gen_range(0..8u8);
        bin.text[at] ^= 1 << bit;
        sites.push(format!("{at}:{bit}"));
    }
    format!("flipped {n} bit(s) at offset:bit {}", sites.join(","))
}

fn splice_opcode(bin: &mut Binary, rng: &mut StdRng) -> String {
    if bin.text.is_empty() {
        return "text empty; unchanged".into();
    }
    // Prefer real instruction boundaries so the splice lands on an
    // opcode position; on undecodable input fall back to random sites.
    let boundaries: Vec<usize> = match codec::linear_sweep(&bin.text, bin.text_base) {
        Ok(insns) => insns
            .iter()
            .map(|l| (l.addr - bin.text_base) as usize)
            .collect(),
        Err(_) => Vec::new(),
    };
    let lo = u32::from(first_invalid_opcode());
    let n = rng.gen_range(1..=3usize);
    let mut sites = Vec::with_capacity(n);
    for _ in 0..n {
        let at = if boundaries.is_empty() {
            rng.gen_range(0..bin.text.len())
        } else {
            boundaries[rng.gen_range(0..boundaries.len())]
        };
        let byte = rng.gen_range(lo..256) as u8;
        bin.text[at] = byte;
        sites.push(format!("{at}=0x{byte:02x}"));
    }
    format!("spliced {n} invalid opcode(s) at {}", sites.join(","))
}

fn desync(bin: &mut Binary, rng: &mut StdRng) -> String {
    if bin.text.is_empty() {
        return "text empty; unchanged".into();
    }
    let at = rng.gen_range(0..bin.text.len());
    let n = rng.gen_range(1..=3usize);
    let inserted: Vec<u8> = (0..n).map(|_| rng.gen_range(0..=255u32) as u8).collect();
    for (i, b) in inserted.iter().enumerate() {
        bin.text.insert(at + i, *b);
    }
    // Symbols are left pointing at the old addresses — that is the
    // point: every instruction after the insertion is desynchronized
    // from the metadata.
    format!("inserted {n} byte(s) at offset {at}; symbols left stale")
}

fn forge_symbols(bin: &mut Binary, rng: &mut StdRng) -> String {
    let mut actions = Vec::new();
    if let Some(i) = pick_index(bin.symbols.len(), rng) {
        let spill = rng.gen_range(1..64u64);
        bin.symbols[i].len += spill;
        actions.push(format!("symbol#{i} len +{spill} (spills)"));
    }
    let ghost_addr = bin.text_base + bin.text.len() as u64 + rng.gen_range(0..4096u64);
    let ghost_len = rng.gen_range(1..128u64);
    bin.symbols.push(Symbol {
        name: "forged_ghost".into(),
        addr: ghost_addr,
        len: ghost_len,
    });
    actions.push(format!(
        "ghost symbol @{ghost_addr:#x}+{ghost_len} beyond text"
    ));
    if let Some(i) = pick_index(bin.symbols.len().saturating_sub(1), rng) {
        let base = &bin.symbols[i];
        let overlap = Symbol {
            name: "forged_overlap".into(),
            addr: base.addr + base.len / 2,
            len: base.len.max(2),
        };
        actions.push(format!(
            "overlap symbol @{:#x}+{} inside symbol#{i}",
            overlap.addr, overlap.len
        ));
        bin.symbols.push(overlap);
    }
    actions.join("; ")
}

fn duplicate_symbols(bin: &mut Binary, rng: &mut StdRng) -> String {
    if bin.symbols.is_empty() {
        return "no symbols; unchanged".into();
    }
    let n = rng.gen_range(1..=2usize).min(bin.symbols.len());
    let mut actions = Vec::with_capacity(n * 2);
    for _ in 0..n {
        let i = rng.gen_range(0..bin.symbols.len());
        let dup = bin.symbols[i].clone();
        actions.push(format!("duplicated symbol#{i} ({})", dup.name));
        bin.symbols.push(dup);
        let mut alias = bin.symbols[i].clone();
        alias.name = format!("{}__alias", alias.name);
        alias.len = alias.len.saturating_add(rng.gen_range(0..8u64));
        actions.push(format!("aliased symbol#{i} as {}", alias.name));
        bin.symbols.push(alias);
    }
    actions.join("; ")
}

fn corrupt_debug(bin: &mut Binary, rng: &mut StdRng) -> String {
    let Some(debug) = bin.debug.as_mut() else {
        return "no debug section; unchanged".into();
    };
    if debug.is_empty() {
        return "debug section empty; unchanged".into();
    }
    let n = rng.gen_range(1..=8usize);
    let mut sites = Vec::with_capacity(n);
    for _ in 0..n {
        let at = rng.gen_range(0..debug.len());
        let bit = rng.gen_range(0..8u8);
        debug[at] ^= 1 << bit;
        sites.push(format!("{at}:{bit}"));
    }
    format!("flipped {n} debug bit(s) at offset:bit {}", sites.join(","))
}

fn lying_debug(bin: &mut Binary, rng: &mut StdRng) -> String {
    let Some(bytes) = bin.debug.as_ref() else {
        return "no debug section; unchanged".into();
    };
    let Ok(mut di) = DebugInfo::parse(bytes) else {
        // Already unparseable: fall back to making it worse.
        return corrupt_debug(bin, rng);
    };
    let lie = rng.gen_range(0..3u8);
    let detail = match lie {
        0 => {
            // Point a variable's type outside the definition tables.
            let dangling = di.types.structs.len() as u32 + rng.gen_range(1..100u32);
            let target = di
                .functions
                .iter_mut()
                .flat_map(|f| f.vars.iter_mut())
                .next();
            match target {
                Some(var) => {
                    var.ty = CType::Struct(dangling);
                    format!("first variable retyped to dangling struct#{dangling}")
                }
                None => "no variables to retype; unchanged".into(),
            }
        }
        1 => {
            // Declare an array so large its size computation would
            // overflow a careless implementation.
            let count = u32::MAX - rng.gen_range(0..16u32);
            let target = di
                .functions
                .iter_mut()
                .flat_map(|f| f.vars.iter_mut())
                .next();
            match target {
                Some(var) => {
                    var.ty = CType::Array(Box::new(var.ty.clone()), count);
                    format!("first variable wrapped in absurd array[{count}]")
                }
                None => "no variables to retype; unchanged".into(),
            }
        }
        _ => {
            // Corrupt a struct member to reference a missing union.
            let dangling = di.types.structs.len() as u32 + rng.gen_range(1..100u32);
            let target = di
                .types
                .structs
                .iter_mut()
                .flat_map(|s| s.members.iter_mut())
                .next();
            match target {
                Some(member) => {
                    member.ty = CType::Union(dangling);
                    format!("first struct member retyped to dangling union#{dangling}")
                }
                None => "no struct members to corrupt; unchanged".into(),
            }
        }
    };
    bin.debug = Some(di.to_bytes());
    detail
}

fn truncate_debug(bin: &mut Binary, rng: &mut StdRng) -> String {
    let Some(debug) = bin.debug.as_mut() else {
        return "no debug section; unchanged".into();
    };
    if debug.is_empty() {
        return "debug section empty; unchanged".into();
    }
    let keep = rng.gen_range(0..debug.len());
    debug.truncate(keep);
    format!("debug section truncated to {keep} byte(s)")
}

fn junk_padding(bin: &mut Binary, rng: &mut StdRng) -> String {
    let lo = u32::from(first_invalid_opcode());
    let n = rng.gen_range(1..=16usize);
    let junk: Vec<u8> = (0..n).map(|_| rng.gen_range(lo..256) as u8).collect();
    bin.text.extend_from_slice(&junk);
    format!("appended {n} junk byte(s) past the last symbol")
}

fn pick_index(len: usize, rng: &mut StdRng) -> Option<usize> {
    (len > 0).then(|| rng.gen_range(0..len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::build_app;
    use crate::profile::{CodegenOptions, Compiler, OptLevel};
    use crate::typedist::AppProfile;

    fn sample() -> Binary {
        let mut rng = StdRng::seed_from_u64(77);
        let opts = CodegenOptions {
            compiler: Compiler::Gcc,
            opt: OptLevel::O0,
        };
        build_app(&AppProfile::new("hostile"), opts, 0.5, &mut rng)
            .remove(0)
            .binary
    }

    #[test]
    fn every_kind_is_deterministic_and_described() {
        let bin = sample();
        for kind in MutationKind::ALL {
            for seed in [0u64, 1, 99] {
                let (a, ma) = mutate(&bin, kind, seed);
                let (b, mb) = mutate(&bin, kind, seed);
                assert_eq!(a, b, "{kind} seed {seed} not deterministic");
                assert_eq!(ma, mb);
                assert!(!ma.detail.is_empty(), "{kind} gave empty detail");
                assert_eq!(ma.kind, kind);
                assert_eq!(ma.seed, seed);
            }
        }
    }

    #[test]
    fn mutations_change_the_binary() {
        // Every family must actually damage this (debug-carrying,
        // symbol-carrying) binary for at least one seed.
        let bin = sample();
        for kind in MutationKind::ALL {
            let changed = (0..10u64).any(|seed| mutate(&bin, kind, seed).0 != bin);
            assert!(changed, "{kind} never changed the binary in 10 seeds");
        }
    }

    #[test]
    fn source_binary_is_untouched() {
        let bin = sample();
        let copy = bin.clone();
        for kind in MutationKind::ALL {
            let _ = mutate(&bin, kind, 3);
        }
        assert_eq!(bin, copy);
    }

    #[test]
    fn kind_names_roundtrip() {
        for kind in MutationKind::ALL {
            assert_eq!(MutationKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(MutationKind::from_name("nonsense"), None);
    }

    #[test]
    fn splice_makes_text_undecodable() {
        let bin = sample();
        let (mutant, _) = mutate(&bin, MutationKind::SpliceOpcode, 5);
        assert!(codec::linear_sweep(&mutant.text, mutant.text_base).is_err());
    }

    #[test]
    fn lying_debug_still_serializes() {
        let bin = sample();
        let mut lied = 0;
        for seed in 0..12u64 {
            let (mutant, m) = mutate(&bin, MutationKind::LyingDebug, seed);
            let debug = mutant.debug.expect("debug kept");
            if m.detail.contains("unchanged") {
                continue;
            }
            lied += 1;
            // The lie is either caught by parse-time validation
            // (dangling refs) or survives as an absurd-but-parseable
            // section; both are fair game for the pipeline.
            let _ = DebugInfo::parse(&debug);
        }
        assert!(lied >= 3, "lying mutator rarely fired ({lied}/12)");
    }
}
