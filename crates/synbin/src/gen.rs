//! Random typed-program generation.
//!
//! Programs are generated episode by episode so that the *same-type
//! variable clustering phenomenon* (paper §II-B) arises the way it
//! does in real code: struct initialization bursts, arithmetic
//! sequences on one variable, array-fill loops. Single-use temporaries
//! are common, reproducing the paper's *orphan variable* population
//! (~35% of variables with ≤2 related instructions).

use crate::ir::{
    BinOp, Callee, CmpOp, Cond, ExternFunc, FuncId, Function, Local, LocalId, Operand2, Program,
    Rhs, Stmt,
};
use crate::typedist::AppProfile;
use cati_dwarf::{
    CType, EnumDef, FloatWidth, IntWidth, Signedness, StructDef, TypeClass, TypeTable,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// External routines every generated program may call.
pub const EXTERN_POOL: [&str; 10] = [
    "malloc", "free", "memcpy", "memset", "strlen", "strcmp", "printf", "memchr", "realloc",
    "calloc",
];

const TYPEDEF_NAMES: [&str; 10] = [
    "size_t", "ssize_t", "byte", "uint32", "u64", "word_t", "offset_t", "count_t", "idx_t",
    "flag_t",
];

const FUNC_VERBS: [&str; 12] = [
    "parse", "update", "check", "emit", "scan", "map", "read", "write", "init", "flush", "hash",
    "merge",
];
const FUNC_NOUNS: [&str; 12] = [
    "header", "state", "buffer", "table", "node", "entry", "block", "token", "frame", "chunk",
    "record", "option",
];

fn scalar_pool(rng: &mut StdRng) -> CType {
    match rng.gen_range(0..8) {
        0 => CType::char(),
        1 => CType::Integer(IntWidth::Int, Signedness::Unsigned),
        2 => CType::Integer(IntWidth::Long, Signedness::Signed),
        3 => CType::Bool,
        4 => CType::Float(FloatWidth::Double),
        5 => CType::Integer(IntWidth::Short, Signedness::Signed),
        _ => CType::int(),
    }
}

fn random_struct(idx: usize, rng: &mut StdRng) -> StructDef {
    let n = rng.gen_range(2..=6);
    let mut members = Vec::with_capacity(n);
    for m in 0..n {
        let ty = match rng.gen_range(0..10) {
            0 => CType::ptr_to(CType::char()),
            1 => CType::ptr_to(CType::Void),
            2 => CType::Array(Box::new(CType::char()), rng.gen_range(4..=32)),
            _ => scalar_pool(rng),
        };
        members.push((format!("m{m}"), ty));
    }
    StructDef::layout(format!("s{idx}"), members)
}

fn random_enum(idx: usize, rng: &mut StdRng) -> EnumDef {
    let n = rng.gen_range(2..=6);
    EnumDef {
        name: format!("e{idx}"),
        variants: (0..n).map(|v| format!("E{idx}_V{v}")).collect(),
    }
}

/// Realizes a sampled class into a concrete type, occasionally wrapped
/// in typedef chains (which the labeler must resolve) or turned into
/// an array.
fn realize(class: TypeClass, n_structs: u32, n_enums: u32, rng: &mut StdRng) -> CType {
    let base = match class {
        TypeClass::Bool => CType::Bool,
        TypeClass::Char => {
            if rng.gen_bool(0.3) {
                CType::Array(Box::new(CType::char()), rng.gen_range(8..=64))
            } else {
                CType::char()
            }
        }
        TypeClass::UnsignedChar => CType::Integer(IntWidth::Char, Signedness::Unsigned),
        TypeClass::ShortInt => CType::Integer(IntWidth::Short, Signedness::Signed),
        TypeClass::ShortUnsignedInt => CType::Integer(IntWidth::Short, Signedness::Unsigned),
        TypeClass::Int => {
            if rng.gen_bool(0.08) {
                CType::Array(Box::new(CType::int()), rng.gen_range(4..=16))
            } else {
                CType::int()
            }
        }
        TypeClass::UnsignedInt => CType::Integer(IntWidth::Int, Signedness::Unsigned),
        TypeClass::LongInt => CType::Integer(IntWidth::Long, Signedness::Signed),
        TypeClass::LongUnsignedInt => CType::Integer(IntWidth::Long, Signedness::Unsigned),
        TypeClass::LongLongInt => CType::Integer(IntWidth::LongLong, Signedness::Signed),
        TypeClass::LongLongUnsignedInt => CType::Integer(IntWidth::LongLong, Signedness::Unsigned),
        TypeClass::Float => CType::Float(FloatWidth::Float),
        TypeClass::Double => CType::Float(FloatWidth::Double),
        TypeClass::LongDouble => CType::Float(FloatWidth::LongDouble),
        TypeClass::Enum => CType::Enum(rng.gen_range(0..n_enums.max(1))),
        TypeClass::Struct => {
            let id = rng.gen_range(0..n_structs.max(1));
            if rng.gen_bool(0.25) {
                CType::Array(Box::new(CType::Struct(id)), rng.gen_range(2..=8))
            } else {
                CType::Struct(id)
            }
        }
        TypeClass::PtrVoid => CType::ptr_to(CType::Void),
        TypeClass::PtrStruct => CType::ptr_to(CType::Struct(rng.gen_range(0..n_structs.max(1)))),
        TypeClass::PtrArith => {
            let pointee = match rng.gen_range(0..5) {
                0 => CType::char(),
                1 => CType::Float(FloatWidth::Double),
                2 => CType::Integer(IntWidth::Long, Signedness::Signed),
                3 => CType::Integer(IntWidth::Int, Signedness::Unsigned),
                _ => CType::int(),
            };
            CType::ptr_to(pointee)
        }
    };
    if rng.gen_bool(0.18) && !matches!(base, CType::Array(..)) {
        let name = TYPEDEF_NAMES.choose(rng).unwrap().to_string();
        if rng.gen_bool(0.25) {
            CType::Typedef(
                format!("{name}_inner"),
                Box::new(CType::Typedef(name, Box::new(base))),
            )
        } else {
            CType::Typedef(name, Box::new(base))
        }
    } else {
        base
    }
}

/// Context while generating one function body.
struct FnGen<'a> {
    locals: Vec<Local>,
    types: &'a TypeTable,
    /// Per-pointer binding: the local it may legally point at.
    ptr_binding: Vec<Option<LocalId>>,
    rng: &'a mut StdRng,
    /// Functions generated so far (callable).
    callable: Vec<(FuncId, Vec<TypeClass>, bool)>,
    n_externs: u32,
}

impl FnGen<'_> {
    fn class_of(&self, id: LocalId) -> Option<TypeClass> {
        TypeClass::of(&self.locals[id.0 as usize].ty)
    }

    fn locals_of_class(&self, class: TypeClass) -> Vec<LocalId> {
        (0..self.locals.len() as u32)
            .map(LocalId)
            .filter(|id| self.class_of(*id) == Some(class))
            .collect()
    }

    /// A local with exactly this resolved type.
    fn local_of_type(&self, ty: &CType) -> Option<LocalId> {
        (0..self.locals.len() as u32).map(LocalId).find(|id| {
            self.locals[id.0 as usize].ty.resolve() == ty.resolve()
                && !matches!(self.locals[id.0 as usize].ty.resolve(), CType::Array(..))
        })
    }

    fn is_array(&self, id: LocalId) -> bool {
        matches!(self.locals[id.0 as usize].ty.resolve(), CType::Array(..))
    }

    fn int_scalar(&mut self) -> Option<LocalId> {
        let candidates: Vec<LocalId> = (0..self.locals.len() as u32)
            .map(LocalId)
            .filter(|id| {
                matches!(
                    self.locals[id.0 as usize].ty.resolve(),
                    CType::Integer(IntWidth::Int | IntWidth::Long, _)
                ) && !self.is_array(*id)
            })
            .collect();
        candidates.choose(self.rng).copied()
    }

    fn small_const(&mut self) -> i64 {
        *[0i64, 1, 2, 4, 8, 0x10, 0x20, 0x40, 0x100, -1, 3, 7]
            .choose(self.rng)
            .unwrap()
    }

    fn same_class_peer(&mut self, id: LocalId) -> Option<LocalId> {
        let class = self.class_of(id)?;
        let peers: Vec<LocalId> = self
            .locals_of_class(class)
            .into_iter()
            .filter(|p| *p != id && !self.is_array(*p) && !self.is_array(id))
            .collect();
        peers.choose(self.rng).copied()
    }

    /// Emits one episode of statements centred on `id`.
    fn episode(&mut self, id: LocalId, out: &mut Vec<Stmt>) {
        let Some(class) = self.class_of(id) else {
            return;
        };
        if self.is_array(id) {
            self.array_episode(id, out);
            return;
        }
        use TypeClass::*;
        match class {
            Bool => self.bool_episode(id, out),
            Struct => self.struct_episode(id, out),
            PtrStruct => self.ptr_struct_episode(id, out),
            PtrVoid => self.ptr_void_episode(id, out),
            PtrArith => self.ptr_arith_episode(id, out),
            Float | Double | LongDouble => self.float_episode(id, out),
            Enum => self.enum_episode(id, out),
            _ => self.int_episode(id, out),
        }
    }

    fn int_episode(&mut self, id: LocalId, out: &mut Vec<Stmt>) {
        match self.rng.gen_range(0..7) {
            0 => {
                let c = self.small_const();
                out.push(Stmt::Assign {
                    dst: id,
                    rhs: Rhs::Const(c),
                });
            }
            1 | 2 => {
                let op = *[
                    BinOp::Add,
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::Xor,
                    BinOp::Mul,
                    BinOp::Shl,
                    BinOp::Shr,
                ]
                .choose(self.rng)
                .unwrap();
                let b = if matches!(op, BinOp::Shl | BinOp::Shr) {
                    Operand2::Const(self.rng.gen_range(1..8))
                } else if let Some(peer) = self.same_class_peer(id) {
                    if self.rng.gen_bool(0.5) {
                        Operand2::Local(peer)
                    } else {
                        Operand2::Const(self.small_const())
                    }
                } else {
                    Operand2::Const(self.small_const())
                };
                out.push(Stmt::Assign {
                    dst: id,
                    rhs: Rhs::Bin(op, id, b),
                });
            }
            3 => {
                // Division: avoid zero divisors.
                let b = match self.same_class_peer(id) {
                    Some(p) if self.rng.gen_bool(0.6) => Operand2::Local(p),
                    _ => Operand2::Const(self.rng.gen_range(1..16)),
                };
                out.push(Stmt::Assign {
                    dst: id,
                    rhs: Rhs::Bin(BinOp::Div, id, b),
                });
            }
            4 => {
                if let Some(peer) = self.same_class_peer(id) {
                    out.push(Stmt::Assign {
                        dst: id,
                        rhs: Rhs::Local(peer),
                    });
                } else {
                    let c = self.small_const();
                    out.push(Stmt::Assign {
                        dst: id,
                        rhs: Rhs::Const(c),
                    });
                }
            }
            5 => {
                // Cross-type cast copy (movsx/movzx/cvt signal).
                let others: Vec<LocalId> = (0..self.locals.len() as u32)
                    .map(LocalId)
                    .filter(|o| {
                        *o != id
                            && !self.is_array(*o)
                            && self.locals[o.0 as usize].ty.resolve().is_arithmetic()
                    })
                    .collect();
                if let Some(src) = others.choose(self.rng).copied() {
                    out.push(Stmt::Assign {
                        dst: id,
                        rhs: Rhs::Local(src),
                    });
                }
            }
            _ => {
                // Single-use temp pattern: init then compare-branch.
                let c = self.small_const();
                out.push(Stmt::Assign {
                    dst: id,
                    rhs: Rhs::Const(c),
                });
                if self.rng.gen_bool(0.5) {
                    let inner_c = self.small_const();
                    out.push(Stmt::If {
                        cond: Cond {
                            lhs: id,
                            op: CmpOp::Ne,
                            rhs: Operand2::Const(inner_c),
                        },
                        then_body: vec![Stmt::Assign {
                            dst: id,
                            rhs: Rhs::Bin(BinOp::Add, id, Operand2::Const(1)),
                        }],
                        else_body: vec![],
                    });
                }
            }
        }
    }

    fn bool_episode(&mut self, id: LocalId, out: &mut Vec<Stmt>) {
        match self.rng.gen_range(0..3) {
            0 => out.push(Stmt::Assign {
                dst: id,
                rhs: Rhs::Const(i64::from(self.rng.gen_bool(0.5))),
            }),
            1 => {
                if let Some(int) = self.int_scalar() {
                    let op = *[CmpOp::Lt, CmpOp::Eq, CmpOp::Gt, CmpOp::Ne]
                        .choose(self.rng)
                        .unwrap();
                    let c = self.small_const();
                    out.push(Stmt::Assign {
                        dst: id,
                        rhs: Rhs::Cmp(op, int, Operand2::Const(c)),
                    });
                } else {
                    out.push(Stmt::Assign {
                        dst: id,
                        rhs: Rhs::Const(1),
                    });
                }
            }
            _ => {
                out.push(Stmt::If {
                    cond: Cond {
                        lhs: id,
                        op: CmpOp::Ne,
                        rhs: Operand2::Const(0),
                    },
                    then_body: vec![Stmt::Assign {
                        dst: id,
                        rhs: Rhs::Const(0),
                    }],
                    else_body: vec![],
                });
            }
        }
    }

    fn enum_episode(&mut self, id: LocalId, out: &mut Vec<Stmt>) {
        match self.rng.gen_range(0..3) {
            0 => {
                let c = self.rng.gen_range(0..6);
                out.push(Stmt::Assign {
                    dst: id,
                    rhs: Rhs::Const(c),
                });
            }
            1 => {
                // switch-ish chain.
                let c = self.rng.gen_range(0..4);
                out.push(Stmt::If {
                    cond: Cond {
                        lhs: id,
                        op: CmpOp::Eq,
                        rhs: Operand2::Const(c),
                    },
                    then_body: vec![Stmt::Assign {
                        dst: id,
                        rhs: Rhs::Const(c + 1),
                    }],
                    else_body: vec![Stmt::Assign {
                        dst: id,
                        rhs: Rhs::Const(0),
                    }],
                });
            }
            _ => {
                if let Some(peer) = self.same_class_peer(id) {
                    out.push(Stmt::Assign {
                        dst: id,
                        rhs: Rhs::Local(peer),
                    });
                } else {
                    out.push(Stmt::Assign {
                        dst: id,
                        rhs: Rhs::Const(1),
                    });
                }
            }
        }
    }

    fn float_episode(&mut self, id: LocalId, out: &mut Vec<Stmt>) {
        match self.rng.gen_range(0..4) {
            0 => out.push(Stmt::Assign {
                dst: id,
                rhs: Rhs::Const(1),
            }),
            1 | 2 => {
                let op = *[BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div]
                    .choose(self.rng)
                    .unwrap();
                let b = match self.same_class_peer(id) {
                    Some(p) if self.rng.gen_bool(0.6) => Operand2::Local(p),
                    _ => Operand2::Const(1),
                };
                out.push(Stmt::Assign {
                    dst: id,
                    rhs: Rhs::Bin(op, id, b),
                });
            }
            _ => {
                // Cast from an int or between float widths.
                let others: Vec<LocalId> = (0..self.locals.len() as u32)
                    .map(LocalId)
                    .filter(|o| {
                        *o != id
                            && !self.is_array(*o)
                            && self.locals[o.0 as usize].ty.resolve().is_arithmetic()
                    })
                    .collect();
                if let Some(src) = others.choose(self.rng).copied() {
                    out.push(Stmt::Assign {
                        dst: id,
                        rhs: Rhs::Local(src),
                    });
                }
            }
        }
    }

    fn struct_members(&self, id: LocalId) -> Option<(u32, Vec<(u32, CType)>)> {
        let (sid, base_elems) = match self.locals[id.0 as usize].ty.resolve() {
            CType::Struct(sid) => (*sid, 1u32),
            CType::Array(elem, n) => match elem.resolve() {
                CType::Struct(sid) => (*sid, (*n).max(1)),
                _ => return None,
            },
            _ => return None,
        };
        let def = self.types.structs.get(sid as usize)?;
        let members: Vec<(u32, CType)> = def
            .members
            .iter()
            .filter(|m| !matches!(m.ty.resolve(), CType::Array(..)))
            .map(|m| (m.offset, m.ty.clone()))
            .collect();
        if members.is_empty() {
            return None;
        }
        Some((base_elems, members))
    }

    fn struct_episode(&mut self, id: LocalId, out: &mut Vec<Stmt>) {
        let Some((elems, members)) = self.struct_members(id) else {
            return;
        };
        let elem_size = match self.locals[id.0 as usize].ty.resolve() {
            CType::Array(elem, _) => self.types.size_of(elem),
            other => self.types.size_of(other),
        };
        // Usually a struct is touched through one or two members —
        // indistinguishable from scalars of the member type, which is
        // why the paper's struct recall is poor (0.58) despite a high
        // clustering rate. Full initialization bursts (Fig. 2) happen
        // but are the minority.
        let elem = self.rng.gen_range(0..elems);
        let base_off = elem * elem_size;
        let burst = if self.rng.gen_bool(0.3) {
            self.rng.gen_range(2..=members.len().clamp(2, 5))
        } else {
            1
        };
        let mut picked = members.clone();
        picked.shuffle(self.rng);
        for (off, mty) in picked.into_iter().take(burst) {
            let src = if self.rng.gen_bool(0.75) {
                Operand2::Const(self.small_const())
            } else if let Some(src) = self.local_of_type(&mty) {
                Operand2::Local(src)
            } else {
                Operand2::Const(0)
            };
            out.push(Stmt::StoreMember {
                base: id,
                offset: base_off + off,
                member_ty: mty,
                src,
            });
        }
        // Occasionally read a member back.
        if self.rng.gen_bool(0.4) {
            let (off, mty) = members.choose(self.rng).unwrap().clone();
            if let Some(dst) = self.local_of_type(&mty) {
                out.push(Stmt::Assign {
                    dst,
                    rhs: Rhs::Member(id, base_off + off, mty),
                });
            }
        }
    }

    fn ptr_struct_episode(&mut self, id: LocalId, out: &mut Vec<Stmt>) {
        let sid = match self.locals[id.0 as usize].ty.resolve() {
            CType::Pointer(inner) => match inner.resolve() {
                CType::Struct(sid) => *sid,
                _ => return,
            },
            _ => return,
        };
        match self.rng.gen_range(0..4) {
            0 => {
                if let Some(target) = self.ptr_binding[id.0 as usize] {
                    out.push(Stmt::Assign {
                        dst: id,
                        rhs: Rhs::AddrOf(target),
                    });
                } else {
                    // p = malloc(sz)
                    out.push(Stmt::Assign {
                        dst: id,
                        rhs: Rhs::Call(Callee::Extern(0), vec![]),
                    });
                }
            }
            1 | 2 => {
                let Some(def) = self.types.structs.get(sid as usize) else {
                    return;
                };
                let members: Vec<(u32, CType)> = def
                    .members
                    .iter()
                    .filter(|m| !matches!(m.ty.resolve(), CType::Array(..)))
                    .map(|m| (m.offset, m.ty.clone()))
                    .collect();
                if members.is_empty() {
                    return;
                }
                let n = self.rng.gen_range(1..=members.len().min(3));
                for _ in 0..n {
                    let (off, mty) = members.choose(self.rng).unwrap().clone();
                    if self.rng.gen_bool(0.6) {
                        let c = self.small_const();
                        out.push(Stmt::StoreMemberPtr {
                            ptr: id,
                            offset: off,
                            member_ty: mty,
                            src: Operand2::Const(c),
                        });
                    } else if let Some(dst) = self.local_of_type(&mty) {
                        out.push(Stmt::Assign {
                            dst,
                            rhs: Rhs::MemberOfPtr(id, off, mty),
                        });
                    }
                }
            }
            _ => {
                if let Some(peer) = self.same_class_peer(id) {
                    out.push(Stmt::Assign {
                        dst: id,
                        rhs: Rhs::Local(peer),
                    });
                }
                out.push(Stmt::If {
                    cond: Cond {
                        lhs: id,
                        op: CmpOp::Ne,
                        rhs: Operand2::Const(0),
                    },
                    then_body: vec![],
                    else_body: vec![],
                });
            }
        }
    }

    fn ptr_void_episode(&mut self, id: LocalId, out: &mut Vec<Stmt>) {
        match self.rng.gen_range(0..3) {
            0 => {
                let args = self.int_scalar().map(|a| vec![a]).unwrap_or_default();
                out.push(Stmt::Assign {
                    dst: id,
                    rhs: Rhs::Call(Callee::Extern(0), args),
                });
            }
            1 => {
                out.push(Stmt::If {
                    cond: Cond {
                        lhs: id,
                        op: CmpOp::Eq,
                        rhs: Operand2::Const(0),
                    },
                    then_body: vec![Stmt::Return(None)],
                    else_body: vec![],
                });
            }
            _ => {
                out.push(Stmt::CallStmt {
                    callee: Callee::Extern(1),
                    args: vec![id],
                });
            }
        }
    }

    fn ptr_arith_episode(&mut self, id: LocalId, out: &mut Vec<Stmt>) {
        let pointee = match self.locals[id.0 as usize].ty.resolve() {
            CType::Pointer(inner) => inner.resolve().clone(),
            _ => return,
        };
        match self.rng.gen_range(0..4) {
            0 => {
                if let Some(target) = self.ptr_binding[id.0 as usize] {
                    out.push(Stmt::Assign {
                        dst: id,
                        rhs: Rhs::AddrOf(target),
                    });
                }
            }
            1 => {
                if let Some(dst) = self.local_of_type(&pointee) {
                    out.push(Stmt::Assign {
                        dst,
                        rhs: Rhs::Deref(id),
                    });
                }
            }
            2 => {
                let src = match self.local_of_type(&pointee) {
                    Some(s) if self.rng.gen_bool(0.5) => Operand2::Local(s),
                    _ => Operand2::Const(self.small_const()),
                };
                out.push(Stmt::StoreDeref { ptr: id, src });
            }
            _ => {
                // Pointer bump by element size.
                let step = pointee.size().max(1) as i64;
                out.push(Stmt::Assign {
                    dst: id,
                    rhs: Rhs::Bin(BinOp::Add, id, Operand2::Const(step)),
                });
            }
        }
    }

    fn array_episode(&mut self, id: LocalId, out: &mut Vec<Stmt>) {
        let elem_ty = match self.locals[id.0 as usize].ty.resolve() {
            CType::Array(elem, _) => elem.resolve().clone(),
            _ => return,
        };
        if matches!(elem_ty, CType::Struct(_)) {
            self.struct_episode(id, out);
            return;
        }
        let Some(idx) = self.int_scalar() else { return };
        match self.rng.gen_range(0..3) {
            0 => {
                let c = self.small_const();
                out.push(Stmt::StoreIndexed {
                    base: id,
                    index: idx,
                    elem_ty,
                    src: Operand2::Const(c),
                });
            }
            1 => {
                if let Some(dst) = self.local_of_type(&elem_ty) {
                    out.push(Stmt::Assign {
                        dst,
                        rhs: Rhs::LoadIndexed {
                            base: id,
                            index: idx,
                            elem_ty,
                        },
                    });
                }
            }
            _ => {
                // Fill loop: while (i < n) { a[i] = c; i = i + 1; }
                let n = self.rng.gen_range(4..16);
                let c = self.small_const();
                out.push(Stmt::Assign {
                    dst: idx,
                    rhs: Rhs::Const(0),
                });
                out.push(Stmt::While {
                    cond: Cond {
                        lhs: idx,
                        op: CmpOp::Lt,
                        rhs: Operand2::Const(n),
                    },
                    body: vec![
                        Stmt::StoreIndexed {
                            base: id,
                            index: idx,
                            elem_ty,
                            src: Operand2::Const(c),
                        },
                        Stmt::Assign {
                            dst: idx,
                            rhs: Rhs::Bin(BinOp::Add, idx, Operand2::Const(1)),
                        },
                    ],
                });
            }
        }
    }

    fn call_episode(&mut self, out: &mut Vec<Stmt>) {
        // Prefer calling an already-generated local function with
        // class-compatible arguments; otherwise call an extern.
        let local_call = (!self.callable.is_empty())
            .then(|| self.callable[self.rng.gen_range(0..self.callable.len())].clone());
        if let Some((fid, param_classes, has_ret)) = local_call {
            let mut args = Vec::with_capacity(param_classes.len());
            for class in &param_classes {
                let cands = self.locals_of_class(*class);
                let Some(arg) = cands.choose(self.rng).copied() else {
                    return;
                };
                if self.is_array(arg) {
                    return;
                }
                args.push(arg);
            }
            if has_ret && self.rng.gen_bool(0.6) {
                if let Some(dst) = self.int_scalar() {
                    out.push(Stmt::Assign {
                        dst,
                        rhs: Rhs::Call(Callee::Local(fid), args),
                    });
                    return;
                }
            }
            out.push(Stmt::CallStmt {
                callee: Callee::Local(fid),
                args,
            });
        } else {
            let e = self.rng.gen_range(0..EXTERN_POOL.len() as u32);
            let args = self.int_scalar().map(|a| vec![a]).unwrap_or_default();
            out.push(Stmt::CallStmt {
                callee: Callee::Extern(e),
                args,
            });
        }
    }
}

/// Generates one program for `profile`.
pub fn generate_program(name: &str, profile: &AppProfile, rng: &mut StdRng) -> Program {
    let mut types = TypeTable::new();
    let n_structs = rng.gen_range(3..=7u32);
    for i in 0..n_structs {
        let def = random_struct(i as usize, rng);
        types.add_struct(def);
    }
    let n_enums = rng.gen_range(2..=5u32);
    for i in 0..n_enums {
        let def = random_enum(i as usize, rng);
        types.add_enum(def);
    }
    let externs = EXTERN_POOL
        .iter()
        .map(|n| ExternFunc {
            name: (*n).to_string(),
        })
        .collect();

    let mut functions: Vec<Function> = Vec::new();
    let mut callable: Vec<(FuncId, Vec<TypeClass>, bool)> = Vec::new();
    for fidx in 0..profile.functions_per_binary {
        let func = generate_function(fidx, profile, &types, n_structs, n_enums, &callable, rng);
        let param_classes: Vec<TypeClass> = func.locals[..func.num_params as usize]
            .iter()
            .filter_map(|l| TypeClass::of(&l.ty))
            .collect();
        if param_classes.len() == func.num_params as usize {
            callable.push((FuncId(fidx), param_classes, func.ret.is_some()));
        }
        functions.push(func);
    }

    Program {
        name: name.to_string(),
        types,
        functions,
        externs,
    }
}

#[allow(clippy::too_many_arguments)]
fn generate_function(
    fidx: u32,
    profile: &AppProfile,
    types: &TypeTable,
    n_structs: u32,
    n_enums: u32,
    callable: &[(FuncId, Vec<TypeClass>, bool)],
    rng: &mut StdRng,
) -> Function {
    let verb = FUNC_VERBS[rng.gen_range(0..FUNC_VERBS.len())];
    let noun = FUNC_NOUNS[rng.gen_range(0..FUNC_NOUNS.len())];
    let name = format!("{verb}_{noun}_{fidx}");

    let target = profile.locals_per_function.max(3);
    let n_locals = rng.gen_range(target / 2 + 2..=target * 3 / 2 + 2);
    let mut locals: Vec<Local> = Vec::with_capacity(n_locals as usize);
    for i in 0..n_locals {
        let class = profile.mix.sample(rng);
        let ty = realize(class, n_structs, n_enums, rng);
        locals.push(Local {
            name: format!("v{i}"),
            ty,
        });
    }

    // Parameters: scalars and pointers only.
    let num_params = rng.gen_range(0..=3u32).min(n_locals);
    for p in 0..num_params {
        let ty = &locals[p as usize].ty;
        let bad = matches!(
            ty.resolve(),
            CType::Struct(_) | CType::Union(_) | CType::Array(..)
        );
        if bad {
            locals[p as usize].ty = if rng.gen_bool(0.5) {
                CType::int()
            } else {
                CType::ptr_to(CType::Struct(rng.gen_range(0..n_structs.max(1))))
            };
        }
        locals[p as usize].name = format!("arg{p}");
    }

    // Pointer bindings: every arith/struct pointer gets a target local
    // of matching pointee type, appending one if necessary.
    let mut ptr_binding: Vec<Option<LocalId>> = vec![None; locals.len()];
    for i in 0..locals.len() {
        let pointee = match locals[i].ty.resolve() {
            CType::Pointer(inner) => inner.resolve().clone(),
            _ => continue,
        };
        if matches!(pointee, CType::Void | CType::Union(_) | CType::Pointer(_)) {
            continue;
        }
        let found = locals.iter().position(|l| {
            l.ty.resolve() == &pointee && !matches!(l.ty.resolve(), CType::Array(..))
        });
        let target = match found {
            Some(t) => t,
            None => {
                locals.push(Local {
                    name: format!("v{}", locals.len()),
                    ty: pointee,
                });
                ptr_binding.push(None);
                locals.len() - 1
            }
        };
        ptr_binding[i] = Some(LocalId(target as u32));
    }

    // Ensure an index local exists when arrays are present.
    let has_array = locals
        .iter()
        .any(|l| matches!(l.ty.resolve(), CType::Array(..)));
    let has_int = locals.iter().any(|l| {
        matches!(
            l.ty.resolve(),
            CType::Integer(IntWidth::Int | IntWidth::Long, _)
        )
    });
    if has_array && !has_int {
        locals.push(Local {
            name: format!("v{}", locals.len()),
            ty: CType::int(),
        });
        ptr_binding.push(None);
    }

    let ret = if rng.gen_bool(0.6) {
        Some(CType::int())
    } else {
        None
    };

    let mut ctx = FnGen {
        locals: locals.clone(),
        types,
        ptr_binding,
        rng,
        callable: callable.to_vec(),
        n_externs: EXTERN_POOL.len() as u32,
    };
    let _ = ctx.n_externs;

    let mut body = Vec::new();
    let n_episodes = profile.episodes_per_function.max(3);
    let n_episodes = ctx
        .rng
        .gen_range(n_episodes / 2 + 1..=n_episodes * 3 / 2 + 1);
    let mut last: Option<LocalId> = None;
    for _ in 0..n_episodes {
        // Locality biases: real code keeps working on the same
        // variable (multi-use variables; paper: 65% of variables have
        // 3+ related instructions) and on same-typed neighbours (the
        // clustering phenomenon).
        let id = match last {
            Some(prev) if ctx.rng.gen_bool(0.30) => prev,
            Some(prev) if ctx.rng.gen_bool(0.40) => ctx.same_class_peer(prev).unwrap_or(prev),
            _ => LocalId(ctx.rng.gen_range(0..ctx.locals.len() as u32)),
        };
        let wrap = ctx.rng.gen_range(0..10);
        let mut episode_stmts = Vec::new();
        if ctx.rng.gen_bool(profile.call_density) {
            ctx.call_episode(&mut episode_stmts);
        } else {
            ctx.episode(id, &mut episode_stmts);
        }
        if episode_stmts.is_empty() {
            continue;
        }
        match wrap {
            0 => {
                // Wrap in a branch on some integer local.
                if let Some(c) = ctx.int_scalar() {
                    let k = ctx.small_const();
                    body.push(Stmt::If {
                        cond: Cond {
                            lhs: c,
                            op: CmpOp::Gt,
                            rhs: Operand2::Const(k),
                        },
                        then_body: episode_stmts,
                        else_body: vec![],
                    });
                } else {
                    body.append(&mut episode_stmts);
                }
            }
            1 => {
                // Wrap in a counted loop.
                if let Some(c) = ctx.int_scalar() {
                    let n = ctx.rng.gen_range(2..12);
                    episode_stmts.push(Stmt::Assign {
                        dst: c,
                        rhs: Rhs::Bin(BinOp::Add, c, Operand2::Const(1)),
                    });
                    body.push(Stmt::Assign {
                        dst: c,
                        rhs: Rhs::Const(0),
                    });
                    body.push(Stmt::While {
                        cond: Cond {
                            lhs: c,
                            op: CmpOp::Lt,
                            rhs: Operand2::Const(n),
                        },
                        body: episode_stmts,
                    });
                } else {
                    body.append(&mut episode_stmts);
                }
            }
            _ => body.append(&mut episode_stmts),
        }
        last = Some(id);
    }
    // Light interleaving: real compilers and real statement order mix
    // unrelated computations, so adjacent top-level statements swap
    // with small probability. This dilutes context windows the same
    // way real code does.
    for i in 0..body.len().saturating_sub(1) {
        if ctx.rng.gen_bool(0.15) {
            body.swap(i, i + 1);
        }
    }
    let ret_local = ret.as_ref().and_then(|_| {
        ctx.locals
            .iter()
            .position(|l| matches!(l.ty.resolve(), CType::Integer(IntWidth::Int, _)))
            .map(|i| LocalId(i as u32))
    });
    body.push(Stmt::Return(ret_local));
    let ret = ret_local.map(|_| CType::int());

    Function {
        name,
        num_params,
        locals: ctx.locals,
        ret,
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generated_programs_are_well_formed() {
        let profile = AppProfile::new("test");
        let mut rng = StdRng::seed_from_u64(11);
        for i in 0..10 {
            let p = generate_program(&format!("p{i}"), &profile, &mut rng);
            assert!(!p.functions.is_empty());
            for f in &p.functions {
                assert!(f.num_params as usize <= f.locals.len());
                // Every referenced local exists.
                for stmt in f.walk_stmts() {
                    if let Stmt::Assign { dst, .. } = stmt {
                        assert!((dst.0 as usize) < f.locals.len());
                    }
                }
                // Body ends with a return.
                assert!(matches!(f.body.last(), Some(Stmt::Return(_))));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let profile = AppProfile::new("det");
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        let pa = generate_program("x", &profile, &mut a);
        let pb = generate_program("x", &profile, &mut b);
        assert_eq!(pa, pb);
    }

    #[test]
    fn call_density_knob_densifies_call_episodes() {
        fn count_calls(profile: &AppProfile, seed: u64) -> usize {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut calls = 0;
            for i in 0..8 {
                let p = generate_program(&format!("p{i}"), profile, &mut rng);
                for f in &p.functions {
                    calls += f
                        .walk_stmts()
                        .into_iter()
                        .filter(|s| {
                            matches!(
                                s,
                                Stmt::CallStmt { .. }
                                    | Stmt::Assign {
                                        rhs: Rhs::Call(..),
                                        ..
                                    }
                            )
                        })
                        .count();
                }
            }
            calls
        }
        let base = AppProfile::new("dense");
        let dense = AppProfile::new("dense").with_call_density(0.40);
        assert_eq!(base.call_density, 0.12);
        assert!(
            count_calls(&dense, 23) > count_calls(&base, 23),
            "raising call_density must yield more call episodes"
        );
    }

    #[test]
    fn programs_cover_many_type_classes() {
        let profile = AppProfile::new("cov");
        let mut rng = StdRng::seed_from_u64(5);
        let mut classes = std::collections::HashSet::new();
        for i in 0..20 {
            let p = generate_program(&format!("p{i}"), &profile, &mut rng);
            for f in &p.functions {
                for l in &f.locals {
                    if let Some(c) = TypeClass::of(&l.ty) {
                        classes.insert(c);
                    }
                }
            }
        }
        assert!(
            classes.len() >= 12,
            "only {} classes seen: {classes:?}",
            classes.len()
        );
    }

    #[test]
    fn pointer_bindings_point_at_matching_types() {
        let profile = AppProfile::new("bind");
        let mut rng = StdRng::seed_from_u64(17);
        let p = generate_program("p", &profile, &mut rng);
        for f in &p.functions {
            for stmt in f.walk_stmts() {
                if let Stmt::Assign {
                    dst,
                    rhs: Rhs::AddrOf(src),
                } = stmt
                {
                    let dst_ty = f.local(*dst).ty.resolve();
                    let CType::Pointer(pointee) = dst_ty else {
                        panic!("AddrOf into non-pointer")
                    };
                    assert_eq!(
                        pointee.resolve(),
                        f.local(*src).ty.resolve(),
                        "binding mismatch in {}",
                        f.name
                    );
                }
            }
        }
    }
}
