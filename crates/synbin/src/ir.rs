//! The typed mini-program IR the synthetic compiler lowers.
//!
//! Programs are deliberately C-shaped: functions with typed parameters
//! and locals, assignments, member accesses, pointer dereferences,
//! calls, branches and loops. The IR never executes — its only job is
//! to drive a code generator whose per-type instruction idioms match
//! what GCC/Clang emit, so the paper's learning problem is preserved.

use cati_dwarf::{CType, TypeTable};
use serde::{Deserialize, Serialize};

/// Index of a local (or parameter) within its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LocalId(pub u32);

/// Index of a function within its program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

/// A call target: another function in this program, or an external
/// library routine that will resolve to a PLT symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Callee {
    /// Intra-program call.
    Local(FuncId),
    /// External routine, by index into [`Program::externs`].
    Extern(u32),
}

/// A typed local variable or parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Local {
    /// Source name (`v0`, `buf`, ...).
    pub name: String,
    /// Declared type; typedef chains preserved for the labeler.
    pub ty: CType,
}

/// Second operand of a binary operation or comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand2 {
    /// Immediate constant.
    Const(i64),
    /// Another local.
    Local(LocalId),
}

/// Binary arithmetic/logic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `<<`
    Shl,
    /// `>>` (arithmetic for signed, logical for unsigned).
    Shr,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Right-hand side of an assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Rhs {
    /// `dst = <const>`.
    Const(i64),
    /// `dst = src` (same-type copy or an implicit integer cast, which
    /// lowers to `movsx`/`movzx` when widths differ).
    Local(LocalId),
    /// `dst = a <op> b`.
    Bin(BinOp, LocalId, Operand2),
    /// `dst = -a` / `dst = ~a`.
    Neg(LocalId),
    /// `dst = f(args...)` (return value used).
    Call(Callee, Vec<LocalId>),
    /// `dst = &local` — materializes a pointer with `lea`.
    AddrOf(LocalId),
    /// `dst = *ptr`.
    Deref(LocalId),
    /// `dst = ptr->member` at byte `offset` with the member's type.
    MemberOfPtr(LocalId, u32, CType),
    /// `dst = base.member` where `base` is a struct local.
    Member(LocalId, u32, CType),
    /// `dst = (cond)` — a comparison materialized into a bool.
    Cmp(CmpOp, LocalId, Operand2),
    /// `dst = base[index]` — `base` is an array local; lowers to a
    /// scaled effective address (`mov disp(%rsp,%rdx,4),%eax`).
    LoadIndexed {
        /// Array local.
        base: LocalId,
        /// Integer index local.
        index: LocalId,
        /// Element type.
        elem_ty: CType,
    },
}

/// A condition `lhs <op> rhs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cond {
    /// Left operand.
    pub lhs: LocalId,
    /// Comparison.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: Operand2,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `dst = rhs`.
    Assign {
        /// Destination local.
        dst: LocalId,
        /// Value expression.
        rhs: Rhs,
    },
    /// `*ptr = src`.
    StoreDeref {
        /// Pointer local.
        ptr: LocalId,
        /// Value stored (a local or a constant).
        src: Operand2,
    },
    /// `base.member = src` — `base` is a struct (or struct array)
    /// local; the store's width comes from `member_ty`.
    StoreMember {
        /// Struct local.
        base: LocalId,
        /// Member byte offset (may include an array element offset).
        offset: u32,
        /// Member type.
        member_ty: CType,
        /// Stored value.
        src: Operand2,
    },
    /// `ptr->member = src`.
    StoreMemberPtr {
        /// Pointer-to-struct local.
        ptr: LocalId,
        /// Member byte offset.
        offset: u32,
        /// Member type.
        member_ty: CType,
        /// Stored value.
        src: Operand2,
    },
    /// `if (cond) { then } else { els }`.
    If {
        /// Branch condition.
        cond: Cond,
        /// Taken body.
        then_body: Vec<Stmt>,
        /// Else body (may be empty).
        else_body: Vec<Stmt>,
    },
    /// `while (cond) { body }`.
    While {
        /// Loop condition.
        cond: Cond,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `base[index] = src` — scaled-index store into an array local.
    StoreIndexed {
        /// Array local.
        base: LocalId,
        /// Integer index local.
        index: LocalId,
        /// Element type.
        elem_ty: CType,
        /// Stored value.
        src: Operand2,
    },
    /// `f(args...)` with the result discarded.
    CallStmt {
        /// Call target.
        callee: Callee,
        /// Arguments (locals).
        args: Vec<LocalId>,
    },
    /// `return [val]`.
    Return(Option<LocalId>),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Name.
    pub name: String,
    /// Number of leading locals that are parameters.
    pub num_params: u32,
    /// All locals; the first `num_params` are parameters.
    pub locals: Vec<Local>,
    /// Return type (`None` = void).
    pub ret: Option<CType>,
    /// Body.
    pub body: Vec<Stmt>,
}

impl Function {
    /// The local record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn local(&self, id: LocalId) -> &Local {
        &self.locals[id.0 as usize]
    }

    /// Whether `id` is a parameter.
    pub fn is_param(&self, id: LocalId) -> bool {
        id.0 < self.num_params
    }

    /// Iterates over all statements, recursing into branch and loop
    /// bodies.
    pub fn walk_stmts(&self) -> Vec<&Stmt> {
        fn rec<'a>(stmts: &'a [Stmt], out: &mut Vec<&'a Stmt>) {
            for s in stmts {
                out.push(s);
                match s {
                    Stmt::If {
                        then_body,
                        else_body,
                        ..
                    } => {
                        rec(then_body, out);
                        rec(else_body, out);
                    }
                    Stmt::While { body, .. } => rec(body, out),
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        rec(&self.body, &mut out);
        out
    }
}

/// An external routine the program may call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExternFunc {
    /// Link name (e.g. `memchr`).
    pub name: String,
}

/// A whole program: the translation unit handed to the compiler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Program (binary) name.
    pub name: String,
    /// Struct/enum definition tables.
    pub types: TypeTable,
    /// Function definitions.
    pub functions: Vec<Function>,
    /// External routines referenced by calls.
    pub externs: Vec<ExternFunc>,
}

impl Program {
    /// Total number of locals (and parameters) across all functions.
    pub fn total_locals(&self) -> usize {
        self.functions.iter().map(|f| f.locals.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_recurses_into_bodies() {
        let f = Function {
            name: "f".into(),
            num_params: 0,
            locals: vec![Local {
                name: "a".into(),
                ty: CType::int(),
            }],
            ret: None,
            body: vec![
                Stmt::Assign {
                    dst: LocalId(0),
                    rhs: Rhs::Const(1),
                },
                Stmt::If {
                    cond: Cond {
                        lhs: LocalId(0),
                        op: CmpOp::Eq,
                        rhs: Operand2::Const(0),
                    },
                    then_body: vec![Stmt::Assign {
                        dst: LocalId(0),
                        rhs: Rhs::Const(2),
                    }],
                    else_body: vec![Stmt::While {
                        cond: Cond {
                            lhs: LocalId(0),
                            op: CmpOp::Lt,
                            rhs: Operand2::Const(9),
                        },
                        body: vec![Stmt::Return(None)],
                    }],
                },
            ],
        };
        assert_eq!(f.walk_stmts().len(), 5);
        assert!(!f.is_param(LocalId(0)));
    }
}
