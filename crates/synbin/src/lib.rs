//! `cati-synbin` — the synthetic compiler/corpus substrate.
//!
//! The paper trains on 2141 real binaries compiled from open-source C
//! projects with GCC (and Clang in §VIII) at `-O0`..`-O3`. Neither the
//! projects nor the compilers' exact outputs are available here, so
//! this crate builds the closest synthetic equivalent (see DESIGN.md
//! §2): a random typed-program generator ([`gen`]) plus a mini code
//! generator ([`codegen`]) that lowers those programs with realistic
//! per-type instruction idioms, GCC/Clang habit profiles and
//! optimization-level variation, then links them into executable
//! images with symbol tables and DWARF-like debug info ([`link`]).
//!
//! # Example
//!
//! ```
//! use cati_synbin::corpus::{build_corpus, CorpusConfig};
//!
//! let corpus = build_corpus(&CorpusConfig::small(42));
//! let stripped = corpus.test[0].binary.strip();
//! assert!(stripped.is_stripped());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codegen;
pub mod corpus;
pub mod gen;
pub mod hostile;
pub mod ir;
pub mod link;
pub mod profile;
pub mod typedist;

pub use codegen::{lower_function, FuncCode, ScalarKind};
pub use corpus::{build_app, build_corpus, BuiltBinary, Corpus, CorpusConfig};
pub use gen::generate_program;
pub use hostile::{mutate, Mutation, MutationKind};
pub use link::link_program;
pub use profile::{CodegenOptions, Compiler, OptLevel};
pub use typedist::{AppProfile, TypeMix};
