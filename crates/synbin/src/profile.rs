//! Compiler profiles, optimization levels and stack-frame layout.
//!
//! The two profiles encode the *observable* habits that distinguish
//! GCC and Clang output — scratch-register choice, zeroing idiom,
//! frame-base choice at `-O1+`, parameter spill order, callee-saved
//! preference — which is what makes the paper's compiler-identification
//! experiment (§VIII, 100% accuracy) reproducible.

use crate::ir::{Function, Local, LocalId};
use cati_asm::reg::{gprnum, regs, Gpr, Width};
use cati_dwarf::{CType, TypeTable, VarLocation};
use serde::{Deserialize, Serialize};

/// Which compiler's habits to imitate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Compiler {
    /// GNU GCC.
    Gcc,
    /// LLVM Clang.
    Clang,
}

impl Compiler {
    /// Both profiles.
    pub const ALL: [Compiler; 2] = [Compiler::Gcc, Compiler::Clang];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Compiler::Gcc => "gcc",
            Compiler::Clang => "clang",
        }
    }

    /// Secondary integer scratch register (primary is always `%rax`).
    pub(crate) fn scratch2(self) -> Gpr {
        match self {
            Compiler::Gcc => regs::rdx(),
            Compiler::Clang => regs::rcx(),
        }
    }

    /// Tertiary scratch, used for constant divisors and the like.
    pub(crate) fn scratch3(self) -> Gpr {
        match self {
            Compiler::Gcc => regs::rcx(),
            Compiler::Clang => regs::rsi(),
        }
    }

    /// Callee-saved registers in this compiler's preferred promotion
    /// order.
    pub(crate) fn callee_saved(self) -> &'static [u8] {
        match self {
            Compiler::Gcc => &[
                gprnum::RBX,
                gprnum::R12,
                gprnum::R13,
                gprnum::R14,
                gprnum::R15,
            ],
            Compiler::Clang => &[
                gprnum::R14,
                gprnum::R15,
                gprnum::RBX,
                gprnum::R12,
                gprnum::R13,
            ],
        }
    }
}

/// Optimization level `-O0`..`-O3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OptLevel(pub u8);

impl OptLevel {
    /// All four levels.
    pub const ALL: [OptLevel; 4] = [OptLevel(0), OptLevel(1), OptLevel(2), OptLevel(3)];

    /// `-O0`: frame-pointer based, everything through memory.
    pub const O0: OptLevel = OptLevel(0);
    /// `-O1`: leaner frames, still slot-based.
    pub const O1: OptLevel = OptLevel(1);
    /// `-O2`: register promotion and instruction scheduling.
    pub const O2: OptLevel = OptLevel(2);
    /// `-O3`: `-O2` plus loop unrolling.
    pub const O3: OptLevel = OptLevel(3);

    /// Whether scalars are promoted into callee-saved registers.
    pub fn promotes_registers(self) -> bool {
        self.0 >= 2
    }

    /// Whether the scheduler may reorder independent instructions.
    pub fn schedules(self) -> bool {
        self.0 >= 2
    }

    /// Whether loops are unrolled once.
    pub fn unrolls(self) -> bool {
        self.0 >= 3
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "-O{}", self.0)
    }
}

/// Full code-generation configuration for one translation unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CodegenOptions {
    /// Compiler habits to imitate.
    pub compiler: Compiler,
    /// Optimization level.
    pub opt: OptLevel,
}

impl CodegenOptions {
    /// Whether functions keep a `%rbp` frame base. GCC drops it at
    /// `-O1+`; Clang keeps it (a deliberate, learnable profile
    /// difference).
    pub fn uses_frame_pointer(self) -> bool {
        match self.compiler {
            Compiler::Gcc => self.opt.0 == 0,
            Compiler::Clang => true,
        }
    }
}

/// Where a local lives during codegen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// Stack slot at this offset from the frame base.
    Frame(i32),
    /// Promoted into a callee-saved register (64-bit view).
    Reg(Gpr),
}

/// The frame layout of one function.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Frame base register (`%rbp` or `%rsp`).
    pub base: Gpr,
    /// Per-local slot, parallel to `Function::locals`.
    pub slots: Vec<Slot>,
    /// Total frame size in bytes (rounded to 16).
    pub size: u32,
    /// Callee-saved registers this function must save/restore.
    pub saved: Vec<Gpr>,
}

impl Frame {
    /// The slot of `id`.
    pub fn slot(&self, id: LocalId) -> Slot {
        self.slots[id.0 as usize]
    }

    /// Debug-info locations for every local, parallel to
    /// `Function::locals`.
    pub fn locations(&self) -> Vec<VarLocation> {
        self.slots
            .iter()
            .map(|s| match s {
                Slot::Frame(off) => VarLocation::Frame(*off),
                Slot::Reg(r) => VarLocation::Register(r.num()),
            })
            .collect()
    }
}

fn is_promotable(ty: &CType) -> bool {
    use cati_dwarf::FloatWidth;
    match ty.resolve() {
        CType::Bool | CType::Integer(..) | CType::Enum(_) | CType::Pointer(_) => true,
        // SSE registers are caller-saved; keep floats in memory.
        CType::Float(FloatWidth::Float | FloatWidth::Double | FloatWidth::LongDouble) => false,
        _ => false,
    }
}

/// Counts how often each local is referenced in the body, the
/// promotion heuristic's notion of "hot".
fn use_counts(func: &Function) -> Vec<u32> {
    use crate::ir::{Operand2, Rhs, Stmt};
    let mut counts = vec![0u32; func.locals.len()];
    let bump = |id: LocalId, counts: &mut Vec<u32>| counts[id.0 as usize] += 1;
    let op2 = |o: &Operand2, counts: &mut Vec<u32>| {
        if let Operand2::Local(l) = o {
            counts[l.0 as usize] += 1;
        }
    };
    for stmt in func.walk_stmts() {
        match stmt {
            Stmt::Assign { dst, rhs } => {
                bump(*dst, &mut counts);
                match rhs {
                    Rhs::Local(a) | Rhs::Neg(a) | Rhs::Deref(a) => bump(*a, &mut counts),
                    Rhs::Bin(_, a, b) | Rhs::Cmp(_, a, b) => {
                        bump(*a, &mut counts);
                        op2(b, &mut counts);
                    }
                    Rhs::Call(_, args) => args.iter().for_each(|a| bump(*a, &mut counts)),
                    Rhs::AddrOf(a) => bump(*a, &mut counts),
                    Rhs::MemberOfPtr(a, ..) | Rhs::Member(a, ..) => bump(*a, &mut counts),
                    Rhs::LoadIndexed { base, index, .. } => {
                        bump(*base, &mut counts);
                        bump(*index, &mut counts);
                    }
                    Rhs::Const(_) => {}
                }
            }
            Stmt::StoreDeref { ptr, src } => {
                bump(*ptr, &mut counts);
                op2(src, &mut counts);
            }
            Stmt::StoreMember { base, src, .. } => {
                bump(*base, &mut counts);
                op2(src, &mut counts);
            }
            Stmt::StoreMemberPtr { ptr, src, .. } => {
                bump(*ptr, &mut counts);
                op2(src, &mut counts);
            }
            Stmt::StoreIndexed {
                base, index, src, ..
            } => {
                bump(*base, &mut counts);
                bump(*index, &mut counts);
                op2(src, &mut counts);
            }
            Stmt::If { cond, .. } | Stmt::While { cond, .. } => {
                bump(cond.lhs, &mut counts);
                op2(&cond.rhs, &mut counts);
            }
            Stmt::CallStmt { args, .. } => args.iter().for_each(|a| bump(*a, &mut counts)),
            Stmt::Return(Some(a)) => bump(*a, &mut counts),
            Stmt::Return(None) => {}
        }
    }
    counts
}

/// Lays out the stack frame of `func` under `opts`.
///
/// `-O0` allocates every local a slot; `-O2+` promotes the hottest
/// promotable scalars (address-taken locals excluded by the caller via
/// `no_promote`) into callee-saved registers.
pub fn layout_frame(
    func: &Function,
    types: &TypeTable,
    opts: CodegenOptions,
    no_promote: &[bool],
) -> Frame {
    let base = if opts.uses_frame_pointer() {
        regs::rbp()
    } else {
        regs::rsp()
    };
    let mut slots = vec![Slot::Frame(0); func.locals.len()];
    let mut saved = Vec::new();

    // Register promotion first, so promoted locals take no stack space.
    let mut promoted = vec![false; func.locals.len()];
    if opts.opt.promotes_registers() {
        let counts = use_counts(func);
        let mut order: Vec<usize> = (0..func.locals.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
        let mut avail = opts.compiler.callee_saved().iter();
        for i in order {
            if !is_promotable(&func.locals[i].ty) || no_promote[i] {
                continue;
            }
            let Some(&regnum) = avail.next() else { break };
            let reg = Gpr::new(regnum, Width::B8);
            slots[i] = Slot::Reg(reg);
            saved.push(reg);
            promoted[i] = true;
        }
    }

    // Slot assignment for everything else.
    let rbp_based = base.is_bp();
    let mut cursor: i64 = 0;
    let order: Box<dyn Iterator<Item = usize>> = match opts.compiler {
        Compiler::Gcc => Box::new(0..func.locals.len()),
        // Clang allocates in reverse declaration order — offsets
        // differ between the two compilers for identical programs.
        Compiler::Clang => Box::new((0..func.locals.len()).rev()),
    };
    for i in order {
        if promoted[i] {
            continue;
        }
        let Local { ty, .. } = &func.locals[i];
        let size = types.size_of(ty).max(1) as i64;
        let align = types.align_of(ty).max(1) as i64;
        if rbp_based {
            cursor -= size;
            cursor = -((-cursor + align - 1) / align * align);
            slots[i] = Slot::Frame(cursor as i32);
        } else {
            cursor = (cursor + align - 1) / align * align;
            slots[i] = Slot::Frame(cursor as i32);
            cursor += size;
        }
    }
    let used = cursor.unsigned_abs() as u32;
    let size = used.div_ceil(16) * 16;
    Frame {
        base,
        slots,
        size,
        saved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Rhs, Stmt};

    fn func_with_locals(tys: Vec<CType>) -> Function {
        let locals = tys
            .into_iter()
            .enumerate()
            .map(|(i, ty)| Local {
                name: format!("v{i}"),
                ty,
            })
            .collect::<Vec<_>>();
        let body = (0..locals.len() as u32)
            .map(|i| Stmt::Assign {
                dst: LocalId(i),
                rhs: Rhs::Const(1),
            })
            .collect();
        Function {
            name: "f".into(),
            num_params: 0,
            locals,
            ret: None,
            body,
        }
    }

    #[test]
    fn o0_gcc_uses_negative_rbp_offsets() {
        let f = func_with_locals(vec![
            CType::int(),
            CType::char(),
            CType::ptr_to(CType::Void),
        ]);
        let frame = layout_frame(
            &f,
            &TypeTable::new(),
            CodegenOptions {
                compiler: Compiler::Gcc,
                opt: OptLevel::O0,
            },
            &[false; 3],
        );
        assert!(frame.base.is_bp());
        for s in &frame.slots {
            match s {
                Slot::Frame(off) => assert!(*off < 0, "O0 offsets must be negative"),
                Slot::Reg(_) => panic!("no promotion at O0"),
            }
        }
        assert_eq!(frame.size % 16, 0);
    }

    #[test]
    fn o1_gcc_uses_positive_rsp_offsets() {
        let f = func_with_locals(vec![CType::int(), CType::ptr_to(CType::Void)]);
        let frame = layout_frame(
            &f,
            &TypeTable::new(),
            CodegenOptions {
                compiler: Compiler::Gcc,
                opt: OptLevel::O1,
            },
            &[false; 2],
        );
        assert!(frame.base.is_sp());
        for s in &frame.slots {
            match s {
                Slot::Frame(off) => assert!(*off >= 0),
                Slot::Reg(_) => panic!("no promotion at O1"),
            }
        }
    }

    #[test]
    fn clang_keeps_frame_pointer_at_o2() {
        let opts = CodegenOptions {
            compiler: Compiler::Clang,
            opt: OptLevel::O2,
        };
        assert!(opts.uses_frame_pointer());
        let gcc = CodegenOptions {
            compiler: Compiler::Gcc,
            opt: OptLevel::O2,
        };
        assert!(!gcc.uses_frame_pointer());
    }

    #[test]
    fn o2_promotes_hot_scalars_but_not_structs() {
        let mut types = TypeTable::new();
        let sid = types.add_struct(cati_dwarf::StructDef::layout(
            "s",
            vec![("a".into(), CType::int())],
        ));
        let f = func_with_locals(vec![CType::int(), CType::Struct(sid)]);
        let frame = layout_frame(
            &f,
            &types,
            CodegenOptions {
                compiler: Compiler::Gcc,
                opt: OptLevel::O2,
            },
            &[false; 2],
        );
        assert!(matches!(frame.slot(LocalId(0)), Slot::Reg(_)));
        assert!(matches!(frame.slot(LocalId(1)), Slot::Frame(_)));
        assert_eq!(frame.saved.len(), 1);
    }

    #[test]
    fn address_taken_locals_are_not_promoted() {
        let f = func_with_locals(vec![CType::int()]);
        let frame = layout_frame(
            &f,
            &TypeTable::new(),
            CodegenOptions {
                compiler: Compiler::Gcc,
                opt: OptLevel::O3,
            },
            &[true],
        );
        assert!(matches!(frame.slot(LocalId(0)), Slot::Frame(_)));
    }

    #[test]
    fn slots_do_not_overlap() {
        let tys = vec![
            CType::Bool,
            CType::int(),
            CType::char(),
            CType::Integer(cati_dwarf::IntWidth::Long, cati_dwarf::Signedness::Signed),
            CType::Array(Box::new(CType::int()), 6),
        ];
        for compiler in Compiler::ALL {
            let f = func_with_locals(tys.clone());
            let frame = layout_frame(
                &f,
                &TypeTable::new(),
                CodegenOptions {
                    compiler,
                    opt: OptLevel::O0,
                },
                &[false; 5],
            );
            let types = TypeTable::new();
            let mut ranges: Vec<(i64, i64)> = Vec::new();
            for (i, s) in frame.slots.iter().enumerate() {
                if let Slot::Frame(off) = s {
                    let size = types.size_of(&f.locals[i].ty) as i64;
                    ranges.push((*off as i64, *off as i64 + size));
                }
            }
            ranges.sort();
            for w in ranges.windows(2) {
                assert!(
                    w[0].1 <= w[1].0,
                    "{compiler:?}: overlapping slots {ranges:?}"
                );
            }
        }
    }
}
