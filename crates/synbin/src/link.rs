//! Linking lowered functions into an executable image.
//!
//! Lays out functions sequentially in a text section, resolves
//! intra-function branches and cross-function calls, assigns fake PLT
//! addresses to external routines, and emits the symbol table plus the
//! DWARF-like debug section. The output [`Binary`] is the non-stripped
//! artifact; [`Binary::strip`] produces the classifier's actual input.

use crate::codegen::{lower_function, FuncCode};
use crate::ir::{Callee, Program};
use crate::profile::CodegenOptions;
use cati_asm::binary::{Binary, Symbol};
use cati_asm::codec::encode_insn;
use cati_asm::insn::Operand;
use cati_dwarf::{DebugInfo, FuncRecord, VarRecord};
use rand::rngs::StdRng;

/// Base address of the fake PLT region external calls target.
pub const PLT_BASE: u64 = 0x40_0800;
/// Byte stride between PLT entries.
pub const PLT_STRIDE: u64 = 0x10;

/// Compiles and links `program` into a non-stripped binary.
///
/// The `rng` drives scheduling jitter and literal-pool addresses; pass
/// a seeded generator for reproducible corpora.
pub fn link_program(program: &Program, opts: CodegenOptions, rng: &mut StdRng) -> Binary {
    let lowered: Vec<FuncCode> = program
        .functions
        .iter()
        .map(|f| lower_function(f, &program.types, opts, rng))
        .collect();

    // Function byte lengths.
    let mut scratch = Vec::new();
    let lengths: Vec<u64> = lowered
        .iter()
        .map(|code| {
            code.insns
                .iter()
                .map(|i| {
                    scratch.clear();
                    encode_insn(&mut scratch, i) as u64
                })
                .sum()
        })
        .collect();

    let text_base = Binary::DEFAULT_BASE;
    let mut bases = Vec::with_capacity(lowered.len());
    let mut cursor = text_base;
    for len in &lengths {
        bases.push(cursor);
        cursor += len;
    }

    // Patch addresses and encode.
    let mut text = Vec::new();
    let mut symbols = Vec::new();
    let mut functions = Vec::new();
    for (fi, mut code) in lowered.into_iter().enumerate() {
        let base = bases[fi];
        for &bi in &code.branch_insns {
            if let Some(Operand::Addr(rel)) = code.insns[bi].operands.first().copied() {
                code.insns[bi].operands[0] = Operand::Addr(base + rel);
            }
        }
        for &(ci, callee) in &code.call_fixups {
            let target = match callee {
                Callee::Local(f) => bases[f.0 as usize],
                Callee::Extern(e) => PLT_BASE + u64::from(e) * PLT_STRIDE,
            };
            code.insns[ci].operands[0] = Operand::Addr(target);
        }
        for insn in &code.insns {
            encode_insn(&mut text, insn);
        }

        let func = &program.functions[fi];
        symbols.push(Symbol {
            name: func.name.clone(),
            addr: base,
            len: lengths[fi],
        });
        let locations = code.frame.locations();
        let vars = func
            .locals
            .iter()
            .zip(locations)
            .enumerate()
            .map(|(i, (local, location))| VarRecord {
                name: local.name.clone(),
                ty: local.ty.clone(),
                location,
                is_param: (i as u32) < func.num_params,
            })
            .collect();
        functions.push(FuncRecord {
            name: func.name.clone(),
            entry: base,
            code_len: lengths[fi],
            vars,
        });
    }

    for (e, ext) in program.externs.iter().enumerate() {
        symbols.push(Symbol {
            name: format!("{}@plt", ext.name),
            addr: PLT_BASE + e as u64 * PLT_STRIDE,
            len: PLT_STRIDE,
        });
    }

    let debug = DebugInfo {
        types: program.types.clone(),
        functions,
    };
    Binary {
        name: program.name.clone(),
        text,
        text_base,
        symbols,
        debug: Some(debug.to_bytes()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ExternFunc, FuncId, Function, Local, LocalId, Rhs, Stmt};
    use crate::profile::{Compiler, OptLevel};
    use cati_dwarf::{CType, TypeTable};
    use rand::SeedableRng;

    fn two_function_program() -> Program {
        let callee = Function {
            name: "helper".into(),
            num_params: 1,
            locals: vec![Local {
                name: "x".into(),
                ty: CType::int(),
            }],
            ret: Some(CType::int()),
            body: vec![Stmt::Return(Some(LocalId(0)))],
        };
        let main = Function {
            name: "main".into(),
            num_params: 0,
            locals: vec![Local {
                name: "r".into(),
                ty: CType::int(),
            }],
            ret: Some(CType::int()),
            body: vec![
                Stmt::Assign {
                    dst: LocalId(0),
                    rhs: Rhs::Call(Callee::Local(FuncId(0)), vec![LocalId(0)]),
                },
                Stmt::CallStmt {
                    callee: Callee::Extern(0),
                    args: vec![LocalId(0)],
                },
                Stmt::Return(Some(LocalId(0))),
            ],
        };
        Program {
            name: "demo".into(),
            types: TypeTable::new(),
            functions: vec![callee, main],
            externs: vec![ExternFunc {
                name: "printf".into(),
            }],
        }
    }

    #[test]
    fn linked_binary_disassembles_fully() {
        let p = two_function_program();
        let opts = CodegenOptions {
            compiler: Compiler::Gcc,
            opt: OptLevel::O0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let bin = link_program(&p, opts, &mut rng);
        let insns = bin.disassemble().unwrap();
        assert!(insns.len() > 10);
        // All call targets resolve to symbols.
        for located in &insns {
            if let Some(t) = located.insn.target() {
                if located.insn.mnemonic == cati_asm::mnemonic::Mnemonic::CallQ {
                    assert!(bin.symbol_at(t).is_some(), "unresolved call target {t:#x}");
                }
            }
        }
    }

    #[test]
    fn branch_targets_stay_inside_their_function() {
        let p = two_function_program();
        let opts = CodegenOptions {
            compiler: Compiler::Gcc,
            opt: OptLevel::O0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let bin = link_program(&p, opts, &mut rng);
        let insns = bin.disassemble().unwrap();
        for located in &insns {
            if located.insn.mnemonic.is_control_flow()
                && located.insn.mnemonic != cati_asm::mnemonic::Mnemonic::CallQ
            {
                if let Some(t) = located.insn.target() {
                    let own = bin.symbol_at(located.addr).expect("insn inside a function");
                    assert!(
                        t >= own.addr && t <= own.addr + own.len,
                        "branch at {:#x} escapes {} (target {t:#x})",
                        located.addr,
                        own.name
                    );
                }
            }
        }
    }

    #[test]
    fn debug_info_parses_and_matches_functions() {
        let p = two_function_program();
        let opts = CodegenOptions {
            compiler: Compiler::Gcc,
            opt: OptLevel::O0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let bin = link_program(&p, opts, &mut rng);
        let di = DebugInfo::parse(bin.debug.as_ref().unwrap()).unwrap();
        assert_eq!(di.functions.len(), 2);
        assert_eq!(di.functions[0].name, "helper");
        assert_eq!(di.var_count(), 2);
        // Entries line up with symbols.
        for f in &di.functions {
            let sym = bin.symbols.iter().find(|s| s.name == f.name).unwrap();
            assert_eq!(sym.addr, f.entry);
            assert_eq!(sym.len, f.code_len);
        }
    }

    #[test]
    fn stripping_keeps_code_identical() {
        let p = two_function_program();
        let opts = CodegenOptions {
            compiler: Compiler::Clang,
            opt: OptLevel::O2,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let bin = link_program(&p, opts, &mut rng);
        let stripped = bin.strip();
        assert!(stripped.is_stripped());
        assert_eq!(stripped.text, bin.text);
    }

    #[test]
    fn extern_symbols_use_plt_addresses() {
        let p = two_function_program();
        let opts = CodegenOptions {
            compiler: Compiler::Gcc,
            opt: OptLevel::O1,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let bin = link_program(&p, opts, &mut rng);
        let plt = bin.symbols.iter().find(|s| s.name == "printf@plt").unwrap();
        assert_eq!(plt.addr, PLT_BASE);
    }
}
