//! Corpus construction: many applications × optimization levels.
//!
//! Mirrors the paper's data set (§VII-A): a training set built from
//! many open-source-style projects compiled at `-O0`..`-O3` with one
//! compiler, and a disjoint 12-application test set.

use crate::gen::generate_program;
use crate::link::link_program;
use crate::profile::{CodegenOptions, Compiler, OptLevel};
use crate::typedist::AppProfile;
use cati_asm::binary::Binary;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One built binary and its provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BuiltBinary {
    /// The (non-stripped) binary. Call [`Binary::strip`] for the
    /// classifier's input view.
    pub binary: Binary,
    /// Application the binary belongs to.
    pub app: String,
    /// Options it was "compiled" with.
    pub opts: CodegenOptions,
}

/// A train/test corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    /// Training binaries (many projects, all optimization levels).
    pub train: Vec<BuiltBinary>,
    /// Test binaries (the 12 benchmark applications).
    pub test: Vec<BuiltBinary>,
}

/// Corpus size/shape knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Compiler profile for the whole corpus (the paper controls this
    /// variable; §VIII retrains on Clang).
    pub compiler: Compiler,
    /// How many training projects to instantiate.
    pub train_projects: usize,
    /// Optimization levels used for training builds.
    pub opt_levels: Vec<OptLevel>,
    /// Base RNG seed; corpora are fully reproducible.
    pub seed: u64,
    /// Multiplier on per-application binary counts (0.0 < scale).
    pub scale: f64,
}

impl CorpusConfig {
    /// A small configuration suitable for unit tests.
    pub fn small(seed: u64) -> CorpusConfig {
        CorpusConfig {
            compiler: Compiler::Gcc,
            train_projects: 2,
            opt_levels: vec![OptLevel::O0, OptLevel::O2],
            seed,
            scale: 0.25,
        }
    }

    /// A medium configuration for experiments (minutes of CPU).
    pub fn medium(seed: u64) -> CorpusConfig {
        CorpusConfig {
            compiler: Compiler::Gcc,
            train_projects: 8,
            opt_levels: OptLevel::ALL.to_vec(),
            seed,
            scale: 1.0,
        }
    }

    /// Paper-scale shape (2141 training binaries is approximated by
    /// project-count × opt-levels × scale; expect long build times).
    pub fn paper(seed: u64) -> CorpusConfig {
        CorpusConfig {
            compiler: Compiler::Gcc,
            train_projects: 24,
            opt_levels: OptLevel::ALL.to_vec(),
            seed,
            scale: 4.0,
        }
    }

    /// Same configuration with a different compiler.
    pub fn with_compiler(mut self, compiler: Compiler) -> CorpusConfig {
        self.compiler = compiler;
        self
    }
}

fn scaled(count: u32, scale: f64) -> u32 {
    ((f64::from(count) * scale).round() as u32).max(1)
}

/// Builds the binaries of one application at one optimization level.
pub fn build_app(
    profile: &AppProfile,
    opts: CodegenOptions,
    scale: f64,
    rng: &mut StdRng,
) -> Vec<BuiltBinary> {
    let n = scaled(profile.binaries, scale);
    (0..n)
        .map(|i| {
            let program = generate_program(&format!("{}_{i}", profile.name), profile, rng);
            let binary = link_program(&program, opts, rng);
            BuiltBinary {
                binary,
                app: profile.name.clone(),
                opts,
            }
        })
        .collect()
}

/// Builds a full train/test corpus.
pub fn build_corpus(cfg: &CorpusConfig) -> Corpus {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut train = Vec::new();
    for profile in AppProfile::training_projects(cfg.train_projects) {
        for &opt in &cfg.opt_levels {
            let opts = CodegenOptions {
                compiler: cfg.compiler,
                opt,
            };
            train.extend(build_app(&profile, opts, cfg.scale, &mut rng));
        }
    }
    let mut test = Vec::new();
    for profile in AppProfile::test_apps() {
        // Test binaries use a mix of optimization levels, like the
        // deployed binaries the system would face.
        let n_levels = cfg.opt_levels.len();
        let opt = cfg.opt_levels[rng.gen_range(0..n_levels)];
        let opts = CodegenOptions {
            compiler: cfg.compiler,
            opt,
        };
        test.extend(build_app(&profile, opts, cfg.scale, &mut rng));
    }
    Corpus { train, test }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_corpus_builds_and_disassembles() {
        let corpus = build_corpus(&CorpusConfig::small(3));
        assert!(!corpus.train.is_empty());
        assert_eq!(
            corpus
                .test
                .iter()
                .map(|b| b.app.clone())
                .collect::<std::collections::HashSet<_>>()
                .len(),
            12
        );
        for built in corpus.train.iter().chain(&corpus.test) {
            let insns = built.binary.disassemble().expect("binary must decode");
            assert!(insns.len() > 20, "{} too small", built.binary.name);
            assert!(built.binary.debug.is_some());
        }
    }

    #[test]
    fn corpora_are_reproducible() {
        let a = build_corpus(&CorpusConfig::small(9));
        let b = build_corpus(&CorpusConfig::small(9));
        assert_eq!(a.train.len(), b.train.len());
        for (x, y) in a.train.iter().zip(&b.train) {
            assert_eq!(x.binary.text, y.binary.text);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = build_corpus(&CorpusConfig::small(1));
        let b = build_corpus(&CorpusConfig::small(2));
        let same = a
            .train
            .iter()
            .zip(&b.train)
            .all(|(x, y)| x.binary.text == y.binary.text);
        assert!(!same);
    }

    #[test]
    fn clang_corpus_uses_clang_profile() {
        let cfg = CorpusConfig::small(4).with_compiler(Compiler::Clang);
        let corpus = build_corpus(&cfg);
        assert!(corpus
            .train
            .iter()
            .all(|b| b.opts.compiler == Compiler::Clang));
    }
}
