//! Property tests: the generator → codegen → linker chain is total
//! over seeds, profiles and optimization levels, and its output
//! satisfies binary-level invariants.

use cati_synbin::{
    generate_program, link_program, mutate, AppProfile, CodegenOptions, Compiler, MutationKind,
    OptLevel,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_opts() -> impl Strategy<Value = CodegenOptions> {
    (0usize..2, 0u8..4).prop_map(|(c, o)| CodegenOptions {
        compiler: Compiler::ALL[c],
        opt: OptLevel(o),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_seed_compiles_and_links(seed in any::<u64>(), opts in arb_opts()) {
        let profile = AppProfile::new("prop");
        let mut rng = StdRng::seed_from_u64(seed);
        let program = generate_program("p", &profile, &mut rng);
        let binary = link_program(&program, opts, &mut rng);
        // Invariant 1: the whole text section decodes.
        let insns = binary.disassemble().unwrap();
        prop_assert!(!insns.is_empty());
        // Invariant 2: every function symbol covers decodable code and
        // symbols tile the text section exactly.
        let mut covered = 0u64;
        for sym in binary.symbols.iter().filter(|s| s.addr >= binary.text_base) {
            covered += sym.len;
        }
        prop_assert_eq!(covered, binary.text.len() as u64);
        // Invariant 3: all intra-text branch targets land on an
        // instruction boundary.
        let starts: std::collections::HashSet<u64> = insns.iter().map(|l| l.addr).collect();
        for l in &insns {
            if let Some(t) = l.insn.target() {
                if t >= binary.text_base {
                    prop_assert!(starts.contains(&t), "target {t:#x} not a boundary");
                }
            }
        }
        // Invariant 4: debug info parses and frame variables do not
        // overlap within a function.
        let di = cati_dwarf::DebugInfo::parse(binary.debug.as_ref().unwrap()).unwrap();
        for f in &di.functions {
            let mut ranges: Vec<(i64, i64)> = f
                .vars
                .iter()
                .filter_map(|v| match v.location {
                    cati_dwarf::VarLocation::Frame(off) => {
                        let size = di.types.size_of(&v.ty).max(1) as i64;
                        Some((off as i64, off as i64 + size))
                    }
                    cati_dwarf::VarLocation::Register(_) => None,
                })
                .collect();
            ranges.sort();
            for w in ranges.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "{}: overlapping slots {ranges:?}", f.name);
            }
        }
    }

    #[test]
    fn mutators_are_deterministic_and_self_describing(
        seed in any::<u64>(),
        mutation_seed in any::<u64>(),
        kind_idx in 0usize..MutationKind::ALL.len(),
    ) {
        let profile = AppProfile::new("prop");
        let mut rng = StdRng::seed_from_u64(seed);
        let program = generate_program("p", &profile, &mut rng);
        let opts = CodegenOptions { compiler: Compiler::Gcc, opt: OptLevel(0) };
        let binary = link_program(&program, opts, &mut rng);
        let kind = MutationKind::ALL[kind_idx];

        let (a, ma) = mutate(&binary, kind, mutation_seed);
        let (b, mb) = mutate(&binary, kind, mutation_seed);
        // Same seed: identical mutant, identical record.
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&ma, &mb);
        // Every mutation is machine-readable and attributed.
        prop_assert_eq!(ma.kind, kind);
        prop_assert_eq!(ma.seed, mutation_seed);
        prop_assert_eq!(&ma.binary, &binary.name);
        prop_assert!(!ma.detail.is_empty(), "{kind} gave an empty detail");
        // The record roundtrips through serde for reproducer files.
        let json = serde_json::to_string(&ma).unwrap();
        let back: cati_synbin::Mutation = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, ma);
        // Mutators never touch their input.
        let mut rng2 = StdRng::seed_from_u64(seed);
        let program2 = generate_program("p", &profile, &mut rng2);
        let binary2 = link_program(&program2, opts, &mut rng2);
        prop_assert_eq!(binary, binary2);
    }
}
