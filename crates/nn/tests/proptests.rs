//! Property tests on the NN stack: numerical invariants hold for
//! arbitrary inputs and shapes.

use cati_nn::{layers, Adam, TextCnn, TextCnnConfig, Workspace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn softmax_is_a_distribution(mut z in proptest::collection::vec(-30.0f32..30.0, 1..16)) {
        layers::softmax(&mut z);
        let sum: f32 = z.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        prop_assert!(z.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn softmax_is_shift_invariant(z in proptest::collection::vec(-10.0f32..10.0, 2..8), c in -5.0f32..5.0) {
        let mut a = z.clone();
        let mut b: Vec<f32> = z.iter().map(|v| v + c).collect();
        layers::softmax(&mut a);
        layers::softmax(&mut b);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero(
        mut z in proptest::collection::vec(-10.0f32..10.0, 2..8),
        label_idx in any::<prop::sample::Index>(),
    ) {
        layers::softmax(&mut z);
        let label = label_idx.index(z.len());
        let loss = layers::cross_entropy_backward(&mut z, label);
        prop_assert!(loss >= 0.0 && loss.is_finite());
        let sum: f32 = z.iter().sum();
        prop_assert!(sum.abs() < 1e-4);
    }

    #[test]
    fn forward_pass_is_finite_for_arbitrary_inputs(
        seed in any::<u64>(),
        scale in 0.01f32..8.0,
    ) {
        let cfg = TextCnnConfig::tiny(6, 4);
        let model = TextCnn::new(cfg, seed);
        let x: Vec<f32> = (0..cfg.embed_dim * cfg.seq_len)
            .map(|i| ((i as f32).sin()) * scale)
            .collect();
        let probs = model.predict(&x);
        prop_assert!(probs.iter().all(|p| p.is_finite()));
        let sum: f32 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-3);
    }

    #[test]
    fn maxpool_output_bounds_input(x in proptest::collection::vec(-100.0f32..100.0, 8..64)) {
        let len = x.len() / 2 * 2; // even prefix
        let x = &x[..len];
        let (y, arg) = layers::maxpool2(x, 1, len);
        prop_assert_eq!(y.len(), len / 2);
        for (i, v) in y.iter().enumerate() {
            prop_assert_eq!(*v, x[arg[i] as usize]);
            let (a, b) = (x[2 * i], x[2 * i + 1]);
            prop_assert_eq!(*v, a.max(b));
        }
    }

    #[test]
    fn one_training_step_never_produces_nan(seed in any::<u64>()) {
        let cfg = TextCnnConfig::tiny(4, 3);
        let mut model = TextCnn::new(cfg, seed);
        let data: Vec<(Vec<f32>, usize)> = (0..8)
            .map(|i| (vec![(i as f32) * 0.3 - 1.0; cfg.embed_dim * cfg.seq_len], i % 3))
            .collect();
        let mut opt = Adam::new(0.01);
        let mut rng = StdRng::seed_from_u64(seed);
        let loss = model.train_epoch(&data, &mut opt, 4, &mut rng);
        prop_assert!(loss.is_finite());
        let mut ws = Workspace::default();
        let logits = model.forward(&data[0].0, &mut ws);
        prop_assert!(logits.iter().all(|v| v.is_finite()));
    }
}
