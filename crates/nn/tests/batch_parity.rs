//! Parity harness for the batched inference path: `predict_batch`
//! must agree with per-sample `predict` on every row, for untrained
//! and trained models, across shard boundaries of the work splitter.

use cati_nn::{Adam, TextCnn, TextCnnConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic pseudo-inputs covering a range of magnitudes.
fn inputs(cfg: &TextCnnConfig, n: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|s| {
            (0..cfg.embed_dim * cfg.seq_len)
                .map(|i| ((s * 31 + i) as f32 * 0.37).sin() * 2.0)
                .collect()
        })
        .collect()
}

fn assert_parity(model: &TextCnn, xs: &[Vec<f32>]) {
    let batch = model.predict_batch(xs);
    assert_eq!(batch.rows(), xs.len());
    for (x, row) in xs.iter().zip(batch.rows_iter()) {
        let single = model.predict(x);
        assert_eq!(single.len(), row.len());
        for (a, b) in single.iter().zip(row) {
            assert!((a - b).abs() <= 1e-5, "batch/single diverge: {a} vs {b}");
        }
    }
}

#[test]
fn predict_batch_matches_predict_untrained() {
    let cfg = TextCnnConfig::tiny(6, 4);
    let model = TextCnn::new(cfg, 7);
    // 37 samples: spans several shards of the parallel splitter.
    assert_parity(&model, &inputs(&cfg, 37));
}

#[test]
fn predict_batch_matches_predict_after_training() {
    let cfg = TextCnnConfig::tiny(5, 3);
    let mut model = TextCnn::new(cfg, 11);
    let data: Vec<(Vec<f32>, usize)> = inputs(&cfg, 24)
        .into_iter()
        .enumerate()
        .map(|(i, x)| (x, i % cfg.classes))
        .collect();
    let mut opt = Adam::new(0.01);
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..3 {
        model.train_epoch(&data, &mut opt, 6, &mut rng);
    }
    assert_parity(&model, &inputs(&cfg, 19));
}

#[test]
fn predict_batch_handles_empty_and_single_inputs() {
    let cfg = TextCnnConfig::tiny(4, 3);
    let model = TextCnn::new(cfg, 1);
    let none: Vec<Vec<f32>> = Vec::new();
    assert!(model.predict_batch(&none).is_empty());
    assert_parity(&model, &inputs(&cfg, 1));
}
