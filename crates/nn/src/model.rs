//! The 2-layer text CNN used by every stage classifier.
//!
//! Architecture (paper §V-A): Conv1d(embed→c1, k=3) → ReLU →
//! MaxPool(2) → Conv1d(c1→c2, k=3) → ReLU → MaxPool(2) → Dense(fc) →
//! ReLU → Dense(classes) → softmax. The paper's sizes are c1=32,
//! c2=64, fc=1024 over a 21×96 input; everything is configurable so
//! tests can run a tiny instance.

use crate::layers::{
    cross_entropy_backward, maxpool2, maxpool2_backward, maxpool2_lanes, relu, relu_backward,
    softmax, Conv1d, Dense, LANES,
};
use crate::optim::{Adam, GradBuffers};
use crate::param::ParamBuf;
use crate::tensor::{argmax, Rows, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a [`TextCnn`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TextCnnConfig {
    /// Sequence length (21 for a VUC).
    pub seq_len: usize,
    /// Input channels (96 = 3 tokens × 32 dims at paper scale).
    pub embed_dim: usize,
    /// First conv output channels (paper: 32).
    pub conv1: usize,
    /// Second conv output channels (paper: 64).
    pub conv2: usize,
    /// Fully connected width (paper: 1024).
    pub fc: usize,
    /// Number of output classes.
    pub classes: usize,
}

impl TextCnnConfig {
    /// Paper-scale configuration for a given class count.
    pub fn paper(classes: usize) -> TextCnnConfig {
        TextCnnConfig {
            seq_len: 21,
            embed_dim: 96,
            conv1: 32,
            conv2: 64,
            fc: 1024,
            classes,
        }
    }

    /// Small configuration for fast tests.
    pub fn tiny(embed_dim: usize, classes: usize) -> TextCnnConfig {
        TextCnnConfig {
            seq_len: 21,
            embed_dim,
            conv1: 8,
            conv2: 8,
            fc: 32,
            classes,
        }
    }
}

/// Receives per-batch / per-epoch training statistics from
/// [`TextCnn::train_epoch_hooked`]. Hooks observe training — they
/// never influence it, so the trained weights are bit-identical
/// whatever hook is installed.
pub trait TrainHook {
    /// Whether the trainer should compute the global gradient L2 norm
    /// for [`TrainHook::on_batch`]. The default `false` skips that
    /// extra pass entirely, keeping the no-op path zero-cost.
    fn wants_grad_norm(&self) -> bool {
        false
    }

    /// Called after each minibatch with its mean per-sample loss and,
    /// when requested, the pre-scaling gradient L2 norm.
    fn on_batch(&mut self, batch: usize, mean_loss: f32, grad_norm: Option<f32>) {
        let _ = (batch, mean_loss, grad_norm);
    }

    /// Called once per epoch with the epoch's mean per-sample loss.
    fn on_epoch(&mut self, mean_loss: f32) {
        let _ = mean_loss;
    }
}

/// The do-nothing default [`TrainHook`].
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHook;

impl TrainHook for NoHook {}

/// Random access to `(features, label)` training samples, abstracting
/// over where the floats live: an in-memory `Vec` of embedded rows or
/// an out-of-core source that decodes rows on demand (e.g. on-disk
/// shards). Training over any two sources holding the same samples in
/// the same order is bit-identical — the trainer's shuffle, sharding,
/// and reduction see only indices and lengths.
pub trait SampleSource: Sync {
    /// Number of samples.
    fn len(&self) -> usize;

    /// True when the source holds no samples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sample at `idx` as `(features, label)`. `scratch` is a
    /// caller-owned buffer an out-of-core source may decode the row
    /// into (and borrow from); an in-memory source ignores it and
    /// borrows from itself. Callers reuse one scratch per worker, so
    /// steady-state access allocates nothing.
    fn sample<'a>(&'a self, idx: usize, scratch: &'a mut Vec<f32>) -> (&'a [f32], usize);
}

impl SampleSource for [(Vec<f32>, usize)] {
    fn len(&self) -> usize {
        <[(Vec<f32>, usize)]>::len(self)
    }

    fn sample<'a>(&'a self, idx: usize, _scratch: &'a mut Vec<f32>) -> (&'a [f32], usize) {
        let (x, label) = &self[idx];
        (x, *label)
    }
}

impl SampleSource for Vec<(Vec<f32>, usize)> {
    fn len(&self) -> usize {
        <[(Vec<f32>, usize)]>::len(self)
    }

    fn sample<'a>(&'a self, idx: usize, scratch: &'a mut Vec<f32>) -> (&'a [f32], usize) {
        self.as_slice().sample(idx, scratch)
    }
}

/// A 2-layer convolutional text classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TextCnn {
    /// Configuration.
    pub cfg: TextCnnConfig,
    conv1: Conv1d,
    conv2: Conv1d,
    fc1: Dense,
    fc2: Dense,
}

/// Per-sample forward activations cached for the backward pass.
#[derive(Debug, Default, Clone)]
pub struct Workspace {
    c1: Vec<f32>,
    p1: Vec<f32>,
    a1: Vec<u32>,
    c2: Vec<f32>,
    p2: Vec<f32>,
    a2: Vec<u32>,
    h: Vec<f32>,
    logits: Vec<f32>,
    // backward scratch
    gh: Vec<f32>,
    gp2: Vec<f32>,
    gp1: Vec<f32>,
    gx: Vec<f32>,
}

/// Per-thread scratch for the tiled [`TextCnn::predict_batch`] path:
/// a per-sample [`Workspace`] for partial tail tiles, plus the
/// lane-major activation tiles for full [`LANES`]-sample tiles.
#[derive(Debug, Default)]
struct BatchWorkspace {
    ws: Workspace,
    /// Input tile transposed to `[embed_dim][seq_len][LANES]`.
    xt: Vec<f32>,
    /// First conv activations `[conv1][seq_len][LANES]`.
    c1t: Vec<f32>,
    /// First pooled activations `[conv1][seq_len/2][LANES]`.
    p1t: Vec<f32>,
    /// Second conv activations `[conv2][seq_len/2][LANES]`.
    c2t: Vec<f32>,
    /// Second pooled activations `[conv2][seq_len/4][LANES]` — which
    /// flattened is exactly the `[fc_in][LANES]` tile
    /// [`Dense::forward_batch`] consumes.
    p2t: Vec<f32>,
    /// Hidden activations `[fc][LANES]`.
    h: Vec<f32>,
    /// Logits `[classes][LANES]`.
    logits: Vec<f32>,
}

impl TextCnn {
    /// A freshly initialized model.
    pub fn new(cfg: TextCnnConfig, seed: u64) -> TextCnn {
        let mut rng = StdRng::seed_from_u64(seed);
        let len2 = cfg.seq_len / 2;
        let len4 = len2 / 2;
        TextCnn {
            cfg,
            conv1: Conv1d::new(cfg.embed_dim, cfg.conv1, 3, &mut rng),
            conv2: Conv1d::new(cfg.conv1, cfg.conv2, 3, &mut rng),
            fc1: Dense::new(cfg.conv2 * len4, cfg.fc, &mut rng),
            fc2: Dense::new(cfg.fc, cfg.classes, &mut rng),
        }
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.conv1.param_count()
            + self.conv2.param_count()
            + self.fc1.param_count()
            + self.fc2.param_count()
    }

    /// Gradient buffers with this model's shapes.
    pub fn grad_buffers(&self) -> GradBuffers {
        GradBuffers::new(&[
            self.conv1.w.len(),
            self.conv1.b.len(),
            self.conv2.w.len(),
            self.conv2.b.len(),
            self.fc1.w.len(),
            self.fc1.b.len(),
            self.fc2.w.len(),
            self.fc2.b.len(),
        ])
    }

    /// Immutable views of all parameter tensors, in the order
    /// [`TextCnn::grad_buffers`] uses.
    pub fn params(&self) -> [&[f32]; 8] {
        [
            &self.conv1.w,
            &self.conv1.b,
            &self.conv2.w,
            &self.conv2.b,
            &self.fc1.w,
            &self.fc1.b,
            &self.fc2.w,
            &self.fc2.b,
        ]
    }

    /// How many of the eight parameter buffers currently read straight
    /// out of a memory-mapped container (diagnostics; tests assert the
    /// zero-copy load path actually maps).
    pub fn mapped_param_count(&self) -> usize {
        [
            &self.conv1.w,
            &self.conv1.b,
            &self.conv2.w,
            &self.conv2.b,
            &self.fc1.w,
            &self.fc1.b,
            &self.fc2.w,
            &self.fc2.b,
        ]
        .into_iter()
        .filter(|p| p.is_mapped())
        .count()
    }

    /// Reconstructs a model from a configuration and its eight
    /// parameter tensors in [`TextCnn::params`] order — the
    /// model-container loading path.
    ///
    /// # Errors
    ///
    /// Fails (with a description naming the offending tensor) when a
    /// tensor's length disagrees with the configuration's shapes.
    pub fn from_params(cfg: TextCnnConfig, tensors: &[Vec<f32>]) -> Result<TextCnn, String> {
        Self::from_param_bufs(
            cfg,
            tensors.iter().map(|t| ParamBuf::from(t.clone())).collect(),
        )
    }

    /// [`TextCnn::from_params`] without the copy: the eight buffers
    /// (in the same order) are installed as-is, so mmap-backed
    /// [`ParamBuf`]s flow straight into the model — the zero-copy
    /// CATI1 v2 loading path.
    ///
    /// # Errors
    ///
    /// Fails (naming the offending tensor) when the buffer count or a
    /// buffer's length disagrees with the configuration's shapes.
    pub fn from_param_bufs(cfg: TextCnnConfig, bufs: Vec<ParamBuf>) -> Result<TextCnn, String> {
        const NAMES: [&str; 8] = [
            "conv1.w", "conv1.b", "conv2.w", "conv2.b", "fc1.w", "fc1.b", "fc2.w", "fc2.b",
        ];
        if bufs.len() != NAMES.len() {
            return Err(format!(
                "expected {} parameter tensors, got {}",
                NAMES.len(),
                bufs.len()
            ));
        }
        let mut model = TextCnn::new(cfg, 0);
        for ((dst, src), name) in model.params_mut().into_iter().zip(&bufs).zip(NAMES) {
            if dst.len() != src.len() {
                return Err(format!(
                    "tensor {name}: {} floats, config needs {}",
                    src.len(),
                    dst.len()
                ));
            }
        }
        let mut it = bufs.into_iter();
        let mut next = || it.next().expect("length checked above");
        model.conv1.w = next();
        model.conv1.b = next();
        model.conv2.w = next();
        model.conv2.b = next();
        model.fc1.w = next();
        model.fc1.b = next();
        model.fc2.w = next();
        model.fc2.b = next();
        Ok(model)
    }

    fn params_mut(&mut self) -> [&mut Vec<f32>; 8] {
        [
            self.conv1.w.to_mut(),
            self.conv1.b.to_mut(),
            self.conv2.w.to_mut(),
            self.conv2.b.to_mut(),
            self.fc1.w.to_mut(),
            self.fc1.b.to_mut(),
            self.fc2.w.to_mut(),
            self.fc2.b.to_mut(),
        ]
    }

    /// Quantizes the *weight* matrices in place with `mode` (biases
    /// stay f32 — they are tiny and additive, so quantizing them buys
    /// nothing and costs accuracy). Runtime arithmetic stays f32: the
    /// weights are quantized then immediately dequantized, so this
    /// changes the stored values once and nothing else about
    /// inference.
    pub fn quantize(&mut self, mode: crate::quant::QuantMode) {
        use crate::quant::quantize_dequant_rows;
        let row1 = self.conv1.in_ch * self.conv1.k;
        quantize_dequant_rows(self.conv1.w.to_mut(), row1, mode);
        let row2 = self.conv2.in_ch * self.conv2.k;
        quantize_dequant_rows(self.conv2.w.to_mut(), row2, mode);
        quantize_dequant_rows(self.fc1.w.to_mut(), self.fc1.in_dim, mode);
        quantize_dequant_rows(self.fc2.w.to_mut(), self.fc2.in_dim, mode);
    }

    /// Runs the conv → pool half of the network, leaving the pooled
    /// feature vector in `ws.p2` (and the intermediate activations /
    /// argmaxes the backward pass needs in the workspace).
    fn conv_features(&self, x: &[f32], ws: &mut Workspace) {
        let len = self.cfg.seq_len;
        self.conv1.forward(x, len, &mut ws.c1);
        relu(&mut ws.c1);
        let (p1, a1) = maxpool2(&ws.c1, self.cfg.conv1, len);
        ws.p1 = p1;
        ws.a1 = a1;
        let len2 = len / 2;
        self.conv2.forward(&ws.p1, len2, &mut ws.c2);
        relu(&mut ws.c2);
        let (p2, a2) = maxpool2(&ws.c2, self.cfg.conv2, len2);
        ws.p2 = p2;
        ws.a2 = a2;
    }

    /// Forward pass into `ws`; returns the logits slice.
    pub fn forward<'w>(&self, x: &[f32], ws: &'w mut Workspace) -> &'w [f32] {
        self.conv_features(x, ws);
        self.fc1.forward(&ws.p2, &mut ws.h);
        relu(&mut ws.h);
        self.fc2.forward(&ws.h, &mut ws.logits);
        &ws.logits
    }

    /// Class probabilities for one input.
    pub fn predict(&self, x: &[f32]) -> Vec<f32> {
        let mut ws = Workspace::default();
        self.forward(x, &mut ws);
        let mut probs = ws.logits;
        softmax(&mut probs);
        probs
    }

    /// Class probabilities for a batch of inputs, written into one
    /// flat `n × classes` [`Tensor`]. Row `i` equals
    /// `predict(row i)`; workers reuse one [`Workspace`] per thread
    /// instead of allocating activations (or an output row) per
    /// sample. Inputs are anything implementing [`Rows`] — a
    /// [`Tensor`], owned rows, or borrowed rows (`Vec<&[f32]>`), so
    /// callers can batch a selected subset of a table without copying
    /// it.
    ///
    /// Samples are processed in [`LANES`]-row tiles that run the
    /// whole network *lane-major* — samples as the innermost
    /// contiguous dimension. The input rows transpose once into an
    /// `[embed_dim][seq_len][LANES]` tile, then every layer
    /// ([`Conv1d::forward_lanes`], [`maxpool2_lanes`], [`relu`],
    /// [`Dense::forward_batch`]) streams its weights through once per
    /// tile while operating on 8 contiguous sample lanes at a time.
    /// Per-sample accumulation chains are unchanged, so every
    /// probability is bitwise identical to the one-sample path
    /// (pinned by test and by the golden-prediction fixtures).
    pub fn predict_batch<R: Rows + ?Sized>(&self, xs: &R) -> Tensor {
        const L: usize = LANES;
        let classes = self.cfg.classes;
        let len = self.cfg.seq_len;
        let len2 = len / 2;
        Tensor::build_row_blocks(
            xs.count(),
            classes,
            L,
            BatchWorkspace::default,
            |bw, first, chunk| {
                let n = chunk.len() / classes;
                if n < L {
                    // Partial tail tile: plain per-sample path.
                    for (j, out) in chunk.chunks_mut(classes).enumerate() {
                        self.forward(xs.row_at(first + j), &mut bw.ws);
                        out.copy_from_slice(&bw.ws.logits);
                        softmax(out);
                    }
                    return;
                }
                bw.xt.clear();
                bw.xt.resize(self.cfg.embed_dim * len * L, 0.0);
                for j in 0..L {
                    for (e, &v) in xs.row_at(first + j).iter().enumerate() {
                        bw.xt[e * L + j] = v;
                    }
                }
                self.conv1.forward_lanes(&bw.xt, len, &mut bw.c1t);
                relu(&mut bw.c1t);
                maxpool2_lanes(&bw.c1t, self.cfg.conv1, len, &mut bw.p1t);
                self.conv2.forward_lanes(&bw.p1t, len2, &mut bw.c2t);
                relu(&mut bw.c2t);
                maxpool2_lanes(&bw.c2t, self.cfg.conv2, len2, &mut bw.p2t);
                self.fc1.forward_batch(&bw.p2t, &mut bw.h);
                relu(&mut bw.h);
                self.fc2.forward_batch(&bw.h, &mut bw.logits);
                for (j, out) in chunk.chunks_mut(classes).enumerate() {
                    for (c, dst) in out.iter_mut().enumerate() {
                        *dst = bw.logits[c * L + j];
                    }
                    softmax(out);
                }
            },
        )
    }

    /// Forward + backward for one `(x, label)`; accumulates gradients
    /// into `grads` and returns the sample loss.
    pub fn backward(
        &self,
        x: &[f32],
        label: usize,
        ws: &mut Workspace,
        grads: &mut GradBuffers,
    ) -> f32 {
        let len = self.cfg.seq_len;
        let len2 = len / 2;
        self.forward(x, ws);
        let mut probs = ws.logits.clone();
        softmax(&mut probs);
        let loss = cross_entropy_backward(&mut probs, label);
        let glogits = probs;

        let [gc1w, gc1b, gc2w, gc2b, gf1w, gf1b, gf2w, gf2b] = grads.as_mut_arrays();
        self.fc2.backward(&ws.h, &glogits, &mut ws.gh, gf2w, gf2b);
        relu_backward(&ws.h, &mut ws.gh);
        let gh = std::mem::take(&mut ws.gh);
        self.fc1.backward(&ws.p2, &gh, &mut ws.gp2, gf1w, gf1b);
        ws.gh = gh;
        let mut gc2 = maxpool2_backward(&ws.gp2, &ws.a2, self.cfg.conv2 * len2);
        relu_backward(&ws.c2, &mut gc2);
        self.conv2
            .backward(&ws.p1, len2, &gc2, &mut ws.gp1, gc2w, gc2b);
        let mut gc1 = maxpool2_backward(&ws.gp1, &ws.a1, self.cfg.conv1 * len);
        relu_backward(&ws.c1, &mut gc1);
        self.conv1.backward(x, len, &gc1, &mut ws.gx, gc1w, gc1b);
        loss
    }

    /// Applies accumulated gradients through `opt` and clears them.
    pub fn apply_grads(&mut self, grads: &mut GradBuffers, opt: &mut Adam, batch_size: usize) {
        let scale = 1.0 / batch_size.max(1) as f32;
        grads.scale(scale);
        let params = self.params_mut();
        opt.step(params, grads);
        grads.zero();
    }

    /// Accumulated gradients and summed loss of one minibatch (the
    /// samples `idxs` indexes into `data`).
    ///
    /// The minibatch is split into fixed shards — a function of the
    /// batch alone, never of the thread count. Each worker owns one
    /// [`Workspace`] and one [`GradBuffers`] per shard, accumulates
    /// the shard's samples sequentially, and the shard buffers are
    /// reduced strictly in shard order. Gradient sums are therefore
    /// bit-identical for any thread count.
    pub fn batch_gradients<S: SampleSource + ?Sized>(
        &self,
        data: &S,
        idxs: &[usize],
    ) -> (GradBuffers, f64) {
        /// Samples per worker shard: small enough to balance load,
        /// large enough to amortize the per-shard buffer allocation.
        const SHARD: usize = 8;
        let shards: Vec<&[usize]> = idxs.chunks(SHARD).collect();
        let partials: Vec<(GradBuffers, f64)> = shards
            .par_iter()
            .map(|shard| {
                let mut ws = Workspace::default();
                let mut scratch = Vec::new();
                let mut g = self.grad_buffers();
                let mut loss = 0.0f64;
                for &i in *shard {
                    let (x, label) = data.sample(i, &mut scratch);
                    loss += f64::from(self.backward(x, label, &mut ws, &mut g));
                }
                (g, loss)
            })
            .collect();
        let mut partials = partials.into_iter();
        let (mut grads, mut loss) = partials
            .next()
            .unwrap_or_else(|| (self.grad_buffers(), 0.0));
        for (g, l) in partials {
            grads.add(&g);
            loss += l;
        }
        (grads, loss)
    }

    /// One epoch of mini-batch training over `data`, shuffled with
    /// `rng`; per-sample backward passes run data-parallel via
    /// [`TextCnn::batch_gradients`]. Returns the mean loss.
    pub fn train_epoch<S: SampleSource + ?Sized>(
        &mut self,
        data: &S,
        opt: &mut Adam,
        batch_size: usize,
        rng: &mut StdRng,
    ) -> f32 {
        self.train_epoch_hooked(data, opt, batch_size, rng, &mut NoHook)
    }

    /// [`TextCnn::train_epoch`] with a telemetry hook: the hook sees
    /// each minibatch's mean loss (plus the gradient norm when it
    /// asks for it) and the epoch's mean loss. Training results are
    /// identical to the unhooked path for any hook.
    pub fn train_epoch_hooked<S: SampleSource + ?Sized>(
        &mut self,
        data: &S,
        opt: &mut Adam,
        batch_size: usize,
        rng: &mut StdRng,
        hook: &mut dyn TrainHook,
    ) -> f32 {
        let mut order: Vec<usize> = (0..data.len()).collect();
        order.shuffle(rng);
        let mut total_loss = 0.0f64;
        let wants_norm = hook.wants_grad_norm();
        for (batch, chunk) in order.chunks(batch_size.max(1)).enumerate() {
            let (mut grads, loss) = self.batch_gradients(data, chunk);
            total_loss += loss;
            let grad_norm = wants_norm.then(|| grads.norm());
            hook.on_batch(batch, (loss / chunk.len().max(1) as f64) as f32, grad_norm);
            self.apply_grads(&mut grads, opt, chunk.len());
        }
        let mean = (total_loss / data.len().max(1) as f64) as f32;
        hook.on_epoch(mean);
        mean
    }

    /// Classification accuracy over `data`; workers share one
    /// [`Workspace`] (and one decode scratch) per shard.
    pub fn accuracy<S: SampleSource + ?Sized>(&self, data: &S) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let idxs: Vec<usize> = (0..data.len()).collect();
        let correct: usize = idxs
            .par_iter()
            .map_init(
                || (Workspace::default(), Vec::new()),
                |(ws, scratch), &i| {
                    let (x, label) = data.sample(i, scratch);
                    // argmax over logits == argmax over softmax probs.
                    self.forward(x, ws);
                    usize::from(argmax(&ws.logits) == label)
                },
            )
            .sum();
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset(cfg: TextCnnConfig, n: usize) -> Vec<(Vec<f32>, usize)> {
        // Class 0: energy at the left of the sequence; class 1: right.
        let mut rng = StdRng::seed_from_u64(1234);
        (0..n)
            .map(|i| {
                let label = i % 2;
                let mut x = vec![0.0f32; cfg.embed_dim * cfg.seq_len];
                use rand::Rng;
                for c in 0..cfg.embed_dim {
                    for t in 0..cfg.seq_len {
                        let on = if label == 0 {
                            t < cfg.seq_len / 2
                        } else {
                            t >= cfg.seq_len / 2
                        };
                        x[c * cfg.seq_len + t] = if on {
                            1.0 + rng.gen_range(-0.2..0.2)
                        } else {
                            rng.gen_range(-0.2..0.2)
                        };
                    }
                }
                (x, label)
            })
            .collect()
    }

    #[test]
    fn forward_shapes() {
        let cfg = TextCnnConfig::tiny(6, 3);
        let model = TextCnn::new(cfg, 7);
        let x = vec![0.5; cfg.embed_dim * cfg.seq_len];
        let probs = model.predict(&x);
        assert_eq!(probs.len(), 3);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn learns_a_separable_toy_problem() {
        let cfg = TextCnnConfig::tiny(4, 2);
        let mut model = TextCnn::new(cfg, 3);
        let data = toy_dataset(cfg, 120);
        let mut opt = Adam::new(0.01);
        let mut rng = StdRng::seed_from_u64(5);
        let initial = model.accuracy(&data);
        for _ in 0..8 {
            model.train_epoch(&data, &mut opt, 16, &mut rng);
        }
        let trained = model.accuracy(&data);
        assert!(
            trained > 0.95,
            "accuracy {initial:.2} -> {trained:.2}, failed to learn"
        );
    }

    #[test]
    fn loss_decreases() {
        let cfg = TextCnnConfig::tiny(4, 2);
        let mut model = TextCnn::new(cfg, 11);
        let data = toy_dataset(cfg, 64);
        let mut opt = Adam::new(0.005);
        let mut rng = StdRng::seed_from_u64(6);
        let first = model.train_epoch(&data, &mut opt, 16, &mut rng);
        let mut last = first;
        for _ in 0..5 {
            last = model.train_epoch(&data, &mut opt, 16, &mut rng);
        }
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn predict_batch_is_bitwise_equal_to_per_sample_predict() {
        let cfg = TextCnnConfig::tiny(4, 5);
        let model = TextCnn::new(cfg, 21);
        // 19 rows: two full 8-lane tiles plus a 3-row tail.
        let mut rng = StdRng::seed_from_u64(77);
        use rand::Rng;
        let rows: Vec<Vec<f32>> = (0..19)
            .map(|_| {
                (0..cfg.embed_dim * cfg.seq_len)
                    .map(|_| rng.gen_range(-1.5f32..1.5))
                    .collect()
            })
            .collect();
        let batch = model.predict_batch(&rows);
        assert_eq!((batch.rows(), batch.cols()), (19, 5));
        for (i, row) in rows.iter().enumerate() {
            let single = model.predict(row);
            let a: Vec<u32> = batch.row(i).iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = single.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "tiled batch row {i} diverges from predict()");
        }
    }

    #[test]
    fn serialization_roundtrip_preserves_predictions() {
        let cfg = TextCnnConfig::tiny(4, 3);
        let model = TextCnn::new(cfg, 9);
        let json = serde_json::to_string(&model).unwrap();
        let restored: TextCnn = serde_json::from_str(&json).unwrap();
        let x = vec![0.25; cfg.embed_dim * cfg.seq_len];
        assert_eq!(model.predict(&x), restored.predict(&x));
    }

    #[test]
    fn paper_config_has_expected_scale() {
        let model = TextCnn::new(TextCnnConfig::paper(19), 0);
        // conv1 ~9k, conv2 ~6k, fc1 320*1024 ~328k, fc2 ~19k.
        let n = model.param_count();
        assert!(n > 300_000 && n < 500_000, "param count {n}");
    }
}
