//! Flat row-major tensors and the shared argmax.
//!
//! Every batch that used to travel as a nested vector-of-rows — VUC
//! embeddings, CNN batch outputs, leaf distributions, cached
//! embedding artifacts — is a rectangle: `rows` samples of a uniform
//! `cols` width. [`Tensor`] stores that rectangle in one contiguous
//! allocation, so building a batch costs one allocation instead of
//! one per row, rows are cache-adjacent, and serialization frames the
//! whole block at once.

use serde::{DeError, Deserialize, Serialize, Value};

/// Index of the maximum element of `xs` under IEEE `total_cmp`
/// ordering.
///
/// Semantics (pinned by unit and property tests, bitwise-equal to the
/// hand-rolled `max_by(total_cmp)` loops this helper replaced):
///
/// - **Ties** resolve to the *last* maximal element (what
///   `Iterator::max_by` returns).
/// - **NaN** orders above `+inf` under `total_cmp`, so any NaN wins
///   (the last one if several).
/// - An **empty** slice returns `0`.
pub fn argmax(xs: &[f32]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// A dense `rows × cols` matrix of `f32` in one contiguous row-major
/// allocation.
///
/// Serialization is framed as `{rows, cols, data}` with `data` the
/// flat row-major block, and deserialization rejects any value whose
/// `data` length is not exactly `rows × cols`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// A zero-filled `rows × cols` tensor.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps a flat row-major block as a `rows × cols` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(
            data.len(),
            rows * cols,
            "flat block of {} floats cannot be a {rows}×{cols} tensor",
            data.len()
        );
        Tensor { rows, cols, data }
    }

    /// Copies uniform-width rows into one contiguous tensor. An empty
    /// iterator yields a `0 × 0` tensor.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows<R: AsRef<[f32]>>(rows: impl IntoIterator<Item = R>) -> Tensor {
        let mut data = Vec::new();
        let mut cols = 0usize;
        let mut n = 0usize;
        for row in rows {
            let row = row.as_ref();
            if n == 0 {
                cols = row.len();
                data = Vec::with_capacity(cols * 8);
            }
            assert_eq!(row.len(), cols, "row {n} has {} of {cols} cols", row.len());
            data.extend_from_slice(row);
            n += 1;
        }
        Tensor {
            rows: n,
            cols,
            data,
        }
    }

    /// Builds a `rows × cols` tensor by filling each row with
    /// `fill(state, row_index, row)`, data-parallel across the
    /// ambient rayon thread count. Each worker thread owns one
    /// `init()` state (scratch space — [`fill`] must write the row as
    /// a pure function of its index). Rows are disjoint positional
    /// writes, so the result is bit-identical for any thread count.
    pub fn build_rows<S>(
        rows: usize,
        cols: usize,
        init: impl Fn() -> S + Sync,
        fill: impl Fn(&mut S, usize, &mut [f32]) + Sync,
    ) -> Tensor {
        if rows == 0 || cols == 0 {
            return Tensor {
                rows,
                cols,
                data: vec![0.0; rows * cols],
            };
        }
        let workers = rayon::current_num_threads().clamp(1, rows);
        if workers == 1 {
            // Sequential path: grow the block one row at a time and
            // fill each row in place while its cache lines are still
            // hot from the zero-extend, so the output streams to
            // memory once instead of a full-block zero-fill stream
            // followed by a fill stream.
            let mut data = Vec::with_capacity(rows * cols);
            let mut state = init();
            for i in 0..rows {
                let start = data.len();
                data.resize(start + cols, 0.0);
                fill(&mut state, i, &mut data[start..]);
            }
            return Tensor { rows, cols, data };
        }
        let mut out = Tensor::zeros(rows, cols);
        // Split the flat block into one contiguous row-range per
        // worker and fill the ranges on scoped threads: safe disjoint
        // mutation without any unsafe or per-row allocation.
        let per_worker = rows.div_ceil(workers);
        let mut blocks: Vec<(usize, &mut [f32])> = Vec::with_capacity(workers);
        let mut rest: &mut [f32] = &mut out.data;
        let mut start = 0usize;
        while start < rows {
            let take = per_worker.min(rows - start);
            let (head, tail) = rest.split_at_mut(take * cols);
            blocks.push((start, head));
            rest = tail;
            start += take;
        }
        std::thread::scope(|s| {
            for (first, block) in blocks {
                let init = &init;
                let fill = &fill;
                s.spawn(move || {
                    let mut state = init();
                    for (j, row) in block.chunks_mut(cols).enumerate() {
                        fill(&mut state, first + j, row);
                    }
                });
            }
        });
        out
    }

    /// Like [`Tensor::build_rows`], but hands each worker a *block*
    /// of up to `block` consecutive rows at a time:
    /// `fill(state, first_row, rows)` receives the first row index of
    /// the block and its `n × cols` flat slice. Batched kernels use
    /// this to amortize per-sample work (weight streaming, tile
    /// transposes) across a micro-batch.
    ///
    /// Work splits at block boundaries only, so block contents — and
    /// therefore every output bit — depend on the block index alone,
    /// never on the thread count.
    pub fn build_row_blocks<S>(
        rows: usize,
        cols: usize,
        block: usize,
        init: impl Fn() -> S + Sync,
        fill: impl Fn(&mut S, usize, &mut [f32]) + Sync,
    ) -> Tensor {
        let block = block.max(1);
        let mut out = Tensor::zeros(rows, cols);
        if rows == 0 || cols == 0 {
            return out;
        }
        let nblocks = rows.div_ceil(block);
        let workers = rayon::current_num_threads().clamp(1, nblocks);
        let run = |state: &mut S, first: usize, chunk: &mut [f32]| {
            let mut row = first;
            for piece in chunk.chunks_mut(block * cols) {
                fill(state, row, piece);
                row += piece.len() / cols;
            }
        };
        if workers == 1 {
            let mut state = init();
            run(&mut state, 0, &mut out.data);
            return out;
        }
        // One contiguous run of whole blocks per worker; disjoint
        // mutable splits, no unsafe.
        let per_worker = nblocks.div_ceil(workers) * block;
        let mut spans: Vec<(usize, &mut [f32])> = Vec::with_capacity(workers);
        let mut rest: &mut [f32] = &mut out.data;
        let mut start = 0usize;
        while start < rows {
            let take = per_worker.min(rows - start);
            let (head, tail) = rest.split_at_mut(take * cols);
            spans.push((start, head));
            rest = tail;
            start += take;
        }
        std::thread::scope(|s| {
            for (first, span) in spans {
                let init = &init;
                let run = &run;
                s.spawn(move || {
                    let mut state = init();
                    run(&mut state, first, span);
                });
            }
        });
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the tensor has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "row {i} out of {}", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// One row as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.rows, "row {i} out of {}", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterates the rows in order.
    pub fn rows_iter(&self) -> impl ExactSizeIterator<Item = &[f32]> + '_ {
        // `chunks_exact(0)` panics; an empty tensor has no rows to
        // yield, so any positive width gives the same empty iterator.
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// The whole row-major block.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Consumes the tensor, returning the flat row-major block.
    pub fn into_flat(self) -> Vec<f32> {
        self.data
    }
}

impl std::ops::Index<usize> for Tensor {
    type Output = [f32];

    fn index(&self, i: usize) -> &[f32] {
        self.row(i)
    }
}

impl Serialize for Tensor {
    fn to_value(&self) -> Value {
        let mut m = serde::Map::new();
        m.insert("rows".to_string(), self.rows.to_value());
        m.insert("cols".to_string(), self.cols.to_value());
        m.insert("data".to_string(), self.data.to_value());
        Value::Object(m)
    }
}

impl Deserialize for Tensor {
    fn from_value(v: &Value) -> Result<Tensor, DeError> {
        let m = serde::as_object_for(v, "Tensor")?;
        let rows: usize = serde::field(m, "rows", "Tensor")?;
        let cols: usize = serde::field(m, "cols", "Tensor")?;
        let data: Vec<f32> = serde::field(m, "data", "Tensor")?;
        if data.len() != rows * cols {
            return Err(DeError(format!(
                "Tensor {rows}×{cols} needs {} floats, got {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(Tensor { rows, cols, data })
    }
}

/// Anything that presents uniform-width `f32` rows to a batched
/// consumer: a [`Tensor`], a slice of owned rows, or a slice of
/// borrowed rows (`Vec<&[f32]>` for batching a selected subset of a
/// table without copying it).
pub trait Rows: Sync {
    /// Number of rows.
    fn count(&self) -> usize;

    /// Row `i` as a slice.
    fn row_at(&self, i: usize) -> &[f32];
}

impl Rows for Tensor {
    fn count(&self) -> usize {
        self.rows()
    }

    fn row_at(&self, i: usize) -> &[f32] {
        self.row(i)
    }
}

impl<X: AsRef<[f32]> + Sync> Rows for [X] {
    fn count(&self) -> usize {
        self.len()
    }

    fn row_at(&self, i: usize) -> &[f32] {
        self[i].as_ref()
    }
}

impl<X: AsRef<[f32]> + Sync> Rows for Vec<X> {
    fn count(&self) -> usize {
        self.len()
    }

    fn row_at(&self, i: usize) -> &[f32] {
        self[i].as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The loop `argmax` replaced, kept verbatim as the oracle.
    fn argmax_oracle(xs: &[f32]) -> usize {
        xs.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    #[test]
    fn argmax_basics() {
        assert_eq!(argmax(&[]), 0);
        assert_eq!(argmax(&[1.0]), 0);
        assert_eq!(argmax(&[0.1, 0.7, 0.2]), 1);
        // Ties pick the LAST maximal element.
        assert_eq!(argmax(&[0.5, 0.5]), 1);
        assert_eq!(argmax(&[0.5, 0.5, 0.1]), 1);
        // NaN orders above everything under total_cmp.
        assert_eq!(argmax(&[f32::NAN, 1.0]), 0);
        assert_eq!(argmax(&[1.0, f32::NAN, f32::INFINITY]), 1);
        // -0.0 < +0.0 under total_cmp.
        assert_eq!(argmax(&[0.0, -0.0]), 0);
    }

    proptest! {
        #[test]
        fn argmax_matches_the_replaced_loops(xs in proptest::collection::vec(-1e6f32..1e6, 0..40)) {
            prop_assert_eq!(argmax(&xs), argmax_oracle(&xs));
        }

        #[test]
        fn argmax_matches_oracle_with_specials(
            xs in proptest::collection::vec(
                prop_oneof![
                    Just(f32::NAN), Just(f32::INFINITY), Just(f32::NEG_INFINITY),
                    Just(0.0f32), Just(-0.0f32), -1e3f32..1e3f32,
                ],
                0..16,
            )
        ) {
            prop_assert_eq!(argmax(&xs), argmax_oracle(&xs));
        }
    }

    #[test]
    fn shapes_and_access() {
        let t = Tensor::from_flat(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!((t.rows(), t.cols()), (2, 3));
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(&t[0], &[1.0, 2.0, 3.0]);
        let rows: Vec<&[f32]> = t.rows_iter().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], t.row(1));
        assert_eq!(t.clone().into_flat(), t.as_slice());
    }

    #[test]
    fn from_rows_concatenates() {
        let t = Tensor::from_rows([[1.0f32, 2.0], [3.0, 4.0]]);
        assert_eq!((t.rows(), t.cols()), (2, 2));
        assert_eq!(t.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        let empty = Tensor::from_rows(Vec::<Vec<f32>>::new());
        assert_eq!((empty.rows(), empty.cols()), (0, 0));
        assert!(empty.is_empty());
        assert_eq!(empty.rows_iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "row 1 has 1 of 2 cols")]
    fn from_rows_rejects_ragged_input() {
        Tensor::from_rows(vec![vec![1.0f32, 2.0], vec![3.0]]);
    }

    #[test]
    fn build_rows_is_thread_count_invariant() {
        let fill = |_: &mut (), i: usize, row: &mut [f32]| {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (i * 31 + j) as f32 * 0.25;
            }
        };
        let wide = Tensor::build_rows(37, 5, || (), fill);
        let narrow = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| Tensor::build_rows(37, 5, || (), fill));
        assert_eq!(wide, narrow);
        assert_eq!(wide.row(36)[4], (36 * 31 + 4) as f32 * 0.25);
        // Degenerate shapes don't spawn or panic.
        assert!(Tensor::build_rows(0, 5, || (), fill).is_empty());
        assert_eq!(Tensor::build_rows(3, 0, || (), fill).rows(), 3);
    }

    #[test]
    fn build_row_blocks_matches_build_rows_and_is_thread_invariant() {
        let per_row = |i: usize, j: usize| (i * 17 + j) as f32 * 0.5;
        let rows_fill = move |_: &mut (), i: usize, row: &mut [f32]| {
            for (j, v) in row.iter_mut().enumerate() {
                *v = per_row(i, j);
            }
        };
        let blocks_fill = move |_: &mut (), first: usize, chunk: &mut [f32]| {
            for (r, row) in chunk.chunks_mut(3).enumerate() {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = per_row(first + r, j);
                }
            }
        };
        // 29 rows of 3 with block 8: three full tiles + a 5-row tail.
        let by_rows = Tensor::build_rows(29, 3, || (), rows_fill);
        let by_blocks = Tensor::build_row_blocks(29, 3, 8, || (), blocks_fill);
        assert_eq!(by_rows, by_blocks);
        let single = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| Tensor::build_row_blocks(29, 3, 8, || (), blocks_fill));
        assert_eq!(by_blocks, single);
        assert!(Tensor::build_row_blocks(0, 3, 8, || (), blocks_fill).is_empty());
    }

    #[test]
    fn serde_frames_rows_cols_data() {
        let t = Tensor::from_flat(2, 2, vec![0.5, -1.25, 3.0, 0.0]);
        let v = t.to_value();
        let back = Tensor::from_value(&v).unwrap();
        assert_eq!(back, t);
        // A frame whose data length disagrees with its shape is
        // rejected, not silently reshaped.
        let mut m = serde::Map::new();
        m.insert("rows".into(), 2usize.to_value());
        m.insert("cols".into(), 3usize.to_value());
        m.insert("data".into(), vec![1.0f32].to_value());
        assert!(Tensor::from_value(&Value::Object(m)).is_err());
    }

    #[test]
    fn rows_trait_views_agree() {
        let t = Tensor::from_rows([[1.0f32, 2.0], [3.0, 4.0]]);
        let owned = vec![vec![1.0f32, 2.0], vec![3.0, 4.0]];
        let borrowed: Vec<&[f32]> = owned.iter().map(|r| r.as_slice()).collect();
        for r in [&t as &dyn Rows, &owned as &dyn Rows, &borrowed as &dyn Rows] {
            assert_eq!(r.count(), 2);
            assert_eq!(r.row_at(1), &[3.0, 4.0]);
        }
    }
}
