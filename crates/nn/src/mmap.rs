//! Read-only memory-mapped files and typed `f32` views into them.
//!
//! This is the zero-copy substrate under the CATI1 v2 weight loader:
//! a [`MappedFile`] wraps one `mmap(2)` of a model container, and a
//! [`MapSlice`] is a bounds- and alignment-checked `f32` window into
//! it. The v2 container 64-byte-aligns every tensor payload precisely
//! so these windows are valid (f32 needs 4-byte alignment; 64 also
//! gives cache-line-aligned weight rows).
//!
//! All unsafe code in the workspace lives in this module, behind two
//! invariants established at construction time and unchanged for the
//! life of the value:
//!
//! - a `MappedFile`'s pointer/length pair describes one live private
//!   read-only mapping (or a heap buffer on non-unix platforms and on
//!   mmap failure), unmapped only in `Drop`;
//! - a `MapSlice` lies fully inside its file's bytes and starts on a
//!   4-byte boundary, so viewing it as `&[f32]` is valid.
//!
//! The mapping is `MAP_PRIVATE`, so a writer replacing the model file
//! via rename (the atomic-save path) never mutates pages already
//! mapped by a loaded model.

use std::fs::File;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// One read-only file mapping (or a heap fallback holding the same
/// bytes, on platforms without `mmap` or when mapping fails).
pub struct MappedFile {
    ptr: *const u8,
    len: usize,
    /// `Some` when the file had to be read into memory instead of
    /// mapped; `ptr` then points into this buffer.
    heap: Option<Vec<u8>>,
}

// SAFETY: the mapping is read-only and never mutated after
// construction; sharing immutable views across threads is sound.
#[allow(unsafe_code)]
unsafe impl Send for MappedFile {}
#[allow(unsafe_code)]
unsafe impl Sync for MappedFile {}

#[cfg(unix)]
mod sys {
    use core::ffi::c_void;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// Maps `len` bytes of `file` read-only; `None` on failure (the
    /// caller falls back to a heap read).
    pub fn map(file: &std::fs::File, len: usize) -> Option<*const u8> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return None;
        }
        // SAFETY: a fresh private read-only mapping of a file we hold
        // open; the kernel validates the fd and length.
        #[allow(unsafe_code)]
        let p = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        (!p.is_null() && p as isize != -1).then_some(p as *const u8)
    }

    /// Unmaps a region previously returned by [`map`].
    pub fn unmap(ptr: *const u8, len: usize) {
        // SAFETY: `ptr`/`len` came from a successful `map` call and
        // are unmapped exactly once, in `MappedFile::drop`.
        #[allow(unsafe_code)]
        unsafe {
            munmap(ptr as *mut c_void, len);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    /// No mmap on this platform: always fall back to a heap read.
    pub fn map(_file: &std::fs::File, _len: usize) -> Option<*const u8> {
        None
    }

    pub fn unmap(_ptr: *const u8, _len: usize) {}
}

impl MappedFile {
    /// Opens `path` and maps it read-only. When mapping is
    /// unavailable (non-unix, empty file, or `mmap` failure) the file
    /// is read into memory instead — [`MappedFile::is_mapped`]
    /// reports which happened, and every other operation behaves
    /// identically.
    ///
    /// # Errors
    ///
    /// Propagates the underlying open/metadata/read failure.
    pub fn open(path: &Path) -> io::Result<Arc<MappedFile>> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: file too large to map", path.display()),
            )
        })?;
        if let Some(ptr) = sys::map(&file, len) {
            return Ok(Arc::new(MappedFile {
                ptr,
                len,
                heap: None,
            }));
        }
        drop(file);
        let heap = std::fs::read(path)?;
        Ok(Arc::new(MappedFile {
            ptr: heap.as_ptr(),
            len: heap.len(),
            heap: Some(heap),
        }))
    }

    /// The file's bytes.
    pub fn bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr`/`len` describe either a live read-only
        // mapping or the heap buffer owned by `self`, both immutable
        // until `Drop`.
        #[allow(unsafe_code)]
        unsafe {
            std::slice::from_raw_parts(self.ptr, self.len)
        }
    }

    /// Whether the bytes come from a real `mmap` (as opposed to the
    /// heap-read fallback).
    pub fn is_mapped(&self) -> bool {
        self.heap.is_none()
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        if self.heap.is_none() && self.len > 0 {
            sys::unmap(self.ptr, self.len);
        }
    }
}

impl std::fmt::Debug for MappedFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedFile")
            .field("len", &self.len)
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

/// A checked `f32` window into a [`MappedFile`]: `elems` floats
/// starting at byte `off`.
#[derive(Clone, Debug)]
pub struct MapSlice {
    file: Arc<MappedFile>,
    off: usize,
    elems: usize,
}

impl MapSlice {
    /// A window of `elems` floats at byte offset `off`.
    ///
    /// # Errors
    ///
    /// Fails when the window leaves the file's bounds or when its
    /// start address is not 4-byte aligned (possible for the
    /// heap-read fallback, whose buffer has no alignment guarantee —
    /// callers then copy instead).
    pub fn new(file: Arc<MappedFile>, off: usize, elems: usize) -> Result<MapSlice, String> {
        let bytes = elems
            .checked_mul(4)
            .and_then(|b| off.checked_add(b))
            .ok_or_else(|| format!("tensor window {off}+{elems}x4 overflows"))?;
        if bytes > file.bytes().len() {
            return Err(format!(
                "tensor window {off}..{bytes} out of bounds ({}-byte file)",
                file.bytes().len()
            ));
        }
        if !(file.bytes().as_ptr() as usize + off).is_multiple_of(std::mem::align_of::<f32>()) {
            return Err(format!("tensor window at byte {off} is not f32-aligned"));
        }
        Ok(MapSlice { file, off, elems })
    }

    /// The window as floats (native-endian reinterpretation of the
    /// little-endian file bytes; CATI1 is only written and read on
    /// little-endian hosts, which `decode` verifies by checksum
    /// before any slice is handed out).
    pub fn as_f32s(&self) -> &[f32] {
        if self.elems == 0 {
            return &[];
        }
        let base = self.file.bytes().as_ptr();
        // SAFETY: construction checked that `off..off + elems*4` is in
        // bounds and 4-byte aligned; the underlying bytes are
        // immutable for the life of `file`.
        #[allow(unsafe_code)]
        unsafe {
            std::slice::from_raw_parts(base.add(self.off).cast::<f32>(), self.elems)
        }
    }

    /// Whether the backing file is a real mapping.
    pub fn is_mapped(&self) -> bool {
        self.file.is_mapped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("cati-nn-mmap-{}-{name}", std::process::id()));
        std::fs::write(&path, bytes).expect("write temp file");
        path
    }

    #[test]
    fn maps_a_file_and_reads_every_byte() {
        let data: Vec<u8> = (0..=255u8).cycle().take(5000).collect();
        let path = tmp_file("roundtrip", &data);
        let map = MappedFile::open(&path).expect("open");
        assert_eq!(map.bytes(), &data[..]);
        #[cfg(unix)]
        assert!(map.is_mapped(), "unix open should really mmap");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn f32_windows_are_bounds_and_alignment_checked() {
        let floats: Vec<f32> = (0..32).map(|i| i as f32 * 0.5).collect();
        let mut bytes = Vec::new();
        for v in &floats {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let path = tmp_file("windows", &bytes);
        let map = MappedFile::open(&path).expect("open");
        let s = MapSlice::new(map.clone(), 16, 8).expect("aligned in-bounds window");
        assert_eq!(s.as_f32s(), &floats[4..12]);
        assert!(
            MapSlice::new(map.clone(), 0, floats.len() + 1).is_err(),
            "past-the-end window must be rejected"
        );
        assert!(
            MapSlice::new(map.clone(), usize::MAX - 2, 4).is_err(),
            "overflowing window must be rejected"
        );
        if map.is_mapped() {
            // Page-aligned base: odd byte offsets are misaligned.
            assert!(MapSlice::new(map, 2, 1).is_err());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_files_open_as_empty_bytes() {
        let path = tmp_file("empty", &[]);
        let map = MappedFile::open(&path).expect("open");
        assert!(map.bytes().is_empty());
        std::fs::remove_file(&path).ok();
    }
}
