//! Optimizers and gradient accumulation buffers.

use serde::{Deserialize, Serialize};

/// Gradient buffers matching a model's parameter tensors, in a fixed
/// order. Buffers are reduced across a mini-batch (possibly in
/// parallel) before one optimizer step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradBuffers {
    bufs: Vec<Vec<f32>>,
}

impl GradBuffers {
    /// Zeroed buffers with the given tensor lengths.
    pub fn new(sizes: &[usize]) -> GradBuffers {
        GradBuffers {
            bufs: sizes.iter().map(|&n| vec![0.0; n]).collect(),
        }
    }

    /// Mutable access to exactly eight tensors (the [`TextCnn`
    /// layout](crate::model::TextCnn::grad_buffers)).
    ///
    /// # Panics
    ///
    /// Panics if the buffer count is not eight.
    pub fn as_mut_arrays(&mut self) -> [&mut [f32]; 8] {
        let mut it = self.bufs.iter_mut();
        std::array::from_fn(|_| it.next().expect("eight gradient tensors").as_mut_slice())
    }

    /// Element-wise accumulate `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&mut self, other: &GradBuffers) {
        assert_eq!(self.bufs.len(), other.bufs.len());
        for (a, b) in self.bufs.iter_mut().zip(&other.bufs) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += *y;
            }
        }
    }

    /// Multiply every gradient by `s`.
    pub fn scale(&mut self, s: f32) {
        for buf in &mut self.bufs {
            for v in buf.iter_mut() {
                *v *= s;
            }
        }
    }

    /// Reset to zero.
    pub fn zero(&mut self) {
        for buf in &mut self.bufs {
            buf.fill(0.0);
        }
    }

    /// Global L2 norm across all buffers.
    pub fn norm(&self) -> f32 {
        self.bufs
            .iter()
            .flat_map(|b| b.iter())
            .map(|v| v * v)
            .sum::<f32>()
            .sqrt()
    }

    fn iter(&self) -> impl Iterator<Item = &Vec<f32>> {
        self.bufs.iter()
    }
}

/// Adam optimizer (Kingma & Ba) with optional gradient clipping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Epsilon.
    pub eps: f32,
    /// Clip gradients to this global norm (0 disables).
    pub clip: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with standard betas.
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: 5.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// One update step over all parameter tensors.
    pub fn step(&mut self, params: [&mut Vec<f32>; 8], grads: &mut GradBuffers) {
        if self.m.is_empty() {
            for g in grads.iter() {
                self.m.push(vec![0.0; g.len()]);
                self.v.push(vec![0.0; g.len()]);
            }
        }
        if self.clip > 0.0 {
            let norm = grads.norm();
            if norm > self.clip {
                grads.scale(self.clip / norm);
            }
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, g), (m, v)) in params
            .into_iter()
            .zip(grads.iter())
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            for i in 0..p.len() {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                p[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Plain SGD with momentum, as a baseline optimizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// SGD with the given learning rate and 0.9 momentum.
    pub fn new(lr: f32) -> Sgd {
        Sgd {
            lr,
            momentum: 0.9,
            velocity: Vec::new(),
        }
    }

    /// One update step.
    pub fn step(&mut self, params: [&mut Vec<f32>; 8], grads: &GradBuffers) {
        if self.velocity.is_empty() {
            for g in grads.iter() {
                self.velocity.push(vec![0.0; g.len()]);
            }
        }
        for ((p, g), vel) in params
            .into_iter()
            .zip(grads.iter())
            .zip(self.velocity.iter_mut())
        {
            for i in 0..p.len() {
                vel[i] = self.momentum * vel[i] - self.lr * g[i];
                p[i] += vel[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_optimizer(mut step: impl FnMut([&mut Vec<f32>; 8], &mut GradBuffers)) -> f32 {
        let mut params: Vec<Vec<f32>> = (0..8).map(|_| vec![1.0f32; 4]).collect();
        for _ in 0..300 {
            let mut grads = GradBuffers::new(&[4; 8]);
            {
                let arrays = grads.as_mut_arrays();
                for (g, p) in arrays.into_iter().zip(&params) {
                    for i in 0..4 {
                        g[i] = 2.0 * p[i];
                    }
                }
            }
            let mut it = params.iter_mut();
            let refs: [&mut Vec<f32>; 8] = std::array::from_fn(|_| it.next().unwrap());
            step(refs, &mut grads);
        }
        params.iter().flat_map(|p| p.iter()).map(|v| v * v).sum()
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut adam = Adam::new(0.05);
        let residual = with_optimizer(|p, g| adam.step(p, g));
        assert!(residual < 1e-3, "residual {residual}");
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let mut sgd = Sgd::new(0.01);
        let residual = with_optimizer(|p, g| sgd.step(p, g));
        assert!(residual < 1e-3, "residual {residual}");
    }

    #[test]
    fn clipping_bounds_gradient_norm() {
        let mut grads = GradBuffers::new(&[4; 8]);
        {
            let arrays = grads.as_mut_arrays();
            for g in arrays {
                g.fill(100.0);
            }
        }
        let norm_before = grads.norm();
        assert!(norm_before > 5.0);
        let mut adam = Adam::new(0.001);
        let mut params: Vec<Vec<f32>> = (0..8).map(|_| vec![0.0f32; 4]).collect();
        let mut it = params.iter_mut();
        let refs: [&mut Vec<f32>; 8] = std::array::from_fn(|_| it.next().unwrap());
        adam.step(refs, &mut grads);
        assert!(grads.norm() <= 5.0 + 1e-3);
    }

    #[test]
    fn gradbuffers_add_and_scale() {
        let mut a = GradBuffers::new(&[2; 8]);
        let mut b = GradBuffers::new(&[2; 8]);
        a.as_mut_arrays()[0][0] = 1.0;
        b.as_mut_arrays()[0][0] = 2.0;
        a.add(&b);
        a.scale(0.5);
        assert_eq!(a.as_mut_arrays()[0][0], 1.5);
        a.zero();
        assert_eq!(a.norm(), 0.0);
    }
}
