//! Optimizers and gradient accumulation buffers.
//!
//! All buffers live in one flat `Vec<f32>` with a cumulative-end
//! table marking tensor boundaries, so a whole gradient (or moment)
//! set is one allocation and every element-wise pass is one linear
//! sweep. The per-element arithmetic and its order are identical to
//! the former per-tensor nested loops, keeping training bit-exact.

use serde::{Deserialize, Serialize};

/// Gradient buffers matching a model's parameter tensors, in a fixed
/// order. Buffers are reduced across a mini-batch (possibly in
/// parallel) before one optimizer step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradBuffers {
    /// All tensors concatenated, in declaration order.
    data: Vec<f32>,
    /// Cumulative end offset of each tensor within `data`.
    ends: Vec<usize>,
}

/// Cumulative end offsets for the given tensor lengths.
fn ends_of(sizes: &[usize]) -> Vec<usize> {
    sizes
        .iter()
        .scan(0usize, |acc, &n| {
            *acc += n;
            Some(*acc)
        })
        .collect()
}

impl GradBuffers {
    /// Zeroed buffers with the given tensor lengths.
    pub fn new(sizes: &[usize]) -> GradBuffers {
        let ends = ends_of(sizes);
        let total = ends.last().copied().unwrap_or(0);
        GradBuffers {
            data: vec![0.0; total],
            ends,
        }
    }

    /// Mutable access to exactly eight tensors (the [`TextCnn`
    /// layout](crate::model::TextCnn::grad_buffers)).
    ///
    /// # Panics
    ///
    /// Panics if the buffer count is not eight.
    pub fn as_mut_arrays(&mut self) -> [&mut [f32]; 8] {
        assert_eq!(self.ends.len(), 8, "eight gradient tensors");
        let mut rest = self.data.as_mut_slice();
        let mut start = 0;
        let mut out = Vec::with_capacity(8);
        for &end in &self.ends {
            let (head, tail) = rest.split_at_mut(end - start);
            out.push(head);
            rest = tail;
            start = end;
        }
        match out.try_into() {
            Ok(arrays) => arrays,
            Err(_) => unreachable!("eight gradient tensors"),
        }
    }

    /// Element-wise accumulate `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&mut self, other: &GradBuffers) {
        assert_eq!(self.ends, other.ends);
        for (x, y) in self.data.iter_mut().zip(&other.data) {
            *x += *y;
        }
    }

    /// Multiply every gradient by `s`.
    pub fn scale(&mut self, s: f32) {
        for v in self.data.iter_mut() {
            *v *= s;
        }
    }

    /// Reset to zero.
    pub fn zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Global L2 norm across all buffers.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Borrow each tensor in declaration order.
    fn slices(&self) -> impl Iterator<Item = &[f32]> {
        self.ends.iter().scan(0usize, |start, &end| {
            let s = &self.data[*start..end];
            *start = end;
            Some(s)
        })
    }
}

/// Adam optimizer (Kingma & Ba) with optional gradient clipping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Epsilon.
    pub eps: f32,
    /// Clip gradients to this global norm (0 disables).
    pub clip: f32,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Adam with standard betas.
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: 5.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// The optimizer's internal state for checkpointing: the step
    /// count and the first/second moment buffers (empty before the
    /// first [`Adam::step`]).
    pub fn state(&self) -> (u64, &[f32], &[f32]) {
        (self.t, &self.m, &self.v)
    }

    /// Rebuilds an optimizer from checkpointed state. Combined with
    /// the hyper-parameters of [`Adam::new`], the restored optimizer's
    /// future steps are bit-identical to the captured one's.
    pub fn from_state(lr: f32, t: u64, m: Vec<f32>, v: Vec<f32>) -> Adam {
        Adam {
            t,
            m,
            v,
            ..Adam::new(lr)
        }
    }

    /// One update step over all parameter tensors.
    pub fn step(&mut self, params: [&mut Vec<f32>; 8], grads: &mut GradBuffers) {
        if self.m.is_empty() {
            self.m = vec![0.0; grads.data.len()];
            self.v = vec![0.0; grads.data.len()];
        }
        if self.clip > 0.0 {
            let norm = grads.norm();
            if norm > self.clip {
                grads.scale(self.clip / norm);
            }
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let mut off = 0;
        for (p, g) in params.into_iter().zip(grads.slices()) {
            let (m, v) = (
                &mut self.m[off..off + g.len()],
                &mut self.v[off..off + g.len()],
            );
            for i in 0..p.len() {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                p[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            off += g.len();
        }
    }
}

/// Plain SGD with momentum, as a baseline optimizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// SGD with the given learning rate and 0.9 momentum.
    pub fn new(lr: f32) -> Sgd {
        Sgd {
            lr,
            momentum: 0.9,
            velocity: Vec::new(),
        }
    }

    /// One update step.
    pub fn step(&mut self, params: [&mut Vec<f32>; 8], grads: &GradBuffers) {
        if self.velocity.is_empty() {
            self.velocity = vec![0.0; grads.data.len()];
        }
        let mut off = 0;
        for (p, g) in params.into_iter().zip(grads.slices()) {
            let vel = &mut self.velocity[off..off + g.len()];
            for i in 0..p.len() {
                vel[i] = self.momentum * vel[i] - self.lr * g[i];
                p[i] += vel[i];
            }
            off += g.len();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_optimizer(mut step: impl FnMut([&mut Vec<f32>; 8], &mut GradBuffers)) -> f32 {
        let mut params: Vec<Vec<f32>> = (0..8).map(|_| vec![1.0f32; 4]).collect();
        for _ in 0..300 {
            let mut grads = GradBuffers::new(&[4; 8]);
            {
                let arrays = grads.as_mut_arrays();
                for (g, p) in arrays.into_iter().zip(&params) {
                    for i in 0..4 {
                        g[i] = 2.0 * p[i];
                    }
                }
            }
            let mut it = params.iter_mut();
            let refs: [&mut Vec<f32>; 8] = std::array::from_fn(|_| it.next().unwrap());
            step(refs, &mut grads);
        }
        params.iter().flat_map(|p| p.iter()).map(|v| v * v).sum()
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut adam = Adam::new(0.05);
        let residual = with_optimizer(|p, g| adam.step(p, g));
        assert!(residual < 1e-3, "residual {residual}");
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let mut sgd = Sgd::new(0.01);
        let residual = with_optimizer(|p, g| sgd.step(p, g));
        assert!(residual < 1e-3, "residual {residual}");
    }

    #[test]
    fn clipping_bounds_gradient_norm() {
        let mut grads = GradBuffers::new(&[4; 8]);
        {
            let arrays = grads.as_mut_arrays();
            for g in arrays {
                g.fill(100.0);
            }
        }
        let norm_before = grads.norm();
        assert!(norm_before > 5.0);
        let mut adam = Adam::new(0.001);
        let mut params: Vec<Vec<f32>> = (0..8).map(|_| vec![0.0f32; 4]).collect();
        let mut it = params.iter_mut();
        let refs: [&mut Vec<f32>; 8] = std::array::from_fn(|_| it.next().unwrap());
        adam.step(refs, &mut grads);
        assert!(grads.norm() <= 5.0 + 1e-3);
    }

    #[test]
    fn gradbuffers_add_and_scale() {
        let mut a = GradBuffers::new(&[2; 8]);
        let mut b = GradBuffers::new(&[2; 8]);
        a.as_mut_arrays()[0][0] = 1.0;
        b.as_mut_arrays()[0][0] = 2.0;
        a.add(&b);
        a.scale(0.5);
        assert_eq!(a.as_mut_arrays()[0][0], 1.5);
        a.zero();
        assert_eq!(a.norm(), 0.0);
    }

    #[test]
    fn slices_follow_declaration_order() {
        let mut g = GradBuffers::new(&[1, 2, 1, 1, 1, 1, 1, 1]);
        g.as_mut_arrays()[1][1] = 7.0;
        let tensors: Vec<Vec<f32>> = g.slices().map(<[f32]>::to_vec).collect();
        assert_eq!(tensors[0], vec![0.0]);
        assert_eq!(tensors[1], vec![0.0, 7.0]);
        assert_eq!(tensors.iter().map(Vec::len).sum::<usize>(), 9);
    }
}
