//! Opt-in weight quantization (int8 / f16), dequantized back to f32.
//!
//! CATI's quantized inference mode does *not* change runtime
//! arithmetic: weights are quantized once (per-row symmetric int8, or
//! IEEE binary16 per element) and immediately dequantized, so every
//! kernel still runs the plain f32 path and inference stays fully
//! deterministic — just against snapped weight values. The accuracy
//! cost is measured by the parity harness (class-change fraction and
//! mean |Δconfidence| against the f32 model) and recorded in the run
//! manifest; the f32 path is bitwise untouched.

use serde::{DeError, Deserialize, Serialize, Value};

/// Which quantization grid to snap weights onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantMode {
    /// Per-row symmetric int8: each row scales by `absmax/127`,
    /// values round to the nearest of 255 signed steps.
    Int8,
    /// IEEE 754 binary16 per element (round to nearest even).
    F16,
}

impl QuantMode {
    /// Parses a `--quantize` argument.
    ///
    /// # Errors
    ///
    /// Returns a message listing the accepted values.
    pub fn parse(s: &str) -> Result<QuantMode, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "int8" | "i8" => Ok(QuantMode::Int8),
            "f16" | "fp16" | "half" => Ok(QuantMode::F16),
            other => Err(format!(
                "unknown quantization mode `{other}` (expected int8 or f16)"
            )),
        }
    }

    /// The canonical name (`int8` / `f16`).
    pub fn name(self) -> &'static str {
        match self {
            QuantMode::Int8 => "int8",
            QuantMode::F16 => "f16",
        }
    }
}

impl std::fmt::Display for QuantMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl Serialize for QuantMode {
    fn to_value(&self) -> Value {
        self.name().to_string().to_value()
    }
}

impl Deserialize for QuantMode {
    fn from_value(v: &Value) -> Result<QuantMode, DeError> {
        let s = String::from_value(v)?;
        QuantMode::parse(&s).map_err(DeError)
    }
}

/// Quantizes `data` (rows of `row` consecutive floats) then
/// dequantizes in place. `row = data.len()` gives per-tensor scaling;
/// a zero `row` is treated as one row.
pub fn quantize_dequant_rows(data: &mut [f32], row: usize, mode: QuantMode) {
    let row = if row == 0 { data.len().max(1) } else { row };
    match mode {
        QuantMode::Int8 => {
            for r in data.chunks_mut(row) {
                let absmax = r.iter().fold(0.0f32, |m, v| m.max(v.abs()));
                if absmax == 0.0 || !absmax.is_finite() {
                    continue; // all-zero row, or non-finite: leave as is
                }
                let scale = absmax / 127.0;
                for v in r {
                    let q = (*v / scale).round().clamp(-127.0, 127.0);
                    *v = q * scale;
                }
            }
        }
        QuantMode::F16 => {
            for v in data {
                *v = f16_bits_to_f32(f32_to_f16_bits(*v));
            }
        }
    }
}

/// `f32` → IEEE binary16 bits, round to nearest even. Overflow maps
/// to ±inf; NaN stays NaN (quiet bit set).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let b = x.to_bits();
    let sign = ((b >> 16) & 0x8000) as u16;
    let exp32 = (b >> 23) & 0xff;
    let man = b & 0x007f_ffff;
    if exp32 == 0xff {
        // Inf or NaN.
        return sign | 0x7c00 | if man != 0 { 0x0200 } else { 0 };
    }
    let exp = exp32 as i32 - 127 + 15;
    if exp >= 0x1f {
        return sign | 0x7c00; // overflow → ±inf
    }
    if exp <= 0 {
        // Subnormal half (or zero): shift the full 24-bit significand
        // down, rounding to nearest even.
        if exp < -10 {
            return sign; // underflows to ±0
        }
        let full = man | 0x0080_0000;
        let shift = (14 - exp) as u32; // 14..=24
        let half = full >> shift;
        let rem = full & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let round_up = rem > halfway || (rem == halfway && half & 1 == 1);
        return sign | (half + u32::from(round_up)) as u16;
    }
    let half = ((exp as u32) << 10) | (man >> 13);
    let rem = man & 0x1fff;
    let round_up = rem > 0x1000 || (rem == 0x1000 && half & 1 == 1);
    // A mantissa carry naturally bumps the exponent; carrying out of
    // the largest normal (0x7bff) lands exactly on ±inf (0x7c00).
    sign | (half + u32::from(round_up)) as u16
}

/// IEEE binary16 bits → `f32` (exact: every half is representable).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = if h & 0x8000 != 0 { -1.0f32 } else { 1.0f32 };
    let exp = (h >> 10) & 0x1f;
    let man = u32::from(h & 0x3ff);
    match exp {
        0 => sign * (man as f32) * (-24f32).exp2(),
        0x1f => {
            if man == 0 {
                sign * f32::INFINITY
            } else {
                f32::NAN
            }
        }
        _ => {
            let bits =
                (u32::from(h) & 0x8000) << 16 | (u32::from(exp) + 127 - 15) << 23 | man << 13;
            f32::from_bits(bits)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_roundtrip_is_exact_for_representable_values() {
        for v in [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            1.5,
            2.0,
            65504.0,
            -65504.0,
            6.103_515_6e-5, // smallest normal half
            5.960_464_5e-8, // smallest subnormal half
            f32::INFINITY,
            f32::NEG_INFINITY,
        ] {
            let back = f16_bits_to_f32(f32_to_f16_bits(v));
            assert_eq!(back.to_bits(), v.to_bits(), "{v} must round-trip exactly");
        }
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn f16_rounds_to_nearest_even_and_saturates() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next half;
        // round-to-even keeps 1.0.
        let halfway = 1.0f32 + (-11f32).exp2();
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(halfway)), 1.0);
        // Just above halfway rounds up.
        let above = 1.0f32 + (-11f32).exp2() + (-20f32).exp2();
        assert!(f16_bits_to_f32(f32_to_f16_bits(above)) > 1.0);
        // Beyond the largest half saturates to inf.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e6)), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(-1e6)), f32::NEG_INFINITY);
        // Relative error of a quantized normal value stays within one
        // half-precision ULP (2^-11).
        for v in [0.1f32, 3.37159, -123.456, 0.007] {
            let q = f16_bits_to_f32(f32_to_f16_bits(v));
            assert!(((q - v) / v).abs() <= (-11f32).exp2(), "{v} -> {q}");
        }
    }

    #[test]
    fn int8_rows_scale_independently_and_bound_the_error() {
        // Two rows with very different magnitudes: per-row scaling
        // keeps the small row's resolution.
        let mut data = vec![100.0, -50.0, 25.0, 12.5, 0.001, -0.0005, 0.00025, 0.000125];
        let orig = data.clone();
        quantize_dequant_rows(&mut data, 4, QuantMode::Int8);
        for (q, v) in data.iter().zip(&orig) {
            let row_absmax = if v.abs() >= 0.001 { 100.0f32 } else { 0.001 };
            assert!(
                (q - v).abs() <= row_absmax / 127.0 / 2.0 + 1e-9,
                "{v} -> {q} exceeds half a quantization step"
            );
        }
        // The absmax element is reproduced exactly.
        assert_eq!(data[0], 100.0);
        assert_eq!(data[4], 0.001);
    }

    #[test]
    fn int8_leaves_zero_rows_alone_and_is_idempotent() {
        let mut zeros = vec![0.0f32; 6];
        quantize_dequant_rows(&mut zeros, 3, QuantMode::Int8);
        assert_eq!(zeros, vec![0.0f32; 6]);
        let mut data = vec![1.0f32, -0.37, 0.82, 0.0];
        quantize_dequant_rows(&mut data, 4, QuantMode::Int8);
        let once = data.clone();
        quantize_dequant_rows(&mut data, 4, QuantMode::Int8);
        assert_eq!(data, once, "re-quantizing must be a fixed point");
    }

    #[test]
    fn mode_parsing_accepts_aliases_and_rejects_junk() {
        assert_eq!(QuantMode::parse("int8").unwrap(), QuantMode::Int8);
        assert_eq!(QuantMode::parse(" F16 ").unwrap(), QuantMode::F16);
        assert_eq!(QuantMode::parse("half").unwrap(), QuantMode::F16);
        assert!(QuantMode::parse("int4").is_err());
        assert_eq!(QuantMode::Int8.name(), "int8");
    }
}
