//! `cati-nn` — the neural-network training substrate.
//!
//! The paper trains its six stage classifiers with Keras on a GPU; we
//! substitute a small, dependency-free CNN stack: [`layers`] with
//! hand-written forward/backward passes (finite-difference checked in
//! tests), the [`TextCnn`] model matching the paper's 2-layer
//! 32→64-channel + FC-1024 architecture, and [`optim`] with Adam and
//! momentum-SGD. Mini-batches parallelize across CPU cores via rayon.
//!
//! # Example
//!
//! ```
//! use cati_nn::{Adam, TextCnn, TextCnnConfig};
//! use rand::SeedableRng;
//!
//! let cfg = TextCnnConfig::tiny(4, 2);
//! let mut model = TextCnn::new(cfg, 42);
//! let data = vec![(vec![0.0; cfg.embed_dim * cfg.seq_len], 0usize)];
//! let mut opt = Adam::new(0.01);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let loss = model.train_epoch(&data, &mut opt, 8, &mut rng);
//! assert!(loss.is_finite());
//! ```

// `deny` rather than `forbid`: the [`mmap`] module is the workspace's
// single, documented unsafe island (the zero-copy weight loader);
// everything else stays unsafe-free and any new unsafe outside that
// module is a compile error.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod layers;
pub mod mmap;
pub mod model;
pub mod optim;
pub mod param;
pub mod quant;
pub mod tensor;

pub use mmap::{MapSlice, MappedFile};
pub use model::{NoHook, SampleSource, TextCnn, TextCnnConfig, TrainHook, Workspace};
pub use optim::{Adam, GradBuffers, Sgd};
pub use param::ParamBuf;
pub use quant::QuantMode;
pub use tensor::{argmax, Rows, Tensor};
