//! [`ParamBuf`]: a weight tensor that is either owned or mmap-backed.
//!
//! Every layer stores its parameters in a `ParamBuf` instead of a
//! bare `Vec<f32>`. Inference only ever reads (`Deref<Target = [f32]>`
//! makes that transparent), so a model loaded from a CATI1 v2
//! container can point its buffers straight into the mapped file —
//! zero copies, zero parse. The first mutable access
//! ([`ParamBuf::to_mut`], used by the optimizer) silently promotes a
//! mapped buffer to an owned copy, so training a loaded model still
//! works and never writes through the map.
//!
//! Serialization is format-transparent: a `ParamBuf` serializes as a
//! plain float array and deserializes as owned, so the legacy JSON
//! model format is byte-identical to what `Vec<f32>` produced.

use crate::mmap::MapSlice;
use serde::{DeError, Deserialize, Serialize, Value};
use std::ops::Deref;

/// A parameter tensor: owned floats, or a read-only window into a
/// memory-mapped model container.
#[derive(Clone, Debug)]
pub struct ParamBuf(Repr);

#[derive(Clone, Debug)]
enum Repr {
    Owned(Vec<f32>),
    Mapped(MapSlice),
}

impl ParamBuf {
    /// A buffer viewing `slice`'s floats in place (zero-copy).
    pub fn from_map(slice: MapSlice) -> ParamBuf {
        ParamBuf(Repr::Mapped(slice))
    }

    /// The values as a slice (no copy in either representation).
    pub fn as_slice(&self) -> &[f32] {
        match &self.0 {
            Repr::Owned(v) => v,
            Repr::Mapped(s) => s.as_f32s(),
        }
    }

    /// Mutable access, promoting a mapped buffer to an owned copy
    /// first (copy-on-write; the map itself is never written).
    pub fn to_mut(&mut self) -> &mut Vec<f32> {
        if let Repr::Mapped(s) = &self.0 {
            self.0 = Repr::Owned(s.as_f32s().to_vec());
        }
        match &mut self.0 {
            Repr::Owned(v) => v,
            Repr::Mapped(_) => unreachable!("mapped repr replaced above"),
        }
    }

    /// Whether the buffer still points into a real file mapping.
    pub fn is_mapped(&self) -> bool {
        match &self.0 {
            Repr::Owned(_) => false,
            Repr::Mapped(s) => s.is_mapped(),
        }
    }
}

impl Deref for ParamBuf {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        self.as_slice()
    }
}

impl From<Vec<f32>> for ParamBuf {
    fn from(v: Vec<f32>) -> ParamBuf {
        ParamBuf(Repr::Owned(v))
    }
}

impl FromIterator<f32> for ParamBuf {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> ParamBuf {
        ParamBuf(Repr::Owned(iter.into_iter().collect()))
    }
}

impl Default for ParamBuf {
    fn default() -> ParamBuf {
        ParamBuf(Repr::Owned(Vec::new()))
    }
}

impl PartialEq for ParamBuf {
    fn eq(&self, other: &ParamBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Serialize for ParamBuf {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl Deserialize for ParamBuf {
    fn from_value(v: &Value) -> Result<ParamBuf, DeError> {
        Ok(ParamBuf(Repr::Owned(Vec::<f32>::from_value(v)?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmap::{MapSlice, MappedFile};

    #[test]
    fn owned_buffer_round_trips_and_compares_by_contents() {
        let a: ParamBuf = vec![1.0f32, -2.5, 3.25].into();
        let b: ParamBuf = vec![1.0f32, -2.5, 3.25].into();
        assert_eq!(a, b);
        assert_eq!(&a[1..], &[-2.5, 3.25]);
        assert!(!a.is_mapped());
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(json, "[1.0,-2.5,3.25]");
        let back: ParamBuf = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn mapped_buffer_reads_in_place_and_promotes_on_write() {
        let floats = [4.0f32, 5.5, -6.0, 7.0];
        let mut bytes = Vec::new();
        for v in floats {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let path =
            std::env::temp_dir().join(format!("cati-nn-parambuf-{}.bin", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let map = MappedFile::open(&path).unwrap();
        let mut p = ParamBuf::from_map(MapSlice::new(map.clone(), 0, 4).unwrap());
        assert_eq!(p.as_slice(), &floats);
        assert_eq!(p.is_mapped(), map.is_mapped());
        // Compares equal to an owned buffer with the same contents.
        assert_eq!(p, ParamBuf::from(floats.to_vec()));
        p.to_mut()[0] = 9.0;
        assert!(!p.is_mapped(), "first write promotes to owned");
        assert_eq!(p[0], 9.0);
        assert_eq!(map.bytes(), &bytes[..], "the map itself is untouched");
        std::fs::remove_file(&path).ok();
    }
}
