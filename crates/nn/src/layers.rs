//! Neural-network layers with explicit forward/backward passes.
//!
//! Everything is `f32` and allocation-light: forward passes return the
//! activations they need cached for the backward pass, and gradients
//! accumulate into caller-owned buffers so mini-batches can be
//! processed in parallel and reduced.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

fn xavier(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> f32 {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    rng.gen_range(-bound..bound)
}

/// 1-D convolution over a `[channels][length]` input with kernel size
/// `k`, stride 1 and symmetric zero padding of `k/2` (length
/// preserving for odd `k`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv1d {
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Kernel width (odd).
    pub k: usize,
    /// Weights, laid out `[out][in][k]`.
    pub w: Vec<f32>,
    /// Per-output-channel bias.
    pub b: Vec<f32>,
}

impl Conv1d {
    /// Xavier-initialized convolution.
    pub fn new(in_ch: usize, out_ch: usize, k: usize, rng: &mut StdRng) -> Conv1d {
        assert!(k % 2 == 1, "kernel must be odd");
        let w = (0..out_ch * in_ch * k)
            .map(|_| xavier(in_ch * k, out_ch * k, rng))
            .collect();
        Conv1d {
            in_ch,
            out_ch,
            k,
            w,
            b: vec![0.0; out_ch],
        }
    }

    /// Number of parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Forward pass: `x` is `[in_ch][len]` flattened; output is
    /// `[out_ch][len]` flattened.
    pub fn forward(&self, x: &[f32], len: usize, y: &mut Vec<f32>) {
        debug_assert_eq!(x.len(), self.in_ch * len);
        let pad = self.k / 2;
        y.clear();
        y.resize(self.out_ch * len, 0.0);
        for o in 0..self.out_ch {
            let yo = &mut y[o * len..(o + 1) * len];
            yo.fill(self.b[o]);
            for i in 0..self.in_ch {
                let xi = &x[i * len..(i + 1) * len];
                let wbase = (o * self.in_ch + i) * self.k;
                for dk in 0..self.k {
                    let wv = self.w[wbase + dk];
                    if wv == 0.0 {
                        continue;
                    }
                    // t + dk - pad must be in [0, len)
                    let t0 = pad.saturating_sub(dk);
                    let t1 = (len + pad).saturating_sub(dk).min(len);
                    for t in t0..t1 {
                        yo[t] += wv * xi[t + dk - pad];
                    }
                }
            }
        }
    }

    /// Backward pass. `gy` is the output gradient `[out_ch][len]`;
    /// fills `gx` (same shape as `x`) and accumulates into `gw`/`gb`.
    #[allow(clippy::too_many_arguments)]
    pub fn backward(
        &self,
        x: &[f32],
        len: usize,
        gy: &[f32],
        gx: &mut Vec<f32>,
        gw: &mut [f32],
        gb: &mut [f32],
    ) {
        let pad = self.k / 2;
        gx.clear();
        gx.resize(self.in_ch * len, 0.0);
        for o in 0..self.out_ch {
            let gyo = &gy[o * len..(o + 1) * len];
            gb[o] += gyo.iter().sum::<f32>();
            for i in 0..self.in_ch {
                let xi = &x[i * len..(i + 1) * len];
                let gxi = &mut gx[i * len..(i + 1) * len];
                let wbase = (o * self.in_ch + i) * self.k;
                for dk in 0..self.k {
                    let t0 = pad.saturating_sub(dk);
                    let t1 = (len + pad).saturating_sub(dk).min(len);
                    let mut gwv = 0.0f32;
                    let wv = self.w[wbase + dk];
                    for t in t0..t1 {
                        let xv = xi[t + dk - pad];
                        gwv += gyo[t] * xv;
                        gxi[t + dk - pad] += gyo[t] * wv;
                    }
                    gw[wbase + dk] += gwv;
                }
            }
        }
    }
}

/// Fully connected layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    /// Input features.
    pub in_dim: usize,
    /// Output features.
    pub out_dim: usize,
    /// Weights `[out][in]`.
    pub w: Vec<f32>,
    /// Bias `[out]`.
    pub b: Vec<f32>,
}

impl Dense {
    /// Xavier-initialized dense layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Dense {
        let w = (0..out_dim * in_dim)
            .map(|_| xavier(in_dim, out_dim, rng))
            .collect();
        Dense {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
        }
    }

    /// Number of parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// `y = W x + b`.
    pub fn forward(&self, x: &[f32], y: &mut Vec<f32>) {
        debug_assert_eq!(x.len(), self.in_dim);
        y.clear();
        y.reserve(self.out_dim);
        for o in 0..self.out_dim {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let dot: f32 = row.iter().zip(x).map(|(a, b)| a * b).sum();
            y.push(dot + self.b[o]);
        }
    }

    /// Backward pass; fills `gx`, accumulates `gw`/`gb`.
    pub fn backward(
        &self,
        x: &[f32],
        gy: &[f32],
        gx: &mut Vec<f32>,
        gw: &mut [f32],
        gb: &mut [f32],
    ) {
        gx.clear();
        gx.resize(self.in_dim, 0.0);
        for o in 0..self.out_dim {
            let g = gy[o];
            gb[o] += g;
            if g == 0.0 {
                continue;
            }
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let grow = &mut gw[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                grow[i] += g * x[i];
                gx[i] += g * row[i];
            }
        }
    }
}

/// In-place ReLU; returns nothing, the mask is recoverable from the
/// output (`y > 0`).
pub fn relu(y: &mut [f32]) {
    for v in y {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Backward ReLU: zero the gradient where the forward output was zero.
pub fn relu_backward(y: &[f32], gy: &mut [f32]) {
    for (g, v) in gy.iter_mut().zip(y) {
        if *v <= 0.0 {
            *g = 0.0;
        }
    }
}

/// Max-pool each channel of `[channels][len]` by a factor of 2
/// (floor). Returns the pooled tensor and the argmax indices.
pub fn maxpool2(x: &[f32], channels: usize, len: usize) -> (Vec<f32>, Vec<u32>) {
    let out_len = len / 2;
    let mut y = Vec::with_capacity(channels * out_len);
    let mut arg = Vec::with_capacity(channels * out_len);
    for c in 0..channels {
        let xc = &x[c * len..(c + 1) * len];
        for t in 0..out_len {
            let (a, b) = (xc[2 * t], xc[2 * t + 1]);
            if a >= b {
                y.push(a);
                arg.push((c * len + 2 * t) as u32);
            } else {
                y.push(b);
                arg.push((c * len + 2 * t + 1) as u32);
            }
        }
    }
    (y, arg)
}

/// Backward max-pool: route gradients to the argmax positions.
pub fn maxpool2_backward(gy: &[f32], arg: &[u32], input_len_total: usize) -> Vec<f32> {
    let mut gx = vec![0.0; input_len_total];
    for (g, &a) in gy.iter().zip(arg) {
        gx[a as usize] += g;
    }
    gx
}

/// Numerically stable softmax in place.
pub fn softmax(z: &mut [f32]) {
    let max = z.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in z.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in z.iter_mut() {
        *v /= sum;
    }
}

/// Cross-entropy loss of a softmax distribution against a label, and
/// the logit gradient (`p - onehot`), written into `probs` in place.
pub fn cross_entropy_backward(probs: &mut [f32], label: usize) -> f32 {
    let loss = -(probs[label].max(1e-12)).ln();
    probs[label] -= 1.0;
    loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn conv_identity_kernel_preserves_signal() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv1d::new(1, 1, 3, &mut rng);
        conv.w = vec![0.0, 1.0, 0.0];
        conv.b = vec![0.0];
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let mut y = Vec::new();
        conv.forward(&x, 4, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn conv_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(1);
        let conv = Conv1d::new(2, 3, 3, &mut rng);
        let len = 5;
        let x: Vec<f32> = (0..2 * len).map(|i| (i as f32 * 0.3).sin()).collect();
        let mut y = Vec::new();
        conv.forward(&x, len, &mut y);
        // Loss = sum(y^2)/2, so gy = y.
        let gy = y.clone();
        let mut gx = Vec::new();
        let mut gw = vec![0.0; conv.w.len()];
        let mut gb = vec![0.0; conv.b.len()];
        conv.backward(&x, len, &gy, &mut gx, &mut gw, &mut gb);

        let eps = 1e-3f32;
        let loss = |c: &Conv1d, x: &[f32]| {
            let mut yy = Vec::new();
            c.forward(x, len, &mut yy);
            yy.iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        // Check a few weight gradients.
        for idx in [0usize, 3, 7, conv.w.len() - 1] {
            let mut c2 = conv.clone();
            c2.w[idx] += eps;
            let num = (loss(&c2, &x) - loss(&conv, &x)) / eps;
            assert!(
                (num - gw[idx]).abs() < 0.05 * (1.0 + num.abs()),
                "dw[{idx}]: numeric {num} vs analytic {}",
                gw[idx]
            );
        }
        // And a few input gradients.
        for idx in [0usize, 4, 9] {
            let mut x2 = x.clone();
            x2[idx] += eps;
            let num = (loss(&conv, &x2) - loss(&conv, &x)) / eps;
            assert!(
                (num - gx[idx]).abs() < 0.05 * (1.0 + num.abs()),
                "dx[{idx}]: numeric {num} vs analytic {}",
                gx[idx]
            );
        }
    }

    #[test]
    fn dense_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let dense = Dense::new(4, 3, &mut rng);
        let x = vec![0.5, -0.2, 0.8, 0.1];
        let mut y = Vec::new();
        dense.forward(&x, &mut y);
        let gy = y.clone();
        let mut gx = Vec::new();
        let mut gw = vec![0.0; dense.w.len()];
        let mut gb = vec![0.0; dense.b.len()];
        dense.backward(&x, &gy, &mut gx, &mut gw, &mut gb);
        let loss = |d: &Dense, x: &[f32]| {
            let mut yy = Vec::new();
            d.forward(x, &mut yy);
            yy.iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        let eps = 1e-3f32;
        for (idx, &g) in gw.iter().enumerate() {
            let mut d2 = dense.clone();
            d2.w[idx] += eps;
            let num = (loss(&d2, &x) - loss(&dense, &x)) / eps;
            assert!((num - g).abs() < 0.02 * (1.0 + num.abs()));
        }
        for (idx, &g) in gx.iter().enumerate() {
            let mut x2 = x.clone();
            x2[idx] += eps;
            let num = (loss(&dense, &x2) - loss(&dense, &x)) / eps;
            assert!((num - g).abs() < 0.02 * (1.0 + num.abs()));
        }
    }

    #[test]
    fn relu_and_backward() {
        let mut y = vec![-1.0, 0.0, 2.0];
        relu(&mut y);
        assert_eq!(y, vec![0.0, 0.0, 2.0]);
        let mut gy = vec![5.0, 5.0, 5.0];
        relu_backward(&y, &mut gy);
        assert_eq!(gy, vec![0.0, 0.0, 5.0]);
    }

    #[test]
    fn maxpool_and_backward() {
        let x = vec![1.0, 3.0, 2.0, 0.0, /* ch2 */ 5.0, 4.0, 7.0, 8.0];
        let (y, arg) = maxpool2(&x, 2, 4);
        assert_eq!(y, vec![3.0, 2.0, 5.0, 8.0]);
        let gx = maxpool2_backward(&[1.0, 1.0, 1.0, 1.0], &arg, 8);
        assert_eq!(gx, vec![0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut z = vec![1.0, 2.0, 3.0];
        softmax(&mut z);
        let sum: f32 = z.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(z[2] > z[1] && z[1] > z[0]);
    }

    #[test]
    fn cross_entropy_gradient_shape() {
        let mut z = vec![0.1, 0.2, 0.7f32];
        let loss = cross_entropy_backward(&mut z, 2);
        assert!((loss - (-0.7f32.ln())).abs() < 1e-6);
        assert!((z[2] - (0.7 - 1.0)).abs() < 1e-6);
        let sum: f32 = z.iter().sum();
        assert!(sum.abs() < 1e-6, "softmax-CE gradient sums to zero");
    }
}
