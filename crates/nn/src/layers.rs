//! Neural-network layers with explicit forward/backward passes.
//!
//! Everything is `f32` and allocation-light: forward passes return the
//! activations they need cached for the backward pass, and gradients
//! accumulate into caller-owned buffers so mini-batches can be
//! processed in parallel and reduced.

use crate::param::ParamBuf;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

fn xavier(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> f32 {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    rng.gen_range(-bound..bound)
}

/// 1-D convolution over a `[channels][length]` input with kernel size
/// `k`, stride 1 and symmetric zero padding of `k/2` (length
/// preserving for odd `k`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv1d {
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Kernel width (odd).
    pub k: usize,
    /// Weights, laid out `[out][in][k]`; a [`ParamBuf`] so loaded
    /// models can read them straight out of a mapped container.
    pub w: ParamBuf,
    /// Per-output-channel bias.
    pub b: ParamBuf,
}

impl Conv1d {
    /// Xavier-initialized convolution.
    pub fn new(in_ch: usize, out_ch: usize, k: usize, rng: &mut StdRng) -> Conv1d {
        assert!(k % 2 == 1, "kernel must be odd");
        let w = (0..out_ch * in_ch * k)
            .map(|_| xavier(in_ch * k, out_ch * k, rng))
            .collect();
        Conv1d {
            in_ch,
            out_ch,
            k,
            w,
            b: vec![0.0; out_ch].into(),
        }
    }

    /// Number of parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Forward pass: `x` is `[in_ch][len]` flattened; output is
    /// `[out_ch][len]` flattened.
    ///
    /// Every kernel tap is applied unconditionally: a `0.0` weight
    /// contributes `0.0 * x`, which on non-finite inputs is NaN — the
    /// same arithmetic the backward pass performs. (The old
    /// zero-weight skip made forward silently ignore ±∞/NaN under a
    /// zero tap while backward propagated it, and its data-dependent
    /// branch blocked vectorization.)
    pub fn forward(&self, x: &[f32], len: usize, y: &mut Vec<f32>) {
        debug_assert_eq!(x.len(), self.in_ch * len);
        let pad = self.k / 2;
        y.clear();
        y.resize(self.out_ch * len, 0.0);
        // Columns where every tap `t + dk - pad` lands inside
        // `[0, len)`: the interior `[pad, len + pad - k + 1)`, clamped
        // for inputs shorter than the kernel.
        let lo = pad.min(len);
        let hi = (len + pad + 1).saturating_sub(self.k).clamp(lo, len);
        for o in 0..self.out_ch {
            let yo = &mut y[o * len..(o + 1) * len];
            yo.fill(self.b[o]);
            for i in 0..self.in_ch {
                let xi = &x[i * len..(i + 1) * len];
                let w = &self.w[(o * self.in_ch + i) * self.k..][..self.k];
                conv_accum_row(w, xi, yo, pad, lo, hi);
            }
        }
    }

    /// Backward pass. `gy` is the output gradient `[out_ch][len]`;
    /// fills `gx` (same shape as `x`) and accumulates into `gw`/`gb`.
    ///
    /// The input-gradient and weight-gradient updates run as separate
    /// inner loops per tap: the shifted saxpy into `gx` is independent
    /// per element (vectorizable), while the weight-gradient reduction
    /// stays a single scalar chain in ascending `t` so accumulation
    /// order — and therefore every output bit — is unchanged.
    #[allow(clippy::too_many_arguments)]
    pub fn backward(
        &self,
        x: &[f32],
        len: usize,
        gy: &[f32],
        gx: &mut Vec<f32>,
        gw: &mut [f32],
        gb: &mut [f32],
    ) {
        let pad = self.k / 2;
        gx.clear();
        gx.resize(self.in_ch * len, 0.0);
        for o in 0..self.out_ch {
            let gyo = &gy[o * len..(o + 1) * len];
            gb[o] += gyo.iter().sum::<f32>();
            for i in 0..self.in_ch {
                let xi = &x[i * len..(i + 1) * len];
                let gxi = &mut gx[i * len..(i + 1) * len];
                let wbase = (o * self.in_ch + i) * self.k;
                for dk in 0..self.k {
                    // t + dk - pad must be in [0, len)
                    let t0 = pad.saturating_sub(dk);
                    let t1 = (len + pad).saturating_sub(dk).min(len);
                    if t0 >= t1 {
                        continue; // tap entirely out of bounds (len < k)
                    }
                    let (s0, s1) = (t0 + dk - pad, t1 + dk - pad);
                    let wv = self.w[wbase + dk];
                    for (d, &g) in gxi[s0..s1].iter_mut().zip(&gyo[t0..t1]) {
                        *d += g * wv;
                    }
                    let mut gwv = 0.0f32;
                    for (&g, &xv) in gyo[t0..t1].iter().zip(&xi[s0..s1]) {
                        gwv += g * xv;
                    }
                    gw[wbase + dk] += gwv;
                }
            }
        }
    }

    /// Lane-major forward over [`LANES`] samples at once: `xt` is
    /// `[in_ch][len][LANES]` (lane `j` = sample `j`), `yt` receives
    /// `[out_ch][len][LANES]` in the same layout.
    ///
    /// With samples as the innermost contiguous dimension, every
    /// kernel tap becomes a shifted saxpy over `(t1-t0)*LANES`
    /// contiguous floats — no interior/edge split, no data-dependent
    /// branches, one broadcast weight feeding 8 independent lanes.
    /// Each lane's per-element accumulation chain is bias-seeded then
    /// ascending `(i, dk)` over in-bounds taps — exactly
    /// [`Conv1d::forward`]'s chain, so per-sample outputs are bitwise
    /// identical to the one-sample path.
    pub fn forward_lanes(&self, xt: &[f32], len: usize, yt: &mut Vec<f32>) {
        const L: usize = LANES;
        debug_assert_eq!(xt.len(), self.in_ch * len * L);
        let pad = self.k / 2;
        yt.clear();
        yt.resize(self.out_ch * len * L, 0.0);
        for o in 0..self.out_ch {
            let yo = &mut yt[o * len * L..(o + 1) * len * L];
            yo.fill(self.b[o]);
            for i in 0..self.in_ch {
                let xi = &xt[i * len * L..(i + 1) * len * L];
                let wbase = (o * self.in_ch + i) * self.k;
                for dk in 0..self.k {
                    // Columns where tap `t + dk - pad` is in [0, len).
                    let t0 = pad.saturating_sub(dk);
                    let t1 = (len + pad).saturating_sub(dk).min(len);
                    if t0 >= t1 {
                        continue; // tap entirely out of bounds (len < k)
                    }
                    let (s0, s1) = (t0 + dk - pad, t1 + dk - pad);
                    let wv = self.w[wbase + dk];
                    let src = &xi[s0 * L..s1 * L];
                    let dst = &mut yo[t0 * L..t1 * L];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += wv * s;
                    }
                }
            }
        }
    }
}

/// Adds one input channel's contribution `Σ_dk w[dk]·xi[t+dk-pad]`
/// into every output column `yo[t]`, keeping each column's
/// accumulation chain in ascending-`dk` order (the bit-parity
/// contract with the scalar reference kernel).
///
/// Columns in `[lo, hi)` see the whole kernel in bounds, so their
/// inner loop is a straight multiply-add over `xi[t-pad..t-pad+k]`
/// with no data-dependent branches; an 8-column block turns that into
/// independent per-lane chains the autovectorizer lifts into SIMD.
/// Edge columns fall back to per-tap bounds checks (zero padding).
#[inline]
fn conv_accum_row(w: &[f32], xi: &[f32], yo: &mut [f32], pad: usize, lo: usize, hi: usize) {
    const B: usize = 8;
    let len = yo.len();
    for t in (0..lo).chain(hi..len) {
        let mut acc = yo[t];
        for (dk, &wv) in w.iter().enumerate() {
            let src = t + dk;
            if src >= pad && src - pad < len {
                acc += wv * xi[src - pad];
            }
        }
        yo[t] = acc;
    }
    let mut t = lo;
    while t + B <= hi {
        let mut acc = [0.0f32; B];
        acc.copy_from_slice(&yo[t..t + B]);
        for (dk, &wv) in w.iter().enumerate() {
            let xs = &xi[t + dk - pad..t + dk - pad + B];
            for (a, &xv) in acc.iter_mut().zip(xs) {
                *a += wv * xv;
            }
        }
        yo[t..t + B].copy_from_slice(&acc);
        t += B;
    }
    for t in t..hi {
        let xw = &xi[t - pad..t - pad + w.len()];
        let mut acc = yo[t];
        for (&wv, &xv) in w.iter().zip(xw) {
            acc += wv * xv;
        }
        yo[t] = acc;
    }
}

/// Sample lanes per batched-inference tile ([`Dense::forward_batch`],
/// [`Conv1d::forward_lanes`], [`maxpool2_lanes`]): 8 floats is one
/// AVX register (or two SSE ones), and small enough that accumulator
/// blocks stay in registers. Tiles are *lane-major*: element `e` of
/// samples `0..8` sits at `[e * LANES .. e * LANES + 8]`, so every
/// per-element op is a contiguous 8-wide SIMD op.
pub const LANES: usize = 8;

/// Fully connected layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    /// Input features.
    pub in_dim: usize,
    /// Output features.
    pub out_dim: usize,
    /// Weights `[out][in]`; a [`ParamBuf`] so loaded models can read
    /// them straight out of a mapped container.
    pub w: ParamBuf,
    /// Bias `[out]`.
    pub b: ParamBuf,
}

impl Dense {
    /// Xavier-initialized dense layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Dense {
        let w = (0..out_dim * in_dim)
            .map(|_| xavier(in_dim, out_dim, rng))
            .collect();
        Dense {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim].into(),
        }
    }

    /// Number of parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// `y = W x + b`.
    pub fn forward(&self, x: &[f32], y: &mut Vec<f32>) {
        debug_assert_eq!(x.len(), self.in_dim);
        y.clear();
        y.reserve(self.out_dim);
        for o in 0..self.out_dim {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let dot: f32 = row.iter().zip(x).map(|(a, b)| a * b).sum();
            y.push(dot + self.b[o]);
        }
    }

    /// Tiled batch-GEMM over [`LANES`] samples at once: `xt` is
    /// the input tile *transposed* to `[in_dim][LANES]` (lane `j` =
    /// sample `j`), `out` receives `[out_dim][LANES]` in the same
    /// lane-major layout.
    ///
    /// Each lane's accumulation chain is exactly
    /// [`Dense::forward`]'s — zero-seeded, ascending `i`, bias added
    /// last — so per-sample outputs are bitwise identical to the
    /// one-sample path. The weight `w[o][i]` broadcasts across the 8
    /// contiguous lanes, which is the shape the autovectorizer turns
    /// into SIMD: one weight load feeds 8 independent multiply-adds,
    /// and the weight matrix streams through once per *tile* instead
    /// of once per sample.
    pub fn forward_batch(&self, xt: &[f32], out: &mut Vec<f32>) {
        const L: usize = LANES;
        debug_assert_eq!(xt.len(), self.in_dim * L);
        out.clear();
        out.resize(self.out_dim * L, 0.0);
        for o in 0..self.out_dim {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = [0.0f32; L];
            for (i, &wv) in row.iter().enumerate() {
                let xs = &xt[i * L..i * L + L];
                for (a, &xv) in acc.iter_mut().zip(xs) {
                    *a += wv * xv;
                }
            }
            let b = self.b[o];
            for (dst, a) in out[o * L..o * L + L].iter_mut().zip(acc) {
                *dst = a + b;
            }
        }
    }

    /// Backward pass; fills `gx`, accumulates `gw`/`gb`.
    pub fn backward(
        &self,
        x: &[f32],
        gy: &[f32],
        gx: &mut Vec<f32>,
        gw: &mut [f32],
        gb: &mut [f32],
    ) {
        gx.clear();
        gx.resize(self.in_dim, 0.0);
        for o in 0..self.out_dim {
            let g = gy[o];
            gb[o] += g;
            if g == 0.0 {
                continue;
            }
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let grow = &mut gw[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                grow[i] += g * x[i];
                gx[i] += g * row[i];
            }
        }
    }
}

/// In-place ReLU; returns nothing, the mask is recoverable from the
/// output (`y > 0`).
pub fn relu(y: &mut [f32]) {
    for v in y {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Backward ReLU: zero the gradient where the forward output was zero.
pub fn relu_backward(y: &[f32], gy: &mut [f32]) {
    for (g, v) in gy.iter_mut().zip(y) {
        if *v <= 0.0 {
            *g = 0.0;
        }
    }
}

/// Max-pool each channel of `[channels][len]` by a factor of 2
/// (floor). Returns the pooled tensor and the argmax indices.
pub fn maxpool2(x: &[f32], channels: usize, len: usize) -> (Vec<f32>, Vec<u32>) {
    let out_len = len / 2;
    let mut y = Vec::with_capacity(channels * out_len);
    let mut arg = Vec::with_capacity(channels * out_len);
    for c in 0..channels {
        let xc = &x[c * len..(c + 1) * len];
        for t in 0..out_len {
            let (a, b) = (xc[2 * t], xc[2 * t + 1]);
            if a >= b {
                y.push(a);
                arg.push((c * len + 2 * t) as u32);
            } else {
                y.push(b);
                arg.push((c * len + 2 * t + 1) as u32);
            }
        }
    }
    (y, arg)
}

/// Lane-major max-pool over [`LANES`] samples at once: `xt` is
/// `[channels][len][LANES]`, `yt` receives
/// `[channels][len/2][LANES]`. Inference-only — no argmax indices are
/// recorded. Each lane's select is `a >= b ? a : b`, the same
/// comparison (including NaN polarity) as [`maxpool2`].
pub fn maxpool2_lanes(xt: &[f32], channels: usize, len: usize, yt: &mut Vec<f32>) {
    const L: usize = LANES;
    debug_assert_eq!(xt.len(), channels * len * L);
    let out_len = len / 2;
    yt.clear();
    yt.resize(channels * out_len * L, 0.0);
    for c in 0..channels {
        let xc = &xt[c * len * L..(c + 1) * len * L];
        let yc = &mut yt[c * out_len * L..(c + 1) * out_len * L];
        for t in 0..out_len {
            let a = &xc[2 * t * L..2 * t * L + L];
            let b = &xc[(2 * t + 1) * L..(2 * t + 1) * L + L];
            let dst = &mut yc[t * L..t * L + L];
            for j in 0..L {
                dst[j] = if a[j] >= b[j] { a[j] } else { b[j] };
            }
        }
    }
}

/// Backward max-pool: route gradients to the argmax positions.
pub fn maxpool2_backward(gy: &[f32], arg: &[u32], input_len_total: usize) -> Vec<f32> {
    let mut gx = vec![0.0; input_len_total];
    for (g, &a) in gy.iter().zip(arg) {
        gx[a as usize] += g;
    }
    gx
}

/// Numerically stable softmax in place.
pub fn softmax(z: &mut [f32]) {
    let max = z.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in z.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in z.iter_mut() {
        *v /= sum;
    }
}

/// Cross-entropy loss of a softmax distribution against a label, and
/// the logit gradient (`p - onehot`), written into `probs` in place.
pub fn cross_entropy_backward(probs: &mut [f32], label: usize) -> f32 {
    let loss = -(probs[label].max(1e-12)).ln();
    probs[label] -= 1.0;
    loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    /// The pre-blocking scalar forward loop, kept verbatim as the
    /// bit-parity oracle — including the `wv == 0.0` skip, which the
    /// finite-input proptest's generators never trigger (weights are
    /// drawn from ranges excluding exact zero).
    fn conv_forward_oracle(c: &Conv1d, x: &[f32], len: usize, y: &mut Vec<f32>) {
        let pad = c.k / 2;
        y.clear();
        y.resize(c.out_ch * len, 0.0);
        for o in 0..c.out_ch {
            let yo = &mut y[o * len..(o + 1) * len];
            yo.fill(c.b[o]);
            for i in 0..c.in_ch {
                let xi = &x[i * len..(i + 1) * len];
                let wbase = (o * c.in_ch + i) * c.k;
                for dk in 0..c.k {
                    let wv = c.w[wbase + dk];
                    if wv == 0.0 {
                        continue;
                    }
                    let t0 = pad.saturating_sub(dk);
                    let t1 = (len + pad).saturating_sub(dk).min(len);
                    for t in t0..t1 {
                        yo[t] += wv * xi[t + dk - pad];
                    }
                }
            }
        }
    }

    /// The pre-blocking scalar backward loop, kept verbatim as the
    /// bit-parity oracle.
    fn conv_backward_oracle(
        c: &Conv1d,
        x: &[f32],
        len: usize,
        gy: &[f32],
        gx: &mut Vec<f32>,
        gw: &mut [f32],
        gb: &mut [f32],
    ) {
        let pad = c.k / 2;
        gx.clear();
        gx.resize(c.in_ch * len, 0.0);
        for o in 0..c.out_ch {
            let gyo = &gy[o * len..(o + 1) * len];
            gb[o] += gyo.iter().sum::<f32>();
            for i in 0..c.in_ch {
                let xi = &x[i * len..(i + 1) * len];
                let gxi = &mut gx[i * len..(i + 1) * len];
                let wbase = (o * c.in_ch + i) * c.k;
                for dk in 0..c.k {
                    let t0 = pad.saturating_sub(dk);
                    let t1 = (len + pad).saturating_sub(dk).min(len);
                    let mut gwv = 0.0f32;
                    let wv = c.w[wbase + dk];
                    for t in t0..t1 {
                        let xv = xi[t + dk - pad];
                        gwv += gyo[t] * xv;
                        gxi[t + dk - pad] += gyo[t] * wv;
                    }
                    gw[wbase + dk] += gwv;
                }
            }
        }
    }

    fn conv_with_weights(in_ch: usize, out_ch: usize, k: usize, ws: &[f32], bs: &[f32]) -> Conv1d {
        let mut rng = StdRng::seed_from_u64(99);
        let mut c = Conv1d::new(in_ch, out_ch, k, &mut rng);
        c.w = ws.to_vec().into();
        c.b = bs.to_vec().into();
        c
    }

    proptest! {
        /// The blocked forward kernel is bitwise equal to the old
        /// scalar loops on finite inputs, across lengths that hit the
        /// short-input, block-remainder, and multi-block paths.
        #[test]
        fn blocked_forward_is_bitwise_equal_to_scalar_oracle(
            seed in 0u64..1000,
            len in 1usize..40,
            in_ch in 1usize..4,
            out_ch in 1usize..4,
            kk in 0usize..3,
        ) {
            let k = 2 * kk + 1;
            let mut rng = StdRng::seed_from_u64(seed);
            use rand::Rng;
            let nz = |r: &mut StdRng| {
                let v: f32 = r.gen_range(0.05f32..2.0);
                if r.gen_range(0..2) == 0 { v } else { -v }
            };
            let ws: Vec<f32> = (0..out_ch * in_ch * k).map(|_| nz(&mut rng)).collect();
            let bs: Vec<f32> = (0..out_ch).map(|_| nz(&mut rng)).collect();
            let conv = conv_with_weights(in_ch, out_ch, k, &ws, &bs);
            let x: Vec<f32> = (0..in_ch * len).map(|_| nz(&mut rng)).collect();
            let (mut y, mut y_ref) = (Vec::new(), Vec::new());
            conv.forward(&x, len, &mut y);
            conv_forward_oracle(&conv, &x, len, &mut y_ref);
            let bits: Vec<u32> = y.iter().map(|v| v.to_bits()).collect();
            let bits_ref: Vec<u32> = y_ref.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(bits, bits_ref);
        }

        /// The restructured backward (split saxpy/reduction loops) is
        /// bitwise equal to the old fused scalar loop on finite
        /// inputs.
        #[test]
        fn restructured_backward_is_bitwise_equal_to_scalar_oracle(
            seed in 0u64..1000,
            len in 1usize..40,
            in_ch in 1usize..4,
            out_ch in 1usize..4,
            kk in 0usize..3,
        ) {
            let k = 2 * kk + 1;
            let mut rng = StdRng::seed_from_u64(seed);
            use rand::Rng;
            let nz = |r: &mut StdRng| {
                let v: f32 = r.gen_range(0.05f32..2.0);
                if r.gen_range(0..2) == 0 { v } else { -v }
            };
            let ws: Vec<f32> = (0..out_ch * in_ch * k).map(|_| nz(&mut rng)).collect();
            let bs: Vec<f32> = (0..out_ch).map(|_| nz(&mut rng)).collect();
            let conv = conv_with_weights(in_ch, out_ch, k, &ws, &bs);
            let x: Vec<f32> = (0..in_ch * len).map(|_| nz(&mut rng)).collect();
            let gy: Vec<f32> = (0..out_ch * len).map(|_| nz(&mut rng)).collect();
            let (mut gx, mut gx_ref) = (Vec::new(), Vec::new());
            let mut gw = vec![0.1f32; conv.w.len()];
            let mut gw_ref = gw.clone();
            let mut gb = vec![0.2f32; conv.b.len()];
            let mut gb_ref = gb.clone();
            conv.backward(&x, len, &gy, &mut gx, &mut gw, &mut gb);
            conv_backward_oracle(&conv, &x, len, &gy, &mut gx_ref, &mut gw_ref, &mut gb_ref);
            let b = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
            prop_assert_eq!(b(&gx), b(&gx_ref));
            prop_assert_eq!(b(&gw), b(&gw_ref));
            prop_assert_eq!(b(&gb), b(&gb_ref));
        }

        /// `Dense::forward_batch` lanes are bitwise equal to 8
        /// independent `Dense::forward` calls.
        #[test]
        fn dense_forward_batch_lanes_match_single_sample_path(
            seed in 0u64..1000,
            in_dim in 1usize..24,
            out_dim in 1usize..12,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let dense = Dense::new(in_dim, out_dim, &mut rng);
            use rand::Rng;
            let samples: Vec<Vec<f32>> = (0..LANES)
                .map(|_| (0..in_dim).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
                .collect();
            let mut xt = vec![0.0f32; in_dim * LANES];
            for (j, s) in samples.iter().enumerate() {
                for (i, &v) in s.iter().enumerate() {
                    xt[i * LANES + j] = v;
                }
            }
            let mut out = Vec::new();
            dense.forward_batch(&xt, &mut out);
            for (j, s) in samples.iter().enumerate() {
                let mut y = Vec::new();
                dense.forward(s, &mut y);
                for o in 0..out_dim {
                    prop_assert_eq!(out[o * LANES + j].to_bits(), y[o].to_bits());
                }
            }
        }
    }

    /// With the zero-weight skip removed, a hostile window containing
    /// ±∞/NaN takes the *same* numeric path in forward and backward: a
    /// zero tap over an infinite input yields NaN in both (0·∞ = NaN),
    /// where the old forward silently skipped it while backward
    /// propagated it.
    #[test]
    fn forward_and_backward_agree_on_non_finite_inputs() {
        // One channel, identity-ish kernel with an explicit 0.0 tap.
        let conv = conv_with_weights(1, 1, 3, &[0.0, 1.0, 0.0], &[0.0]);
        let len = 5;
        let x = vec![1.0, f32::INFINITY, 2.0, 3.0, 4.0];
        let mut y = Vec::new();
        conv.forward(&x, len, &mut y);
        // The ∞ column reaches outputs through all three taps; the
        // zero taps contribute 0·∞ = NaN to the neighbours instead of
        // being skipped.
        assert!(
            y[0].is_nan(),
            "left neighbour sees 0.0·∞ = NaN, got {}",
            y[0]
        );
        assert!(
            y[1].is_infinite(),
            "centre tap passes ∞ through, got {}",
            y[1]
        );
        assert!(
            y[2].is_nan(),
            "right neighbour sees 0.0·∞ = NaN, got {}",
            y[2]
        );
        assert_eq!(&y[3..], &[3.0, 4.0], "columns away from ∞ are untouched");

        // Backward with gy = ∞ at one column: the zero taps produce
        // NaN input-gradients at the neighbours — the same arithmetic
        // forward now performs, rather than a silently different path.
        let gy = vec![0.0, f32::INFINITY, 0.0, 0.0, 0.0];
        let mut gx = Vec::new();
        let mut gw = vec![0.0; 3];
        let mut gb = vec![0.0; 1];
        conv.backward(&x, len, &gy, &mut gx, &mut gw, &mut gb);
        assert!(
            gx[0].is_nan(),
            "gx left neighbour: 0.0·∞ = NaN, got {}",
            gx[0]
        );
        assert!(gx[1].is_infinite(), "gx centre: 1.0·∞ = ∞, got {}", gx[1]);
        assert!(
            gx[2].is_nan(),
            "gx right neighbour: 0.0·∞ = NaN, got {}",
            gx[2]
        );
        for (t, (f, b)) in y[..3].iter().zip(&gx[..3]).enumerate() {
            assert_eq!(
                f.is_nan(),
                b.is_nan(),
                "forward/backward disagree on non-finite handling at column {t}"
            );
        }
    }

    #[test]
    fn conv_identity_kernel_preserves_signal() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv1d::new(1, 1, 3, &mut rng);
        conv.w = vec![0.0, 1.0, 0.0].into();
        conv.b = vec![0.0].into();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let mut y = Vec::new();
        conv.forward(&x, 4, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn conv_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(1);
        let conv = Conv1d::new(2, 3, 3, &mut rng);
        let len = 5;
        let x: Vec<f32> = (0..2 * len).map(|i| (i as f32 * 0.3).sin()).collect();
        let mut y = Vec::new();
        conv.forward(&x, len, &mut y);
        // Loss = sum(y^2)/2, so gy = y.
        let gy = y.clone();
        let mut gx = Vec::new();
        let mut gw = vec![0.0; conv.w.len()];
        let mut gb = vec![0.0; conv.b.len()];
        conv.backward(&x, len, &gy, &mut gx, &mut gw, &mut gb);

        let eps = 1e-3f32;
        let loss = |c: &Conv1d, x: &[f32]| {
            let mut yy = Vec::new();
            c.forward(x, len, &mut yy);
            yy.iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        // Check a few weight gradients.
        for idx in [0usize, 3, 7, conv.w.len() - 1] {
            let mut c2 = conv.clone();
            c2.w.to_mut()[idx] += eps;
            let num = (loss(&c2, &x) - loss(&conv, &x)) / eps;
            assert!(
                (num - gw[idx]).abs() < 0.05 * (1.0 + num.abs()),
                "dw[{idx}]: numeric {num} vs analytic {}",
                gw[idx]
            );
        }
        // And a few input gradients.
        for idx in [0usize, 4, 9] {
            let mut x2 = x.clone();
            x2[idx] += eps;
            let num = (loss(&conv, &x2) - loss(&conv, &x)) / eps;
            assert!(
                (num - gx[idx]).abs() < 0.05 * (1.0 + num.abs()),
                "dx[{idx}]: numeric {num} vs analytic {}",
                gx[idx]
            );
        }
    }

    #[test]
    fn dense_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let dense = Dense::new(4, 3, &mut rng);
        let x = vec![0.5, -0.2, 0.8, 0.1];
        let mut y = Vec::new();
        dense.forward(&x, &mut y);
        let gy = y.clone();
        let mut gx = Vec::new();
        let mut gw = vec![0.0; dense.w.len()];
        let mut gb = vec![0.0; dense.b.len()];
        dense.backward(&x, &gy, &mut gx, &mut gw, &mut gb);
        let loss = |d: &Dense, x: &[f32]| {
            let mut yy = Vec::new();
            d.forward(x, &mut yy);
            yy.iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        let eps = 1e-3f32;
        for (idx, &g) in gw.iter().enumerate() {
            let mut d2 = dense.clone();
            d2.w.to_mut()[idx] += eps;
            let num = (loss(&d2, &x) - loss(&dense, &x)) / eps;
            assert!((num - g).abs() < 0.02 * (1.0 + num.abs()));
        }
        for (idx, &g) in gx.iter().enumerate() {
            let mut x2 = x.clone();
            x2[idx] += eps;
            let num = (loss(&dense, &x2) - loss(&dense, &x)) / eps;
            assert!((num - g).abs() < 0.02 * (1.0 + num.abs()));
        }
    }

    #[test]
    fn relu_and_backward() {
        let mut y = vec![-1.0, 0.0, 2.0];
        relu(&mut y);
        assert_eq!(y, vec![0.0, 0.0, 2.0]);
        let mut gy = vec![5.0, 5.0, 5.0];
        relu_backward(&y, &mut gy);
        assert_eq!(gy, vec![0.0, 0.0, 5.0]);
    }

    #[test]
    fn maxpool_and_backward() {
        let x = vec![1.0, 3.0, 2.0, 0.0, /* ch2 */ 5.0, 4.0, 7.0, 8.0];
        let (y, arg) = maxpool2(&x, 2, 4);
        assert_eq!(y, vec![3.0, 2.0, 5.0, 8.0]);
        let gx = maxpool2_backward(&[1.0, 1.0, 1.0, 1.0], &arg, 8);
        assert_eq!(gx, vec![0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut z = vec![1.0, 2.0, 3.0];
        softmax(&mut z);
        let sum: f32 = z.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(z[2] > z[1] && z[1] > z[0]);
    }

    #[test]
    fn cross_entropy_gradient_shape() {
        let mut z = vec![0.1, 0.2, 0.7f32];
        let loss = cross_entropy_backward(&mut z, 2);
        assert!((loss - (-0.7f32.ln())).abs() < 1e-6);
        assert!((z[2] - (0.7 - 1.0)).abs() < 1e-6);
        let sum: f32 = z.iter().sum();
        assert!(sum.abs() < 1e-6, "softmax-CE gradient sums to zero");
    }
}
