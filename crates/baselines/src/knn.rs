//! A TypeMiner-style signature nearest-neighbour baseline: the
//! feature of a variable is the multiset of its generalized target
//! instructions (plus their immediate ±1 neighbours); prediction is
//! the majority class of training variables with the same signature.
//!
//! On *uncertain samples* — identical signatures, different classes —
//! this method cannot do better than the training-set majority, which
//! is exactly the failure mode the paper's Fig. 1 illustrates.

use crate::VarTyper;
use cati_analysis::{Extraction, WINDOW};
use cati_dwarf::TypeClass;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How wide a neighbourhood the signature includes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SignatureWidth {
    /// Target instructions only.
    TargetOnly,
    /// Target ±1 instruction — a minimal "dependency" context.
    TargetPlusMinusOne,
}

/// The trained signature table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SignatureKnn {
    width_plus_one: bool,
    table: HashMap<String, Vec<(TypeClass, u32)>>,
    majority: Option<TypeClass>,
}

fn signature(ex: &Extraction, var_idx: usize, plus_one: bool) -> String {
    let mut parts: Vec<String> = ex.vars[var_idx]
        .vucs
        .iter()
        .map(|&v| {
            let vuc = &ex.vucs[v as usize];
            if plus_one {
                format!(
                    "{}|{}|{}",
                    vuc.insns[WINDOW - 1],
                    vuc.insns[WINDOW],
                    vuc.insns[WINDOW + 1]
                )
            } else {
                vuc.insns[WINDOW].to_string()
            }
        })
        .collect();
    parts.sort_unstable();
    parts.join(";")
}

impl SignatureKnn {
    /// Builds the table from labeled extractions.
    pub fn train<'a>(
        extractions: impl IntoIterator<Item = &'a Extraction>,
        width: SignatureWidth,
    ) -> SignatureKnn {
        let plus_one = width == SignatureWidth::TargetPlusMinusOne;
        let mut table: HashMap<String, HashMap<TypeClass, u32>> = HashMap::new();
        let mut global: HashMap<TypeClass, u32> = HashMap::new();
        for ex in extractions {
            for (i, var) in ex.labeled_vars() {
                let class = var.class.expect("labeled");
                let sig = signature(ex, i, plus_one);
                *table.entry(sig).or_default().entry(class).or_insert(0) += 1;
                *global.entry(class).or_insert(0) += 1;
            }
        }
        let majority = global.into_iter().max_by_key(|(_, c)| *c).map(|(c, _)| c);
        SignatureKnn {
            width_plus_one: plus_one,
            table: table
                .into_iter()
                .map(|(sig, counts)| {
                    let mut v: Vec<(TypeClass, u32)> = counts.into_iter().collect();
                    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                    (sig, v)
                })
                .collect(),
            majority,
        }
    }

    /// Number of distinct signatures seen in training.
    pub fn signature_count(&self) -> usize {
        self.table.len()
    }

    /// Fraction of training signatures that map to more than one
    /// class — the uncertain-sample collision rate this baseline
    /// cannot resolve.
    pub fn collision_rate(&self) -> f64 {
        if self.table.is_empty() {
            return 0.0;
        }
        let collisions = self.table.values().filter(|v| v.len() > 1).count();
        collisions as f64 / self.table.len() as f64
    }
}

impl VarTyper for SignatureKnn {
    fn name(&self) -> &'static str {
        "signature k-NN"
    }

    fn predict_var(&self, ex: &Extraction, var_idx: usize) -> TypeClass {
        let sig = signature(ex, var_idx, self.width_plus_one);
        self.table
            .get(&sig)
            .and_then(|v| v.first())
            .map(|(c, _)| *c)
            .or(self.majority)
            .unwrap_or(TypeClass::Int)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cati_analysis::{extract, FeatureView};
    use cati_synbin::{build_corpus, CorpusConfig};

    #[test]
    fn knn_memorizes_training_data_reasonably() {
        let corpus = build_corpus(&CorpusConfig::small(64));
        let exs: Vec<Extraction> = corpus
            .train
            .iter()
            .map(|b| extract(&b.binary, FeatureView::WithSymbols).unwrap())
            .collect();
        let knn = SignatureKnn::train(&exs, SignatureWidth::TargetOnly);
        assert!(knn.signature_count() > 20);
        // Training accuracy is bounded away from zero and from one —
        // one because uncertain samples collide.
        let mut ok = 0;
        let mut n = 0;
        for ex in &exs {
            for (i, var) in ex.labeled_vars() {
                n += 1;
                ok += usize::from(knn.predict_var(ex, i) == var.class.unwrap());
            }
        }
        let acc = ok as f64 / n as f64;
        assert!(acc > 0.4, "training accuracy {acc:.2} too low");
        assert!(
            knn.collision_rate() > 0.02,
            "expected signature collisions (uncertain samples), rate {:.3}",
            knn.collision_rate()
        );
    }

    #[test]
    fn wider_signature_has_fewer_collisions() {
        let corpus = build_corpus(&CorpusConfig::small(65));
        let exs: Vec<Extraction> = corpus
            .train
            .iter()
            .map(|b| extract(&b.binary, FeatureView::WithSymbols).unwrap())
            .collect();
        let narrow = SignatureKnn::train(&exs, SignatureWidth::TargetOnly);
        let wide = SignatureKnn::train(&exs, SignatureWidth::TargetPlusMinusOne);
        assert!(wide.signature_count() >= narrow.signature_count());
    }
}
