//! The context ablation: CATI's own architecture with every context
//! position blanked out, so the model sees only the target
//! instruction — a dependency-free stand-in for the feature sets of
//! DEBIN/TypeMiner on *orphan variables*, and the direct measurement
//! of how much the VUC contributes.

use crate::VarTyper;
use cati::{Config, Dataset, MultiStage};
use cati_analysis::{Extraction, WINDOW};
use cati_asm::generalize::GenInsn;
use cati_dwarf::TypeClass;
use cati_embedding::VucEmbedder;
use serde::{Deserialize, Serialize};

/// Blanks every non-center instruction of a window.
pub fn blank_context(window: &[GenInsn]) -> Vec<GenInsn> {
    window
        .iter()
        .enumerate()
        .map(|(i, g)| {
            if i == WINDOW {
                g.clone()
            } else {
                GenInsn::blank()
            }
        })
        .collect()
}

/// Returns a copy of `ex` whose VUC windows keep only the target
/// instruction.
pub fn blank_extraction(ex: &Extraction) -> Extraction {
    let mut out = ex.clone();
    for vuc in &mut out.vucs {
        vuc.insns = blank_context(&vuc.insns);
    }
    out
}

/// CATI without context: same embedder, same six-stage tree, blanked
/// windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoContextCati {
    /// Shared embedder (trained on full code).
    pub embedder: VucEmbedder,
    /// Stage models trained on blanked windows.
    pub stages: MultiStage,
    threshold: f32,
}

impl NoContextCati {
    /// Trains on the blanked version of `dataset`.
    pub fn train(dataset: &Dataset, embedder: &VucEmbedder, config: &Config) -> NoContextCati {
        let blanked = Dataset {
            entries: dataset
                .entries
                .iter()
                .map(|(app, ex)| (app.clone(), blank_extraction(ex)))
                .collect(),
        };
        let stages = MultiStage::train(&blanked, embedder, config, &cati::obs::NOOP);
        NoContextCati {
            embedder: embedder.clone(),
            stages,
            threshold: config.vote_threshold,
        }
    }
}

impl VarTyper for NoContextCati {
    fn name(&self) -> &'static str {
        "no-context CNN"
    }

    fn predict_var(&self, ex: &Extraction, var_idx: usize) -> TypeClass {
        let dists: Vec<Vec<f32>> = ex.vars[var_idx]
            .vucs
            .iter()
            .map(|&v| {
                let blanked = blank_context(&ex.vucs[v as usize].insns);
                let x = self.embedder.embed_window(&blanked);
                self.stages.leaf_distribution(&x)
            })
            .collect();
        TypeClass::ALL[cati::vote(&dists, self.threshold).class]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanking_keeps_only_the_center() {
        let mut window = vec![GenInsn::blank(); 21];
        window[WINDOW] = GenInsn {
            tokens: ["mov".into(), "%rax".into(), "0xIMM(%rsp)".into()],
        };
        window[0] = GenInsn {
            tokens: ["lea".into(), "0xIMM(%rsp)".into(), "%rax".into()],
        };
        let blanked = blank_context(&window);
        assert_eq!(blanked[0], GenInsn::blank());
        assert_eq!(blanked[WINDOW], window[WINDOW]);
    }
}
