//! A rule-based heuristic typer in the spirit of IDA Pro / TIE /
//! REWARDS: type a variable from the mnemonics and operand widths of
//! its *target instructions only*, with hand-written rules and no
//! learning. This is the expert-knowledge family CATI argues against
//! (paper §I).

use crate::VarTyper;
use cati_analysis::{Extraction, WINDOW};
use cati_dwarf::TypeClass;
use std::collections::HashMap;

/// The stateless rule-based typer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleTyper;

/// Maps one generalized target instruction to a candidate class with
/// a rule weight.
fn rule_votes(mnemonic: &str, op1: &str, op2: &str) -> Vec<(TypeClass, f32)> {
    let mut votes = Vec::new();
    let mut vote = |c: TypeClass, w: f32| votes.push((c, w));
    match mnemonic {
        // Float family: unambiguous width signals.
        "movss" | "addss" | "subss" | "mulss" | "divss" | "ucomiss" | "cvtsi2ss" => {
            vote(TypeClass::Float, 3.0)
        }
        "movsd" | "addsd" | "subsd" | "mulsd" | "divsd" | "ucomisd" | "cvtsi2sd" => {
            vote(TypeClass::Double, 3.0)
        }
        "fldt" | "fstpt" => vote(TypeClass::LongDouble, 3.0),
        "flds" | "fstps" => vote(TypeClass::Float, 2.0),
        "fldl" | "fstpl" => vote(TypeClass::Double, 2.0),
        // Byte accesses: bool or char.
        "movb" | "cmpb" | "testb" => {
            vote(TypeClass::Char, 1.0);
            vote(TypeClass::Bool, 0.8);
            vote(TypeClass::Struct, 0.4);
        }
        "movsbl" | "movsbq" | "movsbw" => vote(TypeClass::Char, 2.0),
        "movzbl" | "movzbq" | "movzbw" => {
            vote(TypeClass::UnsignedChar, 1.2);
            vote(TypeClass::Bool, 1.0);
        }
        // 16-bit.
        "movw" | "cmpw" => {
            vote(TypeClass::ShortInt, 1.0);
            vote(TypeClass::ShortUnsignedInt, 0.5);
        }
        "movswl" | "movswq" => vote(TypeClass::ShortInt, 2.0),
        "movzwl" | "movzwq" => vote(TypeClass::ShortUnsignedInt, 2.0),
        // 32-bit: int-ish, could be struct member.
        "movl" | "cmpl" | "addl" | "subl" | "andl" | "orl" | "imull" | "testl" => {
            vote(TypeClass::Int, 1.5);
            vote(TypeClass::UnsignedInt, 0.3);
            vote(TypeClass::Enum, 0.3);
            vote(TypeClass::Struct, 0.4);
        }
        "shrl" | "divl" => vote(TypeClass::UnsignedInt, 1.5),
        "sarl" | "idivl" | "cltq" => vote(TypeClass::Int, 1.5),
        // 64-bit: long or pointer — the classic ambiguity.
        "movq" | "cmpq" | "addq" | "subq" | "testq" => {
            vote(TypeClass::LongInt, 0.8);
            vote(TypeClass::PtrStruct, 0.8);
            vote(TypeClass::PtrVoid, 0.4);
            vote(TypeClass::LongUnsignedInt, 0.5);
        }
        "shrq" | "divq" => vote(TypeClass::LongUnsignedInt, 1.5),
        "sarq" | "idivq" | "cqto" => vote(TypeClass::LongInt, 1.5),
        // lea of a slot: aggregate whose address is taken.
        "lea" => {
            vote(TypeClass::Struct, 1.5);
            vote(TypeClass::Char, 0.7); // char buffers are lea'd too
        }
        // Suffix-elided moves: fall back on register width in operands.
        "mov" | "cmp" | "add" | "sub" | "and" | "or" | "xor" | "test" | "imul" => {
            let ops = format!("{op1} {op2}");
            if ops.contains("%r") && !ops.contains("%r8d") && !ops.contains('d') {
                vote(TypeClass::LongInt, 0.5);
                vote(TypeClass::PtrStruct, 0.7);
                vote(TypeClass::PtrArith, 0.3);
            } else if ops.contains("%e") {
                vote(TypeClass::Int, 1.2);
                vote(TypeClass::Struct, 0.3);
            } else if ops.contains("%al") || ops.contains('b') {
                vote(TypeClass::Bool, 0.8);
                vote(TypeClass::Char, 0.8);
            } else {
                vote(TypeClass::Int, 0.5);
            }
        }
        _ => vote(TypeClass::Int, 0.2),
    }
    votes
}

impl VarTyper for RuleTyper {
    fn name(&self) -> &'static str {
        "rule-based"
    }

    fn predict_var(&self, ex: &Extraction, var_idx: usize) -> TypeClass {
        let mut totals: HashMap<TypeClass, f32> = HashMap::new();
        for &v in &ex.vars[var_idx].vucs {
            let center = &ex.vucs[v as usize].insns[WINDOW];
            let votes = rule_votes(center.mnemonic(), &center.tokens[1], &center.tokens[2]);
            for (class, w) in votes {
                *totals.entry(class).or_insert(0.0) += w;
            }
        }
        totals
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)))
            .map(|(c, _)| c)
            .unwrap_or(TypeClass::Int)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_rules_are_decisive() {
        let v = rule_votes("movsd", "0xIMM(%rbp)", "%xmm0");
        assert_eq!(v[0].0, TypeClass::Double);
        let v = rule_votes("fldt", "-0xIMM(%rbp)", "BLANK");
        assert_eq!(v[0].0, TypeClass::LongDouble);
    }

    #[test]
    fn byte_access_is_ambiguous_by_design() {
        let v = rule_votes("movb", "$0xIMM", "-0xIMM(%rbp)");
        assert!(
            v.len() >= 2,
            "byte accesses should produce several candidates"
        );
    }

    #[test]
    fn unsigned_signals() {
        assert_eq!(
            rule_votes("shrl", "$0xIMM", "%eax")[0].0,
            TypeClass::UnsignedInt
        );
        assert_eq!(
            rule_votes("divq", "%rcx", "BLANK")[0].0,
            TypeClass::LongUnsignedInt
        );
    }
}
