//! `cati-baselines` — comparison methods for the evaluation.
//!
//! The paper compares CATI against DEBIN (CRF over dependency
//! features) and situates it against rule-based systems (IDA, TIE,
//! REWARDS) and shallow-ML systems (TypeMiner's n-grams). This crate
//! provides the corresponding families on our substrate:
//!
//! - [`RuleTyper`] — hand-written per-mnemonic rules, no learning;
//! - [`NoContextCati`] — CATI's own architecture with the context
//!   blanked, isolating exactly the paper's claim that the VUC is the
//!   decisive feature;
//! - [`SignatureKnn`] — a TypeMiner-style signature nearest-neighbour
//!   that collides on *uncertain samples* by construction.
//!
//! All baselines implement [`VarTyper`] so experiments can score them
//! uniformly via [`variable_accuracy`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod knn;
pub mod nocontext;
pub mod rules;

use cati_analysis::Extraction;
use cati_dwarf::TypeClass;

pub use knn::{SignatureKnn, SignatureWidth};
pub use nocontext::{blank_context, blank_extraction, NoContextCati};
pub use rules::RuleTyper;

/// A method that assigns a type class to a located variable.
pub trait VarTyper {
    /// Short display name.
    fn name(&self) -> &'static str;

    /// Predicts the class of `ex.vars[var_idx]`.
    fn predict_var(&self, ex: &Extraction, var_idx: usize) -> TypeClass;
}

/// Variable-level accuracy of a typer over labeled extractions.
pub fn variable_accuracy<'a>(
    typer: &dyn VarTyper,
    extractions: impl IntoIterator<Item = &'a Extraction>,
) -> f64 {
    let mut ok = 0u64;
    let mut n = 0u64;
    for ex in extractions {
        for (i, var) in ex.labeled_vars() {
            n += 1;
            ok += u64::from(typer.predict_var(ex, i) == var.class.expect("labeled"));
        }
    }
    if n == 0 {
        0.0
    } else {
        ok as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cati_analysis::{extract, FeatureView};
    use cati_synbin::{build_corpus, CorpusConfig};

    #[test]
    fn rule_typer_beats_chance_but_not_by_magic() {
        let corpus = build_corpus(&CorpusConfig::small(8));
        let exs: Vec<Extraction> = corpus
            .test
            .iter()
            .take(6)
            .map(|b| extract(&b.binary, FeatureView::WithSymbols).unwrap())
            .collect();
        let acc = variable_accuracy(&RuleTyper, &exs);
        assert!(acc > 0.10, "rule accuracy {acc:.3} below chance-ish floor");
        assert!(acc < 0.9, "rule accuracy {acc:.3} suspiciously high");
    }
}
