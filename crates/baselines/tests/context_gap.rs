//! The paper's central claim, as an executable test: context features
//! (the VUC) beat context-free methods on the same data.

use cati::{embedding_sentences, Cati, Config, Dataset};
use cati_analysis::FeatureView;
use cati_baselines::{variable_accuracy, NoContextCati, RuleTyper, SignatureKnn, SignatureWidth};
use cati_dwarf::TypeClass;
use cati_embedding::{VucEmbedder, Word2Vec};
use cati_synbin::{build_corpus, CorpusConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn gap_experiment(corpus_cfg: CorpusConfig, config: Config) -> (f64, f64, f64, f64, u64) {
    let corpus = build_corpus(&corpus_cfg);
    let cati = Cati::train(&corpus.train, &config, &cati::obs::NOOP);
    let train_ds = Dataset::from_binaries(&corpus.train, FeatureView::WithSymbols);
    let test_ds = Dataset::from_binaries(&corpus.test, FeatureView::Stripped);
    let test: Vec<&cati_analysis::Extraction> = test_ds.iter().map(|(_, e)| e).collect();

    // Full CATI, variable level.
    let mut ok = 0.0;
    let mut n = 0u64;
    for ex in &test {
        let (_, _, ra, rn) = cati::pipeline_accuracy(&cati, ex);
        ok += ra * rn as f64;
        n += rn;
    }
    let cati_acc = ok / n.max(1) as f64;

    // No-context ablation reusing the same embedder.
    let nocontext = NoContextCati::train(&train_ds, &cati.embedder, &config);
    let nc_acc = variable_accuracy(&nocontext, test.iter().copied());

    // Rules and signature k-NN.
    let rules_acc = variable_accuracy(&RuleTyper, test.iter().copied());
    let train_refs: Vec<&cati_analysis::Extraction> = train_ds.iter().map(|(_, e)| e).collect();
    let knn = SignatureKnn::train(train_refs.iter().copied(), SignatureWidth::TargetOnly);
    let knn_acc = variable_accuracy(&knn, test.iter().copied());
    (cati_acc, nc_acc, rules_acc, knn_acc, n)
}

/// Quick sanity version: at tiny scale the context model cannot be
/// expected to *beat* the target-only ablation (context needs data),
/// but it must stay competitive and beat the non-learning baselines.
#[test]
fn context_model_is_competitive_at_small_scale() {
    let mut corpus_cfg = CorpusConfig::small(4242);
    corpus_cfg.scale = 0.5;
    corpus_cfg.train_projects = 4;
    let mut config = Config::small();
    config.w2v.dim = 12;
    config.conv1 = 12;
    config.conv2 = 16;
    config.fc = 96;
    config.epochs = 3;
    let (cati_acc, nc_acc, rules_acc, knn_acc, n) = gap_experiment(corpus_cfg, config);
    assert!(n > 200, "need a real test sample");
    assert!(
        cati_acc > rules_acc,
        "CATI {cati_acc:.3} vs rules {rules_acc:.3}"
    );
    assert!(cati_acc > knn_acc, "CATI {cati_acc:.3} vs knn {knn_acc:.3}");
    assert!(
        cati_acc > nc_acc - 0.15,
        "CATI {cati_acc:.3} collapsed vs no-context {nc_acc:.3}"
    );
}

/// The paper's claim at reporting scale. Slow (~1 min); run with
/// `cargo test -p cati-baselines -- --ignored`.
#[test]
#[ignore = "trains two medium-capacity models (~1 min)"]
fn context_beats_every_context_free_baseline() {
    let (cati_acc, nc_acc, rules_acc, knn_acc, n) =
        gap_experiment(CorpusConfig::medium(4242), Config::medium());
    assert!(n > 500, "need a real test sample");
    assert!(
        cati_acc > nc_acc + 0.01,
        "context gap missing: CATI {cati_acc:.3} vs no-context {nc_acc:.3}"
    );
    assert!(cati_acc > rules_acc);
    assert!(cati_acc > knn_acc);
}

#[test]
fn nocontext_cannot_separate_uncertain_samples() {
    // Two windows whose targets are identical after generalization but
    // whose contexts differ must receive the same no-context prediction
    // and may receive different CATI predictions.
    let corpus = build_corpus(&CorpusConfig::small(777));
    let config = Config::small();
    let train_ds = Dataset::from_binaries(&corpus.train, FeatureView::WithSymbols);
    let mut rng = StdRng::seed_from_u64(0);
    let sentences = embedding_sentences(&corpus.train, config.max_sentences, &mut rng);
    let embedder = VucEmbedder::new(Word2Vec::train(&sentences, config.w2v));
    let nocontext = NoContextCati::train(&train_ds, &embedder, &config);

    // Find two VUCs with identical generalized centers in different
    // extractions.
    let mut by_center: std::collections::HashMap<String, Vec<(usize, usize)>> = Default::default();
    for (ei, (_, ex)) in train_ds.entries.iter().enumerate() {
        for (vi, vuc) in ex.vucs.iter().enumerate() {
            by_center
                .entry(vuc.insns[cati_analysis::WINDOW].to_string())
                .or_default()
                .push((ei, vi));
        }
    }
    let group = by_center
        .values()
        .find(|v| v.len() >= 2)
        .expect("collisions exist");
    let (e1, v1) = group[0];
    let (e2, v2) = group[1];

    // Build single-VUC pseudo-variables and compare predictions.
    let predict = |ei: usize, vi: usize| -> TypeClass {
        let ex = &train_ds.entries[ei].1;
        let mut solo = ex.clone();
        solo.vars = vec![cati_analysis::Variable {
            key: ex.vars[ex.vucs[vi].var as usize].key,
            name: None,
            class: None,
            debin: None,
            vucs: vec![0],
        }];
        solo.vucs = vec![ex.vucs[vi].clone()];
        solo.vucs[0].var = 0;
        cati_baselines::VarTyper::predict_var(&nocontext, &solo, 0)
    };
    assert_eq!(
        predict(e1, v1),
        predict(e2, v2),
        "identical generalized targets must get identical no-context predictions"
    );
}
