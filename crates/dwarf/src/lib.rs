//! `cati-dwarf` — C type model and DWARF-like debug information.
//!
//! This crate is the *type domain* substrate of the CATI reproduction:
//!
//! - [`ctype`] models source-level C types the way DWARF type DIEs do,
//!   including typedef chains that the labeling stage resolves
//!   recursively to base types.
//! - [`classes`] defines the 19 leaf classes CATI predicts
//!   ([`TypeClass`]), the six-stage classifier hierarchy ([`StageId`],
//!   paper Fig. 5), and the 17-label DEBIN comparison task
//!   ([`Debin17`]).
//! - [`debuginfo`] is a compact binary debug section carrying variable
//!   names, locations and types; the synthetic compiler emits it and
//!   the labeler parses it, mirroring the paper's GCC-DWARF loop.
//!
//! # Example
//!
//! ```
//! use cati_dwarf::{CType, TypeClass};
//!
//! let declared = CType::Typedef("size_t".into(), Box::new(
//!     CType::Integer(cati_dwarf::IntWidth::Long, cati_dwarf::Signedness::Unsigned)));
//! assert_eq!(TypeClass::of(&declared), Some(TypeClass::LongUnsignedInt));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classes;
pub mod ctype;
pub mod debuginfo;
pub mod error;

pub use classes::{Debin17, StageId, TypeClass};
pub use ctype::{CType, EnumDef, FloatWidth, IntWidth, Member, Signedness, StructDef};
pub use debuginfo::{DebugInfo, FuncRecord, TypeTable, VarLocation, VarRecord};
pub use error::DwarfError;
