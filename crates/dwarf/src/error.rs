//! Error type for debug-information parsing.

use std::error::Error;
use std::fmt;

/// Error parsing a serialized [`crate::debuginfo::DebugInfo`] section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DwarfError {
    /// The section does not start with the `CDWF` magic.
    BadMagic,
    /// The section's format version is newer than this parser.
    UnsupportedVersion(u32),
    /// The payload ended before a record was complete.
    Truncated,
    /// A string field was not valid UTF-8.
    BadString,
    /// An unknown tag byte was encountered.
    BadTag(u8),
    /// A type expression nests deeper than the parser allows.
    TypeTooDeep,
    /// A type expression references a struct/union/enum index outside
    /// the definition tables — debug info that lies about its own
    /// type graph.
    BadTypeRef {
        /// The out-of-range index.
        index: u32,
        /// Number of entries in the referenced table.
        table_len: u32,
    },
}

impl fmt::Display for DwarfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DwarfError::BadMagic => write!(f, "debug section has wrong magic number"),
            DwarfError::UnsupportedVersion(v) => {
                write!(f, "unsupported debug section version {v}")
            }
            DwarfError::Truncated => write!(f, "debug section is truncated"),
            DwarfError::BadString => write!(f, "debug section string is not valid utf-8"),
            DwarfError::BadTag(t) => write!(f, "unknown tag byte 0x{t:02x} in debug section"),
            DwarfError::TypeTooDeep => write!(f, "type expression nests too deeply"),
            DwarfError::BadTypeRef { index, table_len } => write!(
                f,
                "type references definition {index} but the table holds {table_len}"
            ),
        }
    }
}

impl Error for DwarfError {}
