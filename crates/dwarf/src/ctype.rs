//! Source-level C type model.
//!
//! This mirrors what DWARF `DW_TAG_*_type` DIEs describe: base types,
//! typedef chains, pointers, arrays, enums, structs and unions. CATI's
//! labeling stage resolves typedefs recursively to base types (paper
//! §IV-A) before mapping a type onto one of the 19 predicted classes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Signedness of an integer base type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Signedness {
    /// `signed` (the default for `int`, `short`, `long`, ...).
    Signed,
    /// `unsigned`.
    Unsigned,
}

impl Signedness {
    /// Returns `true` for [`Signedness::Signed`].
    pub fn is_signed(self) -> bool {
        matches!(self, Signedness::Signed)
    }
}

/// Width of an integer base type, named after the C keyword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntWidth {
    /// `char` — 1 byte.
    Char,
    /// `short int` — 2 bytes.
    Short,
    /// `int` — 4 bytes.
    Int,
    /// `long int` — 8 bytes on x86-64 (LP64).
    Long,
    /// `long long int` — 8 bytes.
    LongLong,
}

impl IntWidth {
    /// Size in bytes under the x86-64 System V ABI (LP64).
    pub fn size(self) -> u32 {
        match self {
            IntWidth::Char => 1,
            IntWidth::Short => 2,
            IntWidth::Int => 4,
            IntWidth::Long | IntWidth::LongLong => 8,
        }
    }
}

/// Width of a floating-point base type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FloatWidth {
    /// `float` — 4 bytes, SSE scalar single.
    Float,
    /// `double` — 8 bytes, SSE scalar double.
    Double,
    /// `long double` — x87 80-bit extended, 16-byte slot.
    LongDouble,
}

impl FloatWidth {
    /// Size in bytes of the in-memory representation.
    pub fn size(self) -> u32 {
        match self {
            FloatWidth::Float => 4,
            FloatWidth::Double => 8,
            FloatWidth::LongDouble => 16,
        }
    }
}

/// A member of a [`StructDef`] or union definition.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Member {
    /// Member name as written in source.
    pub name: String,
    /// Member type.
    pub ty: CType,
    /// Byte offset of the member from the start of the aggregate.
    pub offset: u32,
}

/// A struct or union definition referenced by [`CType::Struct`] /
/// [`CType::Union`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StructDef {
    /// Tag name (`struct <name>`), possibly synthetic for anonymous types.
    pub name: String,
    /// Ordered members with resolved offsets.
    pub members: Vec<Member>,
    /// Total size in bytes including trailing padding.
    pub size: u32,
    /// Alignment in bytes.
    pub align: u32,
}

impl StructDef {
    /// Lays out `members` sequentially with natural alignment, the way a
    /// C compiler would, and returns the finished definition.
    pub fn layout(name: impl Into<String>, members: Vec<(String, CType)>) -> StructDef {
        let mut out = Vec::with_capacity(members.len());
        let mut offset = 0u32;
        let mut align = 1u32;
        for (mname, ty) in members {
            let a = ty.align().max(1);
            align = align.max(a);
            offset = offset.div_ceil(a) * a;
            out.push(Member {
                name: mname,
                ty: ty.clone(),
                offset,
            });
            offset += ty.size();
        }
        let size = offset.div_ceil(align) * align;
        StructDef {
            name: name.into(),
            members: out,
            size: size.max(1),
            align,
        }
    }

    /// Looks up a member by byte offset, returning the member that
    /// contains `offset` if any.
    pub fn member_at(&self, offset: u32) -> Option<&Member> {
        self.members
            .iter()
            .rev()
            .find(|m| m.offset <= offset && offset < m.offset + m.ty.size())
    }
}

/// An enum definition: named constants over an `int`-sized storage.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EnumDef {
    /// Tag name.
    pub name: String,
    /// Enumerator names; discriminants are their indices.
    pub variants: Vec<String>,
}

/// A source-level C type, as described by debug information.
///
/// `Struct`/`Union`/`Enum` carry an index into the program's type
/// definition tables (see [`crate::debuginfo::DebugInfo`]) rather than an
/// inline definition, mirroring how DWARF DIEs reference each other.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CType {
    /// `void` — only meaningful behind a pointer.
    Void,
    /// `_Bool`.
    Bool,
    /// Integer base type of a given width and signedness.
    Integer(IntWidth, Signedness),
    /// Floating-point base type.
    Float(FloatWidth),
    /// `enum <tag>` — index into the enum table.
    Enum(u32),
    /// `struct <tag>` — index into the struct table.
    Struct(u32),
    /// `union <tag>` — index into the struct table (unions share it).
    Union(u32),
    /// Pointer to another type.
    Pointer(Box<CType>),
    /// Fixed-length array.
    Array(Box<CType>, u32),
    /// `typedef <name> = <aliased>`; chains may nest.
    Typedef(String, Box<CType>),
}

impl CType {
    /// Convenience constructor for `int`.
    pub fn int() -> CType {
        CType::Integer(IntWidth::Int, Signedness::Signed)
    }

    /// Convenience constructor for `char`.
    pub fn char() -> CType {
        CType::Integer(IntWidth::Char, Signedness::Signed)
    }

    /// Convenience constructor for a pointer to `self`'s clone.
    pub fn ptr_to(inner: CType) -> CType {
        CType::Pointer(Box::new(inner))
    }

    /// Recursively resolves typedef chains to the underlying type,
    /// the way CATI's labeling stage does (paper §IV-A: "If we found
    /// that the type has been redefined by typedef, we would
    /// recursively find its base type").
    pub fn resolve(&self) -> &CType {
        let mut t = self;
        while let CType::Typedef(_, inner) = t {
            t = inner;
        }
        t
    }

    /// Number of typedef hops until the base type.
    pub fn typedef_depth(&self) -> usize {
        let mut t = self;
        let mut n = 0;
        while let CType::Typedef(_, inner) = t {
            t = inner;
            n += 1;
        }
        n
    }

    /// Size in bytes under the x86-64 System V ABI. Struct/union/enum
    /// sizes require the definition tables, so this returns the size
    /// recorded in the type itself for scalars and pointers and a
    /// placeholder for aggregates; prefer
    /// [`crate::debuginfo::TypeTable::size_of`] when tables are at hand.
    pub fn size(&self) -> u32 {
        match self.resolve() {
            CType::Void => 1,
            CType::Bool => 1,
            CType::Integer(w, _) => w.size(),
            CType::Float(w) => w.size(),
            CType::Enum(_) => 4,
            // Without the table we only know aggregates are >= 1 byte;
            // generator code paths always go through TypeTable::size_of.
            CType::Struct(_) | CType::Union(_) => 8,
            CType::Pointer(_) => 8,
            CType::Array(elem, n) => elem.size() * n.max(&1),
            CType::Typedef(..) => unreachable!("resolve() strips typedefs"),
        }
    }

    /// Natural alignment in bytes.
    pub fn align(&self) -> u32 {
        match self.resolve() {
            CType::Void | CType::Bool => 1,
            CType::Integer(w, _) => w.size(),
            CType::Float(w) => w.size().min(16),
            CType::Enum(_) => 4,
            CType::Struct(_) | CType::Union(_) => 8,
            CType::Pointer(_) => 8,
            CType::Array(elem, _) => elem.align(),
            CType::Typedef(..) => unreachable!("resolve() strips typedefs"),
        }
    }

    /// Whether the resolved type is a pointer.
    pub fn is_pointer(&self) -> bool {
        matches!(self.resolve(), CType::Pointer(_))
    }

    /// Whether the resolved type is a C arithmetic type (bool, char,
    /// integer, float or enum).
    pub fn is_arithmetic(&self) -> bool {
        matches!(
            self.resolve(),
            CType::Bool | CType::Integer(..) | CType::Float(_) | CType::Enum(_)
        )
    }

    /// Whether the resolved type is a float family member.
    pub fn is_float(&self) -> bool {
        matches!(self.resolve(), CType::Float(_))
    }
}

impl fmt::Display for CType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CType::Void => write!(f, "void"),
            CType::Bool => write!(f, "_Bool"),
            CType::Integer(w, s) => {
                let base = match w {
                    IntWidth::Char => "char",
                    IntWidth::Short => "short int",
                    IntWidth::Int => "int",
                    IntWidth::Long => "long int",
                    IntWidth::LongLong => "long long int",
                };
                if s.is_signed() {
                    write!(f, "{base}")
                } else if *w == IntWidth::Char {
                    write!(f, "unsigned char")
                } else {
                    write!(f, "{} unsigned int", base.trim_end_matches(" int"))
                }
            }
            CType::Float(FloatWidth::Float) => write!(f, "float"),
            CType::Float(FloatWidth::Double) => write!(f, "double"),
            CType::Float(FloatWidth::LongDouble) => write!(f, "long double"),
            CType::Enum(id) => write!(f, "enum#{id}"),
            CType::Struct(id) => write!(f, "struct#{id}"),
            CType::Union(id) => write!(f, "union#{id}"),
            CType::Pointer(inner) => write!(f, "{inner}*"),
            CType::Array(inner, n) => write!(f, "{inner}[{n}]"),
            CType::Typedef(name, _) => write!(f, "{name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typedef_resolution_is_recursive() {
        let t = CType::Typedef(
            "size_t".into(),
            Box::new(CType::Typedef(
                "__u64".into(),
                Box::new(CType::Integer(IntWidth::Long, Signedness::Unsigned)),
            )),
        );
        assert_eq!(
            t.resolve(),
            &CType::Integer(IntWidth::Long, Signedness::Unsigned)
        );
        assert_eq!(t.typedef_depth(), 2);
    }

    #[test]
    fn struct_layout_respects_alignment() {
        let def = StructDef::layout(
            "pair",
            vec![
                ("flag".into(), CType::Bool),
                (
                    "value".into(),
                    CType::Integer(IntWidth::Long, Signedness::Signed),
                ),
            ],
        );
        assert_eq!(def.members[0].offset, 0);
        assert_eq!(def.members[1].offset, 8);
        assert_eq!(def.size, 16);
        assert_eq!(def.align, 8);
    }

    #[test]
    fn member_at_finds_containing_member() {
        let def = StructDef::layout(
            "s",
            vec![("a".into(), CType::int()), ("b".into(), CType::int())],
        );
        assert_eq!(def.member_at(0).unwrap().name, "a");
        assert_eq!(def.member_at(5).unwrap().name, "b");
        assert!(def.member_at(8).is_none());
    }

    #[test]
    fn display_matches_c_spelling() {
        assert_eq!(CType::int().to_string(), "int");
        assert_eq!(
            CType::Integer(IntWidth::Long, Signedness::Unsigned).to_string(),
            "long unsigned int"
        );
        assert_eq!(
            CType::Integer(IntWidth::Char, Signedness::Unsigned).to_string(),
            "unsigned char"
        );
        assert_eq!(CType::ptr_to(CType::Void).to_string(), "void*");
    }

    #[test]
    fn sizes_follow_lp64() {
        assert_eq!(CType::Integer(IntWidth::Long, Signedness::Signed).size(), 8);
        assert_eq!(CType::ptr_to(CType::int()).size(), 8);
        assert_eq!(CType::Array(Box::new(CType::int()), 10).size(), 40);
        assert_eq!(CType::Float(FloatWidth::LongDouble).size(), 16);
    }

    #[test]
    fn arithmetic_predicate() {
        assert!(CType::Bool.is_arithmetic());
        assert!(CType::Enum(0).is_arithmetic());
        assert!(!CType::ptr_to(CType::int()).is_arithmetic());
        assert!(!CType::Struct(0).is_arithmetic());
    }
}
