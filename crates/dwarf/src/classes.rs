//! The 19 predicted type classes and the multi-stage label hierarchy.
//!
//! CATI predicts 19 classes (paper §V-A, Table V): the 16 non-pointer
//! base classes (every C99 base type except `union`, plus `struct` and
//! `enum`) and a pointer trichotomy `void*` / `struct*` / `arith*`.
//! The six-stage classifier tree refines a coarse pointer/non-pointer
//! split down to these leaves (paper Fig. 5).

#[cfg(test)]
use crate::ctype::Signedness;
use crate::ctype::{CType, FloatWidth, IntWidth};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the 19 leaf type classes CATI predicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TypeClass {
    /// `_Bool`.
    Bool,
    /// `struct` (by value, including arrays of struct).
    Struct,
    /// `char`.
    Char,
    /// `unsigned char`.
    UnsignedChar,
    /// `float`.
    Float,
    /// `double`.
    Double,
    /// `long double`.
    LongDouble,
    /// `enum`.
    Enum,
    /// `int`.
    Int,
    /// `short int`.
    ShortInt,
    /// `long int`.
    LongInt,
    /// `long long int`.
    LongLongInt,
    /// `unsigned int`.
    UnsignedInt,
    /// `short unsigned int`.
    ShortUnsignedInt,
    /// `long unsigned int`.
    LongUnsignedInt,
    /// `long long unsigned int`.
    LongLongUnsignedInt,
    /// Pointer to `void` (and other pointers with opaque pointees).
    PtrVoid,
    /// Pointer to `struct` or `union`.
    PtrStruct,
    /// Pointer to an arithmetic type (paper's "pointer to arithmetic"
    /// cluster: the pointee is a base type whose exact identity static
    /// analysis cannot fix).
    PtrArith,
}

impl TypeClass {
    /// All 19 classes in a stable order (the order of paper Table V,
    /// with `arith*` appended).
    pub const ALL: [TypeClass; 19] = [
        TypeClass::Bool,
        TypeClass::Struct,
        TypeClass::Char,
        TypeClass::UnsignedChar,
        TypeClass::Float,
        TypeClass::Double,
        TypeClass::LongDouble,
        TypeClass::Enum,
        TypeClass::Int,
        TypeClass::ShortInt,
        TypeClass::LongInt,
        TypeClass::LongLongInt,
        TypeClass::UnsignedInt,
        TypeClass::ShortUnsignedInt,
        TypeClass::LongUnsignedInt,
        TypeClass::LongLongUnsignedInt,
        TypeClass::PtrVoid,
        TypeClass::PtrStruct,
        TypeClass::PtrArith,
    ];

    /// Stable dense index of this class in [`TypeClass::ALL`].
    pub fn index(self) -> usize {
        // ALL enumerates every variant, so the search always succeeds;
        // the fallback exists only to keep this panic-free.
        TypeClass::ALL.iter().position(|c| *c == self).unwrap_or(0)
    }

    /// Classifies a resolved source type into a leaf class.
    ///
    /// Returns `None` for types the paper excludes from prediction:
    /// `void` values, `union` by value (too polymorphic, §V-A) and
    /// function types. Arrays classify as their element type, matching
    /// how the paper labels `struct attr_pair[8]` as `struct` (Fig. 2).
    pub fn of(ty: &CType) -> Option<TypeClass> {
        match ty.resolve() {
            CType::Void => None,
            CType::Union(_) => None,
            CType::Bool => Some(TypeClass::Bool),
            CType::Struct(_) => Some(TypeClass::Struct),
            CType::Enum(_) => Some(TypeClass::Enum),
            CType::Float(FloatWidth::Float) => Some(TypeClass::Float),
            CType::Float(FloatWidth::Double) => Some(TypeClass::Double),
            CType::Float(FloatWidth::LongDouble) => Some(TypeClass::LongDouble),
            CType::Integer(w, s) => Some(match (w, s.is_signed()) {
                (IntWidth::Char, true) => TypeClass::Char,
                (IntWidth::Char, false) => TypeClass::UnsignedChar,
                (IntWidth::Short, true) => TypeClass::ShortInt,
                (IntWidth::Short, false) => TypeClass::ShortUnsignedInt,
                (IntWidth::Int, true) => TypeClass::Int,
                (IntWidth::Int, false) => TypeClass::UnsignedInt,
                (IntWidth::Long, true) => TypeClass::LongInt,
                (IntWidth::Long, false) => TypeClass::LongUnsignedInt,
                (IntWidth::LongLong, true) => TypeClass::LongLongInt,
                (IntWidth::LongLong, false) => TypeClass::LongLongUnsignedInt,
            }),
            CType::Pointer(inner) => Some(match inner.resolve() {
                CType::Void => TypeClass::PtrVoid,
                CType::Struct(_) | CType::Union(_) => TypeClass::PtrStruct,
                t if t.is_arithmetic() => TypeClass::PtrArith,
                // Pointer-to-pointer and pointer-to-array pointees are
                // opaque to the static trichotomy; cluster with void*.
                _ => TypeClass::PtrVoid,
            }),
            CType::Array(elem, _) => TypeClass::of(elem),
            CType::Typedef(..) => unreachable!("resolve() strips typedefs"),
        }
    }

    /// Whether this leaf sits under the pointer branch of Stage 1.
    pub fn is_pointer(self) -> bool {
        matches!(
            self,
            TypeClass::PtrVoid | TypeClass::PtrStruct | TypeClass::PtrArith
        )
    }

    /// Human-readable name matching the paper's Table V spelling.
    pub fn name(self) -> &'static str {
        match self {
            TypeClass::Bool => "bool",
            TypeClass::Struct => "struct",
            TypeClass::Char => "char",
            TypeClass::UnsignedChar => "unsigned char",
            TypeClass::Float => "float",
            TypeClass::Double => "double",
            TypeClass::LongDouble => "long double",
            TypeClass::Enum => "enum",
            TypeClass::Int => "int",
            TypeClass::ShortInt => "short int",
            TypeClass::LongInt => "long int",
            TypeClass::LongLongInt => "long long int",
            TypeClass::UnsignedInt => "unsigned int",
            TypeClass::ShortUnsignedInt => "short unsigned int",
            TypeClass::LongUnsignedInt => "long unsigned int",
            TypeClass::LongLongUnsignedInt => "long long unsigned int",
            TypeClass::PtrVoid => "void*",
            TypeClass::PtrStruct => "struct*",
            TypeClass::PtrArith => "arith*",
        }
    }
}

impl fmt::Display for TypeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Identifier of one of the six classifiers in the stage tree (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StageId {
    /// Stage 1: pointer vs non-pointer (2 classes).
    Stage1,
    /// Stage 2-1: `void*` / `struct*` / `arith*` (3 classes).
    Stage2Ptr,
    /// Stage 2-2: `struct` / `bool` / char-family / float-family /
    /// int-family (5 classes).
    Stage2NonPtr,
    /// Stage 3-1: `char` / `unsigned char` (2 classes).
    Stage3Char,
    /// Stage 3-2: `float` / `double` / `long double` (3 classes).
    Stage3Float,
    /// Stage 3-3: the nine int-family leaves (9 classes).
    Stage3Int,
}

impl StageId {
    /// All six stages in training order.
    pub const ALL: [StageId; 6] = [
        StageId::Stage1,
        StageId::Stage2Ptr,
        StageId::Stage2NonPtr,
        StageId::Stage3Char,
        StageId::Stage3Float,
        StageId::Stage3Int,
    ];

    /// Number of output classes of this stage's classifier.
    pub fn num_classes(self) -> usize {
        match self {
            StageId::Stage1 => 2,
            StageId::Stage2Ptr => 3,
            StageId::Stage2NonPtr => 5,
            StageId::Stage3Char => 2,
            StageId::Stage3Float => 3,
            StageId::Stage3Int => 9,
        }
    }

    /// Paper's display name, e.g. `Stage2-1`.
    pub fn name(self) -> &'static str {
        match self {
            StageId::Stage1 => "Stage1",
            StageId::Stage2Ptr => "Stage2-1",
            StageId::Stage2NonPtr => "Stage2-2",
            StageId::Stage3Char => "Stage3-1",
            StageId::Stage3Float => "Stage3-2",
            StageId::Stage3Int => "Stage3-3",
        }
    }

    /// The label a leaf class carries at this stage, or `None` if VUCs
    /// of that class never reach this stage (e.g. a pointer never
    /// reaches Stage 2-2).
    pub fn label_of(self, class: TypeClass) -> Option<usize> {
        use TypeClass::*;
        match self {
            StageId::Stage1 => Some(usize::from(class.is_pointer())),
            StageId::Stage2Ptr => match class {
                PtrVoid => Some(0),
                PtrStruct => Some(1),
                PtrArith => Some(2),
                _ => None,
            },
            StageId::Stage2NonPtr => match class {
                Struct => Some(0),
                Bool => Some(1),
                Char | UnsignedChar => Some(2),
                Float | Double | LongDouble => Some(3),
                Enum | Int | ShortInt | LongInt | LongLongInt | UnsignedInt | ShortUnsignedInt
                | LongUnsignedInt | LongLongUnsignedInt => Some(4),
                _ => None,
            },
            StageId::Stage3Char => match class {
                Char => Some(0),
                UnsignedChar => Some(1),
                _ => None,
            },
            StageId::Stage3Float => match class {
                Float => Some(0),
                Double => Some(1),
                LongDouble => Some(2),
                _ => None,
            },
            StageId::Stage3Int => match class {
                Enum => Some(0),
                Int => Some(1),
                ShortInt => Some(2),
                LongInt => Some(3),
                LongLongInt => Some(4),
                UnsignedInt => Some(5),
                ShortUnsignedInt => Some(6),
                LongUnsignedInt => Some(7),
                LongLongUnsignedInt => Some(8),
                _ => None,
            },
        }
    }

    /// The stage a VUC routes to next after this stage outputs `label`,
    /// or `None` when `label` is a leaf decision.
    pub fn next(self, label: usize) -> Option<StageId> {
        match (self, label) {
            (StageId::Stage1, 0) => Some(StageId::Stage2NonPtr),
            (StageId::Stage1, 1) => Some(StageId::Stage2Ptr),
            (StageId::Stage2NonPtr, 2) => Some(StageId::Stage3Char),
            (StageId::Stage2NonPtr, 3) => Some(StageId::Stage3Float),
            (StageId::Stage2NonPtr, 4) => Some(StageId::Stage3Int),
            _ => None,
        }
    }

    /// The leaf class decided when this stage outputs `label`, if that
    /// label terminates the descent.
    pub fn leaf(self, label: usize) -> Option<TypeClass> {
        use TypeClass::*;
        match (self, label) {
            (StageId::Stage2Ptr, 0) => Some(PtrVoid),
            (StageId::Stage2Ptr, 1) => Some(PtrStruct),
            (StageId::Stage2Ptr, 2) => Some(PtrArith),
            (StageId::Stage2NonPtr, 0) => Some(Struct),
            (StageId::Stage2NonPtr, 1) => Some(Bool),
            (StageId::Stage3Char, 0) => Some(Char),
            (StageId::Stage3Char, 1) => Some(UnsignedChar),
            (StageId::Stage3Float, 0) => Some(Float),
            (StageId::Stage3Float, 1) => Some(Double),
            (StageId::Stage3Float, 2) => Some(LongDouble),
            (StageId::Stage3Int, 0) => Some(Enum),
            (StageId::Stage3Int, 1) => Some(Int),
            (StageId::Stage3Int, 2) => Some(ShortInt),
            (StageId::Stage3Int, 3) => Some(LongInt),
            (StageId::Stage3Int, 4) => Some(LongLongInt),
            (StageId::Stage3Int, 5) => Some(UnsignedInt),
            (StageId::Stage3Int, 6) => Some(ShortUnsignedInt),
            (StageId::Stage3Int, 7) => Some(LongUnsignedInt),
            (StageId::Stage3Int, 8) => Some(LongLongUnsignedInt),
            _ => None,
        }
    }

    /// The sequence of (stage, label) pairs a correctly classified VUC
    /// of class `class` traverses from the root to its leaf.
    pub fn path_of(class: TypeClass) -> Vec<(StageId, usize)> {
        let mut path = Vec::with_capacity(3);
        let mut stage = StageId::Stage1;
        // Every class reaches each stage along its own path (the
        // `every_class_has_a_root_to_leaf_path` test pins this);
        // ending the walk instead of panicking keeps it total.
        while let Some(label) = stage.label_of(class) {
            path.push((stage, label));
            match stage.next(label) {
                Some(next) => stage = next,
                None => break,
            }
        }
        path
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The 17 classes of the DEBIN comparison task (paper §VII:
/// struct, union, enum, array, pointer, void, bool, plus signed and
/// unsigned char/short/int/long/long long).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // variant names are their own documentation
pub enum Debin17 {
    Struct,
    Union,
    Enum,
    Array,
    Pointer,
    Void,
    Bool,
    Char,
    UnsignedChar,
    Short,
    UnsignedShort,
    Int,
    UnsignedInt,
    Long,
    UnsignedLong,
    LongLong,
    UnsignedLongLong,
}

impl Debin17 {
    /// All 17 labels in a stable order.
    pub const ALL: [Debin17; 17] = [
        Debin17::Struct,
        Debin17::Union,
        Debin17::Enum,
        Debin17::Array,
        Debin17::Pointer,
        Debin17::Void,
        Debin17::Bool,
        Debin17::Char,
        Debin17::UnsignedChar,
        Debin17::Short,
        Debin17::UnsignedShort,
        Debin17::Int,
        Debin17::UnsignedInt,
        Debin17::Long,
        Debin17::UnsignedLong,
        Debin17::LongLong,
        Debin17::UnsignedLongLong,
    ];

    /// Stable dense index in [`Debin17::ALL`].
    pub fn index(self) -> usize {
        // ALL enumerates every variant; the fallback keeps this total.
        Debin17::ALL.iter().position(|c| *c == self).unwrap_or(0)
    }

    /// Maps a source type to the DEBIN label set. Unlike
    /// [`TypeClass::of`], arrays and unions are their own classes and
    /// all pointers collapse into one.
    pub fn of(ty: &CType) -> Option<Debin17> {
        match ty.resolve() {
            CType::Void => Some(Debin17::Void),
            CType::Bool => Some(Debin17::Bool),
            CType::Struct(_) => Some(Debin17::Struct),
            CType::Union(_) => Some(Debin17::Union),
            CType::Enum(_) => Some(Debin17::Enum),
            CType::Array(..) => Some(Debin17::Array),
            CType::Pointer(_) => Some(Debin17::Pointer),
            // DEBIN's task folds float into void/no-float buckets; the
            // paper's 17-type list has no float entry, so skip them.
            CType::Float(_) => None,
            CType::Integer(w, s) => Some(match (w, s.is_signed()) {
                (IntWidth::Char, true) => Debin17::Char,
                (IntWidth::Char, false) => Debin17::UnsignedChar,
                (IntWidth::Short, true) => Debin17::Short,
                (IntWidth::Short, false) => Debin17::UnsignedShort,
                (IntWidth::Int, true) => Debin17::Int,
                (IntWidth::Int, false) => Debin17::UnsignedInt,
                (IntWidth::Long, true) => Debin17::Long,
                (IntWidth::Long, false) => Debin17::UnsignedLong,
                (IntWidth::LongLong, true) => Debin17::LongLong,
                (IntWidth::LongLong, false) => Debin17::UnsignedLongLong,
            }),
            CType::Typedef(..) => unreachable!("resolve() strips typedefs"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_classes() {
        assert_eq!(TypeClass::ALL.len(), 19);
        for (i, c) in TypeClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn classify_base_types() {
        assert_eq!(TypeClass::of(&CType::Bool), Some(TypeClass::Bool));
        assert_eq!(TypeClass::of(&CType::char()), Some(TypeClass::Char));
        assert_eq!(
            TypeClass::of(&CType::Integer(IntWidth::LongLong, Signedness::Unsigned)),
            Some(TypeClass::LongLongUnsignedInt)
        );
        assert_eq!(TypeClass::of(&CType::Void), None);
        assert_eq!(TypeClass::of(&CType::Union(3)), None);
    }

    #[test]
    fn classify_pointers() {
        assert_eq!(
            TypeClass::of(&CType::ptr_to(CType::Void)),
            Some(TypeClass::PtrVoid)
        );
        assert_eq!(
            TypeClass::of(&CType::ptr_to(CType::Struct(0))),
            Some(TypeClass::PtrStruct)
        );
        assert_eq!(
            TypeClass::of(&CType::ptr_to(CType::int())),
            Some(TypeClass::PtrArith)
        );
        assert_eq!(
            TypeClass::of(&CType::ptr_to(CType::ptr_to(CType::int()))),
            Some(TypeClass::PtrVoid)
        );
    }

    #[test]
    fn arrays_classify_as_element() {
        let arr = CType::Array(Box::new(CType::Struct(1)), 8);
        assert_eq!(TypeClass::of(&arr), Some(TypeClass::Struct));
    }

    #[test]
    fn typedefs_resolve_before_classification() {
        let t = CType::Typedef("myint".into(), Box::new(CType::int()));
        assert_eq!(TypeClass::of(&t), Some(TypeClass::Int));
    }

    #[test]
    fn every_class_has_a_root_to_leaf_path() {
        for class in TypeClass::ALL {
            let path = StageId::path_of(class);
            assert_eq!(path[0].0, StageId::Stage1);
            let (last_stage, last_label) = *path.last().unwrap();
            assert_eq!(last_stage.leaf(last_label), Some(class), "class {class}");
        }
    }

    #[test]
    fn stage_labels_in_range() {
        for stage in StageId::ALL {
            for class in TypeClass::ALL {
                if let Some(l) = stage.label_of(class) {
                    assert!(l < stage.num_classes());
                }
            }
        }
    }

    #[test]
    fn stage_class_counts_match_paper() {
        assert_eq!(StageId::Stage1.num_classes(), 2);
        assert_eq!(StageId::Stage2Ptr.num_classes(), 3);
        assert_eq!(StageId::Stage2NonPtr.num_classes(), 5);
        assert_eq!(StageId::Stage3Char.num_classes(), 2);
        assert_eq!(StageId::Stage3Float.num_classes(), 3);
        assert_eq!(StageId::Stage3Int.num_classes(), 9);
    }

    #[test]
    fn debin17_covers_aggregates() {
        assert_eq!(
            Debin17::of(&CType::Array(Box::new(CType::int()), 4)),
            Some(Debin17::Array)
        );
        assert_eq!(Debin17::of(&CType::Union(0)), Some(Debin17::Union));
        assert_eq!(
            Debin17::of(&CType::ptr_to(CType::Struct(0))),
            Some(Debin17::Pointer)
        );
        assert_eq!(Debin17::ALL.len(), 17);
    }
}
