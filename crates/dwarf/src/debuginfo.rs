//! A DWARF-inspired debug-information section.
//!
//! Real CATI parses DWARF emitted by GCC to label training VUCs with
//! ground-truth types (paper §IV-A, §VI). Our synthetic-compiler
//! substrate emits the same *information content* — variable name,
//! parent function, frame offset or register location, and the type
//! with its typedef chain — in a compact binary section that this
//! module can serialize and parse back. Stripping a binary simply
//! drops this section.

use crate::ctype::{CType, EnumDef, FloatWidth, IntWidth, Signedness, StructDef};
use crate::error::DwarfError;
use serde::{Deserialize, Serialize};

/// Where a variable lives for its whole lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VarLocation {
    /// At `rbp/rsp + offset` within the parent function's stack frame
    /// (DWARF `DW_OP_fbreg`). Offsets are relative to the frame base
    /// chosen by the compiler profile.
    Frame(i32),
    /// Pinned in a general-purpose register (DWARF `DW_OP_regN`),
    /// identified by its DWARF register number.
    Register(u8),
}

/// A local variable or parameter record (DWARF `DW_TAG_variable` /
/// `DW_TAG_formal_parameter`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarRecord {
    /// Source-level name.
    pub name: String,
    /// The declared type (typedef chains preserved).
    pub ty: CType,
    /// Location within the parent function.
    pub location: VarLocation,
    /// Whether this is a formal parameter.
    pub is_param: bool,
}

/// Per-function debug records (DWARF `DW_TAG_subprogram`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuncRecord {
    /// Function name.
    pub name: String,
    /// Byte offset of the first instruction in the text section.
    pub entry: u64,
    /// Byte length of the function's code.
    pub code_len: u64,
    /// Variables and parameters, in declaration order.
    pub vars: Vec<VarRecord>,
}

/// Struct/union and enum definition tables shared by all [`CType`]
/// values of a program. Indices in `CType::Struct(i)` etc. point here.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TypeTable {
    /// Struct and union definitions.
    pub structs: Vec<StructDef>,
    /// Enum definitions.
    pub enums: Vec<EnumDef>,
}

impl TypeTable {
    /// Creates an empty table.
    pub fn new() -> TypeTable {
        TypeTable::default()
    }

    /// Adds a struct definition, returning its index.
    pub fn add_struct(&mut self, def: StructDef) -> u32 {
        self.structs.push(def);
        (self.structs.len() - 1) as u32
    }

    /// Adds an enum definition, returning its index.
    pub fn add_enum(&mut self, def: EnumDef) -> u32 {
        self.enums.push(def);
        (self.enums.len() - 1) as u32
    }

    /// Size in bytes of `ty`, consulting the definition tables for
    /// aggregates.
    ///
    /// Total over arbitrary (even lying) type expressions: a
    /// struct/union reference outside the table contributes size 0,
    /// and array sizes saturate instead of overflowing — hostile
    /// debug info degrades the answer, never the process.
    /// [`DebugInfo::parse`] rejects dangling references up front, so
    /// sections that round-tripped through it never hit the fallback.
    pub fn size_of(&self, ty: &CType) -> u32 {
        match ty.resolve() {
            CType::Struct(i) | CType::Union(i) => {
                self.structs.get(*i as usize).map_or(0, |s| s.size)
            }
            CType::Array(elem, n) => self.size_of(elem).saturating_mul((*n).max(1)),
            other => other.size(),
        }
    }

    /// Alignment in bytes of `ty`, consulting the definition tables.
    /// Total like [`TypeTable::size_of`]: dangling references align 1.
    pub fn align_of(&self, ty: &CType) -> u32 {
        match ty.resolve() {
            CType::Struct(i) | CType::Union(i) => {
                self.structs.get(*i as usize).map_or(1, |s| s.align)
            }
            CType::Array(elem, _) => self.align_of(elem),
            other => other.align(),
        }
    }

    /// Checks that every struct/union/enum reference inside `ty`
    /// points into the tables.
    ///
    /// # Errors
    ///
    /// Returns [`DwarfError::BadTypeRef`] naming the first dangling
    /// index.
    pub fn check_refs(&self, ty: &CType) -> Result<(), DwarfError> {
        match ty {
            CType::Struct(i) | CType::Union(i) => {
                if *i as usize >= self.structs.len() {
                    return Err(DwarfError::BadTypeRef {
                        index: *i,
                        table_len: self.structs.len() as u32,
                    });
                }
            }
            CType::Enum(i) => {
                if *i as usize >= self.enums.len() {
                    return Err(DwarfError::BadTypeRef {
                        index: *i,
                        table_len: self.enums.len() as u32,
                    });
                }
            }
            CType::Pointer(inner) | CType::Array(inner, _) | CType::Typedef(_, inner) => {
                self.check_refs(inner)?;
            }
            CType::Void | CType::Bool | CType::Integer(..) | CType::Float(_) => {}
        }
        Ok(())
    }
}

/// The debug-information section of one (non-stripped) binary.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DebugInfo {
    /// Type definition tables.
    pub types: TypeTable,
    /// Per-function records, sorted by entry address.
    pub functions: Vec<FuncRecord>,
}

impl DebugInfo {
    /// Creates an empty section.
    pub fn new() -> DebugInfo {
        DebugInfo::default()
    }

    /// Total number of variable records across all functions.
    pub fn var_count(&self) -> usize {
        self.functions.iter().map(|f| f.vars.len()).sum()
    }

    /// Finds the function whose code range contains `addr`.
    pub fn function_at(&self, addr: u64) -> Option<&FuncRecord> {
        self.functions
            .iter()
            .find(|f| f.entry <= addr && addr < f.entry + f.code_len)
    }

    /// Looks up the variable of `func` stored at frame offset `off`,
    /// the query the labeling stage issues for every located stack
    /// variable.
    pub fn var_at_frame_offset<'a>(
        &'a self,
        func: &'a FuncRecord,
        off: i32,
    ) -> Option<&'a VarRecord> {
        // An access may land inside a struct/array variable rather than
        // exactly at its start; find the covering record.
        func.vars.iter().find(|v| match v.location {
            VarLocation::Frame(base) => {
                let size = self.types.size_of(&v.ty).max(1) as i64;
                let base = base as i64;
                let off = off as i64;
                base <= off && off < base + size
            }
            VarLocation::Register(_) => false,
        })
    }

    /// Serializes the section to bytes (see module docs).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.bytes(b"CDWF");
        w.u32(1); // version
                  // Struct table.
        w.u32(self.types.structs.len() as u32);
        for s in &self.types.structs {
            w.str(&s.name);
            w.u32(s.size);
            w.u32(s.align);
            w.u32(s.members.len() as u32);
            for m in &s.members {
                w.str(&m.name);
                w.u32(m.offset);
                w.ctype(&m.ty);
            }
        }
        // Enum table.
        w.u32(self.types.enums.len() as u32);
        for e in &self.types.enums {
            w.str(&e.name);
            w.u32(e.variants.len() as u32);
            for v in &e.variants {
                w.str(v);
            }
        }
        // Functions.
        w.u32(self.functions.len() as u32);
        for f in &self.functions {
            w.str(&f.name);
            w.u64(f.entry);
            w.u64(f.code_len);
            w.u32(f.vars.len() as u32);
            for v in &f.vars {
                w.str(&v.name);
                w.ctype(&v.ty);
                match v.location {
                    VarLocation::Frame(off) => {
                        w.u8(0);
                        w.i32(off);
                    }
                    VarLocation::Register(r) => {
                        w.u8(1);
                        w.u8(r);
                    }
                }
                w.u8(u8::from(v.is_param));
            }
        }
        w.out
    }

    /// Parses a section serialized by [`DebugInfo::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`DwarfError`] on a bad magic number, unsupported
    /// version, or truncated/corrupt payload.
    pub fn parse(bytes: &[u8]) -> Result<DebugInfo, DwarfError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        let magic = r.take(4)?;
        if magic != b"CDWF" {
            return Err(DwarfError::BadMagic);
        }
        let version = r.u32()?;
        if version != 1 {
            return Err(DwarfError::UnsupportedVersion(version));
        }
        let mut types = TypeTable::new();
        let n_structs = r.u32()? as usize;
        for _ in 0..n_structs {
            let name = r.str()?;
            let size = r.u32()?;
            let align = r.u32()?;
            let n_members = r.u32()? as usize;
            let mut members = Vec::with_capacity(n_members.min(4096));
            for _ in 0..n_members {
                let mname = r.str()?;
                let offset = r.u32()?;
                let ty = r.ctype(0)?;
                members.push(crate::ctype::Member {
                    name: mname,
                    ty,
                    offset,
                });
            }
            types.structs.push(StructDef {
                name,
                members,
                size,
                align,
            });
        }
        let n_enums = r.u32()? as usize;
        for _ in 0..n_enums {
            let name = r.str()?;
            let n_vars = r.u32()? as usize;
            let mut variants = Vec::with_capacity(n_vars.min(4096));
            for _ in 0..n_vars {
                variants.push(r.str()?);
            }
            types.enums.push(EnumDef { name, variants });
        }
        let n_funcs = r.u32()? as usize;
        let mut functions = Vec::with_capacity(n_funcs.min(4096));
        for _ in 0..n_funcs {
            let name = r.str()?;
            let entry = r.u64()?;
            let code_len = r.u64()?;
            let n_vars = r.u32()? as usize;
            let mut vars = Vec::with_capacity(n_vars.min(4096));
            for _ in 0..n_vars {
                let vname = r.str()?;
                let ty = r.ctype(0)?;
                let location = match r.u8()? {
                    0 => VarLocation::Frame(r.i32()?),
                    1 => VarLocation::Register(r.u8()?),
                    t => return Err(DwarfError::BadTag(t)),
                };
                let is_param = r.u8()? != 0;
                vars.push(VarRecord {
                    name: vname,
                    ty,
                    location,
                    is_param,
                });
            }
            functions.push(FuncRecord {
                name,
                entry,
                code_len,
                vars,
            });
        }
        let di = DebugInfo { types, functions };
        di.validate()?;
        Ok(di)
    }

    /// Verifies the section's internal type graph: every
    /// struct/union/enum reference (in struct members and variable
    /// types alike) must point into the definition tables. Called by
    /// [`DebugInfo::parse`], so a parsed section is safe to size and
    /// label without index checks.
    ///
    /// # Errors
    ///
    /// Returns [`DwarfError::BadTypeRef`] for the first dangling
    /// reference.
    pub fn validate(&self) -> Result<(), DwarfError> {
        for s in &self.types.structs {
            for m in &s.members {
                self.types.check_refs(&m.ty)?;
            }
        }
        for f in &self.functions {
            for v in &f.vars {
                self.types.check_refs(&v.ty)?;
            }
        }
        Ok(())
    }
}

#[derive(Default)]
struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn bytes(&mut self, b: &[u8]) {
        self.out.extend_from_slice(b);
    }
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn i32(&mut self, v: i32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }
    fn ctype(&mut self, ty: &CType) {
        match ty {
            CType::Void => self.u8(0),
            CType::Bool => self.u8(1),
            CType::Integer(w, s) => {
                self.u8(2);
                self.u8(match w {
                    IntWidth::Char => 0,
                    IntWidth::Short => 1,
                    IntWidth::Int => 2,
                    IntWidth::Long => 3,
                    IntWidth::LongLong => 4,
                });
                self.u8(u8::from(s.is_signed()));
            }
            CType::Float(w) => {
                self.u8(3);
                self.u8(match w {
                    FloatWidth::Float => 0,
                    FloatWidth::Double => 1,
                    FloatWidth::LongDouble => 2,
                });
            }
            CType::Enum(i) => {
                self.u8(4);
                self.u32(*i);
            }
            CType::Struct(i) => {
                self.u8(5);
                self.u32(*i);
            }
            CType::Union(i) => {
                self.u8(6);
                self.u32(*i);
            }
            CType::Pointer(inner) => {
                self.u8(7);
                self.ctype(inner);
            }
            CType::Array(inner, n) => {
                self.u8(8);
                self.u32(*n);
                self.ctype(inner);
            }
            CType::Typedef(name, inner) => {
                self.u8(9);
                self.str(name);
                self.ctype(inner);
            }
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

const MAX_TYPE_DEPTH: u32 = 64;

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DwarfError> {
        if self.pos + n > self.buf.len() {
            return Err(DwarfError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DwarfError> {
        Ok(self.take(1)?[0])
    }
    fn array<const N: usize>(&mut self) -> Result<[u8; N], DwarfError> {
        self.take(N)?.try_into().map_err(|_| DwarfError::Truncated)
    }
    fn u32(&mut self) -> Result<u32, DwarfError> {
        Ok(u32::from_le_bytes(self.array()?))
    }
    fn i32(&mut self) -> Result<i32, DwarfError> {
        Ok(i32::from_le_bytes(self.array()?))
    }
    fn u64(&mut self) -> Result<u64, DwarfError> {
        Ok(u64::from_le_bytes(self.array()?))
    }
    fn str(&mut self) -> Result<String, DwarfError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DwarfError::BadString)
    }
    fn ctype(&mut self, depth: u32) -> Result<CType, DwarfError> {
        if depth > MAX_TYPE_DEPTH {
            return Err(DwarfError::TypeTooDeep);
        }
        Ok(match self.u8()? {
            0 => CType::Void,
            1 => CType::Bool,
            2 => {
                let w = match self.u8()? {
                    0 => IntWidth::Char,
                    1 => IntWidth::Short,
                    2 => IntWidth::Int,
                    3 => IntWidth::Long,
                    4 => IntWidth::LongLong,
                    t => return Err(DwarfError::BadTag(t)),
                };
                let s = if self.u8()? != 0 {
                    Signedness::Signed
                } else {
                    Signedness::Unsigned
                };
                CType::Integer(w, s)
            }
            3 => CType::Float(match self.u8()? {
                0 => FloatWidth::Float,
                1 => FloatWidth::Double,
                2 => FloatWidth::LongDouble,
                t => return Err(DwarfError::BadTag(t)),
            }),
            4 => CType::Enum(self.u32()?),
            5 => CType::Struct(self.u32()?),
            6 => CType::Union(self.u32()?),
            7 => CType::Pointer(Box::new(self.ctype(depth + 1)?)),
            8 => {
                let n = self.u32()?;
                CType::Array(Box::new(self.ctype(depth + 1)?), n)
            }
            9 => {
                let name = self.str()?;
                CType::Typedef(name, Box::new(self.ctype(depth + 1)?))
            }
            t => return Err(DwarfError::BadTag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DebugInfo {
        let mut types = TypeTable::new();
        let sid = types.add_struct(StructDef::layout(
            "attr_pair",
            vec![
                ("key".into(), CType::ptr_to(CType::char())),
                ("value".into(), CType::int()),
            ],
        ));
        let eid = types.add_enum(EnumDef {
            name: "color".into(),
            variants: vec!["RED".into(), "GREEN".into()],
        });
        DebugInfo {
            types,
            functions: vec![FuncRecord {
                name: "map_html_tags".into(),
                entry: 0x400,
                code_len: 0x120,
                vars: vec![
                    VarRecord {
                        name: "pairs".into(),
                        ty: CType::ptr_to(CType::Struct(sid)),
                        location: VarLocation::Frame(-0x30),
                        is_param: false,
                    },
                    VarRecord {
                        name: "c".into(),
                        ty: CType::Typedef("byte".into(), Box::new(CType::char())),
                        location: VarLocation::Register(3),
                        is_param: true,
                    },
                    VarRecord {
                        name: "col".into(),
                        ty: CType::Enum(eid),
                        location: VarLocation::Frame(-0x40),
                        is_param: false,
                    },
                ],
            }],
        }
    }

    #[test]
    fn roundtrip() {
        let di = sample();
        let bytes = di.to_bytes();
        let parsed = DebugInfo::parse(&bytes).unwrap();
        assert_eq!(di, parsed);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(
            DebugInfo::parse(b"NOPE"),
            Err(DwarfError::BadMagic)
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                DebugInfo::parse(&bytes[..cut]).is_err(),
                "prefix of length {cut} must not parse"
            );
        }
    }

    #[test]
    fn function_at_covers_range() {
        let di = sample();
        assert!(di.function_at(0x400).is_some());
        assert!(di.function_at(0x51f).is_some());
        assert!(di.function_at(0x520).is_none());
        assert!(di.function_at(0x3ff).is_none());
    }

    #[test]
    fn var_at_frame_offset_covers_interior_accesses() {
        let di = sample();
        let f = &di.functions[0];
        // `pairs` is an 8-byte pointer at -0x30: offsets -0x30..-0x28 hit it.
        assert_eq!(di.var_at_frame_offset(f, -0x30).unwrap().name, "pairs");
        assert_eq!(di.var_at_frame_offset(f, -0x2c).unwrap().name, "pairs");
        assert!(di.var_at_frame_offset(f, -0x28).is_none());
        // Register-located variables never match frame queries.
        assert_eq!(di.var_at_frame_offset(f, -0x40).unwrap().name, "col");
    }

    #[test]
    fn size_of_consults_tables() {
        let di = sample();
        assert_eq!(di.types.size_of(&CType::Struct(0)), 16);
        assert_eq!(
            di.types
                .size_of(&CType::Array(Box::new(CType::Struct(0)), 8)),
            128
        );
        assert_eq!(di.types.size_of(&CType::Enum(0)), 4);
    }

    #[test]
    fn var_count_sums_functions() {
        assert_eq!(sample().var_count(), 3);
    }

    #[test]
    fn parse_rejects_dangling_type_refs() {
        // Regression: sections referencing definitions outside the
        // tables used to parse fine and then panic `size_of`.
        let mut di = sample();
        di.functions[0].vars[0].ty = CType::ptr_to(CType::Struct(7));
        assert!(!di.to_bytes().is_empty());
        // A pointer target is still a reference; deep refs count too.
        assert!(matches!(
            DebugInfo::parse(&di.to_bytes()),
            Err(DwarfError::BadTypeRef { index: 7, .. })
        ));
        let mut di = sample();
        di.functions[0].vars[2].ty = CType::Enum(99);
        assert!(matches!(
            DebugInfo::parse(&di.to_bytes()),
            Err(DwarfError::BadTypeRef { index: 99, .. })
        ));
        let mut di = sample();
        di.types.structs[0].members[0].ty = CType::Union(3);
        assert!(matches!(
            DebugInfo::parse(&di.to_bytes()),
            Err(DwarfError::BadTypeRef { index: 3, .. })
        ));
    }

    #[test]
    fn size_of_is_total_over_lying_types() {
        let di = sample();
        // Dangling references size 0 / align 1 instead of panicking.
        assert_eq!(di.types.size_of(&CType::Struct(42)), 0);
        assert_eq!(di.types.align_of(&CType::Union(42)), 1);
        // Array sizes saturate instead of overflowing.
        let huge = CType::Array(Box::new(CType::Struct(0)), u32::MAX);
        assert_eq!(di.types.size_of(&huge), u32::MAX);
        let nested = CType::Array(Box::new(huge), u32::MAX);
        assert_eq!(di.types.size_of(&nested), u32::MAX);
    }
}
