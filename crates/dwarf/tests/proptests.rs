//! Property tests: arbitrary debug-info sections roundtrip through
//! the binary codec, and type classification is total over the
//! classifiable subset.

use cati_dwarf::{
    CType, DebugInfo, EnumDef, FloatWidth, FuncRecord, IntWidth, Member, Signedness, StageId,
    StructDef, TypeClass, VarLocation, VarRecord,
};
use proptest::prelude::*;

fn arb_scalar() -> impl Strategy<Value = CType> {
    prop_oneof![
        Just(CType::Void),
        Just(CType::Bool),
        (0u8..5, any::<bool>()).prop_map(|(w, s)| {
            let w = match w {
                0 => IntWidth::Char,
                1 => IntWidth::Short,
                2 => IntWidth::Int,
                3 => IntWidth::Long,
                _ => IntWidth::LongLong,
            };
            CType::Integer(
                w,
                if s {
                    Signedness::Signed
                } else {
                    Signedness::Unsigned
                },
            )
        }),
        (0u8..3).prop_map(|f| CType::Float(match f {
            0 => FloatWidth::Float,
            1 => FloatWidth::Double,
            _ => FloatWidth::LongDouble,
        })),
        (0u32..4).prop_map(CType::Enum),
        (0u32..4).prop_map(CType::Struct),
        (0u32..4).prop_map(CType::Union),
    ]
}

fn arb_ctype() -> impl Strategy<Value = CType> {
    arb_scalar().prop_recursive(4, 16, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|t| CType::Pointer(Box::new(t))),
            (inner.clone(), 1u32..16).prop_map(|(t, n)| CType::Array(Box::new(t), n)),
            (inner, "[a-z_]{1,12}").prop_map(|(t, n)| CType::Typedef(n, Box::new(t))),
        ]
    })
}

fn arb_location() -> impl Strategy<Value = VarLocation> {
    prop_oneof![
        (-4096i32..4096).prop_map(VarLocation::Frame),
        (0u8..16).prop_map(VarLocation::Register),
    ]
}

fn arb_debuginfo() -> impl Strategy<Value = DebugInfo> {
    let member = ("[a-z]{1,8}", arb_ctype(), 0u32..256).prop_map(|(name, ty, offset)| Member {
        name,
        ty,
        offset,
    });
    let sdef = (
        "[a-z]{1,8}",
        proptest::collection::vec(member, 0..4),
        1u32..256,
        1u32..16,
    )
        .prop_map(|(name, members, size, align)| StructDef {
            name,
            members,
            size,
            align,
        });
    let edef = (
        "[a-z]{1,8}",
        proptest::collection::vec("[A-Z]{1,6}".prop_map(String::from), 0..4),
    )
        .prop_map(|(name, variants)| EnumDef { name, variants });
    let var = ("[a-z]{1,8}", arb_ctype(), arb_location(), any::<bool>()).prop_map(
        |(name, ty, location, is_param)| VarRecord {
            name,
            ty,
            location,
            is_param,
        },
    );
    let func = (
        "[a-z_]{1,12}",
        0u64..1 << 32,
        1u64..4096,
        proptest::collection::vec(var, 0..6),
    )
        .prop_map(|(name, entry, code_len, vars)| FuncRecord {
            name,
            entry,
            code_len,
            vars,
        });
    // Type expressions reference struct/enum indices 0..4, and the
    // parser now rejects sections whose references dangle — so the
    // tables must always hold at least four definitions.
    (
        proptest::collection::vec(sdef, 4..8),
        proptest::collection::vec(edef, 4..8),
        proptest::collection::vec(func, 0..5),
    )
        .prop_map(|(structs, enums, functions)| DebugInfo {
            types: cati_dwarf::TypeTable { structs, enums },
            functions,
        })
}

proptest! {
    #[test]
    fn debug_info_roundtrips(di in arb_debuginfo()) {
        let bytes = di.to_bytes();
        let parsed = DebugInfo::parse(&bytes).unwrap();
        prop_assert_eq!(di, parsed);
    }

    #[test]
    fn parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = DebugInfo::parse(&bytes);
    }

    #[test]
    fn parser_survives_bit_flips(di in arb_debuginfo(), idx in any::<prop::sample::Index>(), bit in 0u8..8) {
        let mut bytes = di.to_bytes();
        if !bytes.is_empty() {
            let i = idx.index(bytes.len());
            bytes[i] ^= 1 << bit;
            let _ = DebugInfo::parse(&bytes); // must not panic
        }
    }

    #[test]
    fn mutated_blobs_stay_inside_the_19_class_universe(
        di in arb_debuginfo(),
        idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
        cut in any::<prop::sample::Index>(),
        splice in any::<u8>(),
    ) {
        // Three mutation shapes: bit flip, truncation, byte splice.
        // Whatever still parses must classify every variable inside
        // TypeClass::ALL and compute sizes/alignments without panics —
        // corrupt debug info may lose information, never invent a
        // twentieth class.
        let clean = di.to_bytes();
        let mut mutants = Vec::new();
        if !clean.is_empty() {
            let mut flipped = clean.clone();
            let i = idx.index(flipped.len());
            flipped[i] ^= 1 << bit;
            mutants.push(flipped);
            let mut truncated = clean.clone();
            truncated.truncate(cut.index(truncated.len()));
            mutants.push(truncated);
            let mut spliced = clean.clone();
            let i = idx.index(spliced.len());
            spliced[i] = splice;
            mutants.push(spliced);
        }
        for bytes in &mutants {
            let Ok(parsed) = DebugInfo::parse(bytes) else { continue };
            for func in &parsed.functions {
                for var in &func.vars {
                    if let Some(class) = TypeClass::of(&var.ty) {
                        prop_assert!(
                            TypeClass::ALL.contains(&class),
                            "class {class:?} outside the 19-class set"
                        );
                    }
                    // Totality: sizes and alignments on surviving
                    // (validated) types never panic.
                    let _ = parsed.types.size_of(&var.ty);
                    let _ = parsed.types.align_of(&var.ty);
                }
            }
        }
    }

    #[test]
    fn classification_resolves_typedefs(ty in arb_ctype()) {
        // A typedef wrapper never changes the class.
        let wrapped = CType::Typedef("alias".into(), Box::new(ty.clone()));
        prop_assert_eq!(TypeClass::of(&ty), TypeClass::of(&wrapped));
    }

    #[test]
    fn classified_types_have_stage_paths(ty in arb_ctype()) {
        if let Some(class) = TypeClass::of(&ty) {
            let path = StageId::path_of(class);
            prop_assert!(!path.is_empty());
            let (stage, label) = *path.last().unwrap();
            prop_assert_eq!(stage.leaf(label), Some(class));
        }
    }

    #[test]
    fn sizes_and_alignments_are_positive(ty in arb_ctype()) {
        prop_assert!(ty.size() >= 1);
        let a = ty.align();
        prop_assert!(a >= 1 && a.is_power_of_two());
    }
}
