//! End-to-end test of the `cati` command-line tool: build a corpus,
//! strip a binary, train a model, infer types — all through the CLI.

use std::path::PathBuf;
use std::process::Command;

fn cati_bin() -> PathBuf {
    // target/<profile>/cati sits two levels above the test executable.
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // debug|release/
    p.push("cati");
    p
}

fn run(args: &[&str], cwd: &std::path::Path) -> (bool, String, String) {
    let out = Command::new(cati_bin())
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn cati");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn full_cli_workflow() {
    let dir = std::env::temp_dir().join(format!("cati_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // 1. Build a corpus.
    let (ok, stdout, stderr) = run(&["build-corpus", "--out", "corpus", "--seed", "5"], &dir);
    assert!(ok, "build-corpus failed: {stderr}");
    assert!(stdout.contains("wrote"), "{stdout}");
    let manifest = dir.join("corpus/manifest.json");
    assert!(manifest.exists());

    // Find one test binary from the manifest.
    let entries: Vec<serde_json::Value> =
        serde_json::from_slice(&std::fs::read(&manifest).unwrap()).unwrap();
    let test_file = entries
        .iter()
        .find(|e| e["split"] == "test")
        .and_then(|e| e["file"].as_str())
        .expect("a test binary");
    let test_path = format!("corpus/{test_file}");

    // 2. Strip it.
    let (ok, _, stderr) = run(&["strip", &test_path, "--out", "stripped.json"], &dir);
    assert!(ok, "strip failed: {stderr}");

    // 3. Disassemble both views.
    let (ok, full, _) = run(&["disasm", &test_path], &dir);
    assert!(ok);
    assert!(
        full.contains("push %rbp") || full.contains("sub $"),
        "{full}"
    );
    assert!(full.contains('<'), "unstripped listing should show symbols");
    let (ok, stripped_listing, _) = run(&["disasm", "stripped.json"], &dir);
    assert!(ok);
    assert!(
        !stripped_listing.contains('<'),
        "stripped listing must not show symbols"
    );

    // 4. Ground-truth variables.
    let (ok, vars, _) = run(&["vars", &test_path], &dir);
    assert!(ok);
    assert!(vars.contains("variables,"), "{vars}");

    // 5. Train.
    let (ok, _, stderr) = run(
        &["train", "--corpus", "corpus", "--out", "model.json"],
        &dir,
    );
    assert!(ok, "train failed: {stderr}");
    assert!(dir.join("model.json").exists());

    // 6. Infer on the stripped binary.
    let (ok, inferred, stderr) = run(&["infer", "--model", "model.json", "stripped.json"], &dir);
    assert!(ok, "infer failed: {stderr}");
    assert!(inferred.contains("inferred type"), "{inferred}");
    assert!(
        inferred.lines().count() > 3,
        "no variables inferred:\n{inferred}"
    );

    // 7. JSON output parses.
    let (ok, json_out, _) = run(
        &["infer", "--model", "model.json", "stripped.json", "--json"],
        &dir,
    );
    assert!(ok);
    let parsed: serde_json::Value = serde_json::from_str(&json_out).expect("valid JSON");
    assert!(parsed.as_array().map(|a| !a.is_empty()).unwrap_or(false));

    // 8. Degradation modes. Append undecodable junk to the stripped
    //    binary: strict inference must refuse it with a typed error,
    //    lenient inference must return a partial result and say so.
    let mut corrupt: cati_asm::binary::Binary =
        serde_json::from_slice(&std::fs::read(dir.join("stripped.json")).unwrap()).unwrap();
    corrupt.text.extend_from_slice(&[0xFF, 0xFF, 0xFF]);
    std::fs::write(
        dir.join("corrupt.json"),
        serde_json::to_string(&corrupt).unwrap(),
    )
    .unwrap();
    let (ok, _, stderr) = run(
        &["infer", "--model", "model.json", "corrupt.json", "--strict"],
        &dir,
    );
    assert!(!ok, "strict infer accepted a corrupt binary");
    assert!(
        stderr.contains("undecodable"),
        "strict error is not typed/attributed: {stderr}"
    );
    let (ok, lenient_out, stderr) = run(
        &[
            "infer",
            "--model",
            "model.json",
            "corrupt.json",
            "--lenient",
        ],
        &dir,
    );
    assert!(ok, "lenient infer failed on a corrupt binary: {stderr}");
    assert!(
        lenient_out.contains("coverage"),
        "lenient output lacks a coverage footer: {lenient_out}"
    );
    let (ok, lenient_json, _) = run(
        &[
            "infer",
            "--model",
            "model.json",
            "corrupt.json",
            "--lenient",
            "--json",
        ],
        &dir,
    );
    assert!(ok);
    let report: serde_json::Value = serde_json::from_str(&lenient_json).expect("valid JSON");
    assert_eq!(
        report["coverage"]["bytes_skipped"].as_u64(),
        Some(3),
        "coverage must account for exactly the junk bytes: {lenient_json}"
    );
    // The two flags are mutually exclusive.
    let (ok, _, stderr) = run(
        &[
            "infer",
            "--model",
            "model.json",
            "corrupt.json",
            "--strict",
            "--lenient",
        ],
        &dir,
    );
    assert!(!ok);
    assert!(stderr.contains("--strict"), "{stderr}");

    // 9. A tiny fuzz campaign: must exit zero (no panics, hangs or
    //    coverage violations) and leave a machine-readable summary.
    let (ok, fuzz_out, stderr) = run(
        &[
            "fuzz",
            "--seed",
            "4",
            "--mutants",
            "20",
            "--budget",
            "120s",
            "--out",
            "fuzz",
        ],
        &dir,
    );
    assert!(ok, "fuzz campaign failed: {stderr}");
    assert!(fuzz_out.contains("\"ran\""), "{fuzz_out}");
    let summary: serde_json::Value =
        serde_json::from_slice(&std::fs::read(dir.join("fuzz/summary.json")).unwrap()).unwrap();
    assert_eq!(summary["ran"].as_u64(), Some(20), "{summary}");
    assert_eq!(
        summary["hangs"].as_array().map(Vec::len),
        Some(0),
        "{summary}"
    );

    // 10. Unknown commands fail cleanly.
    let (ok, _, stderr) = run(&["frobnicate"], &dir);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    std::fs::remove_dir_all(&dir).ok();
}
