//! `cati` — the command-line interface to the CATI reproduction.
//!
//! Subcommands mirror the deployment workflow:
//!
//! ```text
//! cati build-corpus --out DIR [--scale S] [--compiler C] [--seed N]
//! cati disasm BINARY.json [--strip]
//! cati vars BINARY.json
//! cati train --corpus DIR --out MODEL.cati [--scale S] [--threads N]
//! cati infer --model MODEL.cati BINARY.json [--threads N]
//! cati convert --model MODEL --out FILE [--format cati1|json]
//! cati strip BINARY.json --out STRIPPED.json
//! ```
//!
//! Binaries are stored as JSON serializations of
//! [`cati_asm::Binary`]; `build-corpus` writes one file per binary
//! plus a manifest.

use cati::obs::{git_rev, Level, LogFormat, Manifest, Recorder, RecorderConfig};
use cati::{ArtifactCache, Cati, Config};
use cati_analysis::{extract_lenient_mode, extract_mode, ContextMode, FeatureView};
use cati_asm::binary::Binary;
use cati_asm::fmt::format_insn;
use cati_serve::{HangLimit, ServeConfig, Server};
use cati_synbin::{build_corpus, mutate, Compiler, CorpusConfig, MutationKind};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Formats a signed frame offset as `-0x18` / `0x40`.
fn hex_off(off: i32) -> String {
    if off < 0 {
        format!("-{:#x}", -(off as i64))
    } else {
        format!("{off:#x}")
    }
}

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
    switches: std::collections::HashSet<String>,
}

fn parse_args(argv: &[String]) -> Args {
    let mut positional = Vec::new();
    let mut flags = std::collections::HashMap::new();
    let mut switches = std::collections::HashSet::new();
    let mut it = argv.iter().peekable();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    flags.insert(name.to_string(), it.next().unwrap().clone());
                }
                _ => {
                    switches.insert(name.to_string());
                }
            }
        } else {
            positional.push(arg.clone());
        }
    }
    Args {
        positional,
        flags,
        switches,
    }
}

fn load_binary(path: &str) -> Result<Binary, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_slice(&bytes).map_err(|e| format!("parse {path}: {e}"))
}

fn save_json<T: serde::Serialize>(value: &T, path: &Path) -> Result<(), String> {
    let json = serde_json::to_vec(value).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| format!("write {}: {e}", path.display()))
}

fn scale_of(args: &Args) -> (Config, fn(u64) -> CorpusConfig) {
    let (mut config, corpus): (Config, fn(u64) -> CorpusConfig) =
        match args.flags.get("scale").map(String::as_str) {
            Some("paper") => (Config::paper(), CorpusConfig::paper),
            Some("medium") => (Config::medium(), CorpusConfig::medium),
            _ => (Config::small(), CorpusConfig::small),
        };
    if let Some(t) = args.flags.get("threads") {
        config.threads = t.parse().unwrap_or(0);
    }
    (config, corpus)
}

/// Builds the telemetry recorder from the shared observability flags:
/// `--log-format text|json` (default text), `--log-level
/// error|warn|info|debug` (default info), `--batch-stats`.
fn recorder_of(args: &Args) -> Recorder {
    Recorder::new(recorder_config_of(args))
}

/// The [`RecorderConfig`] behind [`recorder_of`], also handed to the
/// serve daemon (whose recorder lives inside the server).
fn recorder_config_of(args: &Args) -> RecorderConfig {
    RecorderConfig {
        log: Some(
            args.flags
                .get("log-format")
                .map(|s| LogFormat::parse(s))
                .unwrap_or(LogFormat::Text),
        ),
        level: args
            .flags
            .get("log-level")
            .map(|s| Level::parse(s))
            .unwrap_or(Level::Info),
        batch_stats: args.switches.contains("batch-stats"),
    }
}

/// The standard run-meta object: `name` / `git_rev` plus `extra` keys.
fn run_meta(name: &str, extra: &serde_json::Value) -> serde_json::Value {
    let mut meta = serde_json::Map::new();
    meta.insert("name".to_string(), serde_json::json!(name));
    if let Some(rev) = git_rev(Path::new(".")) {
        meta.insert("git_rev".to_string(), serde_json::json!(rev));
    }
    if let serde_json::Value::Object(extra) = extra {
        for (k, v) in extra.iter() {
            meta.insert(k.clone(), v.clone());
        }
    }
    serde_json::Value::Object(meta)
}

/// Writes the run manifest when `--manifest PATH` was given and a
/// Chrome trace when `--trace OUT.json` was given. `extra` keys join
/// the standard `name` / `git_rev` meta fields.
fn write_manifest_if_requested(
    args: &Args,
    recorder: &Recorder,
    name: &str,
    extra: &serde_json::Value,
) -> Result<(), String> {
    let meta = run_meta(name, extra);
    if let Some(path) = args.flags.get("manifest") {
        recorder
            .write_manifest(path, &meta)
            .map_err(|e| e.to_string())?;
        // stderr, so `infer --json > out.json` stays machine-readable.
        eprintln!("manifest written to {path}");
    }
    if let Some(path) = args.flags.get("trace") {
        let jsonl = recorder.manifest_jsonl(&meta);
        let manifest = Manifest::parse(&jsonl).map_err(|e| format!("trace: {e}"))?;
        write_chrome_trace(&manifest, path)?;
    }
    Ok(())
}

/// Renders `manifest` as Chrome `trace_event` JSON (load it in
/// Perfetto / `chrome://tracing`) at `path`.
fn write_chrome_trace(manifest: &Manifest, path: &str) -> Result<(), String> {
    let trace = cati::obs::chrome_trace::render(manifest);
    std::fs::write(path, &trace).map_err(|e| format!("write trace {path}: {e}"))?;
    eprintln!(
        "chrome trace written to {path} ({} spans)",
        manifest.spans.len()
    );
    Ok(())
}

fn cmd_build_corpus(args: &Args) -> Result<(), String> {
    let out = PathBuf::from(
        args.flags
            .get("out")
            .ok_or("build-corpus requires --out DIR")?,
    );
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    let seed: u64 = args
        .flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(2020);
    let compiler = match args.flags.get("compiler").map(String::as_str) {
        Some("clang") => Compiler::Clang,
        _ => Compiler::Gcc,
    };
    let (_, corpus_cfg) = scale_of(args);
    let corpus = build_corpus(&corpus_cfg(seed).with_compiler(compiler));
    let mut manifest = Vec::new();
    for (split, binaries) in [("train", &corpus.train), ("test", &corpus.test)] {
        for (i, built) in binaries.iter().enumerate() {
            let name = format!("{split}_{:04}_{}.json", i, built.binary.name);
            save_json(&built.binary, &out.join(&name))?;
            manifest.push(serde_json::json!({
                "file": name,
                "split": split,
                "app": built.app,
                "compiler": built.opts.compiler.name(),
                "opt": built.opts.opt.0,
            }));
        }
    }
    save_json(&manifest, &out.join("manifest.json"))?;
    println!(
        "wrote {} train + {} test binaries to {}",
        corpus.train.len(),
        corpus.test.len(),
        out.display()
    );
    Ok(())
}

fn cmd_disasm(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("disasm requires a binary path")?;
    let mut binary = load_binary(path)?;
    if args.switches.contains("strip") {
        binary = binary.strip();
    }
    let insns = binary.disassemble().map_err(|e| e.to_string())?;
    for located in insns {
        let sym = binary
            .symbol_at(located.addr)
            .filter(|s| s.addr == located.addr)
            .map(|s| format!("\n{:016x} <{}>:", s.addr, s.name));
        if let Some(header) = sym {
            println!("{header}");
        }
        println!(
            "  {:6x}:\t{}",
            located.addr,
            format_insn(&located.insn, &binary)
        );
    }
    Ok(())
}

/// Resolves the shared `--strict` / `--lenient` pair: strict is the
/// default, the switches are mutually exclusive.
fn lenient_of(args: &Args) -> Result<bool, String> {
    match (
        args.switches.contains("strict"),
        args.switches.contains("lenient"),
    ) {
        (true, true) => Err("--strict and --lenient are mutually exclusive".into()),
        (_, lenient) => Ok(lenient),
    }
}

/// Parses `--context function|interproc` into a [`ContextMode`].
/// `None` when the flag is absent — callers pick the default (the
/// paper's function-local mode for extraction and training, the
/// model's own training mode for inference).
fn context_of(args: &Args) -> Result<Option<ContextMode>, String> {
    args.flags
        .get("context")
        .map(|v| ContextMode::parse(v).ok_or_else(|| format!("--context: unknown mode `{v}`")))
        .transpose()
}

fn cmd_vars(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("vars requires a binary path")?;
    let binary = load_binary(path)?;
    let view = if binary.debug.is_some() {
        FeatureView::WithSymbols
    } else {
        FeatureView::Stripped
    };
    let mode = context_of(args)?.unwrap_or_default();
    let ex = if lenient_of(args)? {
        let lenient = extract_lenient_mode(&binary, view, mode);
        for diag in &lenient.diagnostics.entries {
            eprintln!("warning: {diag}");
        }
        if !lenient.coverage.is_complete() {
            eprintln!(
                "warning: partial result — {}/{} functions, {}/{} bytes skipped",
                lenient.coverage.functions_skipped,
                lenient.coverage.functions_total,
                lenient.coverage.bytes_skipped,
                lenient.coverage.bytes_total,
            );
        }
        lenient.extraction
    } else {
        extract_mode(&binary, view, mode).map_err(|e| e.to_string())?
    };
    println!(
        "{:<6} {:>8}  {:<24} {:>5}",
        "func", "offset", "type (ground truth)", "vucs"
    );
    for var in &ex.vars {
        println!(
            "{:<6} {:>8}  {:<24} {:>5}",
            var.key.func,
            hex_off(var.key.offset),
            var.class
                .map(|c| c.to_string())
                .unwrap_or_else(|| "?".into()),
            var.vucs.len()
        );
    }
    println!("{} variables, {} VUCs", ex.vars.len(), ex.vucs.len());
    Ok(())
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let corpus_dir = PathBuf::from(
        args.flags
            .get("corpus")
            .ok_or("train requires --corpus DIR")?,
    );
    let out = args.flags.get("out").ok_or("train requires --out MODEL")?;
    let (mut config, _) = scale_of(args);
    if let Some(mode) = context_of(args)? {
        config = config.with_context_mode(mode);
    }
    let manifest: Vec<serde_json::Value> = serde_json::from_slice(
        &std::fs::read(corpus_dir.join("manifest.json")).map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    let mut train = Vec::new();
    let mut holdout = Vec::new();
    for entry in &manifest {
        let split = entry["split"].as_str().unwrap_or("");
        if split != "train" && split != "test" {
            continue;
        }
        let file = entry["file"].as_str().ok_or("bad manifest")?;
        let binary = load_binary(corpus_dir.join(file).to_str().unwrap())?;
        let opt = entry["opt"].as_u64().unwrap_or(0) as u8;
        let compiler = if entry["compiler"] == "clang" {
            Compiler::Clang
        } else {
            Compiler::Gcc
        };
        let built = cati_synbin::BuiltBinary {
            binary,
            app: entry["app"].as_str().unwrap_or("unknown").to_string(),
            opts: cati_synbin::CodegenOptions {
                compiler,
                opt: cati_synbin::OptLevel(opt),
            },
        };
        if split == "train" {
            train.push(built);
        } else if holdout.len() < 4 {
            holdout.push(built);
        }
    }
    if train.is_empty() {
        return Err("no training binaries in manifest".into());
    }
    println!("training on {} binaries...", train.len());
    let recorder = recorder_of(args);
    let cati = match args.flags.get("checkpoint-dir") {
        // Out-of-core path: shards on disk, one atomic checkpoint per
        // stage per epoch, byte-identical to the in-memory path. The
        // env knobs cut or slow the run at epoch boundaries — the CI
        // kill-and-resume smoke test drives them.
        Some(dir) => {
            let opts = cati::StreamOptions {
                resume: args.switches.contains("resume"),
                stop_after_epoch: std::env::var("CATI_STREAM_STOP_AFTER_EPOCH")
                    .ok()
                    .and_then(|s| s.parse().ok()),
                epoch_sleep_ms: std::env::var("CATI_STREAM_EPOCH_SLEEP_MS")
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0),
            };
            match Cati::train_streamed(&train, &config, Path::new(dir), opts, &recorder)
                .map_err(|e| e.to_string())?
            {
                Some(cati) => cati,
                None => {
                    println!("training paused at the requested epoch; resume with --resume");
                    return Ok(());
                }
            }
        }
        None => Cati::train(&train, &config, &recorder),
    };
    cati.save(out).map_err(|e| e.to_string())?;
    println!("model saved to {out}");
    // Score a small held-out sample so the run manifest also captures
    // voting telemetry (clip counters, confidence histogram) — not
    // just the training curves.
    if !holdout.is_empty() {
        let _span = cati::obs::SpanGuard::enter(&recorder, "holdout");
        let mut typed = 0usize;
        for built in &holdout {
            typed += cati
                .infer_observed(&built.binary.strip(), &recorder)
                .map_err(|e| e.to_string())?
                .len();
        }
        cati::obs::info!(
            &recorder,
            "holdout: typed {typed} variables over {} stripped binaries",
            holdout.len()
        );
    }
    write_manifest_if_requested(
        args,
        &recorder,
        "train",
        &serde_json::json!({
            "seed": config.seed,
            "binaries": train.len(),
            "config": serde_json::to_value(&config).map_err(|e| e.to_string())?,
            "model": out.as_str(),
        }),
    )
}

fn cmd_infer(args: &Args) -> Result<(), String> {
    let model = args
        .flags
        .get("model")
        .ok_or("infer requires --model MODEL.json")?;
    let path = args
        .positional
        .first()
        .ok_or("infer requires a binary path")?;
    let cati = Cati::load(model).map_err(|e| e.to_string())?;
    let binary = load_binary(path)?;
    let mut cati = cati;
    if let Some(t) = args.flags.get("threads") {
        cati.config.threads = t.parse().unwrap_or(0);
    }
    // Default to the context mode the model was trained with; an
    // explicit --context overrides (e.g. to probe mode mismatch).
    if let Some(mode) = context_of(args)? {
        cati.config.context_mode = mode;
    }
    // Opt-in quantized inference: snap the weights before anything is
    // embedded or cached. Deterministic, but not bit-identical to the
    // f32 model — see DESIGN.md §15.
    let quantize = args
        .flags
        .get("quantize")
        .map(|m| cati::nn::QuantMode::parse(m))
        .transpose()?;
    if let Some(mode) = quantize {
        cati.quantize(mode);
    }
    let recorder = recorder_of(args);
    let lenient = lenient_of(args)?;
    let artifacts = args
        .flags
        .get("cache-dir")
        .map(|dir| ArtifactCache::open(dir).map_err(|e| format!("open cache {dir}: {e}")))
        .transpose()?;
    let report = if lenient {
        Some(cati.infer_lenient_observed(&binary, &recorder))
    } else {
        None
    };
    let mut inferred = match &report {
        Some(report) => report.vars.clone(),
        None => cati
            .infer_cached(&binary, artifacts.as_ref(), &recorder)
            .map_err(|e| e.to_string())?,
    };
    inferred.sort_by_key(|v| (v.key.func, v.key.offset));
    let meta = match &report {
        Some(report) => serde_json::json!({
            "model": model.as_str(),
            "binary": path.as_str(),
            "mode": "lenient",
            "context": cati.config.context_mode.name(),
            "quantize": quantize.map_or("none", |m| m.name()),
            "variables": inferred.len(),
            "cache_hits": recorder.metrics().counter_value("cache.hit"),
            "cache_misses": recorder.metrics().counter_value("cache.miss"),
            "coverage": serde_json::to_value(&report.coverage).map_err(|e| e.to_string())?,
            "diagnostics": report.diagnostics.total(),
        }),
        None => serde_json::json!({
            "model": model.as_str(),
            "binary": path.as_str(),
            "mode": "strict",
            "context": cati.config.context_mode.name(),
            "quantize": quantize.map_or("none", |m| m.name()),
            "variables": inferred.len(),
            "cache_hits": recorder.metrics().counter_value("cache.hit"),
            "cache_misses": recorder.metrics().counter_value("cache.miss"),
        }),
    };
    write_manifest_if_requested(args, &recorder, "infer", &meta)?;
    if let Some(report) = &report {
        for diag in &report.diagnostics.entries {
            eprintln!("warning: {diag}");
        }
    }
    if args.switches.contains("json") {
        let payload = match &report {
            Some(report) => {
                let mut sorted = report.clone();
                sorted.vars = inferred.clone();
                serde_json::to_string_pretty(&sorted)
            }
            None => serde_json::to_string_pretty(&inferred),
        };
        println!("{}", payload.map_err(|e| e.to_string())?);
        return Ok(());
    }
    println!(
        "{:<6} {:>8}  {:<22} {:>5} {:>6}",
        "func", "offset", "inferred type", "vucs", "conf"
    );
    for var in &inferred {
        println!(
            "{:<6} {:>8}  {:<22} {:>5} {:>5.0}%",
            var.key.func,
            hex_off(var.key.offset),
            var.class.to_string(),
            var.vuc_count,
            var.confidence * 100.0
        );
    }
    if let Some(report) = &report {
        let cov = &report.coverage;
        println!(
            "coverage: {}/{} functions, {}/{} bytes skipped, debug {}, {} diagnostic(s)",
            cov.functions_total - cov.functions_skipped,
            cov.functions_total,
            cov.bytes_skipped,
            cov.bytes_total,
            if !cov.debug_present {
                "absent"
            } else if cov.debug_ok {
                "ok"
            } else {
                "rejected"
            },
            report.diagnostics.total(),
        );
    }
    Ok(())
}

/// Everything needed to regenerate one fuzz mutant exactly: the
/// corpus is deterministic in its seed, the mutator in kind + seed.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct FuzzCase {
    /// Seed the corpus was built from.
    corpus_seed: u64,
    /// Index into the corpus test split.
    binary_index: usize,
    /// Name of the source binary.
    binary_name: String,
    /// Mutation family (see [`MutationKind::name`]).
    kind: String,
    /// Seed the mutator ran with.
    mutation_seed: u64,
    /// Human-readable damage description.
    detail: String,
}

/// Parses `--budget` values like `60s`, `90`, `500ms` via the shared
/// hang-limit machinery ([`cati_serve::timeout`]) that `cati serve`
/// uses for request deadlines.
fn parse_budget(s: &str) -> Result<Duration, String> {
    cati_serve::parse_duration(s).map_err(|e| format!("--budget: {e}"))
}

/// Regenerates the mutant a [`FuzzCase`] describes.
fn rebuild_case(case: &FuzzCase) -> Result<(Binary, cati_synbin::Mutation), String> {
    let corpus = build_corpus(&CorpusConfig::small(case.corpus_seed));
    let built = corpus
        .test
        .get(case.binary_index)
        .ok_or_else(|| format!("corpus has no test binary #{}", case.binary_index))?;
    let kind = MutationKind::from_name(&case.kind)
        .ok_or_else(|| format!("unknown mutation kind `{}`", case.kind))?;
    Ok(mutate(&built.binary, kind, case.mutation_seed))
}

/// Runs one mutant through the pipeline both ways and returns
/// `(strict_ok, lenient_vars, coverage_violation)`. Strict must yield
/// a typed result (the process aborting here *is* the fuzz finding);
/// lenient must always return, with internally consistent coverage.
fn run_case(cati: &Cati, mutant: &Binary) -> (bool, usize, Option<String>) {
    let strict_ok = cati.infer(&mutant.strip()).is_ok();
    let report = cati.infer_lenient(mutant);
    let cov = &report.coverage;
    let violation = if cov.bytes_total != mutant.text.len() as u64 {
        Some(format!(
            "coverage bytes_total {} != text len {}",
            cov.bytes_total,
            mutant.text.len()
        ))
    } else if cov.bytes_skipped > cov.bytes_total {
        Some(format!(
            "coverage bytes_skipped {} > bytes_total {}",
            cov.bytes_skipped, cov.bytes_total
        ))
    } else if cov.functions_skipped > cov.functions_total {
        Some(format!(
            "coverage functions_skipped {} > functions_total {}",
            cov.functions_skipped, cov.functions_total
        ))
    } else if cov.functions_skipped > 0 && report.diagnostics.is_empty() {
        Some("functions skipped without a diagnostic".into())
    } else {
        None
    };
    (strict_ok, report.vars.len(), violation)
}

fn cmd_fuzz(args: &Args) -> Result<(), String> {
    let out = PathBuf::from(
        args.flags
            .get("out")
            .map(String::as_str)
            .unwrap_or("results/fuzz"),
    );
    std::fs::create_dir_all(&out).map_err(|e| format!("create {}: {e}", out.display()))?;

    if let Some(replay) = args.flags.get("replay") {
        return cmd_fuzz_replay(replay, &out);
    }

    let seed: u64 = args
        .flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(2020);
    let mutants: u64 = args
        .flags
        .get("mutants")
        .map(|s| s.parse().map_err(|_| "bad --mutants"))
        .transpose()?
        .unwrap_or(500);
    let budget = args
        .flags
        .get("budget")
        .map(|s| parse_budget(s))
        .transpose()?
        .unwrap_or(Duration::from_secs(60));
    let hang_limit = HangLimit::from_ms(
        args.flags
            .get("hang-limit-ms")
            .map(|s| s.parse().map_err(|_| "bad --hang-limit-ms"))
            .transpose()?
            .unwrap_or(5000u64),
    );

    let started = Instant::now();
    eprintln!("fuzz: building corpus (seed {seed}) and training a small model...");
    let corpus = build_corpus(&CorpusConfig::small(seed));
    let train_n = corpus.train.len().min(4);
    let cati = Cati::train(&corpus.train[..train_n], &Config::small(), &cati::obs::NOOP);

    let pending = out.join("pending.json");
    let mut ran = 0u64;
    let mut strict_ok = 0u64;
    let mut strict_err = 0u64;
    let mut hangs: Vec<serde_json::Value> = Vec::new();
    let mut violations: Vec<serde_json::Value> = Vec::new();
    let mut slowest_ms = 0u128;
    let mut budget_exhausted = false;

    for i in 0..mutants {
        if started.elapsed() > budget {
            budget_exhausted = true;
            break;
        }
        let kind = MutationKind::ALL[i as usize % MutationKind::ALL.len()];
        let binary_index = i as usize % corpus.test.len();
        let mutation_seed = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i + 1);
        let source = &corpus.test[binary_index].binary;
        let (mutant, mutation) = mutate(source, kind, mutation_seed);
        let case = FuzzCase {
            corpus_seed: seed,
            binary_index,
            binary_name: source.name.clone(),
            kind: kind.name().to_string(),
            mutation_seed,
            detail: mutation.detail.clone(),
        };
        // The spec goes to disk *before* the pipeline runs: if the
        // process dies here, pending.json IS the minimized reproducer.
        save_json(&case, &pending)?;

        let t0 = Instant::now();
        let (ok, _vars, violation) = run_case(&cati, &mutant);
        let dt = t0.elapsed();
        slowest_ms = slowest_ms.max(dt.as_millis());
        ran += 1;
        if ok {
            strict_ok += 1;
        } else {
            strict_err += 1;
        }
        if hang_limit.exceeded(dt) {
            let kept = out.join(format!("hang-{i}.json"));
            std::fs::rename(&pending, &kept).map_err(|e| e.to_string())?;
            hangs.push(serde_json::json!({
                "case": kept.display().to_string(),
                "elapsed_ms": dt.as_millis() as u64,
            }));
        } else if let Some(v) = violation {
            let kept = out.join(format!("violation-{i}.json"));
            std::fs::rename(&pending, &kept).map_err(|e| e.to_string())?;
            violations.push(serde_json::json!({
                "case": kept.display().to_string(),
                "violation": v,
            }));
        } else {
            std::fs::remove_file(&pending).ok();
        }
    }

    let summary = serde_json::json!({
        "seed": seed,
        "requested": mutants,
        "ran": ran,
        "strict_typed_ok": strict_ok,
        "strict_typed_err": strict_err,
        "hangs": hangs,
        "coverage_violations": violations,
        "slowest_mutant_ms": slowest_ms as u64,
        "budget_exhausted": budget_exhausted,
        "elapsed_ms": started.elapsed().as_millis() as u64,
    });
    save_json(&summary, &out.join("summary.json"))?;
    println!(
        "{}",
        serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?
    );
    if !hangs.is_empty() || !violations.is_empty() {
        return Err(format!(
            "fuzz found {} hang(s), {} coverage violation(s); reproducers in {}",
            hangs.len(),
            violations.len(),
            out.display()
        ));
    }
    Ok(())
}

/// Replays one recorded [`FuzzCase`]: regenerates the mutant, writes
/// it next to the reproducer for offline inspection, and runs it.
fn cmd_fuzz_replay(path: &str, out: &Path) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    let case: FuzzCase =
        serde_json::from_slice(&bytes).map_err(|e| format!("parse {path}: {e}"))?;
    eprintln!(
        "replaying {} seed {} on {} (corpus seed {})...",
        case.kind, case.mutation_seed, case.binary_name, case.corpus_seed
    );
    let (mutant, mutation) = rebuild_case(&case)?;
    let repro = out.join("repro_binary.json");
    save_json(&mutant, &repro)?;
    eprintln!(
        "mutant written to {} ({})",
        repro.display(),
        mutation.detail
    );
    let corpus = build_corpus(&CorpusConfig::small(case.corpus_seed));
    let train_n = corpus.train.len().min(4);
    let cati = Cati::train(&corpus.train[..train_n], &Config::small(), &cati::obs::NOOP);
    let t0 = Instant::now();
    let (ok, vars, violation) = run_case(&cati, &mutant);
    println!(
        "{}",
        serde_json::to_string_pretty(&serde_json::json!({
            "case": case,
            "strict_typed_ok": ok,
            "lenient_vars": vars,
            "coverage_violation": violation,
            "elapsed_ms": t0.elapsed().as_millis() as u64,
        }))
        .map_err(|e| e.to_string())?
    );
    Ok(())
}

/// Reads and parses one run manifest.
fn load_manifest(path: &str) -> Result<Manifest, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    Manifest::parse(&text).map_err(|e| format!("parse {path}: {e}"))
}

/// `cati report CURRENT --bench-diff BASELINE`: compares two bench
/// records across the key metrics and exits non-zero on regression
/// (unless `--warn-only`).
fn cmd_bench_diff(args: &Args, current_path: &str, baseline_path: &str) -> Result<(), String> {
    use cati::obs::bench::{BenchDiff, BenchRecord};
    let base = BenchRecord::load(baseline_path)?;
    let current = BenchRecord::load(current_path)?;
    let threshold: f64 = args
        .flags
        .get("threshold")
        .map(|s| s.parse().map_err(|_| "bad --threshold (want percent)"))
        .transpose()?
        .unwrap_or(10.0);
    let diff = BenchDiff::compare(&base, &current, threshold);
    print!("{}", diff.render(&base, &current));
    let regressed = diff.regressions();
    if !regressed.is_empty() && !args.switches.contains("warn-only") {
        return Err(format!(
            "bench regression past ±{:.1}%: {}",
            diff.threshold_pct,
            regressed.join(", ")
        ));
    }
    Ok(())
}

fn cmd_report(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("report requires a manifest path")?;
    if let Some(baseline) = args.flags.get("bench-diff") {
        return cmd_bench_diff(args, path, baseline);
    }
    let manifest = load_manifest(path)?;
    if let Some(out) = args.flags.get("trace") {
        return write_chrome_trace(&manifest, out);
    }
    if args.switches.contains("validate") {
        manifest
            .validate()
            .map_err(|e| format!("{path}: INVALID: {e}"))?;
        println!(
            "{path}: OK ({} spans, {} loss records)",
            manifest.spans.len(),
            manifest.losses.len()
        );
        return Ok(());
    }
    match args.positional.get(1) {
        Some(other) => {
            let b = load_manifest(other)?;
            print!("{}", Manifest::diff(&manifest, &b));
        }
        None => print!("{}", manifest.render()),
    }
    Ok(())
}

fn cmd_convert(args: &Args) -> Result<(), String> {
    let model = args
        .flags
        .get("model")
        .ok_or("convert requires --model MODEL")?;
    let out = args.flags.get("out").ok_or("convert requires --out FILE")?;
    let format = args
        .flags
        .get("format")
        .map(String::as_str)
        .unwrap_or("cati1");
    let cati = Cati::load(model).map_err(|e| e.to_string())?;
    match format {
        "cati1" => cati.save(out).map_err(|e| e.to_string())?,
        "cati1-v1" => {
            // Downgrade to the legacy packed layout for pre-v2 readers.
            let bytes = cati::encode_cati1_v1(&cati);
            std::fs::write(out, bytes).map_err(|e| format!("write {out}: {e}"))?;
        }
        "json" => cati.save_json(out).map_err(|e| e.to_string())?,
        other => {
            return Err(format!(
                "unknown --format `{other}` (want cati1, cati1-v1 or json)"
            ))
        }
    }
    println!("model converted to {format}: {out}");
    Ok(())
}

fn cmd_strip(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("strip requires a binary path")?;
    let out = args.flags.get("out").ok_or("strip requires --out FILE")?;
    let binary = load_binary(path)?;
    save_json(&binary.strip(), Path::new(out))?;
    println!("stripped binary written to {out}");
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let model = args
        .flags
        .get("model")
        .ok_or("serve requires --model MODEL.cati")?;
    let mut cfg = ServeConfig {
        addr: args
            .flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:8472".to_string()),
        recorder: recorder_config_of(args),
        ..ServeConfig::default()
    };
    if let Some(v) = args.flags.get("queue-capacity") {
        cfg.queue_capacity = v.parse().map_err(|_| "bad --queue-capacity")?;
    }
    if let Some(v) = args.flags.get("max-batch") {
        cfg.max_batch = v.parse().map_err(|_| "bad --max-batch")?;
    }
    if let Some(v) = args.flags.get("workers") {
        cfg.workers = v.parse().map_err(|_| "bad --workers")?;
    }
    if let Some(v) = args.flags.get("hang-limit-ms") {
        cfg.hang_limit = HangLimit::from_ms(v.parse().map_err(|_| "bad --hang-limit-ms")?);
    }
    if let Some(dir) = args.flags.get("cache-dir") {
        cfg.cache_dir = Some(PathBuf::from(dir));
    }
    if let Some(t) = args.flags.get("threads") {
        cfg.threads = t.parse().unwrap_or(0);
    }
    let mut handle =
        Server::start_from_path(model, cfg).map_err(|e| format!("serve {model}: {e}"))?;
    eprintln!(
        "serving on http://{} (model version {})",
        handle.addr(),
        handle.model_version()
    );
    eprintln!(
        "routes: POST /infer  GET /health  GET /metrics  POST /admin/reload  POST /admin/shutdown"
    );
    handle.wait();
    let metrics = handle.recorder().metrics();
    let meta = serde_json::json!({
        "model": model.as_str(),
        "addr": handle.addr().to_string(),
        "model_version": handle.model_version(),
        "requests": metrics.counter_value("serve.requests"),
        "served": metrics.counter_value("serve.served"),
        "rejected": metrics.counter_value("serve.rejected"),
        "deadline_expired": metrics.counter_value("serve.deadline_expired"),
        "reloads": metrics.counter_value("serve.reloads"),
        "cache_hits": metrics.counter_value("cache.hit"),
        "cache_misses": metrics.counter_value("cache.miss"),
    });
    write_manifest_if_requested(args, handle.recorder(), "serve", &meta)?;
    eprintln!("server stopped");
    Ok(())
}

const USAGE: &str = "\
cati — context-assisted type inference from stripped binaries

USAGE:
  cati build-corpus --out DIR [--scale small|medium|paper] [--compiler gcc|clang] [--seed N]
  cati disasm BINARY.json [--strip]
  cati vars BINARY.json [--strict|--lenient] [--context function|interproc]
  cati train --corpus DIR --out MODEL.cati [--scale small|medium|paper] [--threads N]
             [--checkpoint-dir DIR] [--resume] [--context function|interproc]
  cati infer --model MODEL.cati BINARY.json [--strict|--lenient] [--json] [--threads N] [--cache-dir DIR]
             [--quantize int8|f16] [--context function|interproc]
  cati fuzz [--seed N] [--mutants N] [--budget 60s] [--hang-limit-ms N] [--out DIR] [--replay CASE.json]
  cati serve --model MODEL.cati [--addr HOST:PORT] [--queue-capacity N] [--max-batch N] [--workers N]
             [--hang-limit-ms N] [--cache-dir DIR] [--threads N] [--manifest PATH]
  cati report MANIFEST.jsonl [OTHER.jsonl] [--validate] [--trace OUT.json]
  cati report CURRENT.json --bench-diff BASELINE.json [--threshold PCT] [--warn-only]
  cati convert --model MODEL --out FILE [--format cati1|cati1-v1|json]
  cati strip BINARY.json --out STRIPPED.json

Context assembly (vars, train and infer):
  --context function   (default) the paper's function-local VUC
                       windows — out-of-range slots pad with BLANK.
  --context interproc  splice callee prologues and caller
                       continuations into the padding at call/ret
                       boundaries when the variable flows through an
                       argument or return register (DESIGN.md §17).
                       `infer` defaults to the mode the model was
                       trained with; the flag overrides it.

Degradation modes (vars and infer):
  --strict (default)  refuse hostile input with a typed error — a
                      corrupt text or debug section fails the command.
  --lenient           degrade instead: skip undecodable functions,
                      drop a corrupt debug section, and report partial
                      results plus a coverage line and per-finding
                      warnings on stderr. With --json the output is a
                      full report object {vars, coverage, diagnostics}.

`cati fuzz` drives the seeded corruption engine (cati_synbin::hostile)
against the full pipeline: each mutant must produce a typed error
(strict) and a partial result with honest coverage (lenient) — never a
panic or hang. The next case spec is written to OUT/pending.json
before it runs, so a crash leaves the reproducer behind; hangs and
coverage violations are kept as OUT/hang-*.json / OUT/violation-*.json
and summarized in OUT/summary.json. --replay CASE.json regenerates a
recorded mutant (writing OUT/repro_binary.json) and reruns it.

`cati serve` keeps one model resident behind an HTTP/1.1 daemon
(default 127.0.0.1:8472). POST a Binary JSON to /infer and the
response body is byte-identical to `cati infer --json` on the same
file (add ?mode=lenient or the x-cati-mode: lenient header for the
lenient report). Concurrent requests are coalesced into one batched
classification pass (--max-batch, default 8) behind a bounded queue
(--queue-capacity, default 64; overflow answers 503). Per-request
deadlines reuse the fuzz hang-limit machinery: --hang-limit-ms (or the
x-cati-hang-limit-ms request header; 0 = unlimited) turns a slow
request into a 504 while the server keeps serving. POST
{\"model\": PATH} to /admin/reload to hot-swap the model without
dropping traffic — every response carries x-cati-model-version. GET
/metrics dumps the live counter/histogram registry as JSON; --manifest
writes the full request timeline on shutdown (POST /admin/shutdown).
--cache-dir mounts the artifact cache server-side, shared across
clients and keyed by binary digest.

Training and batched inference use --threads worker threads
(0 or omitted = all cores); results are bit-identical for any value.

Training at scale:
  `cati train --checkpoint-dir DIR` streams the embedded training
  samples into digest-checked on-disk shards under DIR/shards and
  trains out-of-core, so peak memory is bounded by the model plus one
  shard buffer — never by corpus size. Every stage writes one atomic
  checkpoint (weights + optimizer moments + RNG state) per epoch, and
  the trained model is byte-identical to an in-memory run on the same
  inputs. After any interruption — including a hard kill mid-epoch —
  rerun with --resume: completed phases load instead of recomputing
  and the finished model is byte-identical to an uninterrupted run. A
  checkpoint directory from a different configuration or corpus is
  refused with a typed error.

`cati infer --cache-dir DIR` keeps a content-addressed artifact cache
(extraction + window embeddings, keyed by binary digest and model
fingerprint) so repeated runs skip recomputation; output is
bit-identical with or without the cache. Cache traffic is reported as
cache_hits / cache_misses in the run manifest.

Model format:
  `cati train` writes models as CATI1 v2 — a versioned, checksummed
  binary container (magic header, section table, flat little-endian
  f32 weight tensors, each 64-byte aligned so loading memory-maps the
  weights zero-copy). `cati infer` and `cati convert` sniff the format
  from the first bytes, so v1 containers and legacy JSON models keep
  working (they load with one copy). `cati convert` rewrites a model
  in any direction:
    cati convert --model old.json --out model.cati               # JSON -> CATI1 v2
    cati convert --model model.cati --out m.json --format json   # CATI1 -> JSON
    cati convert --model model.cati --out v1.cati --format cati1-v1  # v2 -> legacy v1

Quantized inference:
  `cati infer --quantize int8|f16` snaps the loaded weights onto a
  coarser grid before inference (per-row symmetric int8, or IEEE
  binary16), dequantized back to f32 so every kernel runs the normal
  deterministic path. Output is reproducible but NOT bit-identical to
  the f32 model; the accuracy delta is measured by the bench parity
  harness and recorded in its run manifest.

Telemetry (train, infer, serve):
  --log-format text|json        live event mirror on stderr (default text)
  --log-level error|warn|info|debug
  --manifest PATH               write a run manifest (JSONL) for `cati report`
  --trace OUT.json              export the run as Chrome trace_event JSON
                                (open in Perfetto or chrome://tracing)
  --batch-stats                 also record per-minibatch gradient norms

`cati report` pretty-prints one manifest (span tree, histograms with
p50/p95/p99), diffs two, exports an existing manifest as a Chrome
trace (--trace OUT.json), or with --validate checks structure (meta
line, spans/losses, monotonic timestamps) and exits non-zero on
failure.

Perf observatory:
  `cargo run -p cati-bench --release --bin exp_speed` stamps git_rev /
  unix_ms into results/BENCH_speed.json and appends a flat record to
  results/bench_history.jsonl. `cati report CURRENT --bench-diff
  BASELINE` compares the key metrics (infer_vucs_per_s,
  embed_rows_per_s, serve_reqs_per_s, serve_p99_ms, model_load_ms)
  against a noise threshold (--threshold PCT, default 10) and exits
  non-zero on regression; --warn-only reports without failing. Either
  side may be a single JSON record or JSONL history (last line wins).

Per-span allocation columns (alloc bytes / count in --trace output,
`cati report`, and /debug/profile) need the counting allocator:
build with `--features alloc-profile`.
";

/// With `--features alloc-profile`, route all allocations through the
/// counting allocator so spans carry allocation columns.
#[cfg(feature = "alloc-profile")]
#[global_allocator]
static COUNTING_ALLOCATOR: cati::obs::alloc::CountingAllocator =
    cati::obs::alloc::CountingAllocator;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = parse_args(&argv[1..]);
    let result = match cmd.as_str() {
        "build-corpus" => cmd_build_corpus(&args),
        "disasm" => cmd_disasm(&args),
        "vars" => cmd_vars(&args),
        "train" => cmd_train(&args),
        "infer" => cmd_infer(&args),
        "fuzz" => cmd_fuzz(&args),
        "serve" => cmd_serve(&args),
        "report" => cmd_report(&args),
        "convert" => cmd_convert(&args),
        "strip" => cmd_strip(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
