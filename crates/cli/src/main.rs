//! `cati` — the command-line interface to the CATI reproduction.
//!
//! Subcommands mirror the deployment workflow:
//!
//! ```text
//! cati build-corpus --out DIR [--scale S] [--compiler C] [--seed N]
//! cati disasm BINARY.json [--strip]
//! cati vars BINARY.json
//! cati train --corpus DIR --out MODEL.json [--scale S] [--threads N]
//! cati infer --model MODEL.json BINARY.json [--threads N]
//! cati strip BINARY.json --out STRIPPED.json
//! ```
//!
//! Binaries are stored as JSON serializations of
//! [`cati_asm::Binary`]; `build-corpus` writes one file per binary
//! plus a manifest.

use cati::obs::{git_rev, Level, LogFormat, Manifest, Recorder, RecorderConfig};
use cati::{ArtifactCache, Cati, Config};
use cati_analysis::{extract, FeatureView};
use cati_asm::binary::Binary;
use cati_asm::fmt::format_insn;
use cati_synbin::{build_corpus, Compiler, CorpusConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Formats a signed frame offset as `-0x18` / `0x40`.
fn hex_off(off: i32) -> String {
    if off < 0 {
        format!("-{:#x}", -(off as i64))
    } else {
        format!("{off:#x}")
    }
}

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
    switches: std::collections::HashSet<String>,
}

fn parse_args(argv: &[String]) -> Args {
    let mut positional = Vec::new();
    let mut flags = std::collections::HashMap::new();
    let mut switches = std::collections::HashSet::new();
    let mut it = argv.iter().peekable();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    flags.insert(name.to_string(), it.next().unwrap().clone());
                }
                _ => {
                    switches.insert(name.to_string());
                }
            }
        } else {
            positional.push(arg.clone());
        }
    }
    Args {
        positional,
        flags,
        switches,
    }
}

fn load_binary(path: &str) -> Result<Binary, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_slice(&bytes).map_err(|e| format!("parse {path}: {e}"))
}

fn save_json<T: serde::Serialize>(value: &T, path: &Path) -> Result<(), String> {
    let json = serde_json::to_vec(value).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| format!("write {}: {e}", path.display()))
}

fn scale_of(args: &Args) -> (Config, fn(u64) -> CorpusConfig) {
    let (mut config, corpus): (Config, fn(u64) -> CorpusConfig) =
        match args.flags.get("scale").map(String::as_str) {
            Some("paper") => (Config::paper(), CorpusConfig::paper),
            Some("medium") => (Config::medium(), CorpusConfig::medium),
            _ => (Config::small(), CorpusConfig::small),
        };
    if let Some(t) = args.flags.get("threads") {
        config.threads = t.parse().unwrap_or(0);
    }
    (config, corpus)
}

/// Builds the telemetry recorder from the shared observability flags:
/// `--log-format text|json` (default text), `--log-level
/// error|warn|info|debug` (default info), `--batch-stats`.
fn recorder_of(args: &Args) -> Recorder {
    Recorder::new(RecorderConfig {
        log: Some(
            args.flags
                .get("log-format")
                .map(|s| LogFormat::parse(s))
                .unwrap_or(LogFormat::Text),
        ),
        level: args
            .flags
            .get("log-level")
            .map(|s| Level::parse(s))
            .unwrap_or(Level::Info),
        batch_stats: args.switches.contains("batch-stats"),
    })
}

/// Writes the run manifest when `--manifest PATH` was given. `extra`
/// keys join the standard `name` / `git_rev` meta fields.
fn write_manifest_if_requested(
    args: &Args,
    recorder: &Recorder,
    name: &str,
    extra: &serde_json::Value,
) -> Result<(), String> {
    let Some(path) = args.flags.get("manifest") else {
        return Ok(());
    };
    let mut meta = serde_json::Map::new();
    meta.insert("name".to_string(), serde_json::json!(name));
    if let Some(rev) = git_rev(Path::new(".")) {
        meta.insert("git_rev".to_string(), serde_json::json!(rev));
    }
    if let serde_json::Value::Object(extra) = extra {
        for (k, v) in extra.iter() {
            meta.insert(k.clone(), v.clone());
        }
    }
    recorder
        .write_manifest(path, &serde_json::Value::Object(meta))
        .map_err(|e| e.to_string())?;
    // stderr, so `infer --json > out.json` stays machine-readable.
    eprintln!("manifest written to {path}");
    Ok(())
}

fn cmd_build_corpus(args: &Args) -> Result<(), String> {
    let out = PathBuf::from(
        args.flags
            .get("out")
            .ok_or("build-corpus requires --out DIR")?,
    );
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    let seed: u64 = args
        .flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(2020);
    let compiler = match args.flags.get("compiler").map(String::as_str) {
        Some("clang") => Compiler::Clang,
        _ => Compiler::Gcc,
    };
    let (_, corpus_cfg) = scale_of(args);
    let corpus = build_corpus(&corpus_cfg(seed).with_compiler(compiler));
    let mut manifest = Vec::new();
    for (split, binaries) in [("train", &corpus.train), ("test", &corpus.test)] {
        for (i, built) in binaries.iter().enumerate() {
            let name = format!("{split}_{:04}_{}.json", i, built.binary.name);
            save_json(&built.binary, &out.join(&name))?;
            manifest.push(serde_json::json!({
                "file": name,
                "split": split,
                "app": built.app,
                "compiler": built.opts.compiler.name(),
                "opt": built.opts.opt.0,
            }));
        }
    }
    save_json(&manifest, &out.join("manifest.json"))?;
    println!(
        "wrote {} train + {} test binaries to {}",
        corpus.train.len(),
        corpus.test.len(),
        out.display()
    );
    Ok(())
}

fn cmd_disasm(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("disasm requires a binary path")?;
    let mut binary = load_binary(path)?;
    if args.switches.contains("strip") {
        binary = binary.strip();
    }
    let insns = binary.disassemble().map_err(|e| e.to_string())?;
    for located in insns {
        let sym = binary
            .symbol_at(located.addr)
            .filter(|s| s.addr == located.addr)
            .map(|s| format!("\n{:016x} <{}>:", s.addr, s.name));
        if let Some(header) = sym {
            println!("{header}");
        }
        println!(
            "  {:6x}:\t{}",
            located.addr,
            format_insn(&located.insn, &binary)
        );
    }
    Ok(())
}

fn cmd_vars(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("vars requires a binary path")?;
    let binary = load_binary(path)?;
    let view = if binary.debug.is_some() {
        FeatureView::WithSymbols
    } else {
        FeatureView::Stripped
    };
    let ex = extract(&binary, view).map_err(|e| e.to_string())?;
    println!(
        "{:<6} {:>8}  {:<24} {:>5}",
        "func", "offset", "type (ground truth)", "vucs"
    );
    for var in &ex.vars {
        println!(
            "{:<6} {:>8}  {:<24} {:>5}",
            var.key.func,
            hex_off(var.key.offset),
            var.class
                .map(|c| c.to_string())
                .unwrap_or_else(|| "?".into()),
            var.vucs.len()
        );
    }
    println!("{} variables, {} VUCs", ex.vars.len(), ex.vucs.len());
    Ok(())
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let corpus_dir = PathBuf::from(
        args.flags
            .get("corpus")
            .ok_or("train requires --corpus DIR")?,
    );
    let out = args
        .flags
        .get("out")
        .ok_or("train requires --out MODEL.json")?;
    let (config, _) = scale_of(args);
    let manifest: Vec<serde_json::Value> = serde_json::from_slice(
        &std::fs::read(corpus_dir.join("manifest.json")).map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    let mut train = Vec::new();
    let mut holdout = Vec::new();
    for entry in &manifest {
        let split = entry["split"].as_str().unwrap_or("");
        if split != "train" && split != "test" {
            continue;
        }
        let file = entry["file"].as_str().ok_or("bad manifest")?;
        let binary = load_binary(corpus_dir.join(file).to_str().unwrap())?;
        let opt = entry["opt"].as_u64().unwrap_or(0) as u8;
        let compiler = if entry["compiler"] == "clang" {
            Compiler::Clang
        } else {
            Compiler::Gcc
        };
        let built = cati_synbin::BuiltBinary {
            binary,
            app: entry["app"].as_str().unwrap_or("unknown").to_string(),
            opts: cati_synbin::CodegenOptions {
                compiler,
                opt: cati_synbin::OptLevel(opt),
            },
        };
        if split == "train" {
            train.push(built);
        } else if holdout.len() < 4 {
            holdout.push(built);
        }
    }
    if train.is_empty() {
        return Err("no training binaries in manifest".into());
    }
    println!("training on {} binaries...", train.len());
    let recorder = recorder_of(args);
    let cati = Cati::train(&train, &config, &recorder);
    cati.save(out).map_err(|e| e.to_string())?;
    println!("model saved to {out}");
    // Score a small held-out sample so the run manifest also captures
    // voting telemetry (clip counters, confidence histogram) — not
    // just the training curves.
    if !holdout.is_empty() {
        let _span = cati::obs::SpanGuard::enter(&recorder, "holdout");
        let mut typed = 0usize;
        for built in &holdout {
            typed += cati
                .infer_observed(&built.binary.strip(), &recorder)
                .map_err(|e| e.to_string())?
                .len();
        }
        cati::obs::info!(
            &recorder,
            "holdout: typed {typed} variables over {} stripped binaries",
            holdout.len()
        );
    }
    write_manifest_if_requested(
        args,
        &recorder,
        "train",
        &serde_json::json!({
            "seed": config.seed,
            "binaries": train.len(),
            "config": serde_json::to_value(&config).map_err(|e| e.to_string())?,
            "model": out.as_str(),
        }),
    )
}

fn cmd_infer(args: &Args) -> Result<(), String> {
    let model = args
        .flags
        .get("model")
        .ok_or("infer requires --model MODEL.json")?;
    let path = args
        .positional
        .first()
        .ok_or("infer requires a binary path")?;
    let cati = Cati::load(model).map_err(|e| e.to_string())?;
    let binary = load_binary(path)?;
    let mut cati = cati;
    if let Some(t) = args.flags.get("threads") {
        cati.config.threads = t.parse().unwrap_or(0);
    }
    let recorder = recorder_of(args);
    let artifacts = args
        .flags
        .get("cache-dir")
        .map(|dir| ArtifactCache::open(dir).map_err(|e| format!("open cache {dir}: {e}")))
        .transpose()?;
    let mut inferred = cati
        .infer_cached(&binary, artifacts.as_ref(), &recorder)
        .map_err(|e| e.to_string())?;
    inferred.sort_by_key(|v| (v.key.func, v.key.offset));
    write_manifest_if_requested(
        args,
        &recorder,
        "infer",
        &serde_json::json!({
            "model": model.as_str(),
            "binary": path.as_str(),
            "variables": inferred.len(),
            "cache_hits": recorder.metrics().counter_value("cache.hit"),
            "cache_misses": recorder.metrics().counter_value("cache.miss"),
        }),
    )?;
    if args.switches.contains("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&inferred).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    println!(
        "{:<6} {:>8}  {:<22} {:>5} {:>6}",
        "func", "offset", "inferred type", "vucs", "conf"
    );
    for var in &inferred {
        println!(
            "{:<6} {:>8}  {:<22} {:>5} {:>5.0}%",
            var.key.func,
            hex_off(var.key.offset),
            var.class.to_string(),
            var.vuc_count,
            var.confidence * 100.0
        );
    }
    Ok(())
}

/// Reads and parses one run manifest.
fn load_manifest(path: &str) -> Result<Manifest, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    Manifest::parse(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn cmd_report(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("report requires a manifest path")?;
    let manifest = load_manifest(path)?;
    if args.switches.contains("validate") {
        manifest
            .validate()
            .map_err(|e| format!("{path}: INVALID: {e}"))?;
        println!(
            "{path}: OK ({} spans, {} loss records)",
            manifest.spans.len(),
            manifest.losses.len()
        );
        return Ok(());
    }
    match args.positional.get(1) {
        Some(other) => {
            let b = load_manifest(other)?;
            print!("{}", Manifest::diff(&manifest, &b));
        }
        None => print!("{}", manifest.render()),
    }
    Ok(())
}

fn cmd_strip(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("strip requires a binary path")?;
    let out = args.flags.get("out").ok_or("strip requires --out FILE")?;
    let binary = load_binary(path)?;
    save_json(&binary.strip(), Path::new(out))?;
    println!("stripped binary written to {out}");
    Ok(())
}

const USAGE: &str = "\
cati — context-assisted type inference from stripped binaries

USAGE:
  cati build-corpus --out DIR [--scale small|medium|paper] [--compiler gcc|clang] [--seed N]
  cati disasm BINARY.json [--strip]
  cati vars BINARY.json
  cati train --corpus DIR --out MODEL.json [--scale small|medium|paper] [--threads N]
  cati infer --model MODEL.json BINARY.json [--json] [--threads N] [--cache-dir DIR]
  cati report MANIFEST.jsonl [OTHER.jsonl] [--validate]
  cati strip BINARY.json --out STRIPPED.json

Training and batched inference use --threads worker threads
(0 or omitted = all cores); results are bit-identical for any value.

`cati infer --cache-dir DIR` keeps a content-addressed artifact cache
(extraction + window embeddings, keyed by binary digest and model
fingerprint) so repeated runs skip recomputation; output is
bit-identical with or without the cache. Cache traffic is reported as
cache_hits / cache_misses in the run manifest.

Telemetry (train and infer):
  --log-format text|json        live event mirror on stderr (default text)
  --log-level error|warn|info|debug
  --manifest PATH               write a run manifest (JSONL) for `cati report`
  --batch-stats                 also record per-minibatch gradient norms

`cati report` pretty-prints one manifest, diffs two, or with
--validate checks structure (meta line, spans/losses, monotonic
timestamps) and exits non-zero on failure.
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = parse_args(&argv[1..]);
    let result = match cmd.as_str() {
        "build-corpus" => cmd_build_corpus(&args),
        "disasm" => cmd_disasm(&args),
        "vars" => cmd_vars(&args),
        "train" => cmd_train(&args),
        "infer" => cmd_infer(&args),
        "report" => cmd_report(&args),
        "strip" => cmd_strip(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
