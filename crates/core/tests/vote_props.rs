//! Property tests for confidence clipping and voting (paper Eq. 2–4).
//!
//! Probabilities are drawn as dyadic rationals `k/64` so that every
//! clipped sum is exactly representable in `f32`: reordering the rows
//! then cannot perturb the totals even in the last bit, which lets
//! the permutation-invariance property assert exact equality.

use cati::{clip_confidences, vote};
use proptest::collection::vec;
use proptest::prelude::*;

/// Reshapes a flat list of 64ths into rows of `cols` probabilities.
fn rows(flat: &[u8], cols: usize) -> Vec<Vec<f32>> {
    flat.chunks_exact(cols)
        .map(|c| c.iter().map(|&k| f32::from(k) / 64.0).collect())
        .collect()
}

proptest! {
    #[test]
    fn clipping_is_idempotent(ks in vec(0u8..=64, 1..=12), t in 0u8..=64) {
        let probs: Vec<f32> = ks.iter().map(|&k| f32::from(k) / 64.0).collect();
        let threshold = f32::from(t) / 64.0;
        let once = clip_confidences(&probs, threshold);
        let twice = clip_confidences(&once, threshold);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn clipping_never_lowers_a_confidence(ks in vec(0u8..=64, 1..=12), t in 0u8..=64) {
        let probs: Vec<f32> = ks.iter().map(|&k| f32::from(k) / 64.0).collect();
        let clipped = clip_confidences(&probs, f32::from(t) / 64.0);
        for (p, c) in probs.iter().zip(&clipped) {
            prop_assert!(c >= p && *c <= 1.0);
        }
    }

    #[test]
    fn vote_totals_are_nonnegative_and_bounded(
        flat in vec(0u8..=64, 6..=36),
        cols in 2usize..=6,
    ) {
        let d = rows(&flat, cols);
        let r = vote(&d, 0.9);
        prop_assert!(r.class < cols);
        prop_assert_eq!(r.totals.len(), cols);
        for &t in &r.totals {
            // Each row contributes at most 1.0 per class after clipping.
            prop_assert!((0.0..=d.len() as f32).contains(&t));
        }
    }

    #[test]
    fn vote_is_invariant_under_row_permutation(
        flat in vec(0u8..=64, 6..=36),
        cols in 2usize..=6,
        rot in 0usize..=35,
    ) {
        let d = rows(&flat, cols);
        let mut rotated = d.clone();
        let n = rotated.len();
        rotated.rotate_left(rot % n);
        let a = vote(&d, 0.9);
        let b = vote(&rotated, 0.9);
        prop_assert_eq!(a.class, b.class);
        prop_assert_eq!(a.totals, b.totals);
    }

    #[test]
    fn vote_totals_equal_summed_clip_confidences(
        flat in vec(0u8..=64, 6..=36),
        cols in 2usize..=6,
        t in 0u8..=64,
    ) {
        // Eq. 3 is single-sourced: voting must accumulate exactly
        // what `clip_confidences` produces row by row. Dyadic inputs
        // make the sums exact, so equality is bitwise.
        let d = rows(&flat, cols);
        let threshold = f32::from(t) / 64.0;
        let r = vote(&d, threshold);
        let mut sums = vec![0.0f32; cols];
        let mut promoted = 0u32;
        for row in &d {
            for (s, (&c, &p)) in sums
                .iter_mut()
                .zip(clip_confidences(row, threshold).iter().zip(row))
            {
                *s += c;
                promoted += u32::from(p >= threshold);
            }
        }
        prop_assert_eq!(&r.totals, &sums);
        prop_assert_eq!(r.clipped, promoted);
    }

    #[test]
    fn vote_rejects_nan_rows_in_debug(
        flat in vec(0u8..=64, 4..=12),
        cols in 2usize..=4,
        poison in 0usize..=11,
    ) {
        // The NaN guard fires for a NaN anywhere in any row.
        let mut d = rows(&flat, cols);
        let n_cells = d.len() * cols;
        let poison = poison % n_cells;
        d[poison / cols][poison % cols] = f32::NAN;
        let caught = std::panic::catch_unwind(|| vote(&d, 0.9)).is_err();
        prop_assert_eq!(caught, cfg!(debug_assertions));
    }

    #[test]
    fn threshold_one_degenerates_to_probability_summing(
        flat in vec(0u8..=63, 6..=36),
        cols in 2usize..=6,
    ) {
        // All probabilities are < 1.0, so a threshold of 1.0 promotes
        // nothing and voting reduces to summing raw probabilities.
        let d = rows(&flat, cols);
        let r = vote(&d, 1.0);
        for (c, &total) in r.totals.iter().enumerate() {
            let sum: f32 = d.iter().map(|row| row[c]).sum();
            prop_assert!((total - sum).abs() < 1e-6, "class {c}: {total} vs {sum}");
        }
    }
}
