//! Integration tests for the auxiliary classifier heads: compiler
//! identification (§VIII) and the DEBIN 17-type task (§VII).

use cati::{embedding_sentences, CompilerId, Config, DebinTask};
use cati_analysis::{extract, Extraction, FeatureView};
use cati_embedding::{VucEmbedder, Word2Vec};
use cati_synbin::{build_corpus, Compiler, CorpusConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn embedder_over(binaries: &[cati_synbin::BuiltBinary], config: &Config) -> VucEmbedder {
    let mut rng = StdRng::seed_from_u64(1);
    let sentences = embedding_sentences(binaries, config.max_sentences, &mut rng);
    VucEmbedder::new(Word2Vec::train(&sentences, config.w2v))
}

#[test]
fn compiler_id_separates_gcc_from_clang() {
    // The frame-base / scratch-register signal is strong but the tiny
    // preset underfits it; use an intermediate capacity (seconds).
    let mut config = Config::small();
    config.w2v.dim = 12;
    config.conv1 = 12;
    config.conv2 = 16;
    config.fc = 96;
    config.epochs = 4;
    config.max_stage_samples = 12_000;
    let mut corpus_cfg = CorpusConfig::small(10);
    corpus_cfg.train_projects = 4;
    corpus_cfg.scale = 0.5;
    let gcc = build_corpus(&corpus_cfg.clone().with_compiler(Compiler::Gcc));
    let mut corpus_cfg2 = corpus_cfg;
    corpus_cfg2.seed = 11;
    let clang = build_corpus(&corpus_cfg2.with_compiler(Compiler::Clang));
    let mut all = gcc.train.clone();
    all.extend(clang.train.iter().cloned());
    let embedder = embedder_over(&all, &config);

    let exs = |bins: &[cati_synbin::BuiltBinary], c: Compiler| -> Vec<(Extraction, Compiler)> {
        bins.iter()
            .map(|b| (extract(&b.binary, FeatureView::WithSymbols).unwrap(), c))
            .collect()
    };
    let train: Vec<(Extraction, Compiler)> = exs(&gcc.train, Compiler::Gcc)
        .into_iter()
        .chain(exs(&clang.train, Compiler::Clang))
        .collect();
    let test: Vec<(Extraction, Compiler)> = exs(&gcc.test[..6], Compiler::Gcc)
        .into_iter()
        .chain(exs(&clang.test[..6], Compiler::Clang))
        .collect();
    let train_refs: Vec<(&Extraction, Compiler)> = train.iter().map(|(e, c)| (e, *c)).collect();
    let test_refs: Vec<(&Extraction, Compiler)> = test.iter().map(|(e, c)| (e, *c)).collect();

    let id = CompilerId::train(&train_refs, &embedder, &config);
    let acc = id.accuracy(&embedder, &test_refs);
    // The paper reaches 100% (and our medium-scale experiment 98.7%
    // per VUC); the test-scale model sees far less data, so we assert
    // a clear margin per VUC and near-perfection after the per-binary
    // majority vote, which is what the 100% claim rests on.
    assert!(acc > 0.72, "compiler-id VUC accuracy {acc:.3}");

    let bin_ok = test_refs
        .iter()
        .filter(|(ex, c)| id.predict_binary(&embedder, ex) == *c)
        .count();
    assert!(
        bin_ok >= test_refs.len() - 1,
        "binary-level {bin_ok}/{}",
        test_refs.len()
    );
}

#[test]
fn debin_task_trains_and_scores_above_chance() {
    let config = Config::small();
    let corpus = build_corpus(&CorpusConfig::small(12));
    let embedder = embedder_over(&corpus.train, &config);
    let train: Vec<Extraction> = corpus
        .train
        .iter()
        .map(|b| extract(&b.binary, FeatureView::WithSymbols).unwrap())
        .collect();
    let test: Vec<Extraction> = corpus
        .test
        .iter()
        .take(8)
        .map(|b| extract(&b.binary, FeatureView::Stripped).unwrap())
        .collect();
    let train_refs: Vec<&Extraction> = train.iter().collect();
    let test_refs: Vec<&Extraction> = test.iter().collect();

    let task = DebinTask::train(&train_refs, &embedder, &config);
    let acc = task.accuracy(&test_refs, &embedder);
    // 17 classes, so chance ~6%; pointer alone is >30% of variables.
    assert!(acc > 0.30, "17-type accuracy {acc:.3} at chance level");
}
