//! Property tests for the shard frame codec (`cati::shards`).
//!
//! The codec is the foundation the out-of-core training path trusts:
//! a decoded shard must be bit-identical to what was encoded, and any
//! damage — truncation at *any* byte offset, any single bit flip —
//! must surface as a typed [`ShardError`], never as silently wrong
//! training data. Floats are drawn as raw bit patterns, so NaN
//! payloads and negative zero round-trip too.

use cati::shards::{decode_shard, encode_shard};
use cati::ShardError;
use proptest::collection::vec;
use proptest::prelude::*;
use std::path::Path;

/// Builds the `(cols, labels, rows)` encode inputs from a flat bit
/// pattern draw.
fn shard_inputs(cols: usize, labels: Vec<u8>, bits: Vec<u32>) -> (Vec<u8>, Vec<f32>) {
    let rows: Vec<f32> = bits
        .iter()
        .cycle()
        .take(labels.len() * cols)
        .map(|&b| f32::from_bits(b))
        .collect();
    (labels, rows)
}

proptest! {
    #[test]
    fn roundtrip_is_bit_identical(
        cols in 1usize..8,
        labels in vec(0u8..=255, 0..20),
        bits in vec(any::<u32>(), 1..16),
    ) {
        let (labels, rows) = shard_inputs(cols, labels, bits);
        let bytes = encode_shard(cols, &labels, &rows);
        let (got_cols, got_labels, got_rows) =
            decode_shard(&bytes, Path::new("prop")).expect("valid shard must decode");
        prop_assert_eq!(got_cols, cols);
        prop_assert_eq!(got_labels, labels);
        prop_assert_eq!(got_rows.len(), rows.len());
        for (a, b) in got_rows.iter().zip(&rows) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncation_at_every_offset_is_a_typed_error(
        cols in 1usize..5,
        labels in vec(0u8..=255, 0..8),
        bits in vec(any::<u32>(), 1..8),
    ) {
        let (labels, rows) = shard_inputs(cols, labels, bits);
        let bytes = encode_shard(cols, &labels, &rows);
        for cut in 0..bytes.len() {
            match decode_shard(&bytes[..cut], Path::new("prop")) {
                Err(
                    ShardError::Truncated { .. }
                    | ShardError::BadMagic { .. }
                    | ShardError::BadVersion { .. }
                    | ShardError::DigestMismatch { .. }
                    | ShardError::Inconsistent { .. },
                ) => {}
                Err(other) => prop_assert!(false, "cut at {cut}: unexpected error {other}"),
                Ok(_) => prop_assert!(false, "cut at {cut} decoded successfully"),
            }
        }
    }

    #[test]
    fn no_single_bit_flip_decodes(
        cols in 1usize..5,
        labels in vec(0u8..=255, 0..8),
        bits in vec(any::<u32>(), 1..8),
        flip in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let (labels, rows) = shard_inputs(cols, labels, bits);
        let mut bytes = encode_shard(cols, &labels, &rows);
        let i = flip.index(bytes.len());
        bytes[i] ^= 1 << bit;
        prop_assert!(
            decode_shard(&bytes, Path::new("prop")).is_err(),
            "flip of bit {bit} at byte {i} still decoded"
        );
    }
}
