//! The tree of six stage classifiers (paper Fig. 5).

use crate::checkpoint::{CheckpointDir, CheckpointError, TrainIdentity};
use crate::config::Config;
use crate::dataset::{plan_stage_samples, stage_dataset, Dataset};
use crate::shards::{ShardError, ShardSamples, ShardSet};
use cati_dwarf::{StageId, TypeClass};
use cati_embedding::VucEmbedder;
use cati_nn::{argmax, Adam, Rows, Tensor, TextCnn, TextCnnConfig, TrainHook};
use cati_obs::{Event, Level, Observer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// RNG stream seed for one stage's data sampling and batch schedule:
/// the master seed mixed with a stage-specific odd multiplier
/// (SplitMix64's golden-ratio constant), keeping the streams distinct
/// from each other and from the `seed ^ stage` model-init seeds.
fn stage_seed(seed: u64, stage: StageId) -> u64 {
    seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stage as u64 + 1)
}

/// Adapts the [`cati_nn::TrainHook`] batch/epoch callbacks of one
/// stage's training loop to typed [`Observer`] events. Gradient norms
/// are only requested (and thus computed) when the observer asks for
/// batch statistics.
struct EpochHook<'a> {
    obs: &'a dyn Observer,
    stage: &'a str,
    epoch: usize,
}

impl TrainHook for EpochHook<'_> {
    fn wants_grad_norm(&self) -> bool {
        self.obs.wants_batch_stats()
    }

    fn on_batch(&mut self, batch: usize, _mean_loss: f32, grad_norm: Option<f32>) {
        if let Some(norm) = grad_norm {
            self.obs.event(&Event::GradNorm {
                stage: self.stage,
                batch,
                norm: norm as f64,
            });
        }
    }

    fn on_epoch(&mut self, mean_loss: f32) {
        self.obs.event(&Event::EpochLoss {
            stage: self.stage,
            epoch: self.epoch,
            loss: mean_loss as f64,
        });
    }
}

/// A typed failure of the out-of-core (streamed) training path.
#[derive(Debug)]
pub enum StreamError {
    /// The shard layer failed (I/O, truncation, corruption, …).
    Shard(ShardError),
    /// The checkpoint layer failed (I/O, corruption, identity
    /// mismatch).
    Checkpoint(CheckpointError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Shard(e) => e.fmt(f),
            StreamError::Checkpoint(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<ShardError> for StreamError {
    fn from(e: ShardError) -> StreamError {
        StreamError::Shard(e)
    }
}

impl From<CheckpointError> for StreamError {
    fn from(e: CheckpointError) -> StreamError {
        StreamError::Checkpoint(e)
    }
}

/// Knobs of the streamed training loop beyond the [`Config`]. The
/// defaults run start-to-finish like the in-memory path; tests and the
/// CLI use the extra fields to pause at epoch boundaries or widen the
/// kill window without mutating process environment.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamOptions {
    /// Resume from the checkpoint directory's saved state instead of
    /// starting fresh (fresh is assumed when no checkpoint exists).
    pub resume: bool,
    /// Stop (checkpointed) after this many total epochs per stage,
    /// before the configured epoch count — the in-process way to cut a
    /// run at an exact epoch boundary.
    pub stop_after_epoch: Option<usize>,
    /// Sleep this long after each epoch's checkpoint lands — widens
    /// the window a kill-mid-epoch test aims for.
    pub epoch_sleep_ms: u64,
}

/// The six trained stage models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiStage {
    models: Vec<(StageId, TextCnn)>,
}

impl MultiStage {
    /// Trains all six stages on `dataset` using `embedder` features.
    /// `obs` receives one `train.<stage>` span and per-epoch
    /// [`Event::EpochLoss`] events per stage as workers emit them,
    /// plus one summary [`Event::Message`] per stage (in stage order,
    /// after training finishes).
    ///
    /// Each stage derives its own RNG from `(seed, stage)`, so its
    /// data sampling and batch schedule never depend on how much
    /// randomness earlier stages consumed. That independence is what
    /// lets the six stages train concurrently — one worker per stage
    /// — while staying bit-identical to sequential training and to
    /// any other thread count. Observers only read the computation,
    /// so the trained models are identical whatever observer is
    /// installed.
    pub fn train(
        dataset: &Dataset,
        embedder: &VucEmbedder,
        config: &Config,
        obs: &dyn Observer,
    ) -> MultiStage {
        let trained: Vec<(StageId, TextCnn, String)> = StageId::ALL
            .par_iter()
            .with_max_len(1)
            .map(|&stage| {
                let t0 = Instant::now();
                let stage_name = stage.to_string();
                let mut rng = StdRng::seed_from_u64(stage_seed(config.seed, stage));
                let data = stage_dataset(
                    dataset,
                    embedder,
                    stage,
                    config.max_stage_samples,
                    config.oversample_floor,
                    &mut rng,
                    obs,
                );
                obs.event(&Event::Counter {
                    name: "train.samples",
                    delta: data.len() as u64,
                });
                let cnn_cfg = TextCnnConfig {
                    seq_len: cati_analysis::VUC_LEN,
                    embed_dim: embedder.embed_dim(),
                    conv1: config.conv1,
                    conv2: config.conv2,
                    fc: config.fc,
                    classes: stage.num_classes(),
                };
                let mut model = TextCnn::new(cnn_cfg, config.seed ^ stage as u64);
                let mut opt = Adam::new(config.lr);
                let mut last_loss = f32::NAN;
                let mut hook = EpochHook {
                    obs,
                    stage: &stage_name,
                    epoch: 0,
                };
                for epoch in 0..config.epochs {
                    hook.epoch = epoch;
                    last_loss = model.train_epoch_hooked(
                        &data,
                        &mut opt,
                        config.batch,
                        &mut rng,
                        &mut hook,
                    );
                }
                // Fixed span path regardless of which thread trained
                // the stage (workers have their own span stacks).
                obs.event(&Event::SpanClose {
                    path: &format!("train.{stage_name}"),
                    nanos: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    // Synthetic span, not guard-managed: no
                    // allocation attribution.
                    alloc_bytes: 0,
                    alloc_count: 0,
                });
                let line = format!("{stage}: {} samples, final loss {last_loss:.4}", data.len());
                (stage, model, line)
            })
            .collect();
        let mut models = Vec::with_capacity(trained.len());
        for (stage, model, line) in trained {
            obs.event(&Event::Message {
                level: Level::Info,
                text: &line,
            });
            models.push((stage, model));
        }
        MultiStage { models }
    }

    /// [`MultiStage::train`] out-of-core: the same six concurrent
    /// stage workers, but samples live in an on-disk [`ShardSet`] and
    /// every epoch ends with an atomic per-stage checkpoint in `ckpt`.
    ///
    /// Bit-for-bit parity with the in-memory path holds by
    /// construction: each stage derives the identical RNG, filters the
    /// shard label bytes into the identical stage-label sequence the
    /// in-memory pool would produce, runs the *same*
    /// [`plan_stage_samples`] planner over it (RNG consumption depends
    /// only on lengths and label multiplicities), and feeds the shard
    /// rows through the same [`cati_nn::SampleSource`] trainer — the
    /// shuffle, minibatch sharding, and reduction order never see
    /// where the floats live.
    ///
    /// With `opts.resume`, stages restart from their saved epoch with
    /// model, optimizer, and RNG restored bitwise (the plan is
    /// replayed deterministically first), so a resumed run finishes
    /// byte-identical to an uninterrupted one. Returns `Ok(None)` when
    /// `opts.stop_after_epoch` paused the run before the configured
    /// epoch count — every completed epoch is checkpointed either way.
    ///
    /// # Errors
    ///
    /// Fails with a typed [`StreamError`] on checkpoint I/O failure,
    /// corruption, or a checkpoint that belongs to a different run
    /// (`identity` mismatch).
    pub fn train_streamed(
        shards: &ShardSet,
        config: &Config,
        ckpt: &CheckpointDir,
        identity: &TrainIdentity,
        opts: StreamOptions,
        obs: &dyn Observer,
    ) -> Result<Option<MultiStage>, StreamError> {
        let embed_dim = shards.cols() / cati_analysis::VUC_LEN;
        let stop = opts
            .stop_after_epoch
            .unwrap_or(config.epochs)
            .min(config.epochs);
        let trained: Vec<Result<(StageId, TextCnn, String), StreamError>> = StageId::ALL
            .par_iter()
            .with_max_len(1)
            .map(|&stage| {
                let t0 = Instant::now();
                let stage_name = stage.to_string();
                let mut rng = StdRng::seed_from_u64(stage_seed(config.seed, stage));
                // Pool pass: stage-filter the resident label bytes —
                // exactly the rows the in-memory pool would hold, in
                // the same order. Floats stay on disk.
                let mut pool_rows: Vec<u32> = Vec::new();
                let mut pool_labels: Vec<usize> = Vec::new();
                for (row, &cls) in shards.labels().iter().enumerate() {
                    if let Some(label) = stage.label_of(TypeClass::ALL[cls as usize]) {
                        pool_rows.push(row as u32);
                        pool_labels.push(label);
                    }
                }
                let plan = plan_stage_samples(
                    &pool_labels,
                    stage,
                    config.max_stage_samples,
                    config.oversample_floor,
                    &mut rng,
                    obs,
                );
                let sample_plan: Vec<(u32, u16)> = plan
                    .iter()
                    .map(|i| (pool_rows[i as usize], pool_labels[i as usize] as u16))
                    .collect();
                let data = ShardSamples::new(shards, sample_plan);
                obs.event(&Event::Counter {
                    name: "train.samples",
                    delta: plan.len() as u64,
                });
                let cnn_cfg = TextCnnConfig {
                    seq_len: cati_analysis::VUC_LEN,
                    embed_dim,
                    conv1: config.conv1,
                    conv2: config.conv2,
                    fc: config.fc,
                    classes: stage.num_classes(),
                };
                let mut model = TextCnn::new(cnn_cfg, config.seed ^ stage as u64);
                let mut opt = Adam::new(config.lr);
                let mut start_epoch = 0usize;
                if opts.resume {
                    if let Some(saved) = ckpt.load_stage(stage, cnn_cfg, identity)? {
                        start_epoch = saved.epoch;
                        model = saved.model;
                        opt = saved.opt;
                        rng = saved.rng;
                    }
                }
                let mut last_loss = f32::NAN;
                let mut hook = EpochHook {
                    obs,
                    stage: &stage_name,
                    epoch: 0,
                };
                for epoch in start_epoch..stop {
                    hook.epoch = epoch;
                    last_loss = model.train_epoch_hooked(
                        &data,
                        &mut opt,
                        config.batch,
                        &mut rng,
                        &mut hook,
                    );
                    ckpt.save_stage(stage, epoch + 1, &model, &opt, &rng, identity)?;
                    if opts.epoch_sleep_ms > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(opts.epoch_sleep_ms));
                    }
                }
                obs.event(&Event::SpanClose {
                    path: &format!("train.{stage_name}"),
                    nanos: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    alloc_bytes: 0,
                    alloc_count: 0,
                });
                let line = format!(
                    "{stage}: {} samples (streamed), final loss {last_loss:.4}",
                    plan.len()
                );
                Ok((stage, model, line))
            })
            .collect();
        let mut models = Vec::with_capacity(trained.len());
        for result in trained {
            let (stage, model, line) = result?;
            obs.event(&Event::Message {
                level: Level::Info,
                text: &line,
            });
            models.push((stage, model));
        }
        if stop < config.epochs {
            return Ok(None);
        }
        Ok(Some(MultiStage { models }))
    }

    /// Reassembles the tree from `(stage, model)` pairs — the binary
    /// model-container loading path. Order is preserved; callers are
    /// expected to supply every stage of [`StageId::ALL`].
    pub fn from_models(models: Vec<(StageId, TextCnn)>) -> MultiStage {
        MultiStage { models }
    }

    /// The `(stage, model)` pairs, in training order.
    pub fn models(&self) -> &[(StageId, TextCnn)] {
        &self.models
    }

    /// Mutable access to the `(stage, model)` pairs — the
    /// quantization path ([`crate::pipeline::Cati::quantize`]).
    pub fn models_mut(&mut self) -> &mut [(StageId, TextCnn)] {
        &mut self.models
    }

    /// The model for one stage.
    ///
    /// # Panics
    ///
    /// Panics if the stage is missing (cannot happen for trained
    /// instances).
    pub fn stage(&self, stage: StageId) -> &TextCnn {
        &self
            .models
            .iter()
            .find(|(s, _)| *s == stage)
            .expect("stage trained")
            .1
    }

    /// Per-stage class probabilities for one embedded VUC.
    pub fn stage_probs(&self, stage: StageId, x: &[f32]) -> Vec<f32> {
        self.stage(stage).predict(x)
    }

    /// Per-stage class probabilities for a batch of embedded VUCs
    /// (one batched CNN pass; workspaces shared per worker), one
    /// `stage.num_classes()` row per input row. Inputs are anything
    /// implementing [`Rows`] — the session's flat tensor or a borrowed
    /// row subset.
    pub fn stage_probs_batch<R: Rows + ?Sized>(&self, stage: StageId, xs: &R) -> Tensor {
        self.stage(stage).predict_batch(xs)
    }

    /// Leaf distributions of a whole batch of embedded VUCs: one
    /// batched pass per stage, then the per-sample root-to-leaf
    /// products, as an `n × 19` tensor. Row `i` equals
    /// `leaf_distribution(xs row i)`.
    pub fn leaf_distributions_batch<R: Rows + ?Sized>(&self, xs: &R) -> Tensor {
        let per_stage: Vec<(StageId, Tensor)> = StageId::ALL
            .iter()
            .map(|&s| (s, self.stage_probs_batch(s, xs)))
            .collect();
        let mut out = Tensor::zeros(xs.count(), TypeClass::ALL.len());
        for i in 0..xs.count() {
            let prob = |stage: StageId, label: usize| -> f32 {
                per_stage
                    .iter()
                    .find(|(s, _)| *s == stage)
                    .map(|(_, p)| p.row(i)[label])
                    .unwrap_or(0.0)
            };
            for (slot, &class) in out.row_mut(i).iter_mut().zip(TypeClass::ALL.iter()) {
                *slot = StageId::path_of(class)
                    .into_iter()
                    .map(|(stage, label)| prob(stage, label))
                    .product();
            }
        }
        out
    }

    /// The full 19-class leaf distribution of one embedded VUC: the
    /// probability of each leaf is the product of the stage
    /// probabilities along its root-to-leaf path.
    pub fn leaf_distribution(&self, x: &[f32]) -> Vec<f32> {
        let per_stage: Vec<(StageId, Vec<f32>)> = StageId::ALL
            .iter()
            .map(|&s| (s, self.stage_probs(s, x)))
            .collect();
        let prob = |stage: StageId, label: usize| -> f32 {
            per_stage
                .iter()
                .find(|(s, _)| *s == stage)
                .map(|(_, p)| p[label])
                .unwrap_or(0.0)
        };
        TypeClass::ALL
            .iter()
            .map(|&class| {
                StageId::path_of(class)
                    .into_iter()
                    .map(|(stage, label)| prob(stage, label))
                    .product()
            })
            .collect()
    }

    /// Greedy tree descent: the argmax label at each stage decides the
    /// branch; returns the leaf and the (stage, label, confidence)
    /// path.
    pub fn descend(&self, x: &[f32]) -> (TypeClass, Vec<(StageId, usize, f32)>) {
        let mut stage = StageId::Stage1;
        let mut path = Vec::with_capacity(3);
        loop {
            let probs = self.stage_probs(stage, x);
            let label = argmax(&probs);
            path.push((stage, label, probs[label]));
            if let Some(leaf) = stage.leaf(label) {
                return (leaf, path);
            }
            stage = stage.next(label).expect("non-leaf label routes onward");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::embedding_sentences;
    use cati_analysis::FeatureView;
    use cati_embedding::{VucEmbedder, Word2Vec};
    use cati_synbin::{build_corpus, CorpusConfig};

    fn trained() -> (MultiStage, VucEmbedder, Dataset) {
        let config = Config::small();
        let corpus = build_corpus(&CorpusConfig::small(13));
        let ds = Dataset::from_binaries(&corpus.train, FeatureView::WithSymbols);
        let mut rng = StdRng::seed_from_u64(1);
        let sentences = embedding_sentences(&corpus.train, config.max_sentences, &mut rng);
        let embedder = VucEmbedder::new(Word2Vec::train(&sentences, config.w2v));
        let ms = MultiStage::train(&ds, &embedder, &config, &cati_obs::NOOP);
        (ms, embedder, ds)
    }

    #[test]
    fn leaf_distribution_sums_to_one() {
        let (ms, embedder, ds) = trained();
        let ex = &ds.entries[0].1;
        let x = embedder.embed_window(&ex.vucs[0].insns);
        let dist = ms.leaf_distribution(&x);
        assert_eq!(dist.len(), 19);
        let sum: f32 = dist.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "leaf distribution sums to {sum}");
        assert!(dist.iter().all(|p| *p >= 0.0));
    }

    #[test]
    fn descend_agrees_with_leaf_argmax_often() {
        let (ms, embedder, ds) = trained();
        let mut agree = 0;
        let mut total = 0;
        for (_, ex) in ds.entries.iter().take(3) {
            for vuc in ex.vucs.iter().take(30) {
                let x = embedder.embed_window(&vuc.insns);
                let (leaf, path) = ms.descend(&x);
                assert!(!path.is_empty() && path.len() <= 3);
                let dist = ms.leaf_distribution(&x);
                let argmax = TypeClass::ALL[dist
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .unwrap()
                    .0];
                total += 1;
                if argmax == leaf {
                    agree += 1;
                }
            }
        }
        // Greedy descent and global argmax agree in the typical case.
        assert!(agree * 2 > total, "only {agree}/{total} agreement");
    }

    #[test]
    fn stage1_learns_pointerness_signal() {
        let (ms, embedder, ds) = trained();
        // On training data itself, stage 1 should beat a coin flip.
        let mut correct = 0usize;
        let mut total = 0usize;
        for (_, ex) in &ds.entries {
            for vuc in &ex.vucs {
                let Some(class) = vuc.class(&ex.vars) else {
                    continue;
                };
                let truth = usize::from(class.is_pointer());
                let x = embedder.embed_window(&vuc.insns);
                let p = ms.stage_probs(StageId::Stage1, &x);
                let pred = usize::from(p[1] > p[0]);
                correct += usize::from(pred == truth);
                total += 1;
                if total > 400 {
                    break;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.6, "stage1 train accuracy {acc:.2}");
    }
}
