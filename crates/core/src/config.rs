//! Pipeline configuration at three scales.

use cati_analysis::ContextMode;
use cati_embedding::W2vConfig;
use serde::{Deserialize, Serialize, Value};

/// Full CATI pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Deserialize)]
pub struct Config {
    /// Word2Vec hyper-parameters.
    pub w2v: W2vConfig,
    /// First conv layer channels (paper: 32).
    pub conv1: usize,
    /// Second conv layer channels (paper: 64).
    pub conv2: usize,
    /// Fully connected width (paper: 1024).
    pub fc: usize,
    /// CNN training epochs per stage.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Confidence clipping threshold for voting (paper Eq. 3: 0.9).
    pub vote_threshold: f32,
    /// Cap on per-stage training samples (0 = unlimited).
    pub max_stage_samples: usize,
    /// Cap on Word2Vec training sentences (0 = unlimited).
    pub max_sentences: usize,
    /// Rare classes are oversampled until they hold at least this
    /// fraction of the largest class's count (0 disables).
    pub oversample_floor: f64,
    /// Worker threads for training and batched inference
    /// (0 = all available cores). Results are bit-identical for any
    /// value — see the execution-engine notes in DESIGN.md.
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
    /// How VUC windows treat the function boundary: the paper's
    /// function-local padding, or interprocedural splicing. Missing
    /// in serialized configs predating the field — deserializes as
    /// [`ContextMode::FunctionLocal`].
    pub context_mode: ContextMode,
}

// Hand-written so the baseline serialization is byte-identical to the
// pre-`context_mode` era: the field is only emitted when it differs
// from the default. Models, checkpoints and `config_digest` values
// produced by FunctionLocal runs therefore never change, which the
// golden-fixture and determinism tests pin.
impl Serialize for Config {
    fn to_value(&self) -> Value {
        let mut m = serde::Map::new();
        m.insert("w2v".to_string(), Serialize::to_value(&self.w2v));
        m.insert("conv1".to_string(), Serialize::to_value(&self.conv1));
        m.insert("conv2".to_string(), Serialize::to_value(&self.conv2));
        m.insert("fc".to_string(), Serialize::to_value(&self.fc));
        m.insert("epochs".to_string(), Serialize::to_value(&self.epochs));
        m.insert("batch".to_string(), Serialize::to_value(&self.batch));
        m.insert("lr".to_string(), Serialize::to_value(&self.lr));
        m.insert(
            "vote_threshold".to_string(),
            Serialize::to_value(&self.vote_threshold),
        );
        m.insert(
            "max_stage_samples".to_string(),
            Serialize::to_value(&self.max_stage_samples),
        );
        m.insert(
            "max_sentences".to_string(),
            Serialize::to_value(&self.max_sentences),
        );
        m.insert(
            "oversample_floor".to_string(),
            Serialize::to_value(&self.oversample_floor),
        );
        m.insert("threads".to_string(), Serialize::to_value(&self.threads));
        m.insert("seed".to_string(), Serialize::to_value(&self.seed));
        if self.context_mode != ContextMode::FunctionLocal {
            m.insert(
                "context_mode".to_string(),
                Serialize::to_value(&self.context_mode),
            );
        }
        Value::Object(m)
    }
}

impl Config {
    /// This configuration with the given context-assembly mode.
    pub fn with_context_mode(mut self, mode: ContextMode) -> Config {
        self.context_mode = mode;
        self
    }

    /// Paper-scale hyper-parameters (§IV–§V): embed 32, window 5,
    /// CNN 32-64 + FC-1024, threshold 0.9.
    pub fn paper() -> Config {
        Config {
            w2v: W2vConfig::paper(),
            conv1: 32,
            conv2: 64,
            fc: 1024,
            epochs: 4,
            batch: 64,
            lr: 1e-3,
            vote_threshold: 0.9,
            max_stage_samples: 0,
            max_sentences: 0,
            oversample_floor: 0.05,
            threads: 0,
            seed: 2020,
            context_mode: ContextMode::FunctionLocal,
        }
    }

    /// Medium scale: same structure, smaller widths — minutes of CPU
    /// instead of hours, used by the experiment binaries by default.
    pub fn medium() -> Config {
        Config {
            w2v: W2vConfig {
                dim: 16,
                ..W2vConfig::paper()
            },
            conv1: 16,
            conv2: 32,
            fc: 256,
            epochs: 3,
            batch: 64,
            lr: 1.5e-3,
            vote_threshold: 0.9,
            max_stage_samples: 60_000,
            max_sentences: 40_000,
            oversample_floor: 0.05,
            threads: 0,
            seed: 2020,
            context_mode: ContextMode::FunctionLocal,
        }
    }

    /// Runs `op` with this configuration's thread count as the
    /// ambient parallelism (`threads == 0` leaves the caller's
    /// setting untouched).
    pub fn with_threads<R>(&self, op: impl FnOnce() -> R) -> R {
        if self.threads == 0 {
            return op();
        }
        rayon::ThreadPoolBuilder::new()
            .num_threads(self.threads)
            .build()
            .expect("thread pool")
            .install(op)
    }

    /// Tiny scale for unit and integration tests (seconds of CPU).
    pub fn small() -> Config {
        Config {
            w2v: W2vConfig {
                dim: 8,
                epochs: 2,
                ..W2vConfig::tiny()
            },
            conv1: 8,
            conv2: 8,
            fc: 32,
            epochs: 2,
            batch: 32,
            lr: 2e-3,
            vote_threshold: 0.9,
            max_stage_samples: 4_000,
            max_sentences: 2_000,
            oversample_floor: 0.05,
            threads: 0,
            seed: 2020,
            context_mode: ContextMode::FunctionLocal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        let s = Config::small();
        let m = Config::medium();
        let p = Config::paper();
        assert!(s.fc < m.fc && m.fc < p.fc);
        assert!(s.w2v.dim <= m.w2v.dim && m.w2v.dim <= p.w2v.dim);
        assert_eq!(p.vote_threshold, 0.9);
        assert_eq!(p.w2v.dim, 32);
        assert_eq!(p.conv1, 32);
        assert_eq!(p.conv2, 64);
        assert_eq!(p.fc, 1024);
    }

    #[test]
    fn function_local_serialization_omits_context_mode() {
        // The default mode must serialize exactly as the
        // pre-context_mode schema did, or config digests, golden
        // models and checkpoints would all shift.
        let json = serde_json::to_string(&Config::small()).unwrap();
        assert!(!json.contains("context_mode"), "{json}");
        let back: Config = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Config::small());
        assert_eq!(back.context_mode, ContextMode::FunctionLocal);
    }

    #[test]
    fn interproc_config_round_trips() {
        let cfg = Config::small().with_context_mode(ContextMode::Interprocedural);
        let json = serde_json::to_string(&cfg).unwrap();
        assert!(json.contains("\"context_mode\":\"interproc\""), "{json}");
        let back: Config = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
