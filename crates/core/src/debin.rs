//! The 17-type DEBIN comparison task (paper §VII).
//!
//! To compare against DEBIN, CATI is retargeted at DEBIN's label set:
//! struct, union, enum, array, pointer, void, bool and the signed and
//! unsigned char/short/int/long/long long. Structurally this is a
//! single flat classifier (there is no pointer trichotomy to refine),
//! followed by the same confidence voting.

use crate::config::Config;
use crate::vote::vote;
use cati_analysis::{Extraction, VUC_LEN};
use cati_dwarf::Debin17;
use cati_embedding::VucEmbedder;
use cati_nn::{Adam, TextCnn, TextCnnConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A CATI classifier for DEBIN's 17-label task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DebinTask {
    model: TextCnn,
    threshold: f32,
}

impl DebinTask {
    /// Trains the flat 17-class model over labeled extractions.
    pub fn train(
        extractions: &[&Extraction],
        embedder: &VucEmbedder,
        config: &Config,
    ) -> DebinTask {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xDEB);
        let mut samples: Vec<(Vec<f32>, usize)> = extractions
            .par_iter()
            .flat_map_iter(|ex| {
                ex.vucs
                    .iter()
                    .filter_map(|v| {
                        let label = ex.vars[v.var as usize].debin?;
                        Some((embedder.embed_window(&v.insns), label.index()))
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        if config.max_stage_samples > 0 && samples.len() > config.max_stage_samples {
            samples.shuffle(&mut rng);
            samples.truncate(config.max_stage_samples);
        }
        let cfg = TextCnnConfig {
            seq_len: VUC_LEN,
            embed_dim: embedder.embed_dim(),
            conv1: config.conv1,
            conv2: config.conv2,
            fc: config.fc,
            classes: Debin17::ALL.len(),
        };
        let mut model = TextCnn::new(cfg, config.seed ^ 0xDEB1);
        let mut opt = Adam::new(config.lr);
        for _ in 0..config.epochs {
            model.train_epoch(&samples, &mut opt, config.batch, &mut rng);
        }
        DebinTask {
            model,
            threshold: config.vote_threshold,
        }
    }

    /// Variable-level accuracy on labeled extractions, with voting.
    pub fn accuracy(&self, extractions: &[&Extraction], embedder: &VucEmbedder) -> f64 {
        let mut correct = 0u64;
        let mut total = 0u64;
        for ex in extractions {
            let xs = crate::dataset::embed_extraction(ex, embedder);
            let dists = self.model.predict_batch(&xs);
            for var in &ex.vars {
                let Some(truth) = var.debin else { continue };
                if var.vucs.is_empty() {
                    continue;
                }
                let var_dists: Vec<&[f32]> =
                    var.vucs.iter().map(|&v| dists.row(v as usize)).collect();
                let pred = vote(&var_dists, self.threshold).class;
                total += 1;
                correct += u64::from(pred == truth.index());
            }
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}
