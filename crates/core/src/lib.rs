//! `cati` — Context-Assisted Type Inference from stripped binaries.
//!
//! A from-scratch Rust reproduction of CATI (Chen, He, Mao — DSN
//! 2020): a system that locates variables in stripped x86-64 binaries
//! and infers one of 19 C type classes for each from the *Variable
//! Usage Context* — the target instruction plus ten instructions of
//! context on each side — using a six-stage tree of CNN classifiers
//! and a confidence-clipped voting rule over each variable's VUCs.
//!
//! The crate composes the substrates (see DESIGN.md):
//! [`cati_synbin`] builds corpora, [`cati_analysis`] recovers
//! variables and cuts VUCs, [`cati_embedding`] trains Word2Vec and
//! embeds windows, [`cati_nn`] trains the stage CNNs. This crate adds
//! the stage tree ([`multistage`]), voting ([`vote`]), metrics
//! ([`metrics`]), occlusion analysis ([`occlusion`], paper Fig. 6),
//! compiler identification ([`compiler_id`], §VIII), the DEBIN
//! comparison task ([`debin`]) and the end-to-end [`Cati`] pipeline.
//!
//! # Quickstart
//!
//! ```
//! use cati::{Cati, Config};
//! use cati_synbin::{build_corpus, CorpusConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let corpus = build_corpus(&CorpusConfig::small(7));
//! let cati = Cati::train(&corpus.train[..4], &Config::small(), &cati::obs::NOOP);
//! let stripped = corpus.test[0].binary.strip();
//! let vars = cati.infer(&stripped)?;
//! for var in vars.iter().take(3) {
//!     println!("func {} offset {:#x}: {} ({} VUCs)",
//!              var.key.func, var.key.offset, var.class, var.vuc_count);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod artifact_cache;
pub mod checkpoint;
pub mod compiler_id;
pub mod config;
pub mod dataset;
pub mod debin;
pub mod metrics;
pub mod model_io;
pub mod multistage;
pub mod occlusion;
pub mod pipeline;
pub mod report;
pub mod session;
pub mod shards;
pub mod vote;

pub use artifact_cache::{embedder_fingerprint, ArtifactCache};
pub use cati_analysis::{CatiError, ContextMode, Coverage, Diagnostic, Diagnostics, PipelineStage};
pub use cati_nn::{argmax, Rows, Tensor};
pub use checkpoint::{CheckpointDir, CheckpointError, StageCheckpoint, TrainIdentity};
pub use compiler_id::CompilerId;
pub use config::Config;
pub use dataset::{class_histogram, embedding_sentences, Dataset};
pub use debin::DebinTask;
pub use metrics::{confusion, Confusion, Prf};
pub use model_io::{
    decode_cati1, encode_cati1, encode_cati1_v1, is_cati1, CATI1_ALIGN, CATI1_MAGIC,
    CATI1_MIN_VERSION, CATI1_VERSION,
};
pub use multistage::{MultiStage, StreamError, StreamOptions};
pub use occlusion::{
    importance_heatmap, occlusion_epsilons, occlusion_epsilons_embedded, ImportanceHeatmap,
};
pub use pipeline::{
    pipeline_accuracy, pipeline_accuracy_session, stage_var_metrics, stage_vuc_metrics, Cati,
    Evaluation, InferReport, InferredVar,
};
pub use session::EmbeddedExtraction;
pub use shards::{write_dataset_shards, ShardError, ShardSamples, ShardSet, ShardWriter};
pub use vote::{clip_confidences, vote, VoteResult};

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use cati_analysis as analysis;
pub use cati_asm as asm;
pub use cati_dwarf as dwarf;
pub use cati_embedding as embedding;
pub use cati_nn as nn;
pub use cati_obs as obs;
pub use cati_synbin as synbin;
