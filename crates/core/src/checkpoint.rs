//! Epoch-level checkpoint/resume for streamed training.
//!
//! After every epoch of every stage, the streamed trainer writes one
//! checkpoint file per stage: a CATI1 v2 container (the model
//! container framing — checksummed section table, aligned tensor
//! payloads) holding the stage's eight parameter tensors *plus* the
//! optimizer's first/second moment buffers, with a sidecar meta
//! record (epoch, RNG state, Adam step count, identity digests)
//! riding in the container's meta section. One file per epoch,
//! written atomically (tmp + rename), so a kill at any instant leaves
//! either the previous epoch's checkpoint or the new one — never a
//! torn state.
//!
//! Resume restores model, optimizer, and RNG bitwise and replays the
//! remaining epochs; the identity digests (pipeline config + shard
//! manifest) are checked first, so a resume against a different
//! corpus or configuration is a typed [`CheckpointError::Mismatch`],
//! not silent garbage. An interrupted run resumed at epoch *k*
//! therefore finishes byte-identical to an uninterrupted one — the
//! contract `tests/streaming_train.rs` asserts at every epoch
//! boundary.

use crate::artifact_cache::{open_envelope, seal_envelope};
use crate::model_io::{decode_meta_tensors, encode_meta_tensors, save_bytes_atomic};
use cati_dwarf::StageId;
use cati_embedding::VucEmbedder;
use cati_nn::{Adam, TextCnn, TextCnnConfig};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};

/// Checkpoint meta-record format version.
pub const CHECKPOINT_FORMAT: u32 = 1;

/// A typed checkpoint-layer failure.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure, annotated with the path involved.
    Io {
        /// File the operation touched.
        path: PathBuf,
        /// Underlying error.
        err: std::io::Error,
    },
    /// The checkpoint file exists but fails structural verification
    /// (container checksums, meta schema, tensor shapes).
    Corrupt {
        /// Offending file.
        path: PathBuf,
        /// First problem found.
        detail: String,
    },
    /// The checkpoint is intact but belongs to a different run
    /// (config digest, data digest, or stage disagree) — resuming
    /// from it would silently train the wrong thing.
    Mismatch {
        /// Offending file.
        path: PathBuf,
        /// What disagreed.
        detail: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, err } => {
                write!(f, "checkpoint io {}: {err}", path.display())
            }
            CheckpointError::Corrupt { path, detail } => {
                write!(f, "checkpoint {} corrupt: {detail}", path.display())
            }
            CheckpointError::Mismatch { path, detail } => {
                write!(f, "checkpoint {} mismatch: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// What a training run *is*: digests of the pipeline configuration
/// and of the shard-set manifest. Both are stamped into every
/// checkpoint and must match on resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainIdentity {
    /// Digest of the serialized [`Config`](crate::config::Config).
    pub config: String,
    /// Digest of the shard manifest (the data identity).
    pub data: String,
}

/// The sidecar meta record riding in the checkpoint container's meta
/// section. RNG words are hex strings — they exceed `f64` precision,
/// so they must never pass through a JSON number.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CkptMeta {
    format: u32,
    stage: String,
    epoch: usize,
    rng: Vec<String>,
    adam_t: u64,
    lr: f32,
    cnn: TextCnnConfig,
    config_digest: String,
    data_digest: String,
}

/// Everything needed to continue a stage bit-exactly from the end of
/// epoch [`StageCheckpoint::epoch`].
pub struct StageCheckpoint {
    /// Epochs already completed.
    pub epoch: usize,
    /// Model weights at that boundary.
    pub model: TextCnn,
    /// Optimizer (step count + moment buffers) at that boundary.
    pub opt: Adam,
    /// Data-order RNG, positioned after that epoch's shuffle draws.
    pub rng: StdRng,
}

/// A directory of per-stage checkpoint files plus the persisted
/// embedder.
#[derive(Debug, Clone)]
pub struct CheckpointDir {
    dir: PathBuf,
}

impl CheckpointDir {
    /// Opens (creating if needed) a checkpoint directory.
    pub fn open(dir: &Path) -> Result<CheckpointDir, CheckpointError> {
        std::fs::create_dir_all(dir).map_err(|e| CheckpointError::Io {
            path: dir.to_path_buf(),
            err: e,
        })?;
        Ok(CheckpointDir {
            dir: dir.to_path_buf(),
        })
    }

    /// The directory root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shard-set subdirectory for runs that materialize their own
    /// shards under the checkpoint root.
    pub fn shards_dir(&self) -> PathBuf {
        self.dir.join("shards")
    }

    fn stage_path(&self, stage: StageId) -> PathBuf {
        self.dir.join(format!("stage_{stage}.ckpt"))
    }

    fn embedder_path(&self) -> PathBuf {
        self.dir.join("embedder.json")
    }

    /// Atomically writes the post-epoch checkpoint of `stage`.
    pub fn save_stage(
        &self,
        stage: StageId,
        epoch: usize,
        model: &TextCnn,
        opt: &Adam,
        rng: &StdRng,
        identity: &TrainIdentity,
    ) -> Result<(), CheckpointError> {
        let path = self.stage_path(stage);
        let (t, m, v) = opt.state();
        let meta = CkptMeta {
            format: CHECKPOINT_FORMAT,
            stage: stage.to_string(),
            epoch,
            rng: rng.state().iter().map(|w| format!("{w:016x}")).collect(),
            adam_t: t,
            lr: opt.lr,
            cnn: model.cfg,
            config_digest: identity.config.clone(),
            data_digest: identity.data.clone(),
        };
        let meta_bytes = match serde_json::to_vec(&meta) {
            Ok(b) => b,
            Err(e) => {
                return Err(CheckpointError::Corrupt {
                    path,
                    detail: format!("meta failed to serialize: {e}"),
                })
            }
        };
        let mut tensors: Vec<(String, &[f32])> = model
            .params()
            .into_iter()
            .enumerate()
            .map(|(k, p)| (format!("p{k}"), p))
            .collect();
        tensors.push(("adam.m".to_string(), m));
        tensors.push(("adam.v".to_string(), v));
        let bytes = encode_meta_tensors(&meta_bytes, &tensors);
        save_bytes_atomic(&bytes, &path).map_err(|e| CheckpointError::Io { path, err: e })
    }

    /// Loads the checkpoint of `stage`, if one exists. `Ok(None)`
    /// means "no checkpoint — start fresh"; any structural or
    /// identity problem is a typed error, never a silent fresh start.
    pub fn load_stage(
        &self,
        stage: StageId,
        cnn_cfg: TextCnnConfig,
        identity: &TrainIdentity,
    ) -> Result<Option<StageCheckpoint>, CheckpointError> {
        let path = self.stage_path(stage);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CheckpointError::Io { path, err: e }),
        };
        let corrupt = |detail: String| CheckpointError::Corrupt {
            path: path.clone(),
            detail,
        };
        let (meta_bytes, mut tensors) = decode_meta_tensors(&bytes).map_err(corrupt)?;
        let meta: CkptMeta = serde_json::from_slice(&meta_bytes)
            .map_err(|e| corrupt(format!("meta is not a checkpoint record: {e}")))?;
        if meta.format != CHECKPOINT_FORMAT {
            return Err(corrupt(format!("format {} unsupported", meta.format)));
        }
        let mismatch = |detail: String| CheckpointError::Mismatch {
            path: path.clone(),
            detail,
        };
        if meta.stage != stage.to_string() {
            return Err(mismatch(format!("stage {} != {stage}", meta.stage)));
        }
        if meta.config_digest != identity.config {
            return Err(mismatch(
                "pipeline configuration changed since the checkpoint was written".to_string(),
            ));
        }
        if meta.data_digest != identity.data {
            return Err(mismatch(
                "training data changed since the checkpoint was written".to_string(),
            ));
        }
        if meta.cnn != cnn_cfg {
            return Err(mismatch(format!(
                "stage CNN shape {:?} != expected {:?}",
                meta.cnn, cnn_cfg
            )));
        }
        let mut take = |name: &str| -> Result<Vec<f32>, CheckpointError> {
            tensors
                .remove(name)
                .map(|b| b.as_slice().to_vec())
                .ok_or_else(|| CheckpointError::Corrupt {
                    path: path.clone(),
                    detail: format!("missing tensor {name}"),
                })
        };
        let params: Vec<cati_nn::ParamBuf> = (0..8)
            .map(|k| take(&format!("p{k}")).map(cati_nn::ParamBuf::from))
            .collect::<Result<_, _>>()?;
        let m = take("adam.m")?;
        let v = take("adam.v")?;
        let model = TextCnn::from_param_bufs(cnn_cfg, params)
            .map_err(|e| corrupt(format!("stage weights: {e}")))?;
        let opt = Adam::from_state(meta.lr, meta.adam_t, m, v);
        let mut words = [0u64; 4];
        if meta.rng.len() != 4 {
            return Err(corrupt(format!("rng state has {} words", meta.rng.len())));
        }
        for (w, s) in words.iter_mut().zip(&meta.rng) {
            *w = u64::from_str_radix(s, 16).map_err(|e| corrupt(format!("rng word {s:?}: {e}")))?;
        }
        Ok(Some(StageCheckpoint {
            epoch: meta.epoch,
            model,
            opt,
            rng: StdRng::from_state(words),
        }))
    }

    /// Persists the trained embedder (envelope-sealed JSON), so a
    /// resumed run skips the extraction + Word2Vec phase and loads
    /// the bit-exact embedder instead.
    pub fn save_embedder(&self, embedder: &VucEmbedder) -> Result<(), CheckpointError> {
        let path = self.embedder_path();
        let payload = match serde_json::to_vec(embedder) {
            Ok(p) => p,
            Err(e) => {
                return Err(CheckpointError::Corrupt {
                    path,
                    detail: format!("embedder failed to serialize: {e}"),
                })
            }
        };
        save_bytes_atomic(&seal_envelope(&payload), &path)
            .map_err(|e| CheckpointError::Io { path, err: e })
    }

    /// Loads the persisted embedder, if present (`Ok(None)` = not
    /// written yet). A present-but-corrupt embedder is a typed error.
    pub fn load_embedder(&self) -> Result<Option<VucEmbedder>, CheckpointError> {
        let path = self.embedder_path();
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CheckpointError::Io { path, err: e }),
        };
        let Some(payload) = open_envelope(&bytes) else {
            return Err(CheckpointError::Corrupt {
                path,
                detail: "integrity envelope mismatch".to_string(),
            });
        };
        match serde_json::from_slice(payload) {
            Ok(e) => Ok(Some(e)),
            Err(e) => Err(CheckpointError::Corrupt {
                path,
                detail: format!("embedder payload: {e}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cati-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn identity() -> TrainIdentity {
        TrainIdentity {
            config: "cfg-digest".to_string(),
            data: "data-digest".to_string(),
        }
    }

    #[test]
    fn stage_checkpoint_roundtrips_bitwise() {
        let dir = tempdir("roundtrip");
        let ckpt = CheckpointDir::open(&dir).expect("open");
        let cfg = TextCnnConfig::tiny(4, 3);
        let model = TextCnn::new(cfg, 7);
        let mut opt = Adam::new(2e-3);
        // Give the optimizer real moments.
        let mut trained = model.clone();
        let data: Vec<(Vec<f32>, usize)> = (0..8)
            .map(|i| (vec![0.25 * i as f32; 4 * 21], i % 3))
            .collect();
        let mut rng = StdRng::seed_from_u64(3);
        trained.train_epoch(&data, &mut opt, 4, &mut rng);
        rng.gen_range(0..1000u32);
        ckpt.save_stage(StageId::Stage1, 5, &trained, &opt, &rng, &identity())
            .expect("save");
        let loaded = ckpt
            .load_stage(StageId::Stage1, cfg, &identity())
            .expect("load")
            .expect("present");
        assert_eq!(loaded.epoch, 5);
        assert_eq!(loaded.model, trained);
        assert_eq!(loaded.opt, opt);
        assert_eq!(loaded.rng, rng);
        // Absent stage: clean None.
        assert!(ckpt
            .load_stage(StageId::Stage2Ptr, cfg, &identity())
            .expect("load")
            .is_none());
    }

    #[test]
    fn identity_mismatch_is_refused() {
        let dir = tempdir("mismatch");
        let ckpt = CheckpointDir::open(&dir).expect("open");
        let cfg = TextCnnConfig::tiny(4, 2);
        let model = TextCnn::new(cfg, 1);
        let opt = Adam::new(1e-3);
        let rng = StdRng::seed_from_u64(1);
        ckpt.save_stage(StageId::Stage1, 1, &model, &opt, &rng, &identity())
            .expect("save");
        let other = TrainIdentity {
            config: "different".to_string(),
            data: "data-digest".to_string(),
        };
        match ckpt.load_stage(StageId::Stage1, cfg, &other) {
            Err(CheckpointError::Mismatch { .. }) => {}
            other => panic!("expected Mismatch, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn corrupt_checkpoint_is_a_typed_error() {
        let dir = tempdir("corrupt");
        let ckpt = CheckpointDir::open(&dir).expect("open");
        let cfg = TextCnnConfig::tiny(4, 2);
        let model = TextCnn::new(cfg, 1);
        let opt = Adam::new(1e-3);
        let rng = StdRng::seed_from_u64(1);
        ckpt.save_stage(StageId::Stage1, 1, &model, &opt, &rng, &identity())
            .expect("save");
        let path = dir.join(format!("stage_{}.ckpt", StageId::Stage1));
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, bytes).unwrap();
        match ckpt.load_stage(StageId::Stage1, cfg, &identity()) {
            Err(CheckpointError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {:?}", other.map(|_| ())),
        }
    }
}
