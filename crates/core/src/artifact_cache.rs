//! On-disk content-addressed artifact cache.
//!
//! Extractions and embeddings are pure functions of their inputs, so
//! they can be cached across runs keyed by content: an extraction by
//! the binary's digest and feature view, embeddings additionally by a
//! fingerprint of the embedding model. A key matches only when every
//! input is byte-identical, so a cache hit returns exactly the value
//! the pure function would compute (the vendored JSON codec
//! round-trips `f32` exactly) and results are bit-identical with the
//! cache on or off. Telemetry: `cache.hit` / `cache.miss` /
//! `cache.bytes` counters flow through the observer into run
//! manifests.

use crate::dataset::embed_extraction;
use cati_analysis::{
    digest_binary, digest_bytes, extract_mode_observed, ContextMode, Digest, ExtractError,
    Extraction, FeatureView,
};
use cati_asm::binary::Binary;
use cati_embedding::VucEmbedder;
use cati_nn::Tensor;
use cati_obs::{Event, Observer};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Bumped whenever the serialized artifact layout changes, so stale
/// caches are silently misses instead of parse errors. Version 2
/// added the integrity envelope (payload digest on the first line);
/// version 3 switched embedding entries to the framed flat tensor
/// encoding (`{rows, cols, data}`); version 4 added the context-mode
/// tag to both extraction and embedding keys, so a warm
/// `FunctionLocal` cache can never serve an `Interprocedural` run of
/// the same binary (and vice versa).
const FORMAT_VERSION: u32 = 4;

/// A directory of content-addressed extraction/embedding artifacts.
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    dir: PathBuf,
}

fn view_tag(view: FeatureView) -> &'static str {
    match view {
        FeatureView::WithSymbols => "sym",
        FeatureView::Stripped => "stripped",
    }
}

/// Fingerprints an embedding model: the digest of its serialized
/// form, so any retrained or differently-configured model gets its
/// own embedding cache entries.
pub fn embedder_fingerprint(embedder: &VucEmbedder) -> Digest {
    digest_bytes(&serde_json::to_vec(embedder).expect("embedder serializes"))
}

/// Wraps a serialized payload in the integrity envelope: the payload's
/// digest, a newline, the payload bytes. Shared with the shard and
/// checkpoint layers, which seal their JSON sidecars the same way.
pub(crate) fn seal_envelope(payload: &[u8]) -> Vec<u8> {
    let mut out = digest_bytes(payload).to_string().into_bytes();
    out.push(b'\n');
    out.extend_from_slice(payload);
    out
}

/// Verifies and strips the integrity envelope, returning the payload
/// when the recorded digest matches its bytes.
pub(crate) fn open_envelope(bytes: &[u8]) -> Option<&[u8]> {
    let newline = bytes.iter().position(|&b| b == b'\n')?;
    let (header, payload) = (&bytes[..newline], &bytes[newline + 1..]);
    (digest_bytes(payload).to_string().as_bytes() == header).then_some(payload)
}

impl ArtifactCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<ArtifactCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ArtifactCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Loads and parses one artifact. A present entry whose integrity
    /// envelope verifies is a `cache.hit` (its size accumulating into
    /// `cache.bytes`); anything else — absent, unreadable, checksum
    /// mismatch, corrupt — is a `cache.miss` and the caller recomputes
    /// (overwriting the bad entry). The checksum line makes *silently*
    /// corrupted entries (bit flips that still parse as JSON) misses
    /// too, so a damaged cache can change performance but never
    /// results.
    fn load<T: Deserialize>(&self, file: &str, obs: &dyn Observer) -> Option<T> {
        let loaded = std::fs::read(self.dir.join(file)).ok().and_then(|bytes| {
            Some((
                serde_json::from_slice(open_envelope(&bytes)?).ok()?,
                bytes.len(),
            ))
        });
        match loaded {
            Some((value, len)) => {
                obs.event(&Event::Counter {
                    name: "cache.hit",
                    delta: 1,
                });
                obs.event(&Event::Counter {
                    name: "cache.bytes",
                    delta: len as u64,
                });
                Some(value)
            }
            None => {
                obs.event(&Event::Counter {
                    name: "cache.miss",
                    delta: 1,
                });
                None
            }
        }
    }

    /// Stores one artifact atomically (tmp + rename, so a crash never
    /// leaves a truncated entry a later run would half-parse), sealed
    /// in the integrity envelope. Write failures only disable reuse,
    /// so they are logged, not fatal.
    fn store<T: Serialize>(&self, file: &str, value: &T, obs: &dyn Observer) {
        let json = match serde_json::to_vec(value) {
            Ok(json) => seal_envelope(&json),
            Err(e) => {
                cati_obs::warn!(obs, "cache: serialize {file}: {e}");
                return;
            }
        };
        let path = self.dir.join(file);
        let tmp = self.dir.join(format!("{file}.tmp"));
        let written = std::fs::write(&tmp, &json).and_then(|()| std::fs::rename(&tmp, &path));
        match written {
            Ok(()) => obs.event(&Event::Counter {
                name: "cache.bytes",
                delta: json.len() as u64,
            }),
            Err(e) => cati_obs::warn!(obs, "cache: write {}: {e}", path.display()),
        }
    }

    /// The extraction of `binary` under `view` in the baseline
    /// ([`ContextMode::FunctionLocal`]) mode.
    ///
    /// # Errors
    ///
    /// Fails if a cache miss forces extraction and the binary's text
    /// section does not decode.
    pub fn extraction(
        &self,
        binary: &Binary,
        view: FeatureView,
        obs: &dyn Observer,
    ) -> Result<Extraction, ExtractError> {
        self.extraction_mode(binary, view, ContextMode::FunctionLocal, obs)
    }

    /// The extraction of `binary` under `view` and `mode`: loaded
    /// from the cache when the binary's digest matches (the key
    /// carries the mode tag, so entries of one mode are invisible to
    /// the other), otherwise extracted and stored.
    ///
    /// # Errors
    ///
    /// Fails if a cache miss forces extraction and the binary's text
    /// section does not decode.
    pub fn extraction_mode(
        &self,
        binary: &Binary,
        view: FeatureView,
        mode: ContextMode,
        obs: &dyn Observer,
    ) -> Result<Extraction, ExtractError> {
        let file = format!(
            "ext-v{FORMAT_VERSION}-{}-{}-{}.json",
            digest_binary(binary),
            view_tag(view),
            mode.name()
        );
        if let Some(ex) = self.load(&file, obs) {
            return Ok(ex);
        }
        let ex = extract_mode_observed(binary, view, mode, obs)?;
        self.store(&file, &ex, obs);
        Ok(ex)
    }

    /// The embedded tensors of `ex`'s VUCs under `embedder`: loaded
    /// from the cache when both the binary digest and the model
    /// fingerprint match, otherwise embedded (counting
    /// `embed.windows`) and stored.
    pub fn embeddings(
        &self,
        binary: &Binary,
        view: FeatureView,
        embedder: &VucEmbedder,
        ex: &Extraction,
        obs: &dyn Observer,
    ) -> Tensor {
        self.embeddings_mode(binary, view, ContextMode::FunctionLocal, embedder, ex, obs)
    }

    /// [`ArtifactCache::embeddings`] keyed by context mode — the
    /// embedded rows derive from the mode-dependent extraction, so
    /// they need the same key separation.
    pub fn embeddings_mode(
        &self,
        binary: &Binary,
        view: FeatureView,
        mode: ContextMode,
        embedder: &VucEmbedder,
        ex: &Extraction,
        obs: &dyn Observer,
    ) -> Tensor {
        let file = format!(
            "emb-v{FORMAT_VERSION}-{}-{}-{}-{}.json",
            digest_binary(binary),
            view_tag(view),
            mode.name(),
            embedder_fingerprint(embedder)
        );
        if let Some(xs) = self.load::<Tensor>(&file, obs) {
            if xs.rows() == ex.vucs.len() {
                return xs;
            }
        }
        let xs = embed_extraction(ex, embedder);
        obs.event(&Event::Counter {
            name: "embed.windows",
            delta: ex.vucs.len() as u64,
        });
        self.store(&file, &xs, obs);
        xs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cati_embedding::{W2vConfig, Word2Vec};
    use cati_obs::{Recorder, RecorderConfig};

    fn temp_cache(tag: &str) -> ArtifactCache {
        let dir = std::env::temp_dir().join(format!("cati_cache_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        ArtifactCache::open(dir).unwrap()
    }

    #[test]
    fn extraction_and_embeddings_roundtrip_with_counters() {
        let corpus = cati_synbin::build_corpus(&cati_synbin::CorpusConfig::small(23));
        let binary = &corpus.test[0].binary.strip();
        let cache = temp_cache("roundtrip");
        let rec = Recorder::new(RecorderConfig::default());

        let cold = cache
            .extraction(binary, FeatureView::Stripped, &rec)
            .unwrap();
        let direct = cati_analysis::extract(binary, FeatureView::Stripped).unwrap();
        assert_eq!(cold, direct, "cold path must equal direct extraction");
        let warm = cache
            .extraction(binary, FeatureView::Stripped, &rec)
            .unwrap();
        assert_eq!(warm, direct, "warm path must equal direct extraction");

        let sentences = vec![vec!["mov".to_string(), "ret".to_string()]];
        let embedder = VucEmbedder::new(Word2Vec::train(&sentences, W2vConfig::tiny()));
        let xs_cold = cache.embeddings(binary, FeatureView::Stripped, &embedder, &direct, &rec);
        let xs_warm = cache.embeddings(binary, FeatureView::Stripped, &embedder, &direct, &rec);
        assert_eq!(xs_cold, xs_warm, "cached embeddings must be bit-identical");
        assert_eq!(
            xs_cold,
            crate::dataset::embed_extraction(&direct, &embedder)
        );

        let m = rec.metrics();
        assert_eq!(m.counter_value("cache.miss"), 2, "one cold miss per kind");
        assert_eq!(m.counter_value("cache.hit"), 2, "one warm hit per kind");
        assert!(m.counter_value("cache.bytes") > 0);
        // Only the cold embedding pass embedded anything.
        assert_eq!(m.counter_value("embed.windows"), direct.vucs.len() as u64);
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn warm_function_local_cache_never_hits_an_interproc_run() {
        let corpus = cati_synbin::build_corpus(&cati_synbin::CorpusConfig::small(23));
        let binary = &corpus.test[0].binary.strip();
        let cache = temp_cache("modekey");
        let warmup = Recorder::new(RecorderConfig::default());
        // Warm the cache in FunctionLocal mode (twice: prove it's warm).
        cache
            .extraction(binary, FeatureView::Stripped, &warmup)
            .unwrap();
        cache
            .extraction(binary, FeatureView::Stripped, &warmup)
            .unwrap();
        assert_eq!(warmup.metrics().counter_value("cache.hit"), 1);

        // The same binary in Interprocedural mode must miss: the key
        // carries the mode tag.
        let rec = Recorder::new(RecorderConfig::default());
        let inter = cache
            .extraction_mode(
                binary,
                FeatureView::Stripped,
                ContextMode::Interprocedural,
                &rec,
            )
            .unwrap();
        assert_eq!(rec.metrics().counter_value("cache.hit"), 0);
        assert_eq!(rec.metrics().counter_value("cache.miss"), 1);
        let direct = cati_analysis::extract_mode(
            binary,
            FeatureView::Stripped,
            ContextMode::Interprocedural,
        )
        .unwrap();
        assert_eq!(inter, direct);

        // And both modes now coexist: each warm in its own key space.
        let warm = Recorder::new(RecorderConfig::default());
        cache
            .extraction(binary, FeatureView::Stripped, &warm)
            .unwrap();
        cache
            .extraction_mode(
                binary,
                FeatureView::Stripped,
                ContextMode::Interprocedural,
                &warm,
            )
            .unwrap();
        assert_eq!(warm.metrics().counter_value("cache.hit"), 2);
        assert_eq!(warm.metrics().counter_value("cache.miss"), 0);
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn silently_corrupted_entries_are_checksum_misses() {
        // A bit flip that still parses as valid JSON must not be
        // served: the envelope checksum catches what the parser can't.
        let corpus = cati_synbin::build_corpus(&cati_synbin::CorpusConfig::small(23));
        let binary = &corpus.test[0].binary.strip();
        let cache = temp_cache("silent");
        let rec = Recorder::new(RecorderConfig::default());
        let first = cache
            .extraction(binary, FeatureView::Stripped, &rec)
            .unwrap();
        for entry in std::fs::read_dir(cache.dir()).unwrap() {
            let path = entry.unwrap().path();
            let mut bytes = std::fs::read(&path).unwrap();
            let newline = bytes.iter().position(|&b| b == b'\n').unwrap();
            // Change one digit inside the JSON payload to a different
            // digit — the entry still parses, but the data is wrong.
            let i = bytes[newline + 1..]
                .iter()
                .position(|b| b.is_ascii_digit())
                .map(|i| i + newline + 1)
                .unwrap();
            bytes[i] = if bytes[i] == b'1' { b'2' } else { b'1' };
            std::fs::write(&path, &bytes).unwrap();
        }
        let healed = cache
            .extraction(binary, FeatureView::Stripped, &rec)
            .unwrap();
        assert_eq!(first, healed, "tampered entry must recompute, not serve");
        assert_eq!(rec.metrics().counter_value("cache.miss"), 2);
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn corrupt_entries_recompute_instead_of_failing() {
        let corpus = cati_synbin::build_corpus(&cati_synbin::CorpusConfig::small(23));
        let binary = &corpus.test[0].binary.strip();
        let cache = temp_cache("corrupt");
        let rec = Recorder::new(RecorderConfig::default());
        let first = cache
            .extraction(binary, FeatureView::Stripped, &rec)
            .unwrap();
        // Truncate every entry; the next read must recompute and heal.
        for entry in std::fs::read_dir(cache.dir()).unwrap() {
            let path = entry.unwrap().path();
            std::fs::write(&path, b"{").unwrap();
        }
        let healed = cache
            .extraction(binary, FeatureView::Stripped, &rec)
            .unwrap();
        assert_eq!(first, healed);
        assert_eq!(rec.metrics().counter_value("cache.miss"), 2);
        let warm = cache
            .extraction(binary, FeatureView::Stripped, &rec)
            .unwrap();
        assert_eq!(first, warm);
        assert_eq!(rec.metrics().counter_value("cache.hit"), 1);
        std::fs::remove_dir_all(cache.dir()).ok();
    }
}
