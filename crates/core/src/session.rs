//! Shared evaluation sessions: embed an extraction once, reuse the
//! tensors everywhere.
//!
//! Every consumer of an extraction's features — evaluation, the
//! per-stage Table III/IV metrics, pipeline accuracy, the occlusion
//! study — needs the same `[embed_dim][VUC_LEN]` tensor per VUC. An
//! [`EmbeddedExtraction`] pairs an extraction with those tensors so
//! each is computed exactly once per session instead of once per
//! consumer.

use crate::dataset::embed_extraction;
use cati_analysis::Extraction;
use cati_embedding::VucEmbedder;
use cati_nn::Tensor;
use cati_obs::{Event, Observer};

/// An extraction plus the embedded tensor of each of its VUCs
/// (parallel to `Extraction::vucs`).
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddedExtraction<'a> {
    ex: &'a Extraction,
    xs: Tensor,
}

impl<'a> EmbeddedExtraction<'a> {
    /// Embeds every VUC of `ex` (in parallel under the ambient rayon
    /// pool).
    pub fn new(embedder: &VucEmbedder, ex: &'a Extraction) -> EmbeddedExtraction<'a> {
        EmbeddedExtraction::new_observed(embedder, ex, &cati_obs::NOOP)
    }

    /// [`EmbeddedExtraction::new`] with telemetry: bumps the
    /// `embed.windows` counter by the number of VUCs embedded — the
    /// counter the benchmarks assert on to prove each extraction is
    /// embedded exactly once.
    pub fn new_observed(
        embedder: &VucEmbedder,
        ex: &'a Extraction,
        obs: &dyn Observer,
    ) -> EmbeddedExtraction<'a> {
        let xs = embed_extraction(ex, embedder);
        obs.event(&Event::Counter {
            name: "embed.windows",
            delta: ex.vucs.len() as u64,
        });
        EmbeddedExtraction { ex, xs }
    }

    /// Wraps tensors computed elsewhere (e.g. loaded from the on-disk
    /// artifact cache). No `embed.windows` are counted — nothing was
    /// embedded.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is not parallel to `ex.vucs`.
    pub fn from_embeddings(ex: &'a Extraction, xs: Tensor) -> EmbeddedExtraction<'a> {
        assert_eq!(
            xs.rows(),
            ex.vucs.len(),
            "one tensor row per VUC: got {} rows for {} VUCs",
            xs.rows(),
            ex.vucs.len()
        );
        EmbeddedExtraction { ex, xs }
    }

    /// The underlying extraction.
    pub fn extraction(&self) -> &'a Extraction {
        self.ex
    }

    /// The flat VUC tensor matrix, one row per `Extraction::vucs`
    /// entry.
    pub fn embedded(&self) -> &Tensor {
        &self.xs
    }

    /// The tensor row of one VUC.
    pub fn embedding(&self, vuc: usize) -> &[f32] {
        self.xs.row(vuc)
    }

    /// Consumes the session, returning the tensor matrix (for handing
    /// to the artifact cache).
    pub fn into_embeddings(self) -> Tensor {
        self.xs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use cati_analysis::FeatureView;
    use cati_obs::{Recorder, RecorderConfig};

    #[test]
    fn session_embeds_once_and_counts_windows() {
        let corpus = cati_synbin::build_corpus(&cati_synbin::CorpusConfig::small(19));
        let cati =
            crate::pipeline::Cati::train(&corpus.train[..2], &Config::small(), &cati_obs::NOOP);
        let ex = cati_analysis::extract(&corpus.test[0].binary, FeatureView::Stripped).unwrap();
        let rec = Recorder::new(RecorderConfig::default());
        let session = EmbeddedExtraction::new_observed(&cati.embedder, &ex, &rec);
        assert_eq!(session.embedded().rows(), ex.vucs.len());
        assert_eq!(
            rec.metrics().counter_value("embed.windows"),
            ex.vucs.len() as u64
        );
        // Tensors match direct embedding, and a wrapped session
        // carries them unchanged without re-counting.
        assert_eq!(
            session.embedding(0),
            &cati.embedder.embed_window(&ex.vucs[0].insns)[..]
        );
        let xs = session.into_embeddings();
        let wrapped = EmbeddedExtraction::from_embeddings(&ex, xs);
        assert_eq!(
            rec.metrics().counter_value("embed.windows"),
            ex.vucs.len() as u64
        );
        assert_eq!(wrapped.extraction().vucs.len(), ex.vucs.len());
    }
}
