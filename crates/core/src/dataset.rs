//! Dataset assembly: corpus → extractions → embedding sentences →
//! per-stage training sets.

use cati_analysis::{extract_mode_observed, ContextMode, Extraction, FeatureView};
use cati_asm::generalize::generalize;
use cati_dwarf::{StageId, TypeClass};
use cati_embedding::VucEmbedder;
use cati_nn::Tensor;
use cati_obs::{Event, Observer};
use cati_synbin::BuiltBinary;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The extractions of a set of binaries, tagged with their
/// application names.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// `(application, extraction)` per binary.
    pub entries: Vec<(String, Extraction)>,
}

impl Dataset {
    /// Extracts every binary in `built` in parallel.
    ///
    /// # Panics
    ///
    /// Panics if a binary fails to extract — corpus binaries are
    /// produced by our own linker, so failure indicates a bug.
    pub fn from_binaries(built: &[BuiltBinary], view: FeatureView) -> Dataset {
        Dataset::from_binaries_observed(built, view, &cati_obs::NOOP)
    }

    /// [`Dataset::from_binaries`] with telemetry: extraction counters
    /// (functions, variables, VUCs) accumulate into `obs`.
    ///
    /// # Panics
    ///
    /// Panics if a binary fails to extract — corpus binaries are
    /// produced by our own linker, so failure indicates a bug.
    pub fn from_binaries_observed(
        built: &[BuiltBinary],
        view: FeatureView,
        obs: &dyn Observer,
    ) -> Dataset {
        Dataset::from_binaries_cached(built, view, None, obs)
    }

    /// [`Dataset::from_binaries_observed`] through an optional
    /// on-disk [`ArtifactCache`]: each extraction is loaded by the
    /// binary's content digest when cached, extracted and stored
    /// otherwise. The dataset is bit-identical either way.
    ///
    /// # Panics
    ///
    /// Panics if a binary fails to extract — corpus binaries are
    /// produced by our own linker, so failure indicates a bug.
    pub fn from_binaries_cached(
        built: &[BuiltBinary],
        view: FeatureView,
        cache: Option<&crate::artifact_cache::ArtifactCache>,
        obs: &dyn Observer,
    ) -> Dataset {
        Dataset::from_binaries_mode(built, view, ContextMode::FunctionLocal, cache, obs)
    }

    /// [`Dataset::from_binaries_cached`] under an explicit
    /// [`ContextMode`]. Cache keys incorporate the mode, so warm
    /// function-local artifacts are never served to an
    /// interprocedural run (or vice versa).
    ///
    /// # Panics
    ///
    /// Panics if a binary fails to extract — corpus binaries are
    /// produced by our own linker, so failure indicates a bug.
    pub fn from_binaries_mode(
        built: &[BuiltBinary],
        view: FeatureView,
        mode: ContextMode,
        cache: Option<&crate::artifact_cache::ArtifactCache>,
        obs: &dyn Observer,
    ) -> Dataset {
        let entries = built
            .par_iter()
            .map(|b| {
                let ex = match cache {
                    Some(cache) => cache.extraction_mode(&b.binary, view, mode, obs),
                    None => extract_mode_observed(&b.binary, view, mode, obs),
                }
                .expect("corpus binary must extract");
                (b.app.clone(), ex)
            })
            .collect();
        Dataset { entries }
    }

    /// Total labeled variables.
    pub fn var_count(&self) -> usize {
        self.entries.iter().map(|(_, e)| e.vars.len()).sum()
    }

    /// Total VUCs.
    pub fn vuc_count(&self) -> usize {
        self.entries.iter().map(|(_, e)| e.vucs.len()).sum()
    }

    /// Iterates `(app, extraction)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &(String, Extraction)> {
        self.entries.iter()
    }

    /// Groups extractions by application name (insertion order).
    pub fn by_app(&self) -> Vec<(String, Vec<&Extraction>)> {
        let mut order: Vec<String> = Vec::new();
        let mut map: std::collections::HashMap<&str, Vec<&Extraction>> = Default::default();
        for (app, ex) in &self.entries {
            if !map.contains_key(app.as_str()) {
                order.push(app.clone());
            }
            map.entry(app.as_str()).or_default().push(ex);
        }
        order
            .into_iter()
            .map(|app| {
                let v = map.remove(app.as_str()).unwrap_or_default();
                (app, v)
            })
            .collect()
    }
}

/// Builds Word2Vec training sentences from whole binaries: one
/// sentence per function's generalized instruction stream, which is
/// what "assembly code embedding" trains over (paper §IV-C).
pub fn embedding_sentences(
    built: &[BuiltBinary],
    max_sentences: usize,
    rng: &mut StdRng,
) -> Vec<Vec<String>> {
    let mut sentences: Vec<Vec<String>> = built
        .par_iter()
        .flat_map_iter(|b| {
            let insns = b.binary.disassemble().expect("corpus binary must decode");
            let funcs = cati_analysis::split_functions(&insns, &b.binary);
            let mut out = Vec::with_capacity(funcs.len());
            for (start, end) in funcs {
                let mut sent = Vec::with_capacity((end - start) * 3);
                for located in &insns[start..end] {
                    let g = generalize(&located.insn, &b.binary);
                    sent.extend(g.iter().map(str::to_string));
                }
                out.push(sent);
            }
            out
        })
        .collect();
    if max_sentences > 0 && sentences.len() > max_sentences {
        sentences.shuffle(rng);
        sentences.truncate(max_sentences);
    }
    sentences
}

/// One embedded, stage-labeled training sample.
pub type Sample = (Vec<f32>, usize);

/// One stage's planned sample order over a labeled pool: a base order
/// (identity when uncapped — no intermediate index buffer; an owned
/// shuffled prefix when capped) followed by oversampled duplicates.
/// Both the in-memory and the on-disk (shard) training paths build
/// their sample sequence from this one planner, which is what makes
/// them bit-identical: the plan is a pure function of the pool's
/// labels and the RNG, never of where the floats live.
pub(crate) struct StagePlan {
    /// `None` = pool identity order; `Some` = capped-and-shuffled.
    base: Option<Vec<u32>>,
    /// Length of the base order.
    base_len: usize,
    /// Oversampled duplicates appended after the base, in the order
    /// the oversampling loop drew them.
    extras: Vec<u32>,
}

impl StagePlan {
    /// Total planned samples.
    pub(crate) fn len(&self) -> usize {
        self.base_len + self.extras.len()
    }

    /// Pool index of the sample at plan position `i`.
    pub(crate) fn get(&self, i: usize) -> u32 {
        if i < self.base_len {
            match &self.base {
                Some(order) => order[i],
                None => i as u32,
            }
        } else {
            self.extras[i - self.base_len]
        }
    }

    /// Pool indices in plan order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// The capped-and-shuffled base order, if a cap applied.
    fn base_order(&self) -> Option<&[u32]> {
        self.base.as_deref()
    }

    /// The oversampled duplicate indices.
    fn extra_order(&self) -> &[u32] {
        &self.extras
    }
}

/// Plans one stage's sample order from the pool's stage labels:
/// optional cap (shuffle + truncate), then rare-class oversampling to
/// a floor fraction of the largest class. RNG consumption depends
/// only on pool length and label multiplicities, so any two pools
/// with equal label sequences produce equal plans. When no cap
/// applies, the base order is the identity — no index buffer is
/// allocated or re-shuffled.
pub(crate) fn plan_stage_samples(
    pool_labels: &[usize],
    stage: StageId,
    max_samples: usize,
    oversample_floor: f64,
    rng: &mut StdRng,
    obs: &dyn Observer,
) -> StagePlan {
    let mut base: Option<Vec<u32>> = None;
    if max_samples > 0 && pool_labels.len() > max_samples {
        let mut order: Vec<u32> = (0..pool_labels.len() as u32).collect();
        order.shuffle(rng);
        order.truncate(max_samples);
        base = Some(order);
    }
    let base_len = base.as_ref().map_or(pool_labels.len(), Vec::len);
    let label_at = |i: usize| -> usize {
        match &base {
            Some(order) => pool_labels[order[i] as usize],
            None => pool_labels[i],
        }
    };
    let mut extras: Vec<u32> = Vec::new();
    // Rare-class oversampling to a floor fraction of the largest class.
    if oversample_floor > 0.0 {
        let mut counts = vec![0usize; stage.num_classes()];
        for i in 0..base_len {
            counts[label_at(i)] += 1;
        }
        let max_count = counts.iter().copied().max().unwrap_or(0);
        let floor = ((max_count as f64) * oversample_floor) as usize;
        let mut oversampled = 0u64;
        let mut extra: Vec<u32> = Vec::new();
        for (label, &count) in counts.iter().enumerate() {
            if count == 0 || count >= floor {
                continue;
            }
            let pool: Vec<u32> = (0..base_len)
                .filter(|&i| label_at(i) == label)
                .map(|i| match &base {
                    Some(order) => order[i],
                    None => i as u32,
                })
                .collect();
            while count + extra.len() < floor && !pool.is_empty() {
                if extra.len() >= max_count {
                    // Hard safety bound: never duplicate a class more
                    // than the largest class's population.
                    cati_obs::warn!(
                        obs,
                        "{stage}: oversampling label {label} stopped at the \
                         {max_count}-duplicate bound, short of floor {floor}"
                    );
                    break;
                }
                extra.push(pool[rng.gen_range(0..pool.len())]);
            }
            oversampled += extra.len() as u64;
            extras.append(&mut extra);
        }
        if oversampled > 0 {
            obs.event(&Event::Counter {
                name: "train.oversampled",
                delta: oversampled,
            });
        }
    }
    StagePlan {
        base,
        base_len,
        extras,
    }
}

/// Builds the training set of one stage: every VUC whose ground-truth
/// class carries a label at `stage`, embedded and labeled, capped and
/// rare-class-oversampled per the configuration (see
/// [`plan_stage_samples`]). Oversampling never adds more than
/// `max_count` duplicates per rare class (the safety bound), and
/// everything it adds is counted into the `train.oversampled` counter
/// on `obs` (with a warning when the bound truncates a class short of
/// its floor).
pub fn stage_dataset(
    dataset: &Dataset,
    embedder: &VucEmbedder,
    stage: StageId,
    max_samples: usize,
    oversample_floor: f64,
    rng: &mut StdRng,
    obs: &dyn Observer,
) -> Vec<Sample> {
    // Collect (extraction ref, vuc idx) + label first — cheap.
    let mut refs: Vec<(&Extraction, usize)> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    for (_, ex) in &dataset.entries {
        for (i, vuc) in ex.vucs.iter().enumerate() {
            let Some(class) = vuc.class(&ex.vars) else {
                continue;
            };
            let Some(label) = stage.label_of(class) else {
                continue;
            };
            refs.push((ex, i));
            labels.push(label);
        }
    }
    let plan = plan_stage_samples(&labels, stage, max_samples, oversample_floor, rng, obs);
    let embed_at = |i: usize| -> Sample {
        let (ex, v) = refs[i];
        (embedder.embed_window(&ex.vucs[v].insns), labels[i])
    };
    // Base order: embed straight out of the pool when uncapped — the
    // common `max_samples == 0` path allocates no intermediate index
    // buffer at all.
    let mut samples: Vec<Sample> = match plan.base_order() {
        None => refs
            .par_iter()
            .zip(labels.par_iter())
            .map(|((ex, v), &label)| (embedder.embed_window(&ex.vucs[*v].insns), label))
            .collect(),
        Some(order) => order.par_iter().map(|&i| embed_at(i as usize)).collect(),
    };
    samples.extend(plan.extra_order().iter().map(|&i| embed_at(i as usize)));
    samples
}

/// Embeds every VUC of one extraction (inference path) into one flat
/// `vucs × (embed_dim·VUC_LEN)` [`Tensor`], one row per VUC. Rows are
/// filled in parallel; each row is bit-identical to
/// [`VucEmbedder::embed_window`] on that VUC.
///
/// Hot-path shape: the instruction-column cache is read-locked *once*
/// for the whole batch (`VucEmbedder::columns`) and every worker
/// scatters borrowed columns straight into its rows — no per-insn
/// lock, `Arc` clone, or telemetry atomics, and no redundant zero
/// fill. Columns missing from the cache are computed directly into
/// the rows (same floats), then inserted afterwards via one
/// [`VucEmbedder::prime`] pass so later extractions hit.
pub fn embed_extraction(ex: &Extraction, embedder: &VucEmbedder) -> Tensor {
    use std::sync::atomic::{AtomicU64, Ordering};
    let cols = ex
        .vucs
        .first()
        .map_or(0, |v| embedder.embed_dim() * v.insns.len());
    let misses = AtomicU64::new(0);
    let mut insns_total = 0u64;
    let xs = {
        let view = embedder.columns();
        Tensor::build_rows(
            ex.vucs.len(),
            cols,
            || &view,
            |view, i, row| {
                let m = view.fill_window(&ex.vucs[i].insns, row) as u64;
                if m > 0 {
                    misses.fetch_add(m, Ordering::Relaxed);
                }
            },
        )
    };
    let missed = misses.into_inner();
    for v in &ex.vucs {
        insns_total += v.insns.len() as u64;
    }
    embedder.record_usage(insns_total - missed, missed);
    if missed > 0 {
        embedder.prime(ex.vucs.iter().map(|v| v.insns.as_slice()));
    }
    xs
}

/// The class distribution of labeled variables, indexed by
/// [`TypeClass::index`].
pub fn class_histogram(dataset: &Dataset) -> Vec<u64> {
    let mut hist = vec![0u64; TypeClass::ALL.len()];
    for (_, ex) in &dataset.entries {
        for (_, var) in ex.labeled_vars() {
            hist[var.class.expect("labeled").index()] += 1;
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use cati_embedding::{W2vConfig, Word2Vec};
    use cati_synbin::{build_corpus, CorpusConfig};
    use rand::SeedableRng;

    fn tiny_dataset() -> (Dataset, Vec<BuiltBinary>) {
        let corpus = build_corpus(&CorpusConfig::small(77));
        let ds = Dataset::from_binaries(&corpus.train, FeatureView::WithSymbols);
        (ds, corpus.train)
    }

    #[test]
    fn dataset_collects_labeled_vucs() {
        let (ds, _) = tiny_dataset();
        assert!(ds.var_count() > 50, "vars {}", ds.var_count());
        assert!(ds.vuc_count() >= ds.var_count());
    }

    #[test]
    fn sentences_and_stage_sets() {
        let (ds, built) = tiny_dataset();
        let mut rng = StdRng::seed_from_u64(0);
        let sentences = embedding_sentences(&built, 500, &mut rng);
        assert!(!sentences.is_empty());
        assert!(sentences.len() <= 500);
        let model = Word2Vec::train(&sentences, W2vConfig::tiny());
        let embedder = VucEmbedder::new(model);

        let s1 = stage_dataset(
            &ds,
            &embedder,
            StageId::Stage1,
            300,
            0.05,
            &mut rng,
            &cati_obs::NOOP,
        );
        assert!(!s1.is_empty());
        assert!(
            s1.len() <= 330,
            "cap plus oversample slack, got {}",
            s1.len()
        );
        for (x, label) in &s1 {
            assert_eq!(x.len(), embedder.embed_dim() * 21);
            assert!(*label < 2);
        }
        // Stage 3-2 may be tiny but labels stay in range.
        let s32 = stage_dataset(
            &ds,
            &embedder,
            StageId::Stage3Float,
            0,
            0.05,
            &mut rng,
            &cati_obs::NOOP,
        );
        for (_, label) in &s32 {
            assert!(*label < 3);
        }
    }

    /// A dataset of single-VUC variables with a chosen Stage-1 class
    /// mix: `majority` non-pointers (Int) and `rare` pointers
    /// (PtrVoid), every VUC a window of BLANKs.
    fn synthetic_dataset(majority: usize, rare: usize) -> Dataset {
        use cati_analysis::{VarKey, Variable, Vuc, VUC_LEN};
        use cati_asm::generalize::GenInsn;
        let mut vars = Vec::new();
        let mut vucs = Vec::new();
        for i in 0..majority + rare {
            let class = if i < majority {
                TypeClass::Int
            } else {
                TypeClass::PtrVoid
            };
            vars.push(Variable {
                key: VarKey {
                    func: i as u32,
                    offset: -8,
                },
                name: None,
                class: Some(class),
                debin: None,
                vucs: vec![i as u32],
            });
            vucs.push(Vuc {
                insns: vec![GenInsn::blank(); VUC_LEN],
                var: i as u32,
                context_classes: vec![None; VUC_LEN],
            });
        }
        Dataset {
            entries: vec![(
                "synthetic".to_string(),
                Extraction {
                    binary_name: "synthetic".to_string(),
                    vars,
                    vucs,
                },
            )],
        }
    }

    fn tiny_embedder() -> VucEmbedder {
        let sentences = vec![vec!["mov".to_string(), "ret".to_string()]];
        VucEmbedder::new(Word2Vec::train(&sentences, W2vConfig::tiny()))
    }

    fn stage1_label_counts(samples: &[Sample]) -> (usize, usize) {
        let ptrs = samples.iter().filter(|(_, l)| *l == 1).count();
        (samples.len() - ptrs, ptrs)
    }

    #[test]
    fn oversampling_fills_rare_classes_to_the_floor_and_counts_them() {
        use cati_obs::{Recorder, RecorderConfig};
        let ds = synthetic_dataset(100, 3);
        let embedder = tiny_embedder();
        let mut rng = StdRng::seed_from_u64(9);
        let rec = Recorder::new(RecorderConfig::default());
        // floor = 10% of the 100-strong majority = 10; the 3 pointer
        // samples gain exactly 7 duplicates.
        let s = stage_dataset(&ds, &embedder, StageId::Stage1, 0, 0.1, &mut rng, &rec);
        let (ints, ptrs) = stage1_label_counts(&s);
        assert_eq!((ints, ptrs), (100, 10));
        assert_eq!(rec.metrics().counter_value("train.oversampled"), 7);
    }

    #[test]
    fn class_exactly_at_the_floor_is_not_oversampled() {
        use cati_obs::{Recorder, RecorderConfig};
        let ds = synthetic_dataset(100, 10);
        let embedder = tiny_embedder();
        let mut rng = StdRng::seed_from_u64(9);
        let rec = Recorder::new(RecorderConfig::default());
        let s = stage_dataset(&ds, &embedder, StageId::Stage1, 0, 0.1, &mut rng, &rec);
        assert_eq!(stage1_label_counts(&s), (100, 10));
        assert_eq!(rec.metrics().counter_value("train.oversampled"), 0);
    }

    #[test]
    fn oversampling_safety_bound_adds_at_most_max_count_duplicates() {
        use cati_obs::{Recorder, RecorderConfig};
        let ds = synthetic_dataset(10, 2);
        let embedder = tiny_embedder();
        let mut rng = StdRng::seed_from_u64(9);
        let rec = Recorder::new(RecorderConfig::default());
        // A floor of 5× the majority (50) can never be reached by any
        // class; the bound stops each at exactly max_count = 10
        // duplicates (the old loop leaked an 11th before noticing).
        let s = stage_dataset(&ds, &embedder, StageId::Stage1, 0, 5.0, &mut rng, &rec);
        assert_eq!(stage1_label_counts(&s), (20, 12));
        assert_eq!(rec.metrics().counter_value("train.oversampled"), 20);
    }

    #[test]
    fn output_may_exceed_max_samples_by_the_oversample_slack() {
        let ds = synthetic_dataset(100, 2);
        let embedder = tiny_embedder();
        let mut rng = StdRng::seed_from_u64(9);
        // 102 refs don't exceed the 102 cap, so nothing is truncated;
        // oversampling then legitimately pushes past max_samples.
        let s = stage_dataset(
            &ds,
            &embedder,
            StageId::Stage1,
            102,
            0.1,
            &mut rng,
            &cati_obs::NOOP,
        );
        assert_eq!(s.len(), 110, "100 ints + 2 ptrs + 8 duplicates");
        // With the floor disabled the cap is exact.
        let capped = stage_dataset(
            &ds,
            &embedder,
            StageId::Stage1,
            50,
            0.0,
            &mut rng,
            &cati_obs::NOOP,
        );
        assert_eq!(capped.len(), 50);
    }

    /// Verbatim copy of the pre-planner `stage_dataset` (the PR 1
    /// algorithm: materialize a `(ref, vuc, label)` vec, shuffle and
    /// truncate it under a cap, oversample by appending into it).
    /// Kept as the reference that pins the planner-based rewrite —
    /// including its RNG consumption — bitwise.
    fn stage_dataset_reference(
        dataset: &Dataset,
        embedder: &VucEmbedder,
        stage: StageId,
        max_samples: usize,
        oversample_floor: f64,
        rng: &mut StdRng,
        obs: &dyn Observer,
    ) -> Vec<Sample> {
        let mut refs: Vec<(&Extraction, usize, usize)> = Vec::new();
        for (_, ex) in &dataset.entries {
            for (i, vuc) in ex.vucs.iter().enumerate() {
                let Some(class) = vuc.class(&ex.vars) else {
                    continue;
                };
                let Some(label) = stage.label_of(class) else {
                    continue;
                };
                refs.push((ex, i, label));
            }
        }
        if max_samples > 0 && refs.len() > max_samples {
            refs.shuffle(rng);
            refs.truncate(max_samples);
        }
        if oversample_floor > 0.0 {
            let mut counts = vec![0usize; stage.num_classes()];
            for &(_, _, l) in &refs {
                counts[l] += 1;
            }
            let max_count = counts.iter().copied().max().unwrap_or(0);
            let floor = ((max_count as f64) * oversample_floor) as usize;
            let mut extra = Vec::new();
            for (label, &count) in counts.iter().enumerate() {
                if count == 0 || count >= floor {
                    continue;
                }
                let pool: Vec<_> = refs.iter().filter(|r| r.2 == label).copied().collect();
                while count + extra.len() < floor && !pool.is_empty() {
                    if extra.len() >= max_count {
                        break;
                    }
                    extra.push(pool[rng.gen_range(0..pool.len())]);
                }
                refs.append(&mut extra);
            }
        }
        let _ = obs;
        refs.into_par_iter()
            .map(|(ex, i, label)| (embedder.embed_window(&ex.vucs[i].insns), label))
            .collect()
    }

    #[test]
    fn planner_rewrite_is_bitwise_identical_to_the_reference() {
        use rand::Rng;
        let (real, _) = tiny_dataset();
        let synth = synthetic_dataset(60, 5);
        let embedder = tiny_embedder();
        for ds in [&real, &synth] {
            for stage in [StageId::Stage1, StageId::Stage2NonPtr, StageId::Stage3Int] {
                for &(max_samples, floor) in
                    &[(0usize, 0.0f64), (0, 0.1), (50, 0.1), (30, 0.0), (10, 5.0)]
                {
                    for seed in [1u64, 9, 42] {
                        let mut rng_new = StdRng::seed_from_u64(seed);
                        let mut rng_old = StdRng::seed_from_u64(seed);
                        let new = stage_dataset(
                            ds,
                            &embedder,
                            stage,
                            max_samples,
                            floor,
                            &mut rng_new,
                            &cati_obs::NOOP,
                        );
                        let old = stage_dataset_reference(
                            ds,
                            &embedder,
                            stage,
                            max_samples,
                            floor,
                            &mut rng_old,
                            &cati_obs::NOOP,
                        );
                        let case = format!("{stage} cap={max_samples} floor={floor} seed={seed}");
                        assert_eq!(new.len(), old.len(), "{case}: sample count");
                        for (k, ((xa, la), (xb, lb))) in new.iter().zip(&old).enumerate() {
                            assert_eq!(la, lb, "{case}: label of sample {k}");
                            assert!(
                                xa.iter()
                                    .zip(xb.iter())
                                    .all(|(a, b)| a.to_bits() == b.to_bits())
                                    && xa.len() == xb.len(),
                                "{case}: floats of sample {k} differ bitwise"
                            );
                        }
                        // Identical RNG consumption: both generators
                        // must sit at the same stream position.
                        assert_eq!(rng_new.state(), rng_old.state(), "{case}: rng state");
                        assert_eq!(
                            rng_new.gen_range(0..u32::MAX),
                            rng_old.gen_range(0..u32::MAX),
                            "{case}: next draw"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn histogram_covers_common_classes() {
        let (ds, _) = tiny_dataset();
        let hist = class_histogram(&ds);
        assert!(hist[TypeClass::Int.index()] > 0);
        assert!(hist[TypeClass::PtrStruct.index()] + hist[TypeClass::Struct.index()] > 0);
        assert_eq!(hist.iter().sum::<u64>() as usize, ds.var_count());
    }

    #[test]
    fn by_app_groups_entries() {
        let (ds, _) = tiny_dataset();
        let groups = ds.by_app();
        let total: usize = groups.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, ds.entries.len());
    }
}
