//! Classification metrics: precision, recall, F1, accuracy, confusion
//! matrices (paper §VII-A).

use serde::{Deserialize, Serialize};

/// Precision/recall/F1 with support.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Prf {
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1 score.
    pub f1: f64,
    /// Number of ground-truth samples.
    pub support: u64,
}

/// A square confusion matrix over `n` classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Confusion {
    n: usize,
    counts: Vec<u64>,
}

impl Confusion {
    /// An empty `n × n` matrix.
    pub fn new(n: usize) -> Confusion {
        Confusion {
            n,
            counts: vec![0; n * n],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.n
    }

    /// Records one `(truth, prediction)` observation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, truth: usize, pred: usize) {
        assert!(truth < self.n && pred < self.n);
        self.counts[truth * self.n + pred] += 1;
    }

    /// The count at `(truth, pred)`.
    pub fn get(&self, truth: usize, pred: usize) -> u64 {
        self.counts[truth * self.n + pred]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Ground-truth support of one class.
    pub fn support(&self, class: usize) -> u64 {
        (0..self.n).map(|p| self.get(class, p)).sum()
    }

    /// Per-class precision/recall/F1.
    pub fn per_class(&self, class: usize) -> Prf {
        let tp = self.get(class, class);
        let fp: u64 = (0..self.n)
            .filter(|&t| t != class)
            .map(|t| self.get(t, class))
            .sum();
        let fn_: u64 = (0..self.n)
            .filter(|&p| p != class)
            .map(|p| self.get(class, p))
            .sum();
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Prf {
            precision,
            recall,
            f1,
            support: self.support(class),
        }
    }

    /// Support-weighted average of the per-class metrics — what the
    /// paper reports per stage per application.
    pub fn weighted_avg(&self) -> Prf {
        let total = self.total();
        if total == 0 {
            return Prf::default();
        }
        let mut acc = Prf {
            support: total,
            ..Prf::default()
        };
        for c in 0..self.n {
            let prf = self.per_class(c);
            let w = prf.support as f64 / total as f64;
            acc.precision += w * prf.precision;
            acc.recall += w * prf.recall;
            acc.f1 += w * prf.f1;
        }
        acc
    }

    /// Micro accuracy: trace / total.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let trace: u64 = (0..self.n).map(|c| self.get(c, c)).sum();
        trace as f64 / total as f64
    }
}

/// Builds a confusion matrix from parallel truth/prediction slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn confusion(n: usize, truths: &[usize], preds: &[usize]) -> Confusion {
    assert_eq!(truths.len(), preds.len());
    let mut m = Confusion::new(n);
    for (&t, &p) in truths.iter().zip(preds) {
        m.record(t, p);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let m = confusion(3, &[0, 1, 2, 1], &[0, 1, 2, 1]);
        assert_eq!(m.accuracy(), 1.0);
        let avg = m.weighted_avg();
        assert_eq!(avg.precision, 1.0);
        assert_eq!(avg.recall, 1.0);
        assert_eq!(avg.f1, 1.0);
        assert_eq!(avg.support, 4);
    }

    #[test]
    fn known_asymmetric_case() {
        // truth:  0 0 0 1 1
        // pred:   0 0 1 1 0
        let m = confusion(2, &[0, 0, 0, 1, 1], &[0, 0, 1, 1, 0]);
        let c0 = m.per_class(0);
        assert!((c0.precision - 2.0 / 3.0).abs() < 1e-9);
        assert!((c0.recall - 2.0 / 3.0).abs() < 1e-9);
        let c1 = m.per_class(1);
        assert!((c1.precision - 0.5).abs() < 1e-9);
        assert!((c1.recall - 0.5).abs() < 1e-9);
        assert!((m.accuracy() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn absent_class_contributes_zero() {
        let m = confusion(3, &[0, 0], &[0, 1]);
        let c2 = m.per_class(2);
        assert_eq!(c2.support, 0);
        assert_eq!(c2.f1, 0.0);
        let avg = m.weighted_avg();
        assert!(avg.precision > 0.0);
    }

    #[test]
    fn empty_matrix() {
        let m = Confusion::new(4);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.weighted_avg(), Prf::default());
    }

    #[test]
    #[should_panic]
    fn out_of_range_record_panics() {
        let mut m = Confusion::new(2);
        m.record(2, 0);
    }
}
