//! On-disk training shards: the out-of-core sample store.
//!
//! Training at corpus scale cannot materialize every embedded sample
//! in memory (ROADMAP item 3). Instead, extraction + embedding are
//! streamed once into *shards* — fixed-capacity, digest-trailed,
//! row-addressable binary files — and the trainer reads rows back on
//! demand with positioned reads, so peak memory is bounded by one
//! shard buffer plus the model, never by corpus size.
//!
//! ## Shard file layout (version 1)
//!
//! ```text
//! magic    8 bytes   b"CATISHR1"
//! version  u32 LE    SHARD_VERSION
//! rows     u32 LE    row count
//! cols     u32 LE    f32 elements per row
//! labels   rows × u8          TypeClass index per row
//! data     rows × cols × f32  LE row data, row-major
//! digest   16 bytes  FNV-1a/128 over all preceding bytes, LE
//! ```
//!
//! The label bytes sit ahead of the bulk data so the planning pass
//! (label counting, capping, oversampling) reads only `header +
//! labels` per shard; the f32 rows are touched one positioned read at
//! a time during training. The whole-file digest is verified once at
//! open — a shard that fails any check is a typed [`ShardError`],
//! never silently trained on.
//!
//! A shard *set* is a directory of shard files plus an
//! envelope-sealed JSON manifest (`shards.json`) listing them in
//! order with their digests and the embedder fingerprint, written
//! last — the same integrity conventions as the [`ArtifactCache`]
//! (digest envelope, atomic tmp + rename).
//!
//! [`ArtifactCache`]: crate::artifact_cache::ArtifactCache

use crate::artifact_cache::{open_envelope, seal_envelope};
use cati_analysis::{digest_bytes, Digest, Fnv128};
use cati_nn::SampleSource;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::File;
use std::io::Read;
use std::path::{Path, PathBuf};

/// Shard file format version (bumped on any layout change).
pub const SHARD_VERSION: u32 = 1;

/// Shard file magic.
pub const SHARD_MAGIC: [u8; 8] = *b"CATISHR1";

/// Manifest file name inside a shard directory.
pub const SHARD_MANIFEST: &str = "shards.json";

/// Default rows per shard file: bounds the writer's in-memory buffer
/// (and a verifier's working set) regardless of corpus size.
pub const DEFAULT_ROWS_PER_SHARD: usize = 2048;

/// Fixed shard header length: magic + version + rows + cols.
const HEADER_LEN: usize = 8 + 4 + 4 + 4;

/// Digest trailer length.
const TRAILER_LEN: usize = 16;

/// A typed shard-layer failure. Every corrupt, truncated, or
/// inconsistent shard surfaces as one of these — the training path
/// refuses to start rather than learn from garbage.
#[derive(Debug)]
pub enum ShardError {
    /// Filesystem failure, annotated with the path involved.
    Io {
        /// File or directory the operation touched.
        path: PathBuf,
        /// Underlying error.
        err: std::io::Error,
    },
    /// File shorter than its own framing claims.
    Truncated {
        /// Offending file.
        path: PathBuf,
        /// Bytes present.
        len: usize,
        /// Bytes the framing requires.
        need: usize,
    },
    /// The magic bytes are not [`SHARD_MAGIC`].
    BadMagic {
        /// Offending file.
        path: PathBuf,
    },
    /// Unsupported shard format version.
    BadVersion {
        /// Offending file.
        path: PathBuf,
        /// Version the file claims.
        version: u32,
    },
    /// The digest trailer does not match the file contents.
    DigestMismatch {
        /// Offending file.
        path: PathBuf,
    },
    /// Structurally valid but self-inconsistent (shape mismatch,
    /// manifest disagreement, label out of range, …).
    Inconsistent {
        /// Offending file or directory.
        path: PathBuf,
        /// What disagreed.
        detail: String,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io { path, err } => write!(f, "shard io {}: {err}", path.display()),
            ShardError::Truncated { path, len, need } => write!(
                f,
                "shard {} truncated: {len} bytes, framing needs {need}",
                path.display()
            ),
            ShardError::BadMagic { path } => {
                write!(f, "shard {} has no CATISHR1 magic", path.display())
            }
            ShardError::BadVersion { path, version } => write!(
                f,
                "shard {} version {version} unsupported (this build reads {SHARD_VERSION})",
                path.display()
            ),
            ShardError::DigestMismatch { path } => {
                write!(f, "shard {} digest mismatch (corrupt)", path.display())
            }
            ShardError::Inconsistent { path, detail } => {
                write!(f, "shard {} inconsistent: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for ShardError {}

impl ShardError {
    fn io(path: &Path, err: std::io::Error) -> ShardError {
        ShardError::Io {
            path: path.to_path_buf(),
            err,
        }
    }
}

/// Encodes one shard: `labels[i]` is the class byte of row `i`, whose
/// `cols` floats are `rows[i*cols..(i+1)*cols]`. Pure — the same
/// inputs always produce the same bytes.
pub fn encode_shard(cols: usize, labels: &[u8], rows: &[f32]) -> Vec<u8> {
    debug_assert_eq!(rows.len(), labels.len() * cols, "row data shape");
    let mut out = Vec::with_capacity(HEADER_LEN + labels.len() + rows.len() * 4 + TRAILER_LEN);
    out.extend_from_slice(&SHARD_MAGIC);
    out.extend_from_slice(&SHARD_VERSION.to_le_bytes());
    out.extend_from_slice(&(labels.len() as u32).to_le_bytes());
    out.extend_from_slice(&(cols as u32).to_le_bytes());
    out.extend_from_slice(labels);
    for v in rows {
        out.extend_from_slice(&v.to_le_bytes());
    }
    let digest = digest_bytes(&out);
    out.extend_from_slice(&digest.0.to_le_bytes());
    out
}

/// Parses and fully verifies one in-memory shard, returning
/// `(cols, labels, row data)`. The streaming reader ([`ShardSet`])
/// performs the same checks without holding the data section; this
/// whole-buffer form is the codec ground truth the property tests
/// exercise.
pub fn decode_shard(bytes: &[u8], path: &Path) -> Result<(usize, Vec<u8>, Vec<f32>), ShardError> {
    let (rows, cols) = check_header(bytes, path, bytes.len())?;
    let need = HEADER_LEN + rows + rows * cols * 4 + TRAILER_LEN;
    if bytes.len() != need {
        return Err(ShardError::Truncated {
            path: path.to_path_buf(),
            len: bytes.len(),
            need,
        });
    }
    let body = &bytes[..bytes.len() - TRAILER_LEN];
    let mut trailer = [0u8; TRAILER_LEN];
    trailer.copy_from_slice(&bytes[bytes.len() - TRAILER_LEN..]);
    if digest_bytes(body).0 != u128::from_le_bytes(trailer) {
        return Err(ShardError::DigestMismatch {
            path: path.to_path_buf(),
        });
    }
    let labels = bytes[HEADER_LEN..HEADER_LEN + rows].to_vec();
    let data = bytes[HEADER_LEN + rows..HEADER_LEN + rows + rows * cols * 4]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok((cols, labels, data))
}

/// Validates the fixed header against the total file length, returning
/// `(rows, cols)`.
fn check_header(head: &[u8], path: &Path, file_len: usize) -> Result<(usize, usize), ShardError> {
    if head.len() < HEADER_LEN {
        return Err(ShardError::Truncated {
            path: path.to_path_buf(),
            len: file_len,
            need: HEADER_LEN + TRAILER_LEN,
        });
    }
    if head[..8] != SHARD_MAGIC {
        return Err(ShardError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    let version = u32::from_le_bytes([head[8], head[9], head[10], head[11]]);
    if version != SHARD_VERSION {
        return Err(ShardError::BadVersion {
            path: path.to_path_buf(),
            version,
        });
    }
    let rows = u32::from_le_bytes([head[12], head[13], head[14], head[15]]) as usize;
    let cols = u32::from_le_bytes([head[16], head[17], head[18], head[19]]) as usize;
    let need = rows
        .checked_mul(cols)
        .and_then(|e| e.checked_mul(4))
        .and_then(|d| d.checked_add(HEADER_LEN + rows + TRAILER_LEN));
    match need {
        Some(need) if file_len == need => Ok((rows, cols)),
        Some(need) => Err(ShardError::Truncated {
            path: path.to_path_buf(),
            len: file_len,
            need,
        }),
        None => Err(ShardError::Inconsistent {
            path: path.to_path_buf(),
            detail: format!("rows {rows} × cols {cols} overflows the file framing"),
        }),
    }
}

/// One shard's manifest entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ShardEntry {
    /// File name inside the shard directory.
    file: String,
    /// Row count.
    rows: usize,
    /// Whole-file digest (32 hex digits), as written.
    digest: String,
}

/// The envelope-sealed manifest listing a shard set in order.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ShardManifest {
    /// [`SHARD_VERSION`] at write time.
    format_version: u32,
    /// f32 elements per row (constant across the set).
    cols: usize,
    /// Fingerprint of the embedder that produced the rows.
    embedder_fingerprint: String,
    /// Shards in dataset order.
    shards: Vec<ShardEntry>,
}

/// Streams `(class byte, embedded row)` samples into a directory of
/// shard files, holding at most one shard's rows in memory. Call
/// [`ShardWriter::push`] in dataset order, then [`ShardWriter::finish`]
/// to seal the manifest — a set without a manifest is unreadable, so
/// an interrupted write never passes for a complete one.
pub struct ShardWriter {
    dir: PathBuf,
    cols: usize,
    rows_per_shard: usize,
    labels: Vec<u8>,
    data: Vec<f32>,
    shards: Vec<ShardEntry>,
}

impl ShardWriter {
    /// Creates `dir` (and parents) and an empty writer producing rows
    /// of `cols` floats, `rows_per_shard` rows per file (0 = the
    /// [`DEFAULT_ROWS_PER_SHARD`]).
    pub fn create(
        dir: &Path,
        cols: usize,
        rows_per_shard: usize,
    ) -> Result<ShardWriter, ShardError> {
        std::fs::create_dir_all(dir).map_err(|e| ShardError::io(dir, e))?;
        let rows_per_shard = if rows_per_shard == 0 {
            DEFAULT_ROWS_PER_SHARD
        } else {
            rows_per_shard
        };
        Ok(ShardWriter {
            dir: dir.to_path_buf(),
            cols,
            rows_per_shard,
            labels: Vec::new(),
            data: Vec::new(),
            shards: Vec::new(),
        })
    }

    /// Appends one sample; flushes a full shard to disk.
    pub fn push(&mut self, class: u8, row: &[f32]) -> Result<(), ShardError> {
        if row.len() != self.cols {
            return Err(ShardError::Inconsistent {
                path: self.dir.clone(),
                detail: format!(
                    "row of {} floats pushed into a {}-col set",
                    row.len(),
                    self.cols
                ),
            });
        }
        self.labels.push(class);
        self.data.extend_from_slice(row);
        if self.labels.len() >= self.rows_per_shard {
            self.flush()?;
        }
        Ok(())
    }

    /// Total rows pushed so far (flushed or buffered).
    pub fn rows(&self) -> usize {
        self.shards.iter().map(|s| s.rows).sum::<usize>() + self.labels.len()
    }

    /// Writes the buffered rows as the next shard file (atomic
    /// tmp + rename).
    fn flush(&mut self) -> Result<(), ShardError> {
        if self.labels.is_empty() {
            return Ok(());
        }
        let bytes = encode_shard(self.cols, &self.labels, &self.data);
        let file = format!("shard_{:05}.cshard", self.shards.len());
        let path = self.dir.join(&file);
        crate::model_io::save_bytes_atomic(&bytes, &path).map_err(|e| ShardError::io(&path, e))?;
        // The trailer is the digest of everything before it.
        let mut trailer = [0u8; TRAILER_LEN];
        trailer.copy_from_slice(&bytes[bytes.len() - TRAILER_LEN..]);
        self.shards.push(ShardEntry {
            file,
            rows: self.labels.len(),
            digest: Digest(u128::from_le_bytes(trailer)).to_string(),
        });
        self.labels.clear();
        self.data.clear();
        Ok(())
    }

    /// Flushes the final partial shard and seals the manifest. Returns
    /// the total row count.
    pub fn finish(mut self, embedder_fingerprint: &str) -> Result<usize, ShardError> {
        self.flush()?;
        let manifest = ShardManifest {
            format_version: SHARD_VERSION,
            cols: self.cols,
            embedder_fingerprint: embedder_fingerprint.to_string(),
            shards: std::mem::take(&mut self.shards),
        };
        let total = manifest.shards.iter().map(|s| s.rows).sum();
        let path = self.dir.join(SHARD_MANIFEST);
        let payload = match serde_json::to_vec(&manifest) {
            Ok(p) => p,
            Err(e) => {
                return Err(ShardError::Inconsistent {
                    path,
                    detail: format!("manifest failed to serialize: {e}"),
                })
            }
        };
        crate::model_io::save_bytes_atomic(&seal_envelope(&payload), &path)
            .map_err(|e| ShardError::io(&path, e))?;
        Ok(total)
    }
}

/// Streams a dataset's labeled VUCs into a shard set under `dir`: one
/// row per VUC with a ground-truth class, in `(entry, vuc)` order,
/// labeled with the class's [`TypeClass::index`] byte and embedded
/// with `embedder` — the identical `(label sequence, floats)` the
/// in-memory [`stage_dataset`] pool would see, which is what makes
/// streamed training bit-identical. Rows are embedded in parallel in
/// bounded chunks and flushed shard-by-shard, so peak memory never
/// scales with the corpus. Returns the total row count.
///
/// [`TypeClass::index`]: cati_dwarf::TypeClass::index
/// [`stage_dataset`]: crate::dataset::stage_dataset
///
/// # Errors
///
/// Propagates shard-layer write failures.
pub fn write_dataset_shards(
    dataset: &crate::dataset::Dataset,
    embedder: &cati_embedding::VucEmbedder,
    dir: &Path,
    rows_per_shard: usize,
    obs: &dyn cati_obs::Observer,
) -> Result<usize, ShardError> {
    use rayon::prelude::*;
    let cols = embedder.embed_dim() * cati_analysis::VUC_LEN;
    let mut writer = ShardWriter::create(dir, cols, rows_per_shard)?;
    // Labeled VUCs in (entry, vuc) order — the pool order every
    // training path shares.
    let labeled: Vec<(&cati_analysis::Extraction, usize, u8)> = dataset
        .entries
        .iter()
        .flat_map(|(_, ex)| {
            ex.vucs.iter().enumerate().filter_map(move |(v, vuc)| {
                let class = vuc.class(&ex.vars)?;
                Some((ex, v, class.index() as u8))
            })
        })
        .collect();
    // Embed in parallel a bounded chunk at a time; push serially so
    // shard contents stay in pool order.
    const CHUNK: usize = 1024;
    for chunk in labeled.chunks(CHUNK) {
        let rows: Vec<(u8, Vec<f32>)> = chunk
            .par_iter()
            .map(|&(ex, v, class)| (class, embedder.embed_window(&ex.vucs[v].insns)))
            .collect();
        for (class, row) in &rows {
            writer.push(*class, row)?;
        }
    }
    let fingerprint = crate::artifact_cache::embedder_fingerprint(embedder).to_string();
    let total = writer.finish(&fingerprint)?;
    obs.event(&cati_obs::Event::Counter {
        name: "shards.rows",
        delta: total as u64,
    });
    Ok(total)
}

/// One opened, verified shard file.
#[derive(Debug)]
struct OpenShard {
    file: File,
    path: PathBuf,
    rows: usize,
    /// Absolute byte offset of the f32 data section.
    data_off: u64,
}

/// A verified, readable shard set: every shard's digest checked once
/// at open (constant memory), all class bytes resident for planning,
/// f32 rows fetched by positioned read during training.
#[derive(Debug)]
pub struct ShardSet {
    cols: usize,
    fingerprint: String,
    identity: Digest,
    shards: Vec<OpenShard>,
    /// Class byte per global row, shard order.
    labels: Vec<u8>,
    /// `starts[i]` = global row index of shard `i`'s first row.
    starts: Vec<usize>,
}

impl ShardSet {
    /// Opens and fully verifies the shard set in `dir`: the manifest
    /// envelope, then every listed shard — framing, digest, and
    /// manifest agreement. Fails with a typed [`ShardError`] on the
    /// first problem; a set that opens is safe to train from.
    pub fn open(dir: &Path) -> Result<ShardSet, ShardError> {
        let mpath = dir.join(SHARD_MANIFEST);
        let sealed = std::fs::read(&mpath).map_err(|e| ShardError::io(&mpath, e))?;
        let Some(payload) = open_envelope(&sealed) else {
            return Err(ShardError::DigestMismatch { path: mpath });
        };
        let manifest: ShardManifest = match serde_json::from_slice(payload) {
            Ok(m) => m,
            Err(e) => {
                return Err(ShardError::Inconsistent {
                    path: mpath,
                    detail: format!("manifest is not valid JSON: {e}"),
                })
            }
        };
        if manifest.format_version != SHARD_VERSION {
            return Err(ShardError::BadVersion {
                path: mpath,
                version: manifest.format_version,
            });
        }
        let identity = digest_bytes(payload);
        let mut shards = Vec::with_capacity(manifest.shards.len());
        let mut labels = Vec::new();
        let mut starts = Vec::with_capacity(manifest.shards.len());
        for entry in &manifest.shards {
            starts.push(labels.len());
            let shard = open_one(dir, entry, manifest.cols, &mut labels)?;
            shards.push(shard);
        }
        Ok(ShardSet {
            cols: manifest.cols,
            fingerprint: manifest.embedder_fingerprint,
            identity,
            shards,
            labels,
            starts,
        })
    }

    /// Total rows across all shards.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the set holds no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// f32 elements per row.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The class byte of every global row, in shard order — the
    /// planning pass's input (two-pass label counting: labels now,
    /// floats later).
    pub fn labels(&self) -> &[u8] {
        &self.labels
    }

    /// Fingerprint of the embedder that produced the rows.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Digest of the manifest payload: the identity of the whole set,
    /// recorded into checkpoints so a resume against different data
    /// is refused.
    pub fn identity(&self) -> Digest {
        self.identity
    }

    /// Reads global row `row` into `out` (resized to `cols`).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range row — plans are built from this
    /// set's own labels, so that is a caller bug, not data corruption
    /// (corruption is caught at [`ShardSet::open`]).
    pub fn read_row(&self, row: usize, out: &mut Vec<f32>) -> Result<(), ShardError> {
        let shard_idx = match self.starts.partition_point(|&s| s <= row) {
            0 => panic!("row {row} before the first shard"),
            i => i - 1,
        };
        let shard = &self.shards[shard_idx];
        let local = row - self.starts[shard_idx];
        assert!(local < shard.rows, "row {row} out of range");
        let off = shard.data_off + (local * self.cols * 4) as u64;
        out.resize(self.cols, 0.0);
        read_floats_at(&shard.file, &shard.path, off, out)
    }
}

/// Opens one shard file, streaming it once to verify the digest and
/// collect its label bytes into `labels`.
fn open_one(
    dir: &Path,
    entry: &ShardEntry,
    cols: usize,
    labels: &mut Vec<u8>,
) -> Result<OpenShard, ShardError> {
    let path = dir.join(&entry.file);
    let mut file = File::open(&path).map_err(|e| ShardError::io(&path, e))?;
    let file_len = file.metadata().map_err(|e| ShardError::io(&path, e))?.len() as usize;
    let mut head = [0u8; HEADER_LEN];
    if file_len >= HEADER_LEN {
        file.read_exact(&mut head)
            .map_err(|e| ShardError::io(&path, e))?;
    }
    let (rows, file_cols) = check_header(&head[..HEADER_LEN.min(file_len)], &path, file_len)?;
    if file_cols != cols || rows != entry.rows {
        return Err(ShardError::Inconsistent {
            path,
            detail: format!(
                "file says {rows} rows × {file_cols} cols, manifest says {} rows × {cols} cols",
                entry.rows
            ),
        });
    }
    // Stream the remainder once: digest everything up to the trailer,
    // keep only the label bytes.
    let mut hasher = Fnv128::new();
    hasher.update(&head);
    let label_start = labels.len();
    labels.resize(label_start + rows, 0);
    file.read_exact(&mut labels[label_start..])
        .map_err(|e| ShardError::io(&path, e))?;
    hasher.update(&labels[label_start..]);
    if let Some(bad) = labels[label_start..]
        .iter()
        .find(|&&c| usize::from(c) >= cati_dwarf::TypeClass::ALL.len())
    {
        return Err(ShardError::Inconsistent {
            path,
            detail: format!("class byte {bad} exceeds the 19 type classes"),
        });
    }
    let mut remaining = rows * cols * 4;
    let mut buf = [0u8; 64 * 1024];
    while remaining > 0 {
        let n = remaining.min(buf.len());
        file.read_exact(&mut buf[..n])
            .map_err(|e| ShardError::io(&path, e))?;
        hasher.update(&buf[..n]);
        remaining -= n;
    }
    let mut trailer = [0u8; TRAILER_LEN];
    file.read_exact(&mut trailer)
        .map_err(|e| ShardError::io(&path, e))?;
    let actual = hasher.finish();
    if actual.0 != u128::from_le_bytes(trailer) {
        return Err(ShardError::DigestMismatch { path });
    }
    if actual.to_string() != entry.digest {
        return Err(ShardError::Inconsistent {
            path,
            detail: "file digest disagrees with the manifest".to_string(),
        });
    }
    Ok(OpenShard {
        file,
        path,
        rows,
        data_off: (HEADER_LEN + rows) as u64,
    })
}

/// Positioned read of `out.len()` floats at byte `off` (thread-safe:
/// no shared cursor).
#[cfg(unix)]
fn read_floats_at(file: &File, path: &Path, off: u64, out: &mut [f32]) -> Result<(), ShardError> {
    use std::os::unix::fs::FileExt;
    let mut buf = [0u8; 4096];
    let mut pos = off;
    let mut i = 0;
    while i < out.len() {
        let n = ((out.len() - i) * 4).min(buf.len());
        file.read_exact_at(&mut buf[..n], pos)
            .map_err(|e| ShardError::io(path, e))?;
        for c in buf[..n].chunks_exact(4) {
            out[i] = f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            i += 1;
        }
        pos += n as u64;
    }
    Ok(())
}

/// Portable fallback: re-open the file and read at the offset.
#[cfg(not(unix))]
fn read_floats_at(file: &File, path: &Path, off: u64, out: &mut [f32]) -> Result<(), ShardError> {
    use std::io::{Seek, SeekFrom};
    let _ = file;
    let mut f = File::open(path).map_err(|e| ShardError::io(path, e))?;
    f.seek(SeekFrom::Start(off))
        .map_err(|e| ShardError::io(path, e))?;
    let mut bytes = vec![0u8; out.len() * 4];
    f.read_exact(&mut bytes)
        .map_err(|e| ShardError::io(path, e))?;
    for (o, c) in out.iter_mut().zip(bytes.chunks_exact(4)) {
        *o = f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
    }
    Ok(())
}

/// One stage's planned training samples over a [`ShardSet`]: the
/// sample at plan position `i` is global row `plan[i].0` with stage
/// label `plan[i].1`. Implements [`SampleSource`], so
/// [`TextCnn::train_epoch_hooked`](cati_nn::TextCnn::train_epoch_hooked)
/// consumes it exactly like an in-memory sample vector — same
/// shuffle, same sharding, same reduction order, bit-identical
/// weights.
pub struct ShardSamples<'a> {
    shards: &'a ShardSet,
    /// `(global row, stage label)` in training order (duplicates =
    /// oversampling).
    plan: Vec<(u32, u16)>,
}

impl<'a> ShardSamples<'a> {
    /// Wraps a plan over `shards`.
    pub fn new(shards: &'a ShardSet, plan: Vec<(u32, u16)>) -> ShardSamples<'a> {
        ShardSamples { shards, plan }
    }
}

impl SampleSource for ShardSamples<'_> {
    fn len(&self) -> usize {
        self.plan.len()
    }

    /// # Panics
    ///
    /// Panics if the positioned read fails. The shard set verified
    /// every byte at open, so a failure here is an environment error
    /// (disk vanished mid-training), not data corruption — aborting
    /// is the only honest response.
    fn sample<'s>(&'s self, idx: usize, scratch: &'s mut Vec<f32>) -> (&'s [f32], usize) {
        let (row, label) = self.plan[idx];
        if let Err(e) = self.shards.read_row(row as usize, scratch) {
            panic!("shard row read failed after open-time verification: {e}");
        }
        (scratch.as_slice(), label as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_set(dir: &Path, rows_per_shard: usize, n: usize, cols: usize) -> ShardSet {
        let mut w = ShardWriter::create(dir, cols, rows_per_shard).expect("create");
        for i in 0..n {
            let row: Vec<f32> = (0..cols).map(|c| (i * cols + c) as f32 * 0.5).collect();
            w.push((i % 7) as u8, &row).expect("push");
        }
        assert_eq!(w.rows(), n);
        assert_eq!(w.finish("test-fingerprint").expect("finish"), n);
        ShardSet::open(dir).expect("open")
    }

    #[test]
    fn write_read_roundtrip_across_shard_boundaries() {
        let dir = tempdir("roundtrip");
        let set = roundtrip_set(&dir, 8, 37, 5);
        assert_eq!(set.len(), 37);
        assert_eq!(set.cols(), 5);
        assert_eq!(set.fingerprint(), "test-fingerprint");
        let mut out = Vec::new();
        for i in 0..37 {
            assert_eq!(set.labels()[i], (i % 7) as u8);
            set.read_row(i, &mut out).expect("read");
            let want: Vec<f32> = (0..5).map(|c| (i * 5 + c) as f32 * 0.5).collect();
            assert_eq!(out, want, "row {i}");
        }
    }

    #[test]
    fn shard_samples_match_in_memory_source() {
        use cati_nn::SampleSource;
        let dir = tempdir("samples");
        let set = roundtrip_set(&dir, 4, 10, 3);
        let plan: Vec<(u32, u16)> = vec![(9, 1), (0, 0), (4, 2), (9, 1)];
        let src = ShardSamples::new(&set, plan.clone());
        assert_eq!(SampleSource::len(&src), 4);
        let mut scratch = Vec::new();
        for (k, &(row, label)) in plan.iter().enumerate() {
            let (x, l) = src.sample(k, &mut scratch);
            assert_eq!(l, label as usize);
            let want: Vec<f32> = (0..3)
                .map(|c| (row as usize * 3 + c) as f32 * 0.5)
                .collect();
            assert_eq!(x, want.as_slice());
        }
    }

    #[test]
    fn missing_manifest_is_a_typed_error() {
        let dir = tempdir("nomanifest");
        std::fs::create_dir_all(&dir).unwrap();
        match ShardSet::open(&dir) {
            Err(ShardError::Io { .. }) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn tampered_manifest_is_rejected() {
        let dir = tempdir("manifest-tamper");
        roundtrip_set(&dir, 8, 10, 3);
        let mpath = dir.join(SHARD_MANIFEST);
        let mut bytes = std::fs::read(&mpath).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x20;
        std::fs::write(&mpath, bytes).unwrap();
        match ShardSet::open(&dir) {
            Err(ShardError::DigestMismatch { .. }) => {}
            other => panic!("expected DigestMismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncated_shard_file_is_rejected() {
        let dir = tempdir("truncate");
        roundtrip_set(&dir, 8, 10, 3);
        let shard = dir.join("shard_00000.cshard");
        let bytes = std::fs::read(&shard).unwrap();
        std::fs::write(&shard, &bytes[..bytes.len() - 5]).unwrap();
        match ShardSet::open(&dir) {
            Err(ShardError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn flipped_data_bit_is_rejected() {
        let dir = tempdir("bitflip");
        roundtrip_set(&dir, 8, 10, 3);
        let shard = dir.join("shard_00000.cshard");
        let mut bytes = std::fs::read(&shard).unwrap();
        let mid = HEADER_LEN + 10 + 7; // inside the f32 data section
        bytes[mid] ^= 1;
        std::fs::write(&shard, bytes).unwrap();
        match ShardSet::open(&dir) {
            Err(ShardError::DigestMismatch { .. }) => {}
            other => panic!("expected DigestMismatch, got {other:?}"),
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cati-shards-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }
}
