//! Occlusion importance analysis (paper §VII, Eq. 5 and Fig. 6).
//!
//! For a VUC and a stage, ε_k is the ratio between the classifier's
//! confidence with instruction k blanked out and its original
//! confidence. Smaller ε means the instruction mattered more. The
//! heat map aggregates, per window position, the cumulative fraction
//! of VUCs whose ε falls below each threshold 0.1 … 1.0.

use crate::pipeline::Cati;
use crate::session::EmbeddedExtraction;
use cati_analysis::VUC_LEN;
use cati_asm::generalize::GenInsn;
use cati_dwarf::StageId;
use cati_nn::argmax;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// ε values of one VUC: one per window position.
pub type Epsilons = Vec<f32>;

/// Computes ε for every position of one window at `stage`.
///
/// The reference confidence is the stage's probability of its own
/// argmax class on the intact window; occlusion replaces one
/// instruction with BLANK (paper's function R).
pub fn occlusion_epsilons(cati: &Cati, window: &[GenInsn], stage: StageId) -> Epsilons {
    let x = cati.embedder.embed_window(window);
    occlusion_epsilons_embedded(cati, &x, window.len(), stage)
}

/// [`occlusion_epsilons`] for a window whose embedding `x` (an
/// `embed_dim × len` tensor) is already in hand — the fast path: each
/// of the `len` probes patches only the blanked position's channel
/// column instead of re-embedding the whole window. Identical output:
/// a BLANK column carries the same floats wherever it is written.
pub fn occlusion_epsilons_embedded(cati: &Cati, x: &[f32], len: usize, stage: StageId) -> Epsilons {
    let base_probs = cati.stages.stage_probs(stage, x);
    let best = argmax(&base_probs);
    let base_conf = base_probs[best].max(1e-6);
    let blank = GenInsn::blank();
    (0..len)
        .map(|k| {
            let mut xo = x.to_vec();
            cati.embedder.patch_window_position(&mut xo, len, k, &blank);
            let probs = cati.stages.stage_probs(stage, &xo);
            probs[best] / base_conf
        })
        .collect()
}

/// Fig. 6(b): per position (row), the cumulative fraction of VUCs
/// whose ε is below each threshold 0.1, 0.2, …, 1.0 (columns).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ImportanceHeatmap {
    /// `rows[k][c]` = P(ε_k < (c+1)/10) over the sampled VUCs.
    pub rows: Vec<Vec<f64>>,
    /// Number of VUCs sampled.
    pub samples: u64,
}

impl ImportanceHeatmap {
    /// Mean cumulative mass of one row — a scalar importance score
    /// per position (higher = more important).
    pub fn row_importance(&self, k: usize) -> f64 {
        let row = &self.rows[k];
        row.iter().sum::<f64>() / row.len() as f64
    }
}

/// Builds the Fig. 6(b) heat map over (a sample of) the VUCs in
/// `sessions`, evaluated at `stage`. The sessions' tensors serve as
/// the occlusion base embeddings, so no VUC is re-embedded.
pub fn importance_heatmap(
    cati: &Cati,
    sessions: &[EmbeddedExtraction<'_>],
    stage: StageId,
    max_vucs: usize,
) -> ImportanceHeatmap {
    let mut windows: Vec<&[f32]> = Vec::new();
    'outer: for session in sessions {
        for i in 0..session.extraction().vucs.len() {
            windows.push(session.embedding(i));
            if max_vucs > 0 && windows.len() >= max_vucs {
                break 'outer;
            }
        }
    }
    let all_eps: Vec<Epsilons> = windows
        .par_iter()
        .map(|x| occlusion_epsilons_embedded(cati, x, VUC_LEN, stage))
        .collect();
    let mut rows = vec![vec![0.0f64; 10]; VUC_LEN];
    for eps in &all_eps {
        for (k, &e) in eps.iter().enumerate() {
            for (c, cell) in rows[k].iter_mut().enumerate() {
                if e < (c as f32 + 1.0) / 10.0 {
                    *cell += 1.0;
                }
            }
        }
    }
    let n = all_eps.len().max(1) as f64;
    for row in &mut rows {
        for v in row.iter_mut() {
            *v /= n;
        }
    }
    ImportanceHeatmap {
        rows,
        samples: all_eps.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cati_asm::generalize::GenInsn;

    #[test]
    fn blank_window_has_unit_epsilons() {
        // Occluding a BLANK with a BLANK cannot change anything; use a
        // trained-free sanity check via a tiny untrained system.
        let cfg = crate::config::Config::small();
        let corpus = cati_synbin::build_corpus(&cati_synbin::CorpusConfig::small(31));
        let cati = Cati::train(
            &corpus.train[..2.min(corpus.train.len())],
            &cfg,
            &cati_obs::NOOP,
        );
        let window = vec![GenInsn::blank(); VUC_LEN];
        let eps = occlusion_epsilons(&cati, &window, StageId::Stage1);
        assert_eq!(eps.len(), VUC_LEN);
        for e in eps {
            assert!((e - 1.0).abs() < 1e-4, "blank-on-blank epsilon {e}");
        }

        // The patch fast path must equal naive re-embedding of each
        // occluded window bit for bit, on a real VUC.
        let ex = cati_analysis::extract(
            &corpus.test[0].binary.strip(),
            cati_analysis::FeatureView::Stripped,
        )
        .unwrap();
        let window = &ex.vucs[0].insns;
        let fast = occlusion_epsilons(&cati, window, StageId::Stage1);
        let base_probs = cati
            .stages
            .stage_probs(StageId::Stage1, &cati.embedder.embed_window(window));
        let (argmax, base_conf) = base_probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, p)| (i, *p))
            .unwrap();
        let base_conf = base_conf.max(1e-6);
        let naive: Epsilons = (0..window.len())
            .map(|k| {
                let mut occluded = window.clone();
                occluded[k] = GenInsn::blank();
                let xo = cati.embedder.embed_window(&occluded);
                cati.stages.stage_probs(StageId::Stage1, &xo)[argmax] / base_conf
            })
            .collect();
        assert_eq!(fast, naive, "patched probes diverged from re-embedding");
    }
}
