//! Occlusion importance analysis (paper §VII, Eq. 5 and Fig. 6).
//!
//! For a VUC and a stage, ε_k is the ratio between the classifier's
//! confidence with instruction k blanked out and its original
//! confidence. Smaller ε means the instruction mattered more. The
//! heat map aggregates, per window position, the cumulative fraction
//! of VUCs whose ε falls below each threshold 0.1 … 1.0.

use crate::pipeline::Cati;
use cati_analysis::{Extraction, VUC_LEN};
use cati_asm::generalize::GenInsn;
use cati_dwarf::StageId;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// ε values of one VUC: one per window position.
pub type Epsilons = Vec<f32>;

/// Computes ε for every position of one window at `stage`.
///
/// The reference confidence is the stage's probability of its own
/// argmax class on the intact window; occlusion replaces one
/// instruction with BLANK (paper's function R).
pub fn occlusion_epsilons(cati: &Cati, window: &[GenInsn], stage: StageId) -> Epsilons {
    let x = cati.embedder.embed_window(window);
    let base_probs = cati.stages.stage_probs(stage, &x);
    let (argmax, base_conf) = base_probs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, p)| (i, *p))
        .expect("non-empty distribution");
    let base_conf = base_conf.max(1e-6);
    (0..window.len())
        .map(|k| {
            let mut occluded = window.to_vec();
            occluded[k] = GenInsn::blank();
            let xo = cati.embedder.embed_window(&occluded);
            let probs = cati.stages.stage_probs(stage, &xo);
            probs[argmax] / base_conf
        })
        .collect()
}

/// Fig. 6(b): per position (row), the cumulative fraction of VUCs
/// whose ε is below each threshold 0.1, 0.2, …, 1.0 (columns).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ImportanceHeatmap {
    /// `rows[k][c]` = P(ε_k < (c+1)/10) over the sampled VUCs.
    pub rows: Vec<Vec<f64>>,
    /// Number of VUCs sampled.
    pub samples: u64,
}

impl ImportanceHeatmap {
    /// Mean cumulative mass of one row — a scalar importance score
    /// per position (higher = more important).
    pub fn row_importance(&self, k: usize) -> f64 {
        let row = &self.rows[k];
        row.iter().sum::<f64>() / row.len() as f64
    }
}

/// Builds the Fig. 6(b) heat map over (a sample of) the VUCs in
/// `extractions`, evaluated at `stage`.
pub fn importance_heatmap(
    cati: &Cati,
    extractions: &[&Extraction],
    stage: StageId,
    max_vucs: usize,
) -> ImportanceHeatmap {
    let mut windows: Vec<&Vec<GenInsn>> = Vec::new();
    'outer: for ex in extractions {
        for vuc in &ex.vucs {
            windows.push(&vuc.insns);
            if max_vucs > 0 && windows.len() >= max_vucs {
                break 'outer;
            }
        }
    }
    let all_eps: Vec<Epsilons> = windows
        .par_iter()
        .map(|w| occlusion_epsilons(cati, w, stage))
        .collect();
    let mut rows = vec![vec![0.0f64; 10]; VUC_LEN];
    for eps in &all_eps {
        for (k, &e) in eps.iter().enumerate() {
            for (c, cell) in rows[k].iter_mut().enumerate() {
                if e < (c as f32 + 1.0) / 10.0 {
                    *cell += 1.0;
                }
            }
        }
    }
    let n = all_eps.len().max(1) as f64;
    for row in &mut rows {
        for v in row.iter_mut() {
            *v /= n;
        }
    }
    ImportanceHeatmap {
        rows,
        samples: all_eps.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cati_asm::generalize::GenInsn;

    #[test]
    fn blank_window_has_unit_epsilons() {
        // Occluding a BLANK with a BLANK cannot change anything; use a
        // trained-free sanity check via a tiny untrained system.
        let cfg = crate::config::Config::small();
        let corpus = cati_synbin::build_corpus(&cati_synbin::CorpusConfig::small(31));
        let cati = Cati::train(
            &corpus.train[..2.min(corpus.train.len())],
            &cfg,
            &cati_obs::NOOP,
        );
        let window = vec![GenInsn::blank(); VUC_LEN];
        let eps = occlusion_epsilons(&cati, &window, StageId::Stage1);
        assert_eq!(eps.len(), VUC_LEN);
        for e in eps {
            assert!((e - 1.0).abs() < 1e-4, "blank-on-blank epsilon {e}");
        }
    }
}
