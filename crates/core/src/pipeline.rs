//! The end-to-end CATI pipeline: train on a corpus, evaluate on
//! labeled extractions, infer types from unseen stripped binaries.

use crate::config::Config;
use crate::dataset::{embed_extraction, embedding_sentences, Dataset};
use crate::metrics::{Confusion, Prf};
use crate::multistage::MultiStage;
use crate::vote::vote;
use cati_analysis::{extract, ExtractError, Extraction, FeatureView, VarKey};
use cati_asm::binary::Binary;
use cati_dwarf::{StageId, TypeClass};
use cati_embedding::{VucEmbedder, Word2Vec};
use cati_synbin::BuiltBinary;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A trained CATI system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cati {
    /// Configuration used for training.
    pub config: Config,
    /// The instruction embedder.
    pub embedder: VucEmbedder,
    /// The six stage classifiers.
    pub stages: MultiStage,
}

/// Per-VUC and per-variable predictions for one extraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Leaf distribution of each VUC (19 classes).
    pub vuc_dists: Vec<Vec<f32>>,
    /// Argmax class of each VUC.
    pub vuc_preds: Vec<TypeClass>,
    /// Voted class of each variable (parallel to `Extraction::vars`).
    pub var_preds: Vec<TypeClass>,
}

/// One inferred variable of a stripped binary — the system's final
/// user-facing output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferredVar {
    /// Location of the variable.
    pub key: VarKey,
    /// Predicted type class.
    pub class: TypeClass,
    /// Mean (clipped) vote share of the winning class.
    pub confidence: f32,
    /// Number of VUCs that voted.
    pub vuc_count: u32,
}

impl Cati {
    /// Trains the full pipeline on `train` binaries: extraction →
    /// Word2Vec → six stage CNNs. `progress` receives status lines.
    pub fn train(train: &[BuiltBinary], config: &Config, mut progress: impl FnMut(&str)) -> Cati {
        config.with_threads(|| {
            let mut rng = StdRng::seed_from_u64(config.seed);
            progress(&format!("extracting {} training binaries", train.len()));
            let dataset = Dataset::from_binaries(train, FeatureView::WithSymbols);
            progress(&format!(
                "extracted {} variables / {} VUCs",
                dataset.var_count(),
                dataset.vuc_count()
            ));
            let sentences = embedding_sentences(train, config.max_sentences, &mut rng);
            progress(&format!(
                "training Word2Vec on {} sentences",
                sentences.len()
            ));
            let embedder = VucEmbedder::new(Word2Vec::train(&sentences, config.w2v));
            let stages = MultiStage::train(&dataset, &embedder, config, &mut progress);
            Cati {
                config: *config,
                embedder,
                stages,
            }
        })
    }

    /// Leaf distribution (19 classes) of one generalized window.
    pub fn predict_window(&self, insns: &[cati_asm::generalize::GenInsn]) -> Vec<f32> {
        let x = self.embedder.embed_window(insns);
        self.stages.leaf_distribution(&x)
    }

    /// Evaluates one labeled extraction: per-VUC distributions and
    /// per-variable votes. All six stages run as batched passes over
    /// the whole extraction; votes index the shared distribution
    /// table by reference instead of cloning per-variable copies.
    pub fn evaluate(&self, ex: &Extraction) -> Evaluation {
        self.config.with_threads(|| {
            let xs = embed_extraction(ex, &self.embedder);
            let vuc_dists = self.stages.leaf_distributions_batch(&xs);
            let vuc_preds: Vec<TypeClass> = vuc_dists
                .iter()
                .map(|d| {
                    TypeClass::ALL[d
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map(|(i, _)| i)
                        .unwrap_or(0)]
                })
                .collect();
            let var_preds = ex
                .vars
                .iter()
                .map(|var| {
                    let dists: Vec<&[f32]> = var
                        .vucs
                        .iter()
                        .map(|&v| vuc_dists[v as usize].as_slice())
                        .collect();
                    TypeClass::ALL[vote(&dists, self.config.vote_threshold).class]
                })
                .collect();
            Evaluation {
                vuc_dists,
                vuc_preds,
                var_preds,
            }
        })
    }

    /// Runs the full inference pipeline on a stripped binary: locate
    /// variables, extract VUCs, classify, vote.
    ///
    /// # Errors
    ///
    /// Fails if the binary's text section does not decode.
    pub fn infer(&self, binary: &Binary) -> Result<Vec<InferredVar>, ExtractError> {
        let ex = extract(binary, FeatureView::Stripped)?;
        let eval = self.evaluate(&ex);
        Ok(ex
            .vars
            .iter()
            .zip(&eval.var_preds)
            .map(|(var, &class)| {
                let dists: Vec<&[f32]> = var
                    .vucs
                    .iter()
                    .map(|&v| eval.vuc_dists[v as usize].as_slice())
                    .collect();
                let result = vote(&dists, self.config.vote_threshold);
                let share = result.totals[result.class] / var.vucs.len() as f32;
                InferredVar {
                    key: var.key,
                    class,
                    confidence: share.min(1.0),
                    vuc_count: var.vucs.len() as u32,
                }
            })
            .collect())
    }

    /// Serializes the trained system to JSON at `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization failures.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let json = serde_json::to_vec(self).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads a system serialized by [`Cati::save`].
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialization failures.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Cati> {
        let bytes = std::fs::read(path)?;
        serde_json::from_slice(&bytes).map_err(std::io::Error::other)
    }
}

/// Per-stage evaluation at VUC granularity: each stage classifier is
/// scored on the samples whose ground truth reaches it (paper Table
/// III).
pub fn stage_vuc_metrics(
    cati: &Cati,
    extractions: &[&Extraction],
    stage: StageId,
) -> (Prf, Confusion) {
    let mut m = Confusion::new(stage.num_classes());
    for ex in extractions {
        let xs = embed_extraction(ex, &cati.embedder);
        // Only VUCs whose ground truth reaches this stage are scored;
        // batch the CNN over exactly that subset (borrowed rows).
        let scored: Vec<(usize, usize)> = ex
            .vucs
            .iter()
            .enumerate()
            .filter_map(|(i, vuc)| {
                let class = vuc.class(&ex.vars)?;
                Some((i, stage.label_of(class)?))
            })
            .collect();
        let sel: Vec<&[f32]> = scored.iter().map(|&(i, _)| xs[i].as_slice()).collect();
        let probs = cati.stages.stage_probs_batch(stage, &sel);
        for (&(_, truth), probs) in scored.iter().zip(&probs) {
            let pred = probs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            m.record(truth, pred);
        }
    }
    (m.weighted_avg(), m)
}

/// Per-stage evaluation at variable granularity, after voting over
/// each variable's VUCs with the stage's own distributions (paper
/// Table IV).
pub fn stage_var_metrics(
    cati: &Cati,
    extractions: &[&Extraction],
    stage: StageId,
) -> (Prf, Confusion) {
    let mut m = Confusion::new(stage.num_classes());
    for ex in extractions {
        let xs = embed_extraction(ex, &cati.embedder);
        let stage_dists = cati.stages.stage_probs_batch(stage, &xs);
        for var in &ex.vars {
            let Some(class) = var.class else { continue };
            let Some(truth) = stage.label_of(class) else {
                continue;
            };
            let dists: Vec<&[f32]> = var
                .vucs
                .iter()
                .map(|&v| stage_dists[v as usize].as_slice())
                .collect();
            let pred = vote(&dists, cati.config.vote_threshold).class;
            m.record(truth, pred);
        }
    }
    (m.weighted_avg(), m)
}

/// End-to-end accuracies of one extraction at both granularities
/// (paper Table VI): `(vuc_accuracy, vuc_n, var_accuracy, var_n)`.
pub fn pipeline_accuracy(cati: &Cati, ex: &Extraction) -> (f64, u64, f64, u64) {
    let eval = cati.evaluate(ex);
    let mut vuc_ok = 0u64;
    let mut vuc_n = 0u64;
    for (vuc, pred) in ex.vucs.iter().zip(&eval.vuc_preds) {
        let Some(class) = vuc.class(&ex.vars) else {
            continue;
        };
        vuc_n += 1;
        vuc_ok += u64::from(class == *pred);
    }
    let mut var_ok = 0u64;
    let mut var_n = 0u64;
    for (var, pred) in ex.vars.iter().zip(&eval.var_preds) {
        let Some(class) = var.class else { continue };
        var_n += 1;
        var_ok += u64::from(class == *pred);
    }
    let div = |a: u64, b: u64| if b == 0 { 0.0 } else { a as f64 / b as f64 };
    (div(vuc_ok, vuc_n), vuc_n, div(var_ok, var_n), var_n)
}
