//! The end-to-end CATI pipeline: train on a corpus, evaluate on
//! labeled extractions, infer types from unseen stripped binaries.

use crate::artifact_cache::ArtifactCache;
use crate::checkpoint::{CheckpointDir, TrainIdentity};
use crate::config::Config;
use crate::dataset::{embedding_sentences, Dataset};
use crate::metrics::{Confusion, Prf};
use crate::multistage::{MultiStage, StreamError, StreamOptions};
use crate::session::EmbeddedExtraction;
use crate::shards::{write_dataset_shards, ShardError, ShardSet};
use crate::vote::{vote, VoteResult};
use cati_analysis::{
    extract_lenient_mode_observed, extract_mode_observed, Coverage, Diagnostics, ExtractError,
    Extraction, FeatureView, VarKey,
};
use cati_asm::binary::Binary;
use cati_dwarf::{StageId, TypeClass};
use cati_embedding::{VucEmbedder, Word2Vec};
use cati_nn::{argmax, QuantMode, Tensor};
use cati_obs::metrics::UNIT_BUCKETS;
use cati_obs::{Event, Observer, SpanGuard};
use cati_synbin::BuiltBinary;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A trained CATI system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cati {
    /// Configuration used for training.
    pub config: Config,
    /// The instruction embedder.
    pub embedder: VucEmbedder,
    /// The six stage classifiers.
    pub stages: MultiStage,
}

/// Per-VUC and per-variable predictions for one extraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Leaf distributions, one 19-class row per VUC.
    pub vuc_dists: Tensor,
    /// Argmax class of each VUC.
    pub vuc_preds: Vec<TypeClass>,
    /// Voted class of each variable (parallel to `Extraction::vars`).
    pub var_preds: Vec<TypeClass>,
    /// The full Eq. 4 vote of each variable (parallel to
    /// `Extraction::vars`), so downstream consumers — inference
    /// confidence above all — reuse the outcome instead of re-voting
    /// the identical distributions.
    pub votes: Vec<VoteResult>,
}

/// One inferred variable of a stripped binary — the system's final
/// user-facing output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferredVar {
    /// Location of the variable.
    pub key: VarKey,
    /// Predicted type class.
    pub class: TypeClass,
    /// Mean (clipped) vote share of the winning class.
    pub confidence: f32,
    /// Number of VUCs that voted.
    pub vuc_count: u32,
}

/// The outcome of a lenient inference run: always produced, with the
/// coverage and diagnostics needed to judge how partial it is.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InferReport {
    /// Inferred variables for every function that survived.
    pub vars: Vec<InferredVar>,
    /// How much of the binary was actually processed.
    pub coverage: Coverage,
    /// Non-fatal findings, in emission order.
    pub diagnostics: Diagnostics,
}

impl Cati {
    /// Trains the full pipeline on `train` binaries: extraction →
    /// Word2Vec → six stage CNNs. `obs` receives typed telemetry:
    /// phase spans (`extract`, `embed`, `train.<stage>`), extraction
    /// counters, per-epoch losses, and human-readable progress
    /// messages. Pass `&cati_obs::NOOP` (or any legacy line callback
    /// wrapped in [`cati_obs::FnObserver`]) when telemetry is not
    /// wanted; the trained system is bit-identical either way.
    pub fn train(train: &[BuiltBinary], config: &Config, obs: &dyn Observer) -> Cati {
        config.with_threads(|| {
            let mut rng = StdRng::seed_from_u64(config.seed);
            cati_obs::info!(obs, "extracting {} training binaries", train.len());
            let dataset = {
                let _span = SpanGuard::enter(obs, "extract");
                Dataset::from_binaries_mode(
                    train,
                    FeatureView::WithSymbols,
                    config.context_mode,
                    None,
                    obs,
                )
            };
            cati_obs::info!(
                obs,
                "extracted {} variables / {} VUCs",
                dataset.var_count(),
                dataset.vuc_count()
            );
            let embedder = {
                let _span = SpanGuard::enter(obs, "embed");
                let sentences = embedding_sentences(train, config.max_sentences, &mut rng);
                cati_obs::info!(obs, "training Word2Vec on {} sentences", sentences.len());
                VucEmbedder::new(Word2Vec::train_observed(&sentences, config.w2v, obs))
            };
            let stages = MultiStage::train(&dataset, &embedder, config, obs);
            Cati {
                config: *config,
                embedder,
                stages,
            }
        })
    }

    /// [`Cati::train`] out-of-core, with epoch checkpoint/resume: the
    /// embedded training samples are streamed to a digest-checked
    /// shard set under `ckpt_dir/shards` and trained from disk, so
    /// peak memory is bounded by the model plus one shard buffer —
    /// never by corpus size — and every stage checkpoints atomically
    /// at every epoch boundary. The trained system is **bit-identical**
    /// to [`Cati::train`] on the same inputs (see
    /// [`MultiStage::train_streamed`] for why), and a run resumed
    /// after an interruption — even a hard kill mid-epoch — finishes
    /// byte-identical to an uninterrupted one.
    ///
    /// With `opts.resume`, completed phases are loaded instead of
    /// recomputed: the persisted embedder skips extraction + Word2Vec,
    /// a sealed shard set is re-verified and reused (an unsealed one —
    /// killed mid-write — is rebuilt), and each stage restarts from
    /// its last checkpointed epoch. Returns `Ok(None)` when
    /// `opts.stop_after_epoch` paused the run early; resume later to
    /// finish.
    ///
    /// # Errors
    ///
    /// Fails with a typed [`StreamError`] on shard or checkpoint
    /// corruption, I/O failure, or a checkpoint directory belonging to
    /// a different configuration or corpus.
    pub fn train_streamed(
        train: &[BuiltBinary],
        config: &Config,
        ckpt_dir: &Path,
        opts: StreamOptions,
        obs: &dyn Observer,
    ) -> Result<Option<Cati>, StreamError> {
        config.with_threads(|| {
            let ckpt = CheckpointDir::open(ckpt_dir)?;
            let shards_dir = ckpt.shards_dir();
            let saved = if opts.resume {
                ckpt.load_embedder()?
            } else {
                None
            };
            let (embedder, shards) = match saved {
                // Resume with the embedder phase already done: reuse
                // the sealed shard set, or rebuild it if the run died
                // before the manifest sealed (shards are written after
                // the embedder, so this is the only partial state).
                Some(embedder) => match ShardSet::open(&shards_dir) {
                    Ok(shards) => (embedder, shards),
                    Err(ShardError::Io { ref err, .. })
                        if err.kind() == std::io::ErrorKind::NotFound =>
                    {
                        let dataset = {
                            let _span = SpanGuard::enter(obs, "extract");
                            Dataset::from_binaries_mode(
                                train,
                                FeatureView::WithSymbols,
                                config.context_mode,
                                None,
                                obs,
                            )
                        };
                        write_dataset_shards(&dataset, &embedder, &shards_dir, 0, obs)?;
                        (embedder, ShardSet::open(&shards_dir)?)
                    }
                    Err(e) => return Err(e.into()),
                },
                None => {
                    let mut rng = StdRng::seed_from_u64(config.seed);
                    cati_obs::info!(obs, "extracting {} training binaries", train.len());
                    let dataset = {
                        let _span = SpanGuard::enter(obs, "extract");
                        Dataset::from_binaries_mode(
                            train,
                            FeatureView::WithSymbols,
                            config.context_mode,
                            None,
                            obs,
                        )
                    };
                    let embedder = {
                        let _span = SpanGuard::enter(obs, "embed");
                        let sentences = embedding_sentences(train, config.max_sentences, &mut rng);
                        cati_obs::info!(obs, "training Word2Vec on {} sentences", sentences.len());
                        VucEmbedder::new(Word2Vec::train_observed(&sentences, config.w2v, obs))
                    };
                    ckpt.save_embedder(&embedder)?;
                    let rows = {
                        let _span = SpanGuard::enter(obs, "shard");
                        write_dataset_shards(&dataset, &embedder, &shards_dir, 0, obs)?
                    };
                    cati_obs::info!(obs, "streamed {rows} samples into on-disk shards");
                    (embedder, ShardSet::open(&shards_dir)?)
                }
            };
            let fingerprint = crate::artifact_cache::embedder_fingerprint(&embedder).to_string();
            if shards.fingerprint() != fingerprint {
                return Err(ShardError::Inconsistent {
                    path: shards_dir.join(crate::shards::SHARD_MANIFEST),
                    detail: "shard set was embedded by a different model".to_string(),
                }
                .into());
            }
            let identity = TrainIdentity {
                config: config_digest(config),
                data: shards.identity().to_string(),
            };
            let stages = MultiStage::train_streamed(&shards, config, &ckpt, &identity, opts, obs)?;
            Ok(stages.map(|stages| Cati {
                config: *config,
                embedder,
                stages,
            }))
        })
    }

    /// Leaf distribution (19 classes) of one generalized window.
    pub fn predict_window(&self, insns: &[cati_asm::generalize::GenInsn]) -> Vec<f32> {
        let x = self.embedder.embed_window(insns);
        self.stages.leaf_distribution(&x)
    }

    /// Evaluates one labeled extraction: per-VUC distributions and
    /// per-variable votes. All six stages run as batched passes over
    /// the whole extraction; votes index the shared distribution
    /// table by reference instead of cloning per-variable copies.
    pub fn evaluate(&self, ex: &Extraction) -> Evaluation {
        self.evaluate_observed(ex, &cati_obs::NOOP)
    }

    /// [`Cati::evaluate`] with telemetry: an `evaluate` span, an
    /// `embed.windows` counter, vote clip-rate counters
    /// (`vote.clipped` / `vote.considered`), and a winning-share
    /// histogram (`vote.confidence`). The evaluation is bit-identical
    /// to the unobserved path for any observer.
    pub fn evaluate_observed(&self, ex: &Extraction, obs: &dyn Observer) -> Evaluation {
        self.config.with_threads(|| {
            let session = EmbeddedExtraction::new_observed(&self.embedder, ex, obs);
            self.evaluate_session_inner(&session, obs)
        })
    }

    /// Evaluates a pre-embedded session — no re-embedding. Shared by
    /// every consumer that already holds an [`EmbeddedExtraction`].
    pub fn evaluate_session(
        &self,
        session: &EmbeddedExtraction<'_>,
        obs: &dyn Observer,
    ) -> Evaluation {
        self.config
            .with_threads(|| self.evaluate_session_inner(session, obs))
    }

    /// [`Cati::evaluate_session`] without the thread-pool scope, so
    /// callers that already installed one don't nest pools.
    fn evaluate_session_inner(
        &self,
        session: &EmbeddedExtraction<'_>,
        obs: &dyn Observer,
    ) -> Evaluation {
        let _span = SpanGuard::enter(obs, "evaluate");
        let vuc_dists = self.stages.leaf_distributions_batch(session.embedded());
        self.vote_dists(session.extraction(), vuc_dists, obs)
    }

    /// Evaluates an extraction from **precomputed** leaf distributions
    /// (one 19-class row per VUC, e.g. a per-request slice of a
    /// cross-request micro-batch). Rows must be exactly what
    /// [`MultiStage::leaf_distributions_batch`] yields for the
    /// extraction's embedded VUCs; per-row classification is
    /// row-independent, so a slice of a larger batch is bit-identical
    /// to a dedicated pass.
    ///
    /// # Panics
    ///
    /// Panics if `vuc_dists` is not parallel to `ex.vucs`.
    pub fn evaluate_dists(
        &self,
        ex: &Extraction,
        vuc_dists: Tensor,
        obs: &dyn Observer,
    ) -> Evaluation {
        assert_eq!(
            vuc_dists.rows(),
            ex.vucs.len(),
            "one distribution row per VUC: got {} rows for {} VUCs",
            vuc_dists.rows(),
            ex.vucs.len()
        );
        self.vote_dists(ex, vuc_dists, obs)
    }

    /// The voting half of an evaluation: per-VUC argmax plus the
    /// Eq. 3/4 per-variable vote over `vuc_dists`. Shared by the
    /// session paths and [`Cati::evaluate_dists`] so the batched
    /// serve path cannot drift from one-shot inference.
    fn vote_dists(&self, ex: &Extraction, vuc_dists: Tensor, obs: &dyn Observer) -> Evaluation {
        let vuc_preds: Vec<TypeClass> = vuc_dists
            .rows_iter()
            .map(|d| TypeClass::ALL[argmax(d)])
            .collect();
        obs.event(&Event::RegisterHistogram {
            name: "vote.confidence",
            bounds: &UNIT_BUCKETS,
        });
        let mut clipped = 0u64;
        let mut considered = 0u64;
        let mut votes = Vec::with_capacity(ex.vars.len());
        let var_preds = ex
            .vars
            .iter()
            .map(|var| {
                let dists: Vec<&[f32]> = var
                    .vucs
                    .iter()
                    .map(|&v| vuc_dists.row(v as usize))
                    .collect();
                let result = vote(&dists, self.config.vote_threshold);
                clipped += u64::from(result.clipped);
                considered += (dists.len() * result.totals.len()) as u64;
                obs.event(&Event::Observe {
                    name: "vote.confidence",
                    value: f64::from(result.winning_share(dists.len())),
                });
                let class = TypeClass::ALL[result.class];
                votes.push(result);
                class
            })
            .collect();
        obs.event(&Event::Counter {
            name: "vote.vars",
            delta: ex.vars.len() as u64,
        });
        obs.event(&Event::Counter {
            name: "vote.clipped",
            delta: clipped,
        });
        obs.event(&Event::Counter {
            name: "vote.considered",
            delta: considered,
        });
        Evaluation {
            vuc_dists,
            vuc_preds,
            var_preds,
            votes,
        }
    }

    /// Runs the full inference pipeline on a stripped binary: locate
    /// variables, extract VUCs, classify, vote.
    ///
    /// # Errors
    ///
    /// Fails if the binary's text section does not decode.
    pub fn infer(&self, binary: &Binary) -> Result<Vec<InferredVar>, ExtractError> {
        self.infer_observed(binary, &cati_obs::NOOP)
    }

    /// [`Cati::infer`] with telemetry: an `infer` span plus the
    /// extraction counters and vote metrics of the inner phases. The
    /// inferences are bit-identical to the unobserved path for any
    /// observer.
    ///
    /// # Errors
    ///
    /// Fails if the binary's text section does not decode.
    pub fn infer_observed(
        &self,
        binary: &Binary,
        obs: &dyn Observer,
    ) -> Result<Vec<InferredVar>, ExtractError> {
        self.infer_cached(binary, None, obs)
    }

    /// [`Cati::infer_observed`] with an optional on-disk
    /// [`ArtifactCache`]: the extraction and its embedded tensors are
    /// loaded from the cache when their content keys match (and
    /// stored after computing otherwise). Inference output is
    /// bit-identical with or without a cache — entries hold exactly
    /// what the pure extraction/embedding functions compute.
    ///
    /// # Errors
    ///
    /// Fails if the binary's text section does not decode.
    pub fn infer_cached(
        &self,
        binary: &Binary,
        cache: Option<&ArtifactCache>,
        obs: &dyn Observer,
    ) -> Result<Vec<InferredVar>, ExtractError> {
        let _span = SpanGuard::enter(obs, "infer");
        let mode = self.config.context_mode;
        let ex = match cache {
            Some(cache) => cache.extraction_mode(binary, FeatureView::Stripped, mode, obs)?,
            None => extract_mode_observed(binary, FeatureView::Stripped, mode, obs)?,
        };
        let eval = self.config.with_threads(|| {
            let session = match cache {
                Some(c) => EmbeddedExtraction::from_embeddings(
                    &ex,
                    c.embeddings_mode(
                        binary,
                        FeatureView::Stripped,
                        mode,
                        &self.embedder,
                        &ex,
                        obs,
                    ),
                ),
                None => EmbeddedExtraction::new_observed(&self.embedder, &ex, obs),
            };
            self.evaluate_session_inner(&session, obs)
        });
        Ok(inferred_vars(&ex, &eval))
    }

    /// Final user-facing inference output from an extraction plus
    /// precomputed leaf distributions — the tail of the serve
    /// daemon's cross-request micro-batch: many extractions are
    /// embedded, their rows concatenated through one
    /// [`MultiStage::leaf_distributions_batch`] pass, and each
    /// request's row slice flows through here. Bit-identical to
    /// [`Cati::infer`] on the same binary because both end in
    /// [`Cati::evaluate_dists`]'s voting path.
    ///
    /// # Panics
    ///
    /// Panics if `vuc_dists` is not parallel to `ex.vucs`.
    pub fn infer_prepared(
        &self,
        ex: &Extraction,
        vuc_dists: Tensor,
        obs: &dyn Observer,
    ) -> Vec<InferredVar> {
        let eval = self.evaluate_dists(ex, vuc_dists, obs);
        inferred_vars(ex, &eval)
    }

    /// Fault-isolated inference: never fails, reports what it skipped.
    ///
    /// See [`Cati::infer_lenient_observed`].
    pub fn infer_lenient(&self, binary: &Binary) -> InferReport {
        self.infer_lenient_observed(binary, &cati_obs::NOOP)
    }

    /// [`Cati::infer`] that degrades instead of refusing: extraction
    /// runs through [`cati_analysis::extract_lenient_observed`], so a
    /// corrupt debug section, undecodable function bodies, or decode
    /// gaps become [`Diagnostics`] and a reduced [`Coverage`] rather
    /// than an error. On a binary the strict path accepts, the
    /// returned `vars` are **bit-identical** to [`Cati::infer`]'s and
    /// the coverage is complete.
    pub fn infer_lenient_observed(&self, binary: &Binary, obs: &dyn Observer) -> InferReport {
        let _span = SpanGuard::enter(obs, "infer");
        let lenient = extract_lenient_mode_observed(
            binary,
            FeatureView::Stripped,
            self.config.context_mode,
            obs,
        );
        let eval = self.config.with_threads(|| {
            let session =
                EmbeddedExtraction::new_observed(&self.embedder, &lenient.extraction, obs);
            self.evaluate_session_inner(&session, obs)
        });
        InferReport {
            vars: inferred_vars(&lenient.extraction, &eval),
            coverage: lenient.coverage,
            diagnostics: lenient.diagnostics,
        }
    }

    /// Serializes the trained system to `path` as a CATI1 binary
    /// container (see [`crate::model_io`]), atomically: the model is
    /// written to a `.tmp` sibling and renamed into place, so a crash
    /// mid-write never leaves a truncated model at the target path.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures, each annotated with the path (and
    /// payload size) involved.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        crate::model_io::save_cati1(self, path.as_ref())
    }

    /// Serializes the trained system in the legacy JSON format that
    /// [`Cati::load`] still accepts — kept for migration tooling and
    /// format-compatibility tests. Written atomically like
    /// [`Cati::save`].
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization failures, each annotated with
    /// the path (and payload size) involved.
    pub fn save_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        let json = serde_json::to_vec(self).map_err(|e| {
            std::io::Error::other(format!("serialize model for {}: {e}", path.display()))
        })?;
        crate::model_io::save_bytes_atomic(&json, path)
    }

    /// Loads a system saved by [`Cati::save`] — either a CATI1 binary
    /// container or a legacy JSON model; the format is sniffed from
    /// the first bytes.
    ///
    /// # Errors
    ///
    /// Propagates I/O and decoding failures. Parse failures are
    /// reported as [`std::io::ErrorKind::InvalidData`] and carry the
    /// path, the file size, and what failed (truncation bounds,
    /// checksum mismatches, or the JSON parser's position); a file in
    /// neither format gets a hex preview of its first bytes and a
    /// "expected CATI1 magic or JSON model" hint.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Cati> {
        crate::model_io::load_model(path.as_ref())
    }

    /// Quantizes every weight matrix in place — both Word2Vec
    /// embedding matrices and all stage-CNN filter/projection weights
    /// (biases excepted) — snapping them to the chosen grid and
    /// dequantizing back to `f32` (see [`cati_nn::quant`]). The
    /// opt-in quantized inference mode: still fully deterministic,
    /// but *not* bit-identical to the f32 model; the accuracy cost is
    /// measured by the bench parity harness and recorded in the run
    /// manifest. Applied before any inference runs, so the embedder's
    /// column cache never holds full-precision floats (it is cleared
    /// here).
    pub fn quantize(&mut self, mode: QuantMode) {
        self.embedder.quantize(mode);
        for (_, cnn) in self.stages.models_mut() {
            cnn.quantize(mode);
        }
    }

    /// How many weight tensors currently read straight out of a
    /// memory-mapped CATI1 v2 container (zero for trained or
    /// JSON/v1-loaded models) — diagnostics for the zero-copy load
    /// tests.
    pub fn mapped_param_count(&self) -> usize {
        self.embedder.mapped_param_count()
            + self
                .stages
                .models()
                .iter()
                .map(|(_, cnn)| cnn.mapped_param_count())
                .sum::<usize>()
    }
}

/// Digest of the serialized training configuration — half of the
/// [`TrainIdentity`] stamped into every checkpoint.
fn config_digest(config: &Config) -> String {
    match serde_json::to_vec(config) {
        Ok(bytes) => cati_analysis::digest_bytes(&bytes).to_string(),
        // Config is a plain struct of numbers; serialization cannot
        // fail, but a fixed sentinel keeps this total.
        Err(_) => "config-unserializable".to_string(),
    }
}

/// Maps an evaluation back onto its extraction's variables — the
/// final user-facing inference output. Shared by the strict and
/// lenient paths so they cannot diverge on a binary both accept.
fn inferred_vars(ex: &Extraction, eval: &Evaluation) -> Vec<InferredVar> {
    ex.vars
        .iter()
        .zip(&eval.var_preds)
        .zip(&eval.votes)
        .map(|((var, &class), result)| {
            // The evaluation already voted this variable (Eq. 4);
            // its winning share IS the confidence.
            InferredVar {
                key: var.key,
                class,
                confidence: result.winning_share(var.vucs.len()),
                vuc_count: var.vucs.len() as u32,
            }
        })
        .collect()
}

/// Per-stage evaluation at VUC granularity: each stage classifier is
/// scored on the samples whose ground truth reaches it (paper Table
/// III). Takes pre-embedded sessions, so an extraction shared across
/// every stage and table is embedded exactly once.
pub fn stage_vuc_metrics(
    cati: &Cati,
    sessions: &[EmbeddedExtraction<'_>],
    stage: StageId,
) -> (Prf, Confusion) {
    let mut m = Confusion::new(stage.num_classes());
    for session in sessions {
        let ex = session.extraction();
        // Only VUCs whose ground truth reaches this stage are scored;
        // batch the CNN over exactly that subset (borrowed rows).
        let scored: Vec<(usize, usize)> = ex
            .vucs
            .iter()
            .enumerate()
            .filter_map(|(i, vuc)| {
                let class = vuc.class(&ex.vars)?;
                Some((i, stage.label_of(class)?))
            })
            .collect();
        let sel: Vec<&[f32]> = scored.iter().map(|&(i, _)| session.embedding(i)).collect();
        let probs = cati.stages.stage_probs_batch(stage, &sel);
        for (&(_, truth), probs) in scored.iter().zip(probs.rows_iter()) {
            m.record(truth, argmax(probs));
        }
    }
    (m.weighted_avg(), m)
}

/// Per-stage evaluation at variable granularity, after voting over
/// each variable's VUCs with the stage's own distributions (paper
/// Table IV). Takes pre-embedded sessions like [`stage_vuc_metrics`].
pub fn stage_var_metrics(
    cati: &Cati,
    sessions: &[EmbeddedExtraction<'_>],
    stage: StageId,
) -> (Prf, Confusion) {
    let mut m = Confusion::new(stage.num_classes());
    for session in sessions {
        let ex = session.extraction();
        let stage_dists = cati.stages.stage_probs_batch(stage, session.embedded());
        for var in &ex.vars {
            let Some(class) = var.class else { continue };
            let Some(truth) = stage.label_of(class) else {
                continue;
            };
            let dists: Vec<&[f32]> = var
                .vucs
                .iter()
                .map(|&v| stage_dists.row(v as usize))
                .collect();
            let pred = vote(&dists, cati.config.vote_threshold).class;
            m.record(truth, pred);
        }
    }
    (m.weighted_avg(), m)
}

/// End-to-end accuracies of one extraction at both granularities
/// (paper Table VI): `(vuc_accuracy, vuc_n, var_accuracy, var_n)`.
pub fn pipeline_accuracy(cati: &Cati, ex: &Extraction) -> (f64, u64, f64, u64) {
    let session = EmbeddedExtraction::new(&cati.embedder, ex);
    pipeline_accuracy_session(cati, &session)
}

/// [`pipeline_accuracy`] over a pre-embedded session, for callers
/// that share the session with other consumers.
pub fn pipeline_accuracy_session(
    cati: &Cati,
    session: &EmbeddedExtraction<'_>,
) -> (f64, u64, f64, u64) {
    let ex = session.extraction();
    let eval = cati.evaluate_session(session, &cati_obs::NOOP);
    let mut vuc_ok = 0u64;
    let mut vuc_n = 0u64;
    for (vuc, pred) in ex.vucs.iter().zip(&eval.vuc_preds) {
        let Some(class) = vuc.class(&ex.vars) else {
            continue;
        };
        vuc_n += 1;
        vuc_ok += u64::from(class == *pred);
    }
    let mut var_ok = 0u64;
    let mut var_n = 0u64;
    for (var, pred) in ex.vars.iter().zip(&eval.var_preds) {
        let Some(class) = var.class else { continue };
        var_n += 1;
        var_ok += u64::from(class == *pred);
    }
    let div = |a: u64, b: u64| if b == 0 { 0.0 } else { a as f64 / b as f64 };
    (div(vuc_ok, vuc_n), vuc_n, div(var_ok, var_n), var_n)
}
