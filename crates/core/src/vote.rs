//! Confidence-based voting (paper §V-B, Eq. 2–4).
//!
//! A variable's VUCs each yield a class distribution. Confidences at
//! or above the threshold (0.9) are promoted to 1.0 so that confident
//! predictions dominate, then the per-class sums are argmaxed.

use cati_nn::argmax;
use serde::{Deserialize, Serialize};

/// The outcome of voting over one variable's VUC distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoteResult {
    /// Winning class index.
    pub class: usize,
    /// Per-class accumulated (clipped) confidence.
    pub totals: Vec<f32>,
    /// How many confidences Eq. 3 promoted to 1.0 (telemetry: the
    /// clip rate is `clipped / (VUCs × classes)`).
    pub clipped: u32,
}

impl VoteResult {
    /// The winning class's share of a perfect score — its accumulated
    /// confidence over the `vucs` that voted, clamped to 1.0 (clipping
    /// can push a total past `vucs`). This is the single source for
    /// both the confidence histogram observation and
    /// `InferredVar.confidence`, so the two can never drift apart.
    pub fn winning_share(&self, vucs: usize) -> f32 {
        (self.totals[self.class] / vucs as f32).min(1.0)
    }
}

/// Eq. 3 for a single confidence: `(clipped value, was it promoted)`.
/// The one place the clipping rule lives — [`clip_confidences`] and
/// [`vote`] both call it, so they cannot drift apart.
///
/// A NaN confidence would silently poison the vote (it fails
/// `p >= threshold`, then propagates through `totals` while
/// `total_cmp` still orders it), so debug builds reject it here.
#[inline]
fn clip_one(p: f32, threshold: f32) -> (f32, bool) {
    debug_assert!(!p.is_nan(), "NaN confidence fed to Eq. 3 clipping");
    if p >= threshold {
        (1.0, true)
    } else {
        (p, false)
    }
}

/// Applies Eq. 3's clipping to one distribution.
pub fn clip_confidences(probs: &[f32], threshold: f32) -> Vec<f32> {
    probs.iter().map(|&p| clip_one(p, threshold).0).collect()
}

/// Votes over the distributions of one variable's VUCs (Eq. 4).
///
/// Rows may be anything slice-like (`Vec<f32>`, `&[f32]`, …), so
/// callers holding a table of all VUC distributions can vote over
/// borrowed rows instead of cloning each variable's subset.
///
/// # Panics
///
/// Panics if `distributions` is empty or rows have inconsistent
/// lengths.
pub fn vote<D: AsRef<[f32]>>(distributions: &[D], threshold: f32) -> VoteResult {
    assert!(!distributions.is_empty(), "cannot vote over zero VUCs");
    let classes = distributions[0].as_ref().len();
    let mut totals = vec![0.0f32; classes];
    let mut clipped = 0u32;
    for dist in distributions {
        let dist = dist.as_ref();
        assert_eq!(dist.len(), classes, "inconsistent class counts");
        for (t, &p) in totals.iter_mut().zip(dist) {
            let (v, promoted) = clip_one(p, threshold);
            *t += v;
            clipped += u32::from(promoted);
        }
    }
    let class = argmax(&totals);
    VoteResult {
        class,
        totals,
        clipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clipping_promotes_confident_rows() {
        let clipped = clip_confidences(&[0.95, 0.05], 0.9);
        assert_eq!(clipped, vec![1.0, 0.05]);
        let untouched = clip_confidences(&[0.5, 0.5], 0.9);
        assert_eq!(untouched, vec![0.5, 0.5]);
    }

    #[test]
    fn majority_wins() {
        let dists = vec![vec![0.6, 0.4], vec![0.75, 0.25], vec![0.2, 0.8]];
        let r = vote(&dists, 0.9);
        assert_eq!(r.class, 0);
        assert!((r.totals[0] - 1.55).abs() < 1e-6);
    }

    #[test]
    fn one_confident_vuc_outweighs_two_borderline() {
        // Paper's rationale: clipping "avoids letting the borderline
        // result control the decision". Unclipped sums favor class 1
        // (1.47 vs 1.53); promoting the confident 0.91 to 1.0 flips
        // the decision to class 0 (1.56 vs 1.53).
        let dists = vec![vec![0.91, 0.09], vec![0.28, 0.72], vec![0.28, 0.72]];
        let r = vote(&dists, 0.9);
        assert_eq!(r.class, 0, "totals {:?}", r.totals);
    }

    #[test]
    fn without_clipping_borderline_majority_would_win() {
        let dists = vec![vec![0.91, 0.09], vec![0.28, 0.72], vec![0.28, 0.72]];
        // threshold 1.1 disables clipping entirely.
        let r = vote(&dists, 1.1);
        assert_eq!(r.class, 1);
    }

    #[test]
    fn single_vuc_vote_is_its_argmax() {
        let r = vote(&[vec![0.2, 0.3, 0.5]], 0.9);
        assert_eq!(r.class, 2);
    }

    #[test]
    #[should_panic(expected = "cannot vote over zero VUCs")]
    fn empty_vote_panics() {
        vote::<Vec<f32>>(&[], 0.9);
    }

    #[test]
    fn clipped_counts_promotions() {
        let dists = vec![vec![0.91, 0.09], vec![0.95, 0.05], vec![0.3, 0.7]];
        assert_eq!(vote(&dists, 0.9).clipped, 2);
        assert_eq!(vote(&dists, 1.1).clipped, 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "NaN confidence")]
    fn nan_probability_is_rejected_in_debug() {
        vote(&[vec![f32::NAN, 0.5]], 0.9);
    }

    #[test]
    fn borrowed_rows_vote_like_owned_rows() {
        let owned = vec![vec![0.91, 0.09], vec![0.3, 0.7]];
        let borrowed: Vec<&[f32]> = owned.iter().map(Vec::as_slice).collect();
        assert_eq!(vote(&owned, 0.9), vote(&borrowed, 0.9));
    }
}
