//! The CATI1 binary model container.
//!
//! A trained [`Cati`] used to persist as one serde-JSON blob; loading
//! it paid a full-text parse of every weight. The CATI1 container
//! instead stores the weights as named little-endian `f32` tensors and
//! keeps JSON only for the small structured head (configuration and
//! vocabulary). Layout (all integers little-endian; see DESIGN.md §12):
//!
//! ```text
//! magic        8 bytes   "CATI1\r\n\0"
//! version      u32       container version (currently 1)
//! n_sections   u32
//! section table, per section:
//!     name_len u32
//!     name     name_len bytes (UTF-8)
//!     offset   u64       absolute file offset of the payload
//!     len      u64       payload length in bytes
//!     digest   u128      FNV-1a/128 of the payload
//! table digest u128      FNV-1a/128 over magic, version, count and
//!                        every table entry (names length-prefixed)
//! payloads     concatenated section payloads, in table order
//! ```
//!
//! Two sections: `meta` (JSON: pipeline config, Word2Vec config,
//! vocabulary, and the `(stage, cnn-config)` list) and `tensors`
//! (binary: tensor count, then per tensor a length-prefixed name, a
//! u64 element count, and the raw `f32` data). Tensor names are
//! `w2v.input`, `w2v.output`, and `stage.<stage>.p0`‥`p7` in
//! [`TextCnn::params`] order. Every write is a pure function of the
//! model, so re-saving an unchanged model is byte-identical.
//!
//! [`load_model`] sniffs the format: CATI1 by magic, legacy JSON by a
//! leading `{`; anything else fails with a hex preview of the first
//! bytes. Loaded models are bit-identical to what was saved, whichever
//! format carried them.

use crate::pipeline::Cati;
use cati_analysis::{digest_bytes, Fnv128};
use cati_dwarf::StageId;
use cati_embedding::{Vocab, VucEmbedder, W2vConfig, Word2Vec};
use cati_nn::{TextCnn, TextCnnConfig};
use serde::Serialize;
use std::collections::HashMap;
use std::path::Path;

/// The 8-byte CATI1 magic. The `\r\n` catches newline-translating
/// transports, the trailing NUL catches C-string truncation.
pub const CATI1_MAGIC: [u8; 8] = *b"CATI1\r\n\0";

/// Container format version written by [`encode_cati1`].
pub const CATI1_VERSION: u32 = 1;

/// Whether `bytes` carry the CATI1 magic.
pub fn is_cati1(bytes: &[u8]) -> bool {
    bytes.starts_with(&CATI1_MAGIC)
}

// ---------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------

/// The named flat weight tensors of a trained system, in the fixed
/// container order.
fn weight_tensors(cati: &Cati) -> Vec<(String, Vec<f32>)> {
    let model = cati.embedder.model();
    let mut tensors = vec![
        ("w2v.input".to_string(), model.input_matrix().to_vec()),
        ("w2v.output".to_string(), model.output_matrix().to_vec()),
    ];
    for (stage, cnn) in cati.stages.models() {
        for (k, t) in cnn.params().into_iter().enumerate() {
            tensors.push((format!("stage.{stage}.p{k}"), t.to_vec()));
        }
    }
    tensors
}

/// The `meta` section payload: everything except the weights, as JSON.
fn meta_blob(cati: &Cati) -> Vec<u8> {
    let model = cati.embedder.model();
    let mut m = serde::Map::new();
    m.insert("config".to_string(), cati.config.to_value());
    m.insert("w2v".to_string(), model.cfg.to_value());
    m.insert("vocab".to_string(), model.vocab.to_value());
    let stages: Vec<serde::Value> = cati
        .stages
        .models()
        .iter()
        .map(|(stage, cnn)| {
            let mut s = serde::Map::new();
            s.insert("stage".to_string(), stage.to_value());
            s.insert("cfg".to_string(), cnn.cfg.to_value());
            serde::Value::Object(s)
        })
        .collect();
    m.insert("stages".to_string(), serde::Value::Array(stages));
    serde_json::to_vec(&serde::Value::Object(m)).unwrap_or_default()
}

/// The `tensors` section payload: count, then per tensor a
/// length-prefixed name, a u64 element count, and raw LE `f32` data.
fn tensor_blob(tensors: &[(String, Vec<f32>)]) -> Vec<u8> {
    let floats: usize = tensors.iter().map(|(_, t)| t.len()).sum();
    let mut out = Vec::with_capacity(4 + floats * 4 + tensors.len() * 24);
    out.extend_from_slice(&(tensors.len() as u32).to_le_bytes());
    for (name, data) in tensors {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
        for v in data {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Encodes a trained system as a CATI1 container.
pub fn encode_cati1(cati: &Cati) -> Vec<u8> {
    let sections: Vec<(&str, Vec<u8>)> = vec![
        ("meta", meta_blob(cati)),
        ("tensors", tensor_blob(&weight_tensors(cati))),
    ];
    let table_len: usize = sections.iter().map(|(n, _)| 4 + n.len() + 8 + 8 + 16).sum();
    let header_len = CATI1_MAGIC.len() + 4 + 4 + table_len + 16;
    let payload_len: usize = sections.iter().map(|(_, p)| p.len()).sum();
    let mut out = Vec::with_capacity(header_len + payload_len);
    out.extend_from_slice(&CATI1_MAGIC);
    out.extend_from_slice(&CATI1_VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    let mut hasher = Fnv128::new();
    hasher.update(&CATI1_MAGIC);
    hasher.update_u32(CATI1_VERSION);
    hasher.update_u32(sections.len() as u32);
    let mut offset = header_len as u64;
    for (name, payload) in &sections {
        let digest = digest_bytes(payload);
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&digest.0.to_le_bytes());
        hasher.update_field(name.as_bytes());
        hasher.update_u64(offset);
        hasher.update_u64(payload.len() as u64);
        hasher.update(&digest.0.to_le_bytes());
        offset += payload.len() as u64;
    }
    out.extend_from_slice(&hasher.finish().0.to_le_bytes());
    for (_, payload) in &sections {
        out.extend_from_slice(payload);
    }
    out
}

// ---------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------

/// A bounds-checked byte reader over the container.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(format!(
                "truncated container: {what} needs {n} bytes at offset {}, file has {}",
                self.pos,
                self.bytes.len()
            )),
        }
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        let b = self.take(8, what)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }

    fn u128(&mut self, what: &str) -> Result<u128, String> {
        let b = self.take(16, what)?;
        let mut buf = [0u8; 16];
        buf.copy_from_slice(b);
        Ok(u128::from_le_bytes(buf))
    }

    fn name(&mut self, what: &str) -> Result<String, String> {
        let len = self.u32(what)? as usize;
        if len > 4096 {
            return Err(format!("{what} name length {len} is implausible"));
        }
        String::from_utf8(self.take(len, what)?.to_vec())
            .map_err(|e| format!("{what} name is not UTF-8: {e}"))
    }
}

/// Splits the container into verified `(name, payload)` sections: the
/// table checksum, every section's bounds, and every section's payload
/// checksum must all hold.
fn read_sections(bytes: &[u8]) -> Result<Vec<(String, &[u8])>, String> {
    let mut cur = Cursor { bytes, pos: 0 };
    cur.take(CATI1_MAGIC.len(), "magic")?;
    let version = cur.u32("container version")?;
    if version != CATI1_VERSION {
        return Err(format!(
            "unsupported CATI1 container version {version} (this build reads {CATI1_VERSION})"
        ));
    }
    let count = cur.u32("section count")?;
    if count == 0 || count > 64 {
        return Err(format!("implausible section count {count}"));
    }
    let mut hasher = Fnv128::new();
    hasher.update(&CATI1_MAGIC);
    hasher.update_u32(version);
    hasher.update_u32(count);
    let mut table = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let name = cur.name("section")?;
        let offset = cur.u64("section offset")?;
        let len = cur.u64("section length")?;
        let digest = cur.u128("section digest")?;
        hasher.update_field(name.as_bytes());
        hasher.update_u64(offset);
        hasher.update_u64(len);
        hasher.update(&digest.to_le_bytes());
        table.push((name, offset, len, digest));
    }
    let recorded = cur.u128("table digest")?;
    if hasher.finish().0 != recorded {
        return Err("section table checksum mismatch (corrupt header)".to_string());
    }
    let mut sections = Vec::with_capacity(table.len());
    for (name, offset, len, digest) in table {
        let end = offset.checked_add(len).filter(|&e| e <= bytes.len() as u64);
        let Some(end) = end else {
            return Err(format!(
                "section {name} out of bounds: bytes {offset}..{} of a {}-byte file",
                offset.saturating_add(len),
                bytes.len()
            ));
        };
        let payload = &bytes[offset as usize..end as usize];
        if digest_bytes(payload).0 != digest {
            return Err(format!("section {name} checksum mismatch"));
        }
        sections.push((name, payload));
    }
    Ok(sections)
}

/// Parses the `tensors` payload into name → flat floats.
fn read_tensors(payload: &[u8]) -> Result<HashMap<String, Vec<f32>>, String> {
    let mut cur = Cursor {
        bytes: payload,
        pos: 0,
    };
    let count = cur.u32("tensor count")?;
    let mut tensors = HashMap::with_capacity(count as usize);
    for _ in 0..count {
        let name = cur.name("tensor")?;
        let floats = cur.u64(&format!("tensor {name} length"))? as usize;
        let n = floats
            .checked_mul(4)
            .ok_or_else(|| format!("tensor {name} length {floats} overflows"))?;
        let data = cur.take(n, &format!("tensor {name} data"))?;
        let values = data
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        tensors.insert(name, values);
    }
    Ok(tensors)
}

fn take_tensor(tensors: &mut HashMap<String, Vec<f32>>, name: &str) -> Result<Vec<f32>, String> {
    tensors
        .remove(name)
        .ok_or_else(|| format!("missing tensor {name}"))
}

/// Decodes a CATI1 container back into a trained system.
///
/// # Errors
///
/// Returns a description of the first structural problem found:
/// truncation, checksum mismatch, a missing section or tensor, or a
/// tensor whose shape disagrees with the recorded configuration.
pub fn decode_cati1(bytes: &[u8]) -> Result<Cati, String> {
    let sections = read_sections(bytes)?;
    let payload = |name: &str| -> Result<&[u8], String> {
        sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, p)| p)
            .ok_or_else(|| format!("missing section {name}"))
    };
    let meta: serde::Value = serde_json::from_slice(payload("meta")?)
        .map_err(|e| format!("meta section is not valid JSON: {e}"))?;
    let meta = serde::as_object_for(&meta, "CATI1 meta").map_err(|e| e.to_string())?;
    let config: crate::config::Config =
        serde::field(meta, "config", "CATI1 meta").map_err(|e| e.to_string())?;
    let w2v_cfg: W2vConfig = serde::field(meta, "w2v", "CATI1 meta").map_err(|e| e.to_string())?;
    let vocab: Vocab = serde::field(meta, "vocab", "CATI1 meta").map_err(|e| e.to_string())?;
    let stage_vals: Vec<serde::Value> =
        serde::field(meta, "stages", "CATI1 meta").map_err(|e| e.to_string())?;

    let mut tensors = read_tensors(payload("tensors")?)?;
    let input = take_tensor(&mut tensors, "w2v.input")?;
    let output = take_tensor(&mut tensors, "w2v.output")?;
    let w2v = Word2Vec::from_parts(vocab, w2v_cfg, input, output)?;

    let mut models = Vec::with_capacity(stage_vals.len());
    for v in &stage_vals {
        let m = serde::as_object_for(v, "CATI1 stage entry").map_err(|e| e.to_string())?;
        let stage: StageId =
            serde::field(m, "stage", "CATI1 stage entry").map_err(|e| e.to_string())?;
        let cfg: TextCnnConfig =
            serde::field(m, "cfg", "CATI1 stage entry").map_err(|e| e.to_string())?;
        let params = (0..8)
            .map(|k| take_tensor(&mut tensors, &format!("stage.{stage}.p{k}")))
            .collect::<Result<Vec<_>, _>>()?;
        let cnn = TextCnn::from_params(cfg, &params).map_err(|e| format!("stage {stage}: {e}"))?;
        models.push((stage, cnn));
    }
    if !tensors.is_empty() {
        let mut extra: Vec<&String> = tensors.keys().collect();
        extra.sort();
        return Err(format!("unexpected tensors in container: {extra:?}"));
    }
    Ok(Cati {
        config,
        embedder: VucEmbedder::new(w2v),
        stages: crate::multistage::MultiStage::from_models(models),
    })
}

// ---------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------

/// Writes `bytes` to `path` atomically (tmp + rename), annotating
/// failures with the path and payload size.
pub(crate) fn save_bytes_atomic(bytes: &[u8], path: &Path) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, bytes).map_err(|e| {
        std::io::Error::new(
            e.kind(),
            format!(
                "write model ({} bytes) to {}: {e}",
                bytes.len(),
                tmp.display()
            ),
        )
    })?;
    std::fs::rename(&tmp, path).map_err(|e| {
        std::io::Error::new(
            e.kind(),
            format!("rename {} -> {}: {e}", tmp.display(), path.display()),
        )
    })
}

/// Saves a trained system to `path` as a CATI1 container (atomically).
pub(crate) fn save_cati1(cati: &Cati, path: &Path) -> std::io::Result<()> {
    save_bytes_atomic(&encode_cati1(cati), path)
}

/// Loads a model file in either supported format, sniffing the bytes:
/// the CATI1 magic selects the binary container, a leading `{` (after
/// whitespace) the legacy JSON blob. Anything else fails with a hex
/// preview of the first bytes and a format hint.
pub(crate) fn load_model(path: &Path) -> std::io::Result<Cati> {
    let bytes = std::fs::read(path).map_err(|e| {
        std::io::Error::new(e.kind(), format!("read model {}: {e}", path.display()))
    })?;
    let parse_err = |detail: String| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "parse model {} ({} bytes): {detail}",
                path.display(),
                bytes.len()
            ),
        )
    };
    if is_cati1(&bytes) {
        decode_cati1(&bytes).map_err(parse_err)
    } else if bytes.iter().copied().find(|b| !b.is_ascii_whitespace()) == Some(b'{') {
        serde_json::from_slice(&bytes).map_err(|e| parse_err(e.to_string()))
    } else {
        let preview: Vec<String> = bytes.iter().take(8).map(|b| format!("{b:02x}")).collect();
        Err(parse_err(format!(
            "unrecognized model format (first bytes: {}); expected CATI1 magic or JSON model",
            preview.join(" ")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use cati_synbin::{build_corpus, CorpusConfig};

    fn tiny_cati() -> Cati {
        let corpus = build_corpus(&CorpusConfig::small(29));
        Cati::train(&corpus.train[..2], &Config::small(), &cati_obs::NOOP)
    }

    #[test]
    fn encode_decode_roundtrip_is_exact_and_deterministic() {
        let cati = tiny_cati();
        let bytes = encode_cati1(&cati);
        assert!(is_cati1(&bytes));
        assert_eq!(
            bytes,
            encode_cati1(&cati),
            "encoding must be a pure function"
        );
        let back = decode_cati1(&bytes).unwrap();
        assert_eq!(back, cati, "container roundtrip must be bit-exact");
        assert_eq!(
            encode_cati1(&back),
            bytes,
            "re-encoding must be byte-identical"
        );
    }

    #[test]
    fn corrupt_header_is_rejected() {
        let cati = tiny_cati();
        let mut bytes = encode_cati1(&cati);
        // Flip a bit in the first table entry's offset field (magic 8
        // + version 4 + count 4 + name_len 4 + "meta" 4 = offset 24):
        // the table checksum must catch it.
        bytes[24] ^= 1;
        let err = decode_cati1(&bytes).expect_err("corrupt header must not decode");
        assert!(err.contains("checksum"), "unexpected error: {err}");
    }

    #[test]
    fn truncated_section_is_rejected_with_bounds_context() {
        let cati = tiny_cati();
        let bytes = encode_cati1(&cati);
        let cut = bytes.len() - bytes.len() / 4;
        let err = decode_cati1(&bytes[..cut]).expect_err("truncated container must not decode");
        assert!(
            err.contains("out of bounds") || err.contains("truncated"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn tampered_payload_fails_its_section_checksum() {
        let cati = tiny_cati();
        let mut bytes = encode_cati1(&cati);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let err = decode_cati1(&bytes).expect_err("tampered payload must not decode");
        assert!(err.contains("checksum mismatch"), "unexpected error: {err}");
    }

    #[test]
    fn unknown_version_is_rejected() {
        let cati = tiny_cati();
        let mut bytes = encode_cati1(&cati);
        bytes[CATI1_MAGIC.len()] = 9;
        let err = decode_cati1(&bytes).expect_err("future version must not decode");
        assert!(err.contains("version 9"), "unexpected error: {err}");
    }
}
