//! The CATI1 binary model container.
//!
//! A trained [`Cati`] used to persist as one serde-JSON blob; loading
//! it paid a full-text parse of every weight. The CATI1 container
//! instead stores the weights as named little-endian `f32` tensors and
//! keeps JSON only for the small structured head (configuration and
//! vocabulary). Layout (all integers little-endian; see DESIGN.md
//! §12/§15):
//!
//! ```text
//! magic        8 bytes   "CATI1\r\n\0"
//! version      u32       container version (1 or 2)
//! n_sections   u32
//! section table, per section:
//!     name_len u32
//!     name     name_len bytes (UTF-8)
//!     offset   u64       absolute file offset of the payload
//!     len      u64       payload length in bytes
//!     digest   u128      FNV-1a/128 of the payload
//! table digest u128      FNV-1a/128 over magic, version, count and
//!                        every table entry (names length-prefixed)
//! payloads     section payloads, in table order (v1: packed;
//!              v2: each starting on a 64-byte file offset, with
//!              zero padding between)
//! ```
//!
//! Two sections: `meta` (JSON: pipeline config, Word2Vec config,
//! vocabulary, and the `(stage, cnn-config)` list) and `tensors`.
//! Tensor names are `w2v.input`, `w2v.output`, and
//! `stage.<stage>.p0`‥`p7` in [`TextCnn::params`] order. Every write
//! is a pure function of the model, so re-saving an unchanged model
//! is byte-identical.
//!
//! The `tensors` payload differs by version:
//!
//! - **v1** interleaves data with headers: count, then per tensor a
//!   length-prefixed name, a u64 element count, and the raw `f32`
//!   data. Simple, but tensor data lands at arbitrary offsets, so
//!   loading must copy.
//! - **v2** separates an index from a data region: count, then per
//!   tensor `{name_len, name, elems u64, rel_off u64}`, then zero
//!   padding so the data region starts on a 64-byte boundary, then
//!   each tensor's raw `f32` data at its `rel_off` — every `rel_off`
//!   64-byte aligned, with zero padding between tensors. Because v2
//!   section payloads also start on 64-byte *file* offsets, every
//!   tensor's absolute file offset is 64-byte aligned, so
//!   [`load_model`] can `mmap` the file and hand out weight slices
//!   that point straight into the page cache (zero-copy; see
//!   `cati_nn::mmap`).
//!
//! [`load_model`] sniffs the format: CATI1 by magic (v1 copies, v2
//! maps), legacy JSON by a leading `{`; anything else fails with a
//! hex preview of the first bytes. Loaded models are bit-identical to
//! what was saved, whichever format carried them. `cati convert`
//! migrates between all three.

use crate::pipeline::Cati;
use cati_analysis::{digest_bytes, Fnv128};
use cati_dwarf::StageId;
use cati_embedding::{Vocab, VucEmbedder, W2vConfig, Word2Vec};
use cati_nn::{MapSlice, MappedFile, ParamBuf, TextCnn, TextCnnConfig};
use serde::Serialize;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// The 8-byte CATI1 magic. The `\r\n` catches newline-translating
/// transports, the trailing NUL catches C-string truncation.
pub const CATI1_MAGIC: [u8; 8] = *b"CATI1\r\n\0";

/// Container format version written by [`encode_cati1`].
pub const CATI1_VERSION: u32 = 2;

/// Oldest container version [`decode_cati1`] still reads.
pub const CATI1_MIN_VERSION: u32 = 1;

/// Alignment (bytes) of every v2 section payload and tensor datum.
/// 64 covers `f32` (so mapped slices are directly viewable), SIMD
/// vector loads, and cache-line-aligned weight rows.
pub const CATI1_ALIGN: usize = 64;

fn align_up(n: usize) -> usize {
    n.div_ceil(CATI1_ALIGN) * CATI1_ALIGN
}

/// Whether `bytes` carry the CATI1 magic.
pub fn is_cati1(bytes: &[u8]) -> bool {
    bytes.starts_with(&CATI1_MAGIC)
}

// ---------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------

/// The named flat weight tensors of a trained system, in the fixed
/// container order (borrowed views — encoding never copies weights).
fn weight_tensors(cati: &Cati) -> Vec<(String, &[f32])> {
    let model = cati.embedder.model();
    let mut tensors = vec![
        ("w2v.input".to_string(), model.input_matrix()),
        ("w2v.output".to_string(), model.output_matrix()),
    ];
    for (stage, cnn) in cati.stages.models() {
        for (k, t) in cnn.params().into_iter().enumerate() {
            tensors.push((format!("stage.{stage}.p{k}"), t));
        }
    }
    tensors
}

/// The `meta` section payload: everything except the weights, as JSON.
fn meta_blob(cati: &Cati) -> Vec<u8> {
    let model = cati.embedder.model();
    let mut m = serde::Map::new();
    m.insert("config".to_string(), cati.config.to_value());
    m.insert("w2v".to_string(), model.cfg.to_value());
    m.insert("vocab".to_string(), model.vocab.to_value());
    let stages: Vec<serde::Value> = cati
        .stages
        .models()
        .iter()
        .map(|(stage, cnn)| {
            let mut s = serde::Map::new();
            s.insert("stage".to_string(), stage.to_value());
            s.insert("cfg".to_string(), cnn.cfg.to_value());
            serde::Value::Object(s)
        })
        .collect();
    m.insert("stages".to_string(), serde::Value::Array(stages));
    serde_json::to_vec(&serde::Value::Object(m)).unwrap_or_default()
}

/// The v1 `tensors` section payload: count, then per tensor a
/// length-prefixed name, a u64 element count, and raw LE `f32` data.
fn tensor_blob_v1(tensors: &[(String, &[f32])]) -> Vec<u8> {
    let floats: usize = tensors.iter().map(|(_, t)| t.len()).sum();
    let mut out = Vec::with_capacity(4 + floats * 4 + tensors.len() * 24);
    out.extend_from_slice(&(tensors.len() as u32).to_le_bytes());
    for (name, data) in tensors {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
        for v in *data {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// The v2 `tensors` section payload: an index (count, then per tensor
/// name / element count / section-relative data offset), zero padding
/// to a [`CATI1_ALIGN`] boundary, then each tensor's raw LE `f32`
/// data at its recorded offset — every offset aligned, zero padding
/// between tensors. Combined with aligned section placement this
/// makes every tensor's *file* offset 64-byte aligned, which is what
/// lets the loader view mapped bytes as `&[f32]` directly.
fn tensor_blob_v2(tensors: &[(String, &[f32])]) -> Vec<u8> {
    let index_len: usize = 4 + tensors
        .iter()
        .map(|(n, _)| 4 + n.len() + 8 + 8)
        .sum::<usize>();
    let mut rel = align_up(index_len);
    let mut offsets = Vec::with_capacity(tensors.len());
    for (_, data) in tensors {
        offsets.push(rel);
        rel = align_up(rel + data.len() * 4);
    }
    let total = offsets
        .last()
        .zip(tensors.last())
        .map_or(align_up(index_len), |(&off, (_, d))| off + d.len() * 4);
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&(tensors.len() as u32).to_le_bytes());
    for ((name, data), &off) in tensors.iter().zip(&offsets) {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
        out.extend_from_slice(&(off as u64).to_le_bytes());
    }
    for ((_, data), &off) in tensors.iter().zip(&offsets) {
        out.resize(off, 0);
        for v in *data {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Assembles a container of the given `version` from a `meta` payload
/// and named tensors. v1 packs payloads back to back; v2 starts every
/// payload on a [`CATI1_ALIGN`]-byte file offset.
fn encode_raw(version: u32, meta: &[u8], tensors: &[(String, &[f32])]) -> Vec<u8> {
    let sections: Vec<(&str, Vec<u8>)> = vec![
        ("meta", meta.to_vec()),
        (
            "tensors",
            if version == 1 {
                tensor_blob_v1(tensors)
            } else {
                tensor_blob_v2(tensors)
            },
        ),
    ];
    let table_len: usize = sections.iter().map(|(n, _)| 4 + n.len() + 8 + 8 + 16).sum();
    let header_len = CATI1_MAGIC.len() + 4 + 4 + table_len + 16;
    let payload_len: usize = sections.iter().map(|(_, p)| p.len()).sum();
    let place = |end: usize| {
        if version == 1 {
            end
        } else {
            align_up(end)
        }
    };
    let mut out = Vec::with_capacity(place(header_len) + payload_len + CATI1_ALIGN);
    out.extend_from_slice(&CATI1_MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    let mut hasher = Fnv128::new();
    hasher.update(&CATI1_MAGIC);
    hasher.update_u32(version);
    hasher.update_u32(sections.len() as u32);
    let mut offset = place(header_len);
    let mut offsets = Vec::with_capacity(sections.len());
    for (name, payload) in &sections {
        let digest = digest_bytes(payload);
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&(offset as u64).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&digest.0.to_le_bytes());
        hasher.update_field(name.as_bytes());
        hasher.update_u64(offset as u64);
        hasher.update_u64(payload.len() as u64);
        hasher.update(&digest.0.to_le_bytes());
        offsets.push(offset);
        offset = place(offset + payload.len());
    }
    out.extend_from_slice(&hasher.finish().0.to_le_bytes());
    for ((_, payload), &off) in sections.iter().zip(&offsets) {
        out.resize(off, 0); // zero padding up to the aligned offset
        out.extend_from_slice(payload);
    }
    out
}

/// Encodes a trained system as a CATI1 container at the current
/// version ([`CATI1_VERSION`] = 2, the mmap-friendly aligned layout).
pub fn encode_cati1(cati: &Cati) -> Vec<u8> {
    encode_raw(CATI1_VERSION, &meta_blob(cati), &weight_tensors(cati))
}

/// Encodes a trained system as a *v1* CATI1 container — the packed
/// legacy layout, byte-identical to what pre-v2 builds wrote. Kept
/// for `cati convert --format cati1-v1` (downgrade for older readers)
/// and for the migration round-trip tests.
pub fn encode_cati1_v1(cati: &Cati) -> Vec<u8> {
    encode_raw(1, &meta_blob(cati), &weight_tensors(cati))
}

/// Encodes an arbitrary `(meta JSON, named tensors)` pair as a CATI1
/// v2 container. The epoch checkpoints reuse the model container
/// framing — checksummed section table, aligned tensor payloads,
/// whole-file integrity — for model weights *and* the optimizer
/// moments riding alongside them.
pub(crate) fn encode_meta_tensors(meta: &[u8], tensors: &[(String, &[f32])]) -> Vec<u8> {
    encode_raw(CATI1_VERSION, meta, tensors)
}

/// Decodes a container written by [`encode_meta_tensors`] back into
/// its meta payload and named tensor buffers (all copied — checkpoint
/// loads are rare and short-lived, so no mmap path).
pub(crate) fn decode_meta_tensors(
    bytes: &[u8],
) -> Result<(Vec<u8>, HashMap<String, ParamBuf>), String> {
    let (version, sections) = read_sections(bytes)?;
    if version < 2 {
        return Err(format!("checkpoint container is v{version}, expected v2"));
    }
    let find = |name: &str| -> Result<&Section<'_>, String> {
        sections
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| format!("missing section {name}"))
    };
    let meta = find("meta")?.payload.to_vec();
    let tsec = find("tensors")?;
    let tensors = read_tensors_v2(tsec.payload, tsec.offset, None)?;
    Ok((meta, tensors))
}

/// Test/CI hook: encodes arbitrary named tensors as a v2 container
/// (with an empty `meta` payload), so the alignment invariant can be
/// property-tested over shapes without training a model.
#[doc(hidden)]
pub fn encode_v2_raw(tensors: &[(String, Vec<f32>)]) -> Vec<u8> {
    let views: Vec<(String, &[f32])> = tensors
        .iter()
        .map(|(n, d)| (n.clone(), d.as_slice()))
        .collect();
    encode_raw(CATI1_VERSION, b"{}", &views)
}

// ---------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------

/// A bounds-checked byte reader over the container.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(format!(
                "truncated container: {what} needs {n} bytes at offset {}, file has {}",
                self.pos,
                self.bytes.len()
            )),
        }
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        let b = self.take(8, what)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }

    fn u128(&mut self, what: &str) -> Result<u128, String> {
        let b = self.take(16, what)?;
        let mut buf = [0u8; 16];
        buf.copy_from_slice(b);
        Ok(u128::from_le_bytes(buf))
    }

    fn name(&mut self, what: &str) -> Result<String, String> {
        let len = self.u32(what)? as usize;
        if len > 4096 {
            return Err(format!("{what} name length {len} is implausible"));
        }
        String::from_utf8(self.take(len, what)?.to_vec())
            .map_err(|e| format!("{what} name is not UTF-8: {e}"))
    }
}

/// A verified section: name, absolute file offset of the payload, and
/// the payload itself (the offset is what lets the v2 tensor reader
/// hand out windows into the *file* mapping).
struct Section<'a> {
    name: String,
    offset: usize,
    payload: &'a [u8],
}

/// Splits the container into verified sections: the table checksum,
/// every section's bounds, and every section's payload checksum must
/// all hold. Returns the container version alongside (any version in
/// [`CATI1_MIN_VERSION`]..=[`CATI1_VERSION`] is accepted).
fn read_sections(bytes: &[u8]) -> Result<(u32, Vec<Section<'_>>), String> {
    let mut cur = Cursor { bytes, pos: 0 };
    cur.take(CATI1_MAGIC.len(), "magic")?;
    let version = cur.u32("container version")?;
    if !(CATI1_MIN_VERSION..=CATI1_VERSION).contains(&version) {
        return Err(format!(
            "unsupported CATI1 container version {version} \
             (this build reads {CATI1_MIN_VERSION}..={CATI1_VERSION})"
        ));
    }
    let count = cur.u32("section count")?;
    if count == 0 || count > 64 {
        return Err(format!("implausible section count {count}"));
    }
    let mut hasher = Fnv128::new();
    hasher.update(&CATI1_MAGIC);
    hasher.update_u32(version);
    hasher.update_u32(count);
    let mut table = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let name = cur.name("section")?;
        let offset = cur.u64("section offset")?;
        let len = cur.u64("section length")?;
        let digest = cur.u128("section digest")?;
        hasher.update_field(name.as_bytes());
        hasher.update_u64(offset);
        hasher.update_u64(len);
        hasher.update(&digest.to_le_bytes());
        table.push((name, offset, len, digest));
    }
    let recorded = cur.u128("table digest")?;
    if hasher.finish().0 != recorded {
        return Err("section table checksum mismatch (corrupt header)".to_string());
    }
    let mut sections = Vec::with_capacity(table.len());
    for (name, offset, len, digest) in table {
        let end = offset.checked_add(len).filter(|&e| e <= bytes.len() as u64);
        let Some(end) = end else {
            return Err(format!(
                "section {name} out of bounds: bytes {offset}..{} of a {}-byte file",
                offset.saturating_add(len),
                bytes.len()
            ));
        };
        let payload = &bytes[offset as usize..end as usize];
        if digest_bytes(payload).0 != digest {
            return Err(format!("section {name} checksum mismatch"));
        }
        sections.push(Section {
            name,
            offset: offset as usize,
            payload,
        });
    }
    Ok((version, sections))
}

/// Copies `elems` floats out of `payload` at byte `off` (the non-mmap
/// tensor path, and the fallback when a mapped window is misaligned).
fn copy_f32s(payload: &[u8], off: usize, elems: usize, name: &str) -> Result<Vec<f32>, String> {
    let end = elems
        .checked_mul(4)
        .and_then(|b| off.checked_add(b))
        .filter(|&e| e <= payload.len())
        .ok_or_else(|| {
            format!(
                "tensor {name} data {off}+{elems}x4 out of bounds ({}-byte section)",
                payload.len()
            )
        })?;
    Ok(payload[off..end]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Parses a v1 `tensors` payload (headers interleaved with data) into
/// name → owned buffer. v1 data lands at arbitrary offsets, so this
/// path always copies.
fn read_tensors_v1(payload: &[u8]) -> Result<HashMap<String, ParamBuf>, String> {
    let mut cur = Cursor {
        bytes: payload,
        pos: 0,
    };
    let count = cur.u32("tensor count")?;
    let mut tensors = HashMap::with_capacity(count as usize);
    for _ in 0..count {
        let name = cur.name("tensor")?;
        let floats = cur.u64(&format!("tensor {name} length"))? as usize;
        let n = floats
            .checked_mul(4)
            .ok_or_else(|| format!("tensor {name} length {floats} overflows"))?;
        let data = cur.take(n, &format!("tensor {name} data"))?;
        let values: Vec<f32> = data
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        tensors.insert(name, ParamBuf::from(values));
    }
    Ok(tensors)
}

/// Parses a v2 `tensors` payload (index + aligned data region) into
/// name → buffer. With a real mapping each buffer is a zero-copy
/// window into the file (`section_off + rel_off` is 64-byte aligned
/// by construction); without one — heap-read fallback, or decoding
/// from a byte slice — the data is copied.
fn read_tensors_v2(
    payload: &[u8],
    section_off: usize,
    map: Option<&Arc<MappedFile>>,
) -> Result<HashMap<String, ParamBuf>, String> {
    let mut cur = Cursor {
        bytes: payload,
        pos: 0,
    };
    let count = cur.u32("tensor count")?;
    let mut tensors = HashMap::with_capacity(count as usize);
    for _ in 0..count {
        let name = cur.name("tensor")?;
        let elems = cur.u64(&format!("tensor {name} length"))? as usize;
        let rel = cur.u64(&format!("tensor {name} offset"))? as usize;
        let buf = match map {
            Some(map) if map.is_mapped() => {
                match MapSlice::new(Arc::clone(map), section_off + rel, elems) {
                    Ok(slice) => ParamBuf::from_map(slice),
                    // Misaligned window (shouldn't happen for a real
                    // mapping, which is page-aligned): fall back to a
                    // copy rather than failing the load.
                    Err(_) => ParamBuf::from(copy_f32s(payload, rel, elems, &name)?),
                }
            }
            _ => ParamBuf::from(copy_f32s(payload, rel, elems, &name)?),
        };
        tensors.insert(name, buf);
    }
    Ok(tensors)
}

fn take_tensor(tensors: &mut HashMap<String, ParamBuf>, name: &str) -> Result<ParamBuf, String> {
    tensors
        .remove(name)
        .ok_or_else(|| format!("missing tensor {name}"))
}

/// Decodes a CATI1 container (any supported version). When `map` is a
/// real file mapping of the same bytes, v2 weight tensors become
/// zero-copy windows into it; otherwise all weights are copied out.
fn decode_with(bytes: &[u8], map: Option<&Arc<MappedFile>>) -> Result<Cati, String> {
    let (version, sections) = read_sections(bytes)?;
    let section = |name: &str| -> Result<&Section<'_>, String> {
        sections
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| format!("missing section {name}"))
    };
    let payload = |name: &str| -> Result<&[u8], String> { section(name).map(|s| s.payload) };
    let meta: serde::Value = serde_json::from_slice(payload("meta")?)
        .map_err(|e| format!("meta section is not valid JSON: {e}"))?;
    let meta = serde::as_object_for(&meta, "CATI1 meta").map_err(|e| e.to_string())?;
    let config: crate::config::Config =
        serde::field(meta, "config", "CATI1 meta").map_err(|e| e.to_string())?;
    let w2v_cfg: W2vConfig = serde::field(meta, "w2v", "CATI1 meta").map_err(|e| e.to_string())?;
    let vocab: Vocab = serde::field(meta, "vocab", "CATI1 meta").map_err(|e| e.to_string())?;
    let stage_vals: Vec<serde::Value> =
        serde::field(meta, "stages", "CATI1 meta").map_err(|e| e.to_string())?;

    let tsec = section("tensors")?;
    let mut tensors = if version == 1 {
        read_tensors_v1(tsec.payload)?
    } else {
        read_tensors_v2(tsec.payload, tsec.offset, map)?
    };
    let input = take_tensor(&mut tensors, "w2v.input")?;
    let output = take_tensor(&mut tensors, "w2v.output")?;
    let w2v = Word2Vec::from_parts(vocab, w2v_cfg, input, output)?;

    let mut models = Vec::with_capacity(stage_vals.len());
    for v in &stage_vals {
        let m = serde::as_object_for(v, "CATI1 stage entry").map_err(|e| e.to_string())?;
        let stage: StageId =
            serde::field(m, "stage", "CATI1 stage entry").map_err(|e| e.to_string())?;
        let cfg: TextCnnConfig =
            serde::field(m, "cfg", "CATI1 stage entry").map_err(|e| e.to_string())?;
        let params = (0..8)
            .map(|k| take_tensor(&mut tensors, &format!("stage.{stage}.p{k}")))
            .collect::<Result<Vec<_>, _>>()?;
        let cnn =
            TextCnn::from_param_bufs(cfg, params).map_err(|e| format!("stage {stage}: {e}"))?;
        models.push((stage, cnn));
    }
    if !tensors.is_empty() {
        let mut extra: Vec<&String> = tensors.keys().collect();
        extra.sort();
        return Err(format!("unexpected tensors in container: {extra:?}"));
    }
    Ok(Cati {
        config,
        embedder: VucEmbedder::new(w2v),
        stages: crate::multistage::MultiStage::from_models(models),
    })
}

/// Decodes a CATI1 container back into a trained system (all weights
/// copied into owned buffers — the mmap path lives in [`load_model`]).
///
/// # Errors
///
/// Returns a description of the first structural problem found:
/// truncation, checksum mismatch, an unsupported version, a missing
/// section or tensor, or a tensor whose shape disagrees with the
/// recorded configuration.
pub fn decode_cati1(bytes: &[u8]) -> Result<Cati, String> {
    decode_with(bytes, None)
}

/// Test/CI hook: the `(name, absolute file offset, element count)` of
/// every tensor in a v2 container, for asserting the 64-byte
/// alignment invariant without decoding a full model.
#[doc(hidden)]
pub fn v2_tensor_offsets(bytes: &[u8]) -> Result<Vec<(String, usize, usize)>, String> {
    let (version, sections) = read_sections(bytes)?;
    if version < 2 {
        return Err(format!("v2 offsets requested of a v{version} container"));
    }
    let tsec = sections
        .iter()
        .find(|s| s.name == "tensors")
        .ok_or_else(|| "missing section tensors".to_string())?;
    let mut cur = Cursor {
        bytes: tsec.payload,
        pos: 0,
    };
    let count = cur.u32("tensor count")?;
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let name = cur.name("tensor")?;
        let elems = cur.u64("tensor length")? as usize;
        let rel = cur.u64("tensor offset")? as usize;
        out.push((name, tsec.offset + rel, elems));
    }
    Ok(out)
}

// ---------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------

/// Writes `bytes` to `path` atomically (tmp + rename), annotating
/// failures with the path and payload size.
pub(crate) fn save_bytes_atomic(bytes: &[u8], path: &Path) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, bytes).map_err(|e| {
        std::io::Error::new(
            e.kind(),
            format!(
                "write model ({} bytes) to {}: {e}",
                bytes.len(),
                tmp.display()
            ),
        )
    })?;
    std::fs::rename(&tmp, path).map_err(|e| {
        std::io::Error::new(
            e.kind(),
            format!("rename {} -> {}: {e}", tmp.display(), path.display()),
        )
    })
}

/// Saves a trained system to `path` as a CATI1 container (atomically).
pub(crate) fn save_cati1(cati: &Cati, path: &Path) -> std::io::Result<()> {
    save_bytes_atomic(&encode_cati1(cati), path)
}

/// Loads a model file in any supported format, sniffing the bytes:
/// the CATI1 magic selects the binary container (v2 weights read
/// zero-copy out of the mapping; v1 copies), a leading `{` (after
/// whitespace) the legacy JSON blob. Anything else fails with a hex
/// preview of the first bytes and a format hint.
pub(crate) fn load_model(path: &Path) -> std::io::Result<Cati> {
    let map = MappedFile::open(path).map_err(|e| {
        std::io::Error::new(e.kind(), format!("read model {}: {e}", path.display()))
    })?;
    let bytes = map.bytes();
    let parse_err = |detail: String| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "parse model {} ({} bytes): {detail}",
                path.display(),
                bytes.len()
            ),
        )
    };
    if is_cati1(bytes) {
        decode_with(bytes, Some(&map)).map_err(parse_err)
    } else if bytes.iter().copied().find(|b| !b.is_ascii_whitespace()) == Some(b'{') {
        serde_json::from_slice(bytes).map_err(|e| parse_err(e.to_string()))
    } else {
        let preview: Vec<String> = bytes.iter().take(8).map(|b| format!("{b:02x}")).collect();
        Err(parse_err(format!(
            "unrecognized model format (first bytes: {}); expected CATI1 magic or JSON model",
            preview.join(" ")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use cati_synbin::{build_corpus, CorpusConfig};

    fn tiny_cati() -> Cati {
        let corpus = build_corpus(&CorpusConfig::small(29));
        Cati::train(&corpus.train[..2], &Config::small(), &cati_obs::NOOP)
    }

    #[test]
    fn encode_decode_roundtrip_is_exact_and_deterministic() {
        let cati = tiny_cati();
        let bytes = encode_cati1(&cati);
        assert!(is_cati1(&bytes));
        assert_eq!(
            bytes,
            encode_cati1(&cati),
            "encoding must be a pure function"
        );
        let back = decode_cati1(&bytes).unwrap();
        assert_eq!(back, cati, "container roundtrip must be bit-exact");
        assert_eq!(
            encode_cati1(&back),
            bytes,
            "re-encoding must be byte-identical"
        );
    }

    #[test]
    fn corrupt_header_is_rejected() {
        let cati = tiny_cati();
        let mut bytes = encode_cati1(&cati);
        // Flip a bit in the first table entry's offset field (magic 8
        // + version 4 + count 4 + name_len 4 + "meta" 4 = offset 24):
        // the table checksum must catch it.
        bytes[24] ^= 1;
        let err = decode_cati1(&bytes).expect_err("corrupt header must not decode");
        assert!(err.contains("checksum"), "unexpected error: {err}");
    }

    #[test]
    fn truncated_section_is_rejected_with_bounds_context() {
        let cati = tiny_cati();
        let bytes = encode_cati1(&cati);
        let cut = bytes.len() - bytes.len() / 4;
        let err = decode_cati1(&bytes[..cut]).expect_err("truncated container must not decode");
        assert!(
            err.contains("out of bounds") || err.contains("truncated"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn tampered_payload_fails_its_section_checksum() {
        let cati = tiny_cati();
        let mut bytes = encode_cati1(&cati);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let err = decode_cati1(&bytes).expect_err("tampered payload must not decode");
        assert!(err.contains("checksum mismatch"), "unexpected error: {err}");
    }

    #[test]
    fn unknown_version_is_rejected() {
        let cati = tiny_cati();
        let mut bytes = encode_cati1(&cati);
        bytes[CATI1_MAGIC.len()] = 9;
        let err = decode_cati1(&bytes).expect_err("future version must not decode");
        assert!(err.contains("version 9"), "unexpected error: {err}");
    }

    #[test]
    fn v1_containers_still_decode_and_roundtrip_byte_identically() {
        let cati = tiny_cati();
        let v1 = encode_cati1_v1(&cati);
        assert_eq!(
            u32::from_le_bytes([v1[8], v1[9], v1[10], v1[11]]),
            1,
            "legacy encoder must stamp version 1"
        );
        let back = decode_cati1(&v1).expect("v1 container must still load");
        assert_eq!(back, cati, "v1 decode must be bit-exact");
        // v1 -> decode -> v1 re-encode is the convert round-trip.
        assert_eq!(encode_cati1_v1(&back), v1);
        // And upgrading then downgrading lands on the same v1 bytes.
        let v2 = encode_cati1(&cati);
        let upgraded = decode_cati1(&v2).expect("v2 container must load");
        assert_eq!(encode_cati1_v1(&upgraded), v1);
    }

    #[test]
    fn v2_tensor_offsets_are_cache_line_aligned() {
        let bytes = encode_cati1(&tiny_cati());
        let offsets = v2_tensor_offsets(&bytes).expect("offset table");
        assert!(!offsets.is_empty());
        for (name, off, elems) in &offsets {
            assert_eq!(
                off % CATI1_ALIGN,
                0,
                "tensor {name} starts at {off}, not {CATI1_ALIGN}-byte aligned"
            );
            assert!(
                off + elems * 4 <= bytes.len(),
                "tensor {name} out of bounds"
            );
        }
    }

    proptest::proptest! {
        /// The alignment invariant holds for arbitrary tensor shapes,
        /// not just the shapes a trained model happens to produce —
        /// including empty tensors and lengths straddling the 16-float
        /// (64-byte) boundary.
        #[test]
        fn v2_alignment_holds_for_arbitrary_shapes(
            lens in proptest::collection::vec(0usize..40, 1..8)
        ) {
            let tensors: Vec<(String, Vec<f32>)> = lens
                .iter()
                .enumerate()
                .map(|(i, &n)| (format!("t{i}"), (0..n).map(|k| k as f32).collect()))
                .collect();
            let bytes = encode_v2_raw(&tensors);
            let offsets = v2_tensor_offsets(&bytes).unwrap();
            proptest::prop_assert_eq!(offsets.len(), tensors.len());
            for ((name, data), (oname, off, elems)) in tensors.iter().zip(&offsets) {
                proptest::prop_assert_eq!(name, oname);
                proptest::prop_assert_eq!(data.len(), *elems);
                proptest::prop_assert_eq!(off % CATI1_ALIGN, 0);
                // The recorded window really holds the tensor's bytes.
                for (k, v) in data.iter().enumerate() {
                    let at = off + k * 4;
                    let got = f32::from_le_bytes([
                        bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3],
                    ]);
                    proptest::prop_assert_eq!(got.to_bits(), v.to_bits());
                }
            }
        }
    }

    #[test]
    fn mmap_load_is_zero_copy_and_bit_identical_to_heap_decode() {
        let cati = tiny_cati();
        let dir = std::env::temp_dir().join(format!("cati-v2-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.cati");
        cati.save(&path).unwrap();
        let loaded = Cati::load(&path).unwrap();
        assert_eq!(loaded, cati, "mmap load must be bit-exact");
        // On unix the load really mapped: 2 w2v matrices + 8 params
        // per stage stay windows into the file.
        #[cfg(unix)]
        assert_eq!(
            loaded.mapped_param_count(),
            2 + 8 * cati.stages.models().len(),
            "v2 load should keep every weight tensor mapped"
        );
        let heap = decode_cati1(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(heap.mapped_param_count(), 0);
        assert_eq!(heap, loaded);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quantized_model_stays_loadable_and_close_to_f32() {
        let cati = tiny_cati();
        let mut q = cati.clone();
        q.quantize(cati_nn::QuantMode::F16);
        assert_ne!(q, cati, "quantization must actually move weights");
        // Quantized weights survive a container round-trip exactly.
        let bytes = encode_cati1(&q);
        assert_eq!(decode_cati1(&bytes).unwrap(), q);
        // f16 snapping keeps every weight within 1 half-ULP of the
        // original: 2^-11 relative for normals, 2^-25 absolute in the
        // subnormal range.
        let model = cati.embedder.model();
        let qmodel = q.embedder.model();
        for (a, b) in model
            .input_matrix()
            .iter()
            .zip(qmodel.input_matrix().iter())
        {
            assert!(
                (a - b).abs() <= a.abs() * (-11f32).exp2() + (-25f32).exp2(),
                "{a} snapped to {b}"
            );
        }
    }
}
