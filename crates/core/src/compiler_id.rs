//! Compiler identification (paper §VIII).
//!
//! Before routing a stripped binary to the right stage tree, CATI
//! identifies the producing compiler. Register-usage habits differ
//! enough between GCC and Clang that a VUC-level binary classifier
//! reaches 100% accuracy in the paper; a whole-binary majority vote
//! makes the decision even more robust.

use crate::config::Config;
use cati_analysis::{Extraction, VUC_LEN};
use cati_embedding::VucEmbedder;
use cati_nn::{Adam, TextCnn, TextCnnConfig};
use cati_synbin::Compiler;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A trained GCC-vs-Clang classifier over VUC windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompilerId {
    model: TextCnn,
}

fn label_of(compiler: Compiler) -> usize {
    match compiler {
        Compiler::Gcc => 0,
        Compiler::Clang => 1,
    }
}

impl CompilerId {
    /// Trains on labeled extractions (`(extraction, compiler)` pairs),
    /// re-using the instruction `embedder`.
    pub fn train(
        data: &[(&Extraction, Compiler)],
        embedder: &VucEmbedder,
        config: &Config,
    ) -> CompilerId {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xC0);
        let mut samples: Vec<(Vec<f32>, usize)> = data
            .par_iter()
            .flat_map_iter(|(ex, compiler)| {
                let label = label_of(*compiler);
                ex.vucs
                    .iter()
                    .map(move |v| (embedder.embed_window(&v.insns), label))
                    .collect::<Vec<_>>()
            })
            .collect();
        if config.max_stage_samples > 0 && samples.len() > config.max_stage_samples {
            samples.shuffle(&mut rng);
            samples.truncate(config.max_stage_samples);
        }
        let cfg = TextCnnConfig {
            seq_len: VUC_LEN,
            embed_dim: embedder.embed_dim(),
            conv1: config.conv1,
            conv2: config.conv2,
            fc: config.fc,
            classes: 2,
        };
        let mut model = TextCnn::new(cfg, config.seed ^ 0xC1);
        let mut opt = Adam::new(config.lr);
        for _ in 0..config.epochs {
            model.train_epoch(&samples, &mut opt, config.batch, &mut rng);
        }
        CompilerId { model }
    }

    /// Per-VUC prediction.
    pub fn predict_vuc(&self, embedder: &VucEmbedder, window: &[cati_asm::GenInsn]) -> Compiler {
        let probs = self.model.predict(&embedder.embed_window(window));
        if probs[1] > probs[0] {
            Compiler::Clang
        } else {
            Compiler::Gcc
        }
    }

    /// Whole-binary decision: majority vote over all its VUCs.
    pub fn predict_binary(&self, embedder: &VucEmbedder, ex: &Extraction) -> Compiler {
        let clang_votes: usize = ex
            .vucs
            .par_iter()
            .map(|v| usize::from(self.predict_vuc(embedder, &v.insns) == Compiler::Clang))
            .sum();
        if clang_votes * 2 > ex.vucs.len() {
            Compiler::Clang
        } else {
            Compiler::Gcc
        }
    }

    /// VUC-level accuracy over labeled extractions.
    pub fn accuracy(&self, embedder: &VucEmbedder, data: &[(&Extraction, Compiler)]) -> f64 {
        let mut correct = 0u64;
        let mut total = 0u64;
        for (ex, compiler) in data {
            let ok: u64 = ex
                .vucs
                .par_iter()
                .map(|v| u64::from(self.predict_vuc(embedder, &v.insns) == *compiler))
                .sum();
            correct += ok;
            total += ex.vucs.len() as u64;
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}
