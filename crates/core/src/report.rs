//! Plain-text table rendering for the experiment regenerators.

use std::fmt::Write as _;

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Formats a ratio as `0.93`-style two-decimal text, or `-` when the
/// support is zero (the dashes of paper Table III).
pub fn cell(value: f64, support: u64) -> String {
    if support == 0 {
        "-".to_string()
    } else {
        format!("{value:.2}")
    }
}

/// Formats a percentage with two decimals (`65.85%`).
pub fn pct(value: f64) -> String {
    format!("{:.2}%", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["app", "P", "R"]);
        t.row(vec!["bash".into(), "0.93".into(), "0.93".into()]);
        t.row(vec!["inetutils".into(), "0.89".into(), "0.89".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with("0.93"));
        assert!(lines[0].contains("app"));
    }

    #[test]
    fn zero_support_renders_dash() {
        assert_eq!(cell(0.5, 0), "-");
        assert_eq!(cell(0.512, 3), "0.51");
        assert_eq!(pct(0.6585), "65.85%");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        Table::new(&["a"]).row(vec!["x".into(), "y".into()]);
    }
}
