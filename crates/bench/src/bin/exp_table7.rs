//! Table VII: the transferability experiment — retrain the full
//! pipeline on a Clang-compiled corpus and report per-stage P/R/F1
//! (paper §VIII; total variable accuracy 82.14%).
//!
//! Each test extraction is embedded once into an
//! [`EmbeddedExtraction`] session shared by all six stage evaluations
//! and the end-to-end accuracy pass.
//!
//! ```sh
//! cargo run --release -p cati-bench --bin exp_table7 -- --scale medium
//! ```

use cati::report::Table;
use cati::{pipeline_accuracy_session, stage_vuc_metrics, EmbeddedExtraction};
use cati_bench::{load_ctx_observed, RunObs, Scale};
use cati_dwarf::StageId;
use cati_synbin::Compiler;

fn main() {
    let scale = Scale::from_args();
    let run = RunObs::from_args("exp_table7");
    let ctx = load_ctx_observed(scale, Compiler::Clang, run.obs());
    let sessions: Vec<EmbeddedExtraction> = ctx
        .test
        .iter()
        .map(|(_, ex)| EmbeddedExtraction::new_observed(&ctx.cati.embedder, ex, run.obs()))
        .collect();

    let mut table = Table::new(&["Stage", "Precision", "Recall", "F1-score"]);
    for stage in StageId::ALL {
        let (prf, conf) = stage_vuc_metrics(&ctx.cati, &sessions, stage);
        if conf.total() == 0 {
            table.row(vec![
                stage.name().into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        table.row(vec![
            stage.name().to_string(),
            format!("{:.2}", prf.precision),
            format!("{:.2}", prf.recall),
            format!("{:.2}", prf.f1),
        ]);
    }
    println!(
        "\nTable VII — evaluation on Clang-compiled corpus ({})\n",
        scale.name()
    );
    println!("{}", table.render());

    let mut ok = 0.0;
    let mut n = 0u64;
    for session in &sessions {
        let (_, _, ra, rn) = pipeline_accuracy_session(&ctx.cati, session);
        ok += ra * rn as f64;
        n += rn;
    }
    println!(
        "total variable accuracy on Clang: {:.2}%   (paper: 82.14%)",
        100.0 * ok / n.max(1) as f64
    );
    println!("Conclusion to check: the prototype transfers across compilers.");
}
