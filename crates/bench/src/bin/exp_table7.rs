//! Table VII: the transferability experiment — retrain the full
//! pipeline on a Clang-compiled corpus and report per-stage P/R/F1
//! (paper §VIII; total variable accuracy 82.14%).
//!
//! ```sh
//! cargo run --release -p cati-bench --bin exp_table7 -- --scale medium
//! ```

use cati::report::Table;
use cati::{pipeline_accuracy, stage_vuc_metrics};
use cati_analysis::Extraction;
use cati_bench::{load_ctx_observed, RunObs, Scale};
use cati_dwarf::StageId;
use cati_synbin::Compiler;

fn main() {
    let scale = Scale::from_args();
    let run = RunObs::from_args("exp_table7");
    let ctx = load_ctx_observed(scale, Compiler::Clang, run.obs());
    let exs: Vec<&Extraction> = ctx.test.iter().map(|(_, e)| e).collect();

    let mut table = Table::new(&["Stage", "Precision", "Recall", "F1-score"]);
    for stage in StageId::ALL {
        let (prf, conf) = stage_vuc_metrics(&ctx.cati, &exs, stage);
        if conf.total() == 0 {
            table.row(vec![
                stage.name().into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        table.row(vec![
            stage.name().to_string(),
            format!("{:.2}", prf.precision),
            format!("{:.2}", prf.recall),
            format!("{:.2}", prf.f1),
        ]);
    }
    println!(
        "\nTable VII — evaluation on Clang-compiled corpus ({})\n",
        scale.name()
    );
    println!("{}", table.render());

    let mut ok = 0.0;
    let mut n = 0u64;
    for ex in &exs {
        let (_, _, ra, rn) = pipeline_accuracy(&ctx.cati, ex);
        ok += ra * rn as f64;
        n += rn;
    }
    println!(
        "total variable accuracy on Clang: {:.2}%   (paper: 82.14%)",
        100.0 * ok / n.max(1) as f64
    );
    println!("Conclusion to check: the prototype transfers across compilers.");
}
