//! Tables III and IV: per-application, per-stage precision / recall /
//! F1 at VUC granularity (Table III) and at variable granularity after
//! voting (Table IV).
//!
//! ```sh
//! cargo run --release -p cati-bench --bin exp_table3_4 -- --scale medium
//! ```

use cati::report::{cell, Table};
use cati::{stage_var_metrics, stage_vuc_metrics};
use cati_analysis::Extraction;
use cati_bench::{load_ctx_observed, RunObs, Scale, TEST_APPS};
use cati_dwarf::StageId;
use cati_synbin::Compiler;

fn render(
    title: &str,
    ctx: &cati_bench::Ctx,
    metrics: impl Fn(&[&Extraction], StageId) -> (cati::Prf, cati::Confusion),
) {
    let by_app = ctx.test.by_app();
    let mut header = vec!["Stage", "m"];
    header.extend(TEST_APPS);
    let mut table = Table::new(&header);
    for stage in StageId::ALL {
        let mut rows = vec![Vec::new(), Vec::new(), Vec::new()];
        for app in TEST_APPS {
            let exs: Vec<&Extraction> = by_app
                .iter()
                .filter(|(a, _)| a == app)
                .flat_map(|(_, v)| v.iter().copied())
                .collect();
            let (prf, conf) = metrics(&exs, stage);
            let support = conf.total();
            rows[0].push(cell(prf.precision, support));
            rows[1].push(cell(prf.recall, support));
            rows[2].push(cell(prf.f1, support));
        }
        for (metric, cells) in ["P", "R", "F1"].iter().zip(rows) {
            let mut row = vec![stage.name().to_string(), metric.to_string()];
            row.extend(cells);
            table.row(row);
        }
    }
    println!("\n{title}\n");
    println!("{}", table.render());
}

fn main() {
    let scale = Scale::from_args();
    let run = RunObs::from_args("exp_table3_4");
    let ctx = load_ctx_observed(scale, Compiler::Gcc, run.obs());
    render(
        &format!(
            "Table III — VUC prediction (P/R/F1) per application ({})",
            scale.name()
        ),
        &ctx,
        |exs, stage| stage_vuc_metrics(&ctx.cati, exs, stage),
    );
    render(
        &format!(
            "Table IV — variable prediction after voting (P/R/F1) per application ({})",
            scale.name()
        ),
        &ctx,
        |exs, stage| stage_var_metrics(&ctx.cati, exs, stage),
    );
    println!("Expected shape (paper): Stage1 strongest (~0.9), Stage2-1 weakest (~0.7);");
    println!("voting improves Stage1/2-2/3-1/3-3 and can hurt Stage2-1/3-2.");
}
