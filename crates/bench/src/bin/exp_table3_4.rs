//! Tables III and IV: per-application, per-stage precision / recall /
//! F1 at VUC granularity (Table III) and at variable granularity after
//! voting (Table IV).
//!
//! Both tables share one [`EmbeddedExtraction`] session per test
//! extraction — 6 stages × 2 tables reuse the same tensors, and the
//! `embed.windows` counter in the manifest proves each extraction was
//! embedded exactly once.
//!
//! ```sh
//! cargo run --release -p cati-bench --bin exp_table3_4 -- --scale medium
//! ```

use cati::report::{cell, Table};
use cati::{stage_var_metrics, stage_vuc_metrics, EmbeddedExtraction};
use cati_bench::{load_ctx_observed, RunObs, Scale, TEST_APPS};
use cati_dwarf::StageId;
use cati_synbin::Compiler;
use serde_json::json;

fn render(
    title: &str,
    sessions_by_app: &[(String, Vec<EmbeddedExtraction<'_>>)],
    metrics: impl Fn(&[EmbeddedExtraction<'_>], StageId) -> (cati::Prf, cati::Confusion),
) {
    let mut header = vec!["Stage", "m"];
    header.extend(TEST_APPS);
    let mut table = Table::new(&header);
    for stage in StageId::ALL {
        let mut rows = vec![Vec::new(), Vec::new(), Vec::new()];
        for app in TEST_APPS {
            let sessions = sessions_by_app
                .iter()
                .find(|(a, _)| a == app)
                .map(|(_, v)| v.as_slice())
                .unwrap_or(&[]);
            let (prf, conf) = metrics(sessions, stage);
            let support = conf.total();
            rows[0].push(cell(prf.precision, support));
            rows[1].push(cell(prf.recall, support));
            rows[2].push(cell(prf.f1, support));
        }
        for (metric, cells) in ["P", "R", "F1"].iter().zip(rows) {
            let mut row = vec![stage.name().to_string(), metric.to_string()];
            row.extend(cells);
            table.row(row);
        }
    }
    println!("\n{title}\n");
    println!("{}", table.render());
}

fn main() {
    let scale = Scale::from_args();
    let run = RunObs::from_args("exp_table3_4");
    let ctx = load_ctx_observed(scale, Compiler::Gcc, run.obs());

    // Embed every test extraction exactly once; everything below
    // reuses these sessions.
    let sessions_by_app: Vec<(String, Vec<EmbeddedExtraction>)> = ctx
        .test
        .by_app()
        .into_iter()
        .map(|(app, exs)| {
            let sessions = exs
                .into_iter()
                .map(|ex| EmbeddedExtraction::new_observed(&ctx.cati.embedder, ex, run.obs()))
                .collect();
            (app, sessions)
        })
        .collect();

    render(
        &format!(
            "Table III — VUC prediction (P/R/F1) per application ({})",
            scale.name()
        ),
        &sessions_by_app,
        |sessions, stage| stage_vuc_metrics(&ctx.cati, sessions, stage),
    );
    render(
        &format!(
            "Table IV — variable prediction after voting (P/R/F1) per application ({})",
            scale.name()
        ),
        &sessions_by_app,
        |sessions, stage| stage_var_metrics(&ctx.cati, sessions, stage),
    );
    println!("Expected shape (paper): Stage1 strongest (~0.9), Stage2-1 weakest (~0.7);");
    println!("voting improves Stage1/2-2/3-1/3-3 and can hurt Stage2-1/3-2.");

    let total_vucs: u64 = ctx.test.iter().map(|(_, e)| e.vucs.len() as u64).sum();
    let embedded = run.recorder().metrics().counter_value("embed.windows");
    assert_eq!(
        embedded, total_vucs,
        "each test extraction must be embedded exactly once across both tables"
    );
    run.finish(&json!({
        "embed_windows": embedded,
        "test_vucs": total_vucs,
        "embeds_per_extraction": 1,
    }));
}
