//! Compiler identification (paper §VIII): a VUC-level GCC-vs-Clang
//! classifier the paper trains to 100% accuracy.
//!
//! ```sh
//! cargo run --release -p cati-bench --bin exp_compiler_id -- --scale medium
//! ```

use cati::{embedding_sentences, CompilerId};
use cati_analysis::{Extraction, FeatureView};
use cati_bench::{RunObs, Scale, SEED};
use cati_embedding::{VucEmbedder, Word2Vec};
use cati_synbin::{build_corpus, Compiler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    let run = RunObs::from_args("exp_compiler_id");
    let _main_span = cati::obs::SpanGuard::enter(run.obs(), "main");
    let config = scale.config();
    let gcc = build_corpus(&scale.corpus(SEED).with_compiler(Compiler::Gcc));
    let clang = build_corpus(&scale.corpus(SEED + 1).with_compiler(Compiler::Clang));

    let mut all = gcc.train.clone();
    all.extend(clang.train.iter().cloned());
    let mut rng = StdRng::seed_from_u64(SEED);
    let sentences = embedding_sentences(&all, config.max_sentences, &mut rng);
    let embedder = VucEmbedder::new(Word2Vec::train(&sentences, config.w2v));

    let exs = |bins: &[cati_synbin::BuiltBinary], c: Compiler| -> Vec<(Extraction, Compiler)> {
        bins.iter()
            .map(|b| {
                (
                    cati_analysis::extract(&b.binary, FeatureView::WithSymbols).unwrap(),
                    c,
                )
            })
            .collect()
    };
    let train: Vec<(Extraction, Compiler)> = exs(&gcc.train, Compiler::Gcc)
        .into_iter()
        .chain(exs(&clang.train, Compiler::Clang))
        .collect();
    let test: Vec<(Extraction, Compiler)> = exs(&gcc.test, Compiler::Gcc)
        .into_iter()
        .chain(exs(&clang.test, Compiler::Clang))
        .collect();
    let train_refs: Vec<(&Extraction, Compiler)> = train.iter().map(|(e, c)| (e, *c)).collect();
    let test_refs: Vec<(&Extraction, Compiler)> = test.iter().map(|(e, c)| (e, *c)).collect();

    eprintln!("[compiler-id] training...");
    let id = CompilerId::train(&train_refs, &embedder, &config);
    let vuc_acc = id.accuracy(&embedder, &test_refs);
    let bin_ok = test_refs
        .iter()
        .filter(|(ex, c)| id.predict_binary(&embedder, ex) == *c)
        .count();

    println!("\nCompiler identification (paper §VIII)\n");
    println!("VUC-level accuracy:    {:.2}%", vuc_acc * 100.0);
    println!(
        "binary-level accuracy: {:.2}% ({}/{})",
        100.0 * bin_ok as f64 / test_refs.len() as f64,
        bin_ok,
        test_refs.len()
    );
    println!("paper: 100% accuracy from register-usage differences");
}
