//! Extension experiment (paper §VIII future work): "different
//! compiler options may influence inferring types". We quantify it:
//! train on `-O0/-O1` binaries only and evaluate on each optimization
//! level separately, against a model trained on all levels.
//!
//! ```sh
//! cargo run --release -p cati-bench --bin exp_optlevel_transfer -- --scale medium
//! ```

use cati::report::Table;
use cati::{pipeline_accuracy, Cati, Dataset};
use cati_analysis::FeatureView;
use cati_bench::{RunObs, Scale, SEED};
use cati_synbin::{build_app, AppProfile, BuiltBinary, CodegenOptions, Compiler, OptLevel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_split(scale: Scale, levels: &[OptLevel], seed: u64, projects: usize) -> Vec<BuiltBinary> {
    let mut rng = StdRng::seed_from_u64(seed);
    let factor = match scale {
        Scale::Small => 0.25,
        Scale::Medium => 1.0,
        Scale::Paper => 2.0,
    };
    let mut out = Vec::new();
    for profile in AppProfile::training_projects(projects) {
        for &opt in levels {
            let opts = CodegenOptions {
                compiler: Compiler::Gcc,
                opt,
            };
            out.extend(build_app(&profile, opts, factor, &mut rng));
        }
    }
    out
}

fn main() {
    let scale = Scale::from_args();
    let run = RunObs::from_args("exp_optlevel_transfer");
    let config = scale.config();
    let projects = match scale {
        Scale::Small => 2,
        Scale::Medium => 6,
        Scale::Paper => 16,
    };

    // Two training regimes.
    let low_train = build_split(scale, &[OptLevel::O0, OptLevel::O1], SEED, projects);
    let all_train = build_split(scale, &OptLevel::ALL, SEED, projects);
    eprintln!(
        "[optlevel] training low-opt model ({} binaries)...",
        low_train.len()
    );
    let low_model = Cati::train(&low_train, &config, run.obs());
    eprintln!(
        "[optlevel] training all-opt model ({} binaries)...",
        all_train.len()
    );
    let all_model = Cati::train(&all_train, &config, run.obs());

    // Per-level test sets from unseen apps.
    let mut table = Table::new(&[
        "test opt level",
        "trained on -O0/-O1",
        "trained on all levels",
        "vars",
    ]);
    for opt in OptLevel::ALL {
        let mut rng = StdRng::seed_from_u64(SEED ^ 0xBEEF ^ opt.0 as u64);
        let mut test = Vec::new();
        for profile in AppProfile::test_apps().into_iter().take(6) {
            let opts = CodegenOptions {
                compiler: Compiler::Gcc,
                opt,
            };
            test.extend(build_app(&profile, opts, 0.5, &mut rng));
        }
        let ds = Dataset::from_binaries(&test, FeatureView::Stripped);
        let score = |model: &Cati| {
            let mut ok = 0.0;
            let mut n = 0u64;
            for (_, ex) in ds.iter() {
                let (_, _, ra, rn) = pipeline_accuracy(model, ex);
                ok += ra * rn as f64;
                n += rn;
            }
            (ok / n.max(1) as f64, n)
        };
        let (low_acc, n) = score(&low_model);
        let (all_acc, _) = score(&all_model);
        table.row(vec![
            opt.to_string(),
            format!("{low_acc:.3}"),
            format!("{all_acc:.3}"),
            n.to_string(),
        ]);
    }
    println!("\nOptimization-level transfer ({})\n", scale.name());
    println!("{}", table.render());
    println!("Expected shape: the low-opt model degrades on -O2/-O3 (register promotion");
    println!("and scheduling change the idioms); training across levels closes the gap.");
}
