//! Ablation: the confidence-clipping threshold of the voting rule.
//!
//! The paper sets the threshold to 0.9 "after several empirical
//! experiments" (§V-B). This sweep regenerates that choice: variable
//! accuracy across thresholds, where 1.1 disables clipping entirely
//! (plain confidence summation).
//!
//! ```sh
//! cargo run --release -p cati-bench --bin exp_ablation_threshold -- --scale medium
//! ```

use cati::dataset::embed_extraction;
use cati::report::Table;
use cati::vote;
use cati_bench::{load_ctx_observed, RunObs, Scale};
use cati_dwarf::TypeClass;
use cati_synbin::Compiler;

fn main() {
    let scale = Scale::from_args();
    let run = RunObs::from_args("exp_ablation_threshold");
    let ctx = load_ctx_observed(scale, Compiler::Gcc, run.obs());

    // Precompute leaf distributions once.
    let mut per_var: Vec<(TypeClass, Vec<Vec<f32>>)> = Vec::new();
    for (_, ex) in ctx.test.iter() {
        let xs = embed_extraction(ex, &ctx.cati.embedder);
        let dists = ctx.cati.stages.leaf_distributions_batch(&xs);
        for var in &ex.vars {
            let Some(class) = var.class else { continue };
            let vd: Vec<Vec<f32>> = var
                .vucs
                .iter()
                .map(|&v| dists.row(v as usize).to_vec())
                .collect();
            per_var.push((class, vd));
        }
    }

    let mut table = Table::new(&["threshold", "variable accuracy", "note"]);
    for &threshold in &[0.5f32, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1.1] {
        let mut ok = 0u64;
        for (class, dists) in &per_var {
            let pred = vote(dists, threshold).class;
            ok += u64::from(TypeClass::ALL[pred] == *class);
        }
        let acc = ok as f64 / per_var.len().max(1) as f64;
        let note = if threshold == 0.9 {
            "paper's choice"
        } else if threshold > 1.0 {
            "clipping disabled"
        } else {
            ""
        };
        table.row(vec![
            format!("{threshold:.2}"),
            format!("{acc:.4}"),
            note.into(),
        ]);
    }
    println!(
        "\nAblation — voting threshold ({}; {} variables)\n",
        scale.name(),
        per_var.len()
    );
    println!("{}", table.render());
}
