//! Table II: operand generalization examples — the exact rows of the
//! paper, regenerated through the real generalizer.

use cati_asm::fmt::SymbolResolver;
use cati_asm::generalize::generalize;
use cati_asm::parse::parse_insn;

struct Sym;
impl SymbolResolver for Sym {
    fn symbol_at(&self, addr: u64) -> Option<&str> {
        (addr == 0x3bc59).then_some("bfd_zalloc")
    }
}

fn main() {
    let run = cati_bench::RunObs::from_args("exp_table2");
    let _main_span = cati::obs::SpanGuard::enter(run.obs(), "main");
    let rows = [
        "add $-0xd0,%rax",
        "lea -0x300(%rbp,%r9,4),%rax",
        "jmp 0x3bc59",
        "callq 0x3bc59 <bfd_zalloc>",
    ];
    println!("\nTable II — examples of generalization\n");
    println!("{:<36} {:<36}", "Original assembly", "Generalized assembly");
    println!("{}", "-".repeat(72));
    for line in rows {
        let parsed = parse_insn(line).expect("paper example parses");
        let gen = generalize(&parsed.insn, &Sym);
        println!("{line:<36} {gen}");
    }
}
