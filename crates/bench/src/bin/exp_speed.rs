//! Training and inference speed (paper §VII): the paper quotes ~2 h
//! CNN training, ~3 h Word2Vec, 24 min extraction + 5 min prediction
//! over the test set, ~6 s per binary end to end. We time the same
//! phases on this substrate, at one worker thread and at all cores,
//! and record the result in `BENCH_speed.json` so later changes have
//! a perf trajectory to compare against.
//!
//! The execution engine is deterministic across thread counts, so the
//! two timed runs must also produce bit-identical models — this
//! binary asserts that and records it.
//!
//! ```sh
//! cargo run --release -p cati-bench --bin exp_speed -- --scale medium
//! ```

use cati::obs::{Observer, Recorder};
use cati::{embedding_sentences, ArtifactCache, Cati, Config, Dataset, MultiStage};
use cati_analysis::FeatureView;
use cati_bench::{RunObs, Scale, SEED};
use cati_embedding::{VucEmbedder, Word2Vec};
use cati_synbin::{build_corpus, Compiler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;
use std::path::PathBuf;
use std::time::Instant;

/// One timed training + inference pass at a fixed thread count.
struct Run {
    threads: usize,
    cnn_train_s: f64,
    train_s_per_epoch: f64,
    infer_s: f64,
    infer_s_per_binary: f64,
    infer_vucs_per_s: f64,
    model_json: String,
}

fn timed_run(
    threads: usize,
    config: &Config,
    corpus: &cati_synbin::Corpus,
    train_ds: &Dataset,
    embedder: &VucEmbedder,
    test_vucs: usize,
) -> Run {
    let config = Config { threads, ..*config };
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");

    let t = Instant::now();
    let stages = pool.install(|| MultiStage::train(train_ds, embedder, &config, &cati::obs::NOOP));
    let cnn_train_s = t.elapsed().as_secs_f64();

    let cati = Cati {
        config,
        embedder: embedder.clone(),
        stages,
    };
    let model_json = serde_json::to_string(&cati.stages).expect("serialize stages");

    let t = Instant::now();
    let mut total_vars = 0usize;
    for built in &corpus.test {
        let stripped = built.binary.strip();
        let inferred = cati.infer(&stripped).expect("inference");
        total_vars += inferred.len();
    }
    let infer_s = t.elapsed().as_secs_f64();
    println!(
        "threads={threads}: CNN train {:.2}s ({:.2}s/epoch), inference {:.2}s \
         ({:.3} s/binary, {:.0} VUCs/s, {total_vars} variables typed)",
        cnn_train_s,
        cnn_train_s / config.epochs.max(1) as f64,
        infer_s,
        infer_s / corpus.test.len() as f64,
        test_vucs as f64 / infer_s,
    );
    Run {
        threads,
        cnn_train_s,
        train_s_per_epoch: cnn_train_s / config.epochs.max(1) as f64,
        infer_s,
        infer_s_per_binary: infer_s / corpus.test.len() as f64,
        infer_vucs_per_s: test_vucs as f64 / infer_s,
        model_json,
    }
}

fn main() {
    let scale = Scale::from_args();
    let run = RunObs::from_args("exp_speed");
    let config: Config = scale.config();
    let corpus = build_corpus(&scale.corpus(SEED).with_compiler(Compiler::Gcc));
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "\nTiming ({}; {} train / {} test binaries; {} cores)\n",
        scale.name(),
        corpus.train.len(),
        corpus.test.len(),
        cores
    );

    let t = Instant::now();
    let train_ds = {
        let _span = cati::obs::SpanGuard::enter(run.obs(), "extract");
        Dataset::from_binaries_observed(&corpus.train, FeatureView::WithSymbols, run.obs())
    };
    let t_extract_train = t.elapsed();
    println!(
        "extraction (train): {:>8.2?}  ({} vars, {} VUCs)",
        t_extract_train,
        train_ds.var_count(),
        train_ds.vuc_count()
    );

    let t = Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let sentences = embedding_sentences(&corpus.train, config.max_sentences, &mut rng);
    let w2v = {
        let _span = cati::obs::SpanGuard::enter(run.obs(), "embed");
        Word2Vec::train_observed(&sentences, config.w2v, run.obs())
    };
    let t_w2v = t.elapsed();
    println!(
        "Word2Vec training:  {t_w2v:>8.2?}  ({} sentences)",
        sentences.len()
    );
    let embedder = VucEmbedder::new(w2v);

    let test_vucs: usize = corpus
        .test
        .iter()
        .map(|b| {
            cati_analysis::extract(&b.binary.strip(), FeatureView::Stripped)
                .map_or(0, |ex| ex.vucs.len())
        })
        .sum();

    // One worker vs. all cores (at least 2, so the multi-thread code
    // path is exercised even on a single-core machine).
    let multi = cores.max(2);
    let single = timed_run(1, &config, &corpus, &train_ds, &embedder, test_vucs);
    let parallel = timed_run(multi, &config, &corpus, &train_ds, &embedder, test_vucs);

    let bit_identical = single.model_json == parallel.model_json;
    assert!(
        bit_identical,
        "threads=1 and threads={multi} models diverged"
    );
    let speedup_train = single.cnn_train_s / parallel.cnn_train_s;
    let speedup_infer = parallel.infer_vucs_per_s / single.infer_vucs_per_s;
    println!(
        "\nspeedup: train {speedup_train:.2}x, inference {speedup_infer:.2}x \
         (threads {multi} vs 1 on {cores} cores); models bit-identical: {bit_identical}"
    );
    if cores == 1 {
        println!("note: single-core machine — wall-clock speedup is not measurable here");
    }
    println!("paper: ~6 s per binary (extraction dominates), 2 h CNN, 3 h Word2Vec");

    // Cold-vs-warm artifact cache: infer over the stripped test set
    // three times — no cache, against a fresh cache directory (cold),
    // and again against the now-populated cache (warm). All three must
    // produce bit-identical output; the cold/warm wall-clock ratio is
    // the cache-speedup headline recorded in BENCH_speed.json.
    let stages: MultiStage = serde_json::from_str(&parallel.model_json).expect("stages roundtrip");
    let cati = Cati {
        config: Config {
            threads: multi,
            ..config
        },
        embedder: embedder.clone(),
        stages,
    };
    let stripped: Vec<_> = corpus.test.iter().map(|b| b.binary.strip()).collect();
    let artifacts_dir =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/cati-cache/speed-artifacts");
    let _ = std::fs::remove_dir_all(&artifacts_dir);
    let artifacts = ArtifactCache::open(&artifacts_dir).expect("open artifact cache");
    let infer_all = |cache: Option<&ArtifactCache>, obs: &dyn Observer| {
        let t = Instant::now();
        let vars: Vec<Vec<_>> = stripped
            .iter()
            .map(|bin| cati.infer_cached(bin, cache, obs).expect("inference"))
            .collect();
        let json = serde_json::to_string(&vars).expect("vars json");
        (t.elapsed().as_secs_f64(), json)
    };
    let (uncached_s, uncached_out) = infer_all(None, &cati::obs::NOOP);
    let cold_rec = Recorder::silent();
    let (cache_cold_s, cold_out) = infer_all(Some(&artifacts), &cold_rec);
    let warm_rec = Recorder::silent();
    let (cache_warm_s, warm_out) = infer_all(Some(&artifacts), &warm_rec);
    assert_eq!(
        uncached_out, cold_out,
        "cold cache changed inference output"
    );
    assert_eq!(
        uncached_out, warm_out,
        "warm cache changed inference output"
    );
    let cold_hits = cold_rec.metrics().counter_value("cache.hit");
    let warm_hits = warm_rec.metrics().counter_value("cache.hit");
    assert!(warm_hits > 0, "warm run should hit the artifact cache");
    let cache_speedup = cache_cold_s / cache_warm_s.max(1e-9);
    println!(
        "artifact cache: uncached {uncached_s:.2}s, cold {cache_cold_s:.2}s \
         ({cold_hits} hits), warm {cache_warm_s:.2}s ({warm_hits} hits) — \
         {cache_speedup:.2}x cold/warm, outputs bit-identical"
    );

    // Model container: save the trained system as a CATI1 container,
    // then time a cold load back and verify it round-trips exactly.
    let model_path = artifacts_dir.join("speed-model.cati");
    cati.save(&model_path).expect("save model");
    let model_bytes = std::fs::metadata(&model_path)
        .expect("model metadata")
        .len();
    let t = Instant::now();
    let loaded = Cati::load(&model_path).expect("load model");
    let model_load_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(loaded, cati, "loaded model diverged from the saved one");
    // A v2 container load keeps the weights memory-mapped (zero-copy).
    let model_mapped_tensors = loaded.mapped_param_count();
    #[cfg(unix)]
    assert!(
        model_mapped_tensors > 0,
        "v2 model load should be zero-copy on unix"
    );

    // Quantized inference parity: quantize a clone at each mode,
    // infer over the stripped test set twice (the determinism gate),
    // and measure the accuracy cost against the f32 outputs —
    // class-change fraction and mean |Δconfidence| — for the run
    // manifest. The f32 engine itself is never touched.
    let f32_vars: Vec<Vec<_>> = stripped
        .iter()
        .map(|bin| {
            let mut v = cati.infer(bin).expect("inference");
            v.sort_by_key(|v| (v.key.func, v.key.offset));
            v
        })
        .collect();
    let quant_parity = |mode: cati::nn::QuantMode| {
        let mut q = cati.clone();
        q.quantize(mode);
        let pass = || -> Vec<Vec<_>> {
            stripped
                .iter()
                .map(|bin| {
                    let mut v = q.infer(bin).expect("quantized inference");
                    v.sort_by_key(|v| (v.key.func, v.key.offset));
                    v
                })
                .collect()
        };
        let qv = pass();
        assert_eq!(
            qv,
            pass(),
            "{mode} quantized inference must be deterministic"
        );
        let (mut changed, mut total) = (0usize, 0usize);
        let mut conf_delta = 0.0f64;
        for (fv, qv) in f32_vars.iter().zip(&qv) {
            assert_eq!(fv.len(), qv.len(), "{mode} changed the variable set");
            for (a, b) in fv.iter().zip(qv) {
                total += 1;
                changed += usize::from(a.class != b.class);
                conf_delta += f64::from((a.confidence - b.confidence).abs());
            }
        }
        let frac = changed as f64 / total.max(1) as f64;
        let mean_dconf = conf_delta / total.max(1) as f64;
        println!(
            "quantized ({mode}): {changed}/{total} class changes ({:.2}%), \
             mean |Δconfidence| {mean_dconf:.5}",
            frac * 100.0
        );
        json!({
            "mode": mode.name(),
            "vars": total,
            "class_changes": changed,
            "class_change_fraction": frac,
            "mean_abs_confidence_delta": mean_dconf,
            "deterministic": true,
        })
    };
    let quantized = vec![
        quant_parity(cati::nn::QuantMode::Int8),
        quant_parity(cati::nn::QuantMode::F16),
    ];

    // Embedding throughput: VUC rows embedded per second over the
    // stripped test set (the tensor-build stage of inference).
    let test_exs: Vec<_> = stripped
        .iter()
        .filter_map(|bin| cati_analysis::extract(bin, FeatureView::Stripped).ok())
        .collect();
    // Best of three passes: a single pass is dominated by scheduler
    // and frequency noise on small corpora, and the quantity of
    // interest is steady-state throughput (the first pass also warms
    // the column cache for any instruction inference never saw).
    let mut embed_rows = 0usize;
    let mut embed_s = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let rows: usize = test_exs
            .iter()
            .map(|ex| cati::dataset::embed_extraction(ex, &cati.embedder).rows())
            .sum();
        let s = t.elapsed().as_secs_f64();
        embed_rows = rows;
        embed_s = embed_s.min(s);
    }
    let embed_rows_per_s = embed_rows as f64 / embed_s.max(1e-9);
    println!(
        "model container: {model_bytes} bytes, loads in {model_load_ms:.1} ms; \
         embedding {embed_rows} rows at {embed_rows_per_s:.0} rows/s"
    );

    // Serve daemon throughput: the same model behind `cati serve`,
    // measured end to end over loopback HTTP — requests/s and
    // latency percentiles at 1 and 8 concurrent clients, plus a
    // cold-cache pass (fresh server-side ArtifactCache, so the first
    // touch of each binary pays extraction + embedding). Every
    // response is checked byte-identical to in-process inference.
    let serve_cache_dir = artifacts_dir.join("serve-cache");
    let _ = std::fs::remove_dir_all(&serve_cache_dir);
    let handle = cati_serve::Server::start(
        cati.clone(),
        cati_serve::ServeConfig {
            cache_dir: Some(serve_cache_dir),
            ..cati_serve::ServeConfig::default()
        },
    )
    .expect("start serve daemon");
    let expected: Vec<String> = stripped
        .iter()
        .map(|bin| {
            let mut vars = cati.infer(bin).expect("inference");
            vars.sort_by_key(|v| (v.key.func, v.key.offset));
            serde_json::to_string_pretty(&vars).expect("vars json")
        })
        .collect();
    let requests: Vec<cati_serve::Request> = stripped
        .iter()
        .map(|bin| {
            cati_serve::Request::new("POST", "/infer")
                .with_body(serde_json::to_vec(bin).expect("binary json"))
        })
        .collect();
    let serve_pass = |clients: usize, per_client: usize| -> (f64, f64, f64) {
        let addr = handle.addr();
        let t = Instant::now();
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let requests = requests.clone();
                let expected = expected.clone();
                std::thread::spawn(move || {
                    let mut latencies_ms = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let k = (c * per_client + i) % requests.len();
                        let t0 = Instant::now();
                        let response =
                            cati_serve::roundtrip(addr, &requests[k]).expect("serve roundtrip");
                        latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                        assert_eq!(response.status, 200, "serve answered {}", response.status);
                        assert_eq!(
                            String::from_utf8_lossy(&response.body),
                            expected[k],
                            "served response diverged from in-process inference"
                        );
                    }
                    latencies_ms
                })
            })
            .collect();
        let mut latencies: Vec<f64> = workers
            .into_iter()
            .flat_map(|w| w.join().expect("client thread"))
            .collect();
        let wall_s = t.elapsed().as_secs_f64();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
        let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
        (
            (clients * per_client) as f64 / wall_s.max(1e-9),
            pct(0.50),
            pct(0.99),
        )
    };
    // Cold: one sequential sweep populates the server-side cache.
    let (serve_cold_reqs_per_s, serve_cold_p50_ms, _) = serve_pass(1, stripped.len());
    // Warm: cache hits only, 1 client vs 8 clients.
    let (serve_1_reqs_per_s, serve_1_p50_ms, serve_1_p99_ms) = serve_pass(1, 16);
    let (serve_reqs_per_s, serve_p50_ms, serve_p99_ms) = serve_pass(8, 3);
    let serve_metrics = handle.recorder().metrics().snapshot();
    let serve_batched = serve_metrics
        .histogram("serve.batch_size")
        .map_or(0.0, |h| h.sum - h.count as f64);
    drop(handle);
    println!(
        "serve: cold {serve_cold_reqs_per_s:.1} req/s (p50 {serve_cold_p50_ms:.1} ms); \
         warm 1 client {serve_1_reqs_per_s:.1} req/s (p50 {serve_1_p50_ms:.1} / p99 {serve_1_p99_ms:.1} ms), \
         8 clients {serve_reqs_per_s:.1} req/s (p50 {serve_p50_ms:.1} / p99 {serve_p99_ms:.1} ms); \
         {serve_batched:.0} requests rode in shared batches"
    );

    let run_json = |r: &Run| {
        json!({
            "threads": r.threads,
            "cnn_train_s": r.cnn_train_s,
            "train_s_per_epoch": r.train_s_per_epoch,
            "infer_s": r.infer_s,
            "infer_s_per_binary": r.infer_s_per_binary,
            "infer_vucs_per_s": r.infer_vucs_per_s,
        })
    };
    // Stamp provenance so BENCH_speed.json and the history line can
    // be diffed across revisions (`cati report --bench-diff`).
    let rev = cati::obs::git_rev(std::path::Path::new("."));
    let stamped_ms = cati::obs::manifest::unix_ms();
    let report = json!({
        "experiment": "speed",
        "git_rev": rev.as_deref().unwrap_or("unknown"),
        "unix_ms": stamped_ms,
        "scale": scale.name(),
        "seed": SEED,
        "cores": cores,
        "test_vucs": test_vucs,
        "extract_train_s": t_extract_train.as_secs_f64(),
        "word2vec_s": t_w2v.as_secs_f64(),
        "runs": [run_json(&single), run_json(&parallel)],
        "speedup_train": speedup_train,
        "speedup_infer": speedup_infer,
        "models_bit_identical": bit_identical,
        "cache_uncached_s": uncached_s,
        "cache_cold_s": cache_cold_s,
        "cache_warm_s": cache_warm_s,
        "cache_speedup": cache_speedup,
        "cache_cold_hits": cold_hits,
        "cache_warm_hits": warm_hits,
        "cache_outputs_bit_identical": true,
        "model_bytes": model_bytes,
        "model_load_ms": model_load_ms,
        "model_mapped_tensors": model_mapped_tensors,
        "quantized": quantized,
        "embed_rows_per_s": embed_rows_per_s,
        "serve_cold_reqs_per_s": serve_cold_reqs_per_s,
        "serve_cold_p50_ms": serve_cold_p50_ms,
        "serve_1client_reqs_per_s": serve_1_reqs_per_s,
        "serve_1client_p50_ms": serve_1_p50_ms,
        "serve_1client_p99_ms": serve_1_p99_ms,
        "serve_reqs_per_s": serve_reqs_per_s,
        "serve_p50_ms": serve_p50_ms,
        "serve_p99_ms": serve_p99_ms,
        "serve_clients": 8,
        "serve_batched_requests": serve_batched,
        "serve_outputs_bit_identical": true,
        "note": if cores == 1 {
            "single-core machine: threads>1 runs oversubscribed, wall-clock speedup not measurable"
        } else {
            "speedups are wall-clock, all-cores vs one worker thread"
        },
        "metrics": serde_json::to_value(&run.recorder().snapshot()).expect("metrics snapshot"),
    });
    let out = "BENCH_speed.json";
    std::fs::write(
        out,
        serde_json::to_string_pretty(&report).expect("report json"),
    )
    .expect("write BENCH_speed.json");
    println!("wrote {out}");

    // Perf observatory: append the flat key-metric record to the
    // git-rev-stamped history, one line per benchmark run.
    let history_line = json!({
        "git_rev": rev.as_deref().unwrap_or("unknown"),
        "unix_ms": stamped_ms,
        "scale": scale.name(),
        "cores": cores,
        "infer_vucs_per_s": parallel.infer_vucs_per_s,
        "embed_rows_per_s": embed_rows_per_s,
        "serve_reqs_per_s": serve_reqs_per_s,
        "serve_p99_ms": serve_p99_ms,
        "model_load_ms": model_load_ms,
    });
    let history = "results/bench_history.jsonl";
    cati::obs::bench::append_history(history, &history_line).expect("append bench history");
    println!("appended key metrics to {history}");
    run.finish(&json!({
        "experiment": "speed",
        "scale": scale.name(),
        "speedup_train": speedup_train,
        "speedup_infer": speedup_infer,
        "models_bit_identical": bit_identical,
        "cache_speedup": cache_speedup,
        "cache_warm_hits": warm_hits,
        "serve_reqs_per_s": serve_reqs_per_s,
        "serve_p99_ms": serve_p99_ms,
    }));
}
