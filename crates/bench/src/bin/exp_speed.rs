//! Training and inference speed (paper §VII): the paper quotes ~2 h
//! CNN training, ~3 h Word2Vec, 24 min extraction + 5 min prediction
//! over the test set, ~6 s per binary end to end. We time the same
//! phases on this substrate.
//!
//! ```sh
//! cargo run --release -p cati-bench --bin exp_speed -- --scale medium
//! ```

use cati::{embedding_sentences, Cati, Config, Dataset, MultiStage};
use cati_analysis::FeatureView;
use cati_bench::{Scale, SEED};
use cati_embedding::{VucEmbedder, Word2Vec};
use cati_synbin::{build_corpus, Compiler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let config: Config = scale.config();
    let corpus = build_corpus(&scale.corpus(SEED).with_compiler(Compiler::Gcc));
    println!("\nTiming ({}; {} train / {} test binaries)\n", scale.name(), corpus.train.len(), corpus.test.len());

    let t = Instant::now();
    let train_ds = Dataset::from_binaries(&corpus.train, FeatureView::WithSymbols);
    let t_extract_train = t.elapsed();
    println!(
        "extraction (train): {:>8.2?}  ({} vars, {} VUCs)",
        t_extract_train,
        train_ds.var_count(),
        train_ds.vuc_count()
    );

    let t = Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let sentences = embedding_sentences(&corpus.train, config.max_sentences, &mut rng);
    let w2v = Word2Vec::train(&sentences, config.w2v);
    let t_w2v = t.elapsed();
    println!("Word2Vec training:  {t_w2v:>8.2?}  ({} sentences)", sentences.len());
    let embedder = VucEmbedder::new(w2v);

    let t = Instant::now();
    let stages = MultiStage::train(&train_ds, &embedder, &config, |_| {});
    let t_cnn = t.elapsed();
    println!("CNN training (6 stages): {t_cnn:>8.2?}");

    let cati = Cati { config, embedder, stages };

    // Per-binary inference: extraction + prediction + voting.
    let t = Instant::now();
    let mut total_vars = 0usize;
    for built in &corpus.test {
        let stripped = built.binary.strip();
        let inferred = cati.infer(&stripped).expect("inference");
        total_vars += inferred.len();
    }
    let t_infer = t.elapsed();
    println!(
        "inference: {:>8.2?} total, {:.3} s/binary, {} variables typed",
        t_infer,
        t_infer.as_secs_f64() / corpus.test.len() as f64,
        total_vars
    );
    println!("\npaper: ~6 s per binary (extraction dominates), 2 h CNN, 3 h Word2Vec");
}
