//! Fig. 6: occlusion importance — per-window-position ε distribution
//! (the heat map) plus one worked example (the importance
//! visualization).
//!
//! ```sh
//! cargo run --release -p cati-bench --bin exp_fig6 -- --scale medium
//! ```

use cati::{importance_heatmap, occlusion_epsilons, EmbeddedExtraction};
use cati_analysis::{Extraction, WINDOW};
use cati_bench::{load_ctx_observed, RunObs, Scale};
use cati_dwarf::StageId;
use cati_synbin::Compiler;

fn main() {
    let scale = Scale::from_args();
    let run = RunObs::from_args("exp_fig6");
    let ctx = load_ctx_observed(scale, Compiler::Gcc, run.obs());
    let exs: Vec<&Extraction> = ctx.test.iter().map(|(_, e)| e).collect();
    let max_vucs = match scale {
        Scale::Small => 300,
        Scale::Medium => 2_000,
        Scale::Paper => 5_000,
    };

    // (a) Importance visualization of one example VUC.
    let example = exs
        .iter()
        .flat_map(|e| e.vucs.iter())
        .find(|v| v.insns.iter().filter(|g| g.mnemonic() != "BLANK").count() == 21)
        .expect("a full window exists");
    let eps = occlusion_epsilons(&ctx.cati, &example.insns, StageId::Stage1);
    println!("\nFig. 6(a) — importance visualization of one VUC (Stage 1)\n");
    for (k, (e, insn)) in eps.iter().zip(&example.insns).enumerate() {
        let marker = if k == WINDOW { "  <= target" } else { "" };
        println!("{e:>8.5}  {insn}{marker}");
    }

    // (b) Heat map over the test set. One embedding session per
    // extraction feeds every occluded position.
    println!("\nFig. 6(b) — cumulative epsilon distribution per position\n");
    let sessions: Vec<EmbeddedExtraction> = exs
        .iter()
        .map(|ex| EmbeddedExtraction::new_observed(&ctx.cati.embedder, ex, run.obs()))
        .collect();
    let heatmap = importance_heatmap(&ctx.cati, &sessions, StageId::Stage1, max_vucs);
    println!(
        "sampled {} VUCs; columns are P(eps < 0.1) ... P(eps < 1.0)\n",
        heatmap.samples
    );
    print!("pos ");
    for c in 1..=10 {
        print!("  <{:.1} ", c as f64 / 10.0);
    }
    println!();
    for (k, row) in heatmap.rows.iter().enumerate() {
        print!("{k:>3} ");
        for v in row {
            print!("{:>5.1}% ", v * 100.0);
        }
        println!("{}", if k == WINDOW { "  <= target" } else { "" });
    }
    let center = heatmap.row_importance(WINDOW);
    let edges = (heatmap.row_importance(0) + heatmap.row_importance(2 * WINDOW)) / 2.0;
    let neighbors = (heatmap.row_importance(WINDOW - 1) + heatmap.row_importance(WINDOW + 1)) / 2.0;
    println!("\nimportance: center {center:.4}, next-door {neighbors:.4}, edges {edges:.4}");
    println!("Expected shape (paper): the central instruction dominates and importance");
    println!("decays with distance; next-door neighbours already differ sharply.");
}
