//! DEBIN comparison (paper §VII): the 17-type task, CATI vs the
//! baseline families. The paper reports CATI 0.84 vs DEBIN 0.73 —
//! an ~11-point gap attributed to context features. We reproduce the
//! *shape*: context-assisted CATI beats every context-free method.
//!
//! ```sh
//! cargo run --release -p cati-bench --bin exp_debin_comparison -- --scale medium
//! ```

use cati::report::Table;
use cati::DebinTask;
use cati_analysis::Extraction;
use cati_baselines::{
    blank_extraction, variable_accuracy, NoContextCati, RuleTyper, SignatureKnn, SignatureWidth,
    VarTyper,
};
use cati_bench::{load_ctx_observed, RunObs, Scale};
use cati_synbin::Compiler;

fn main() {
    let scale = Scale::from_args();
    let run = RunObs::from_args("exp_debin_comparison");
    let ctx = load_ctx_observed(scale, Compiler::Gcc, run.obs());
    let train: Vec<&Extraction> = ctx.train.iter().map(|(_, e)| e).collect();
    let test: Vec<&Extraction> = ctx.test.iter().map(|(_, e)| e).collect();
    let config = scale.config();

    // --- 17-type task: CATI (flat 17-class + voting) vs a
    // dependency-only variant (blanked context = DEBIN-style features).
    eprintln!("[debin] training 17-type CATI head...");
    let cati17 = DebinTask::train(&train, &ctx.cati.embedder, &config);
    let cati17_acc = cati17.accuracy(&test, &ctx.cati.embedder);

    eprintln!("[debin] training 17-type no-context head...");
    let blanked_train: Vec<Extraction> = train.iter().map(|e| blank_extraction(e)).collect();
    let blanked_refs: Vec<&Extraction> = blanked_train.iter().collect();
    let nocontext17 = DebinTask::train(&blanked_refs, &ctx.cati.embedder, &config);
    let blanked_test: Vec<Extraction> = test.iter().map(|e| blank_extraction(e)).collect();
    let blanked_test_refs: Vec<&Extraction> = blanked_test.iter().collect();
    let nocontext17_acc = nocontext17.accuracy(&blanked_test_refs, &ctx.cati.embedder);

    // --- 19-type task: baseline ladder.
    eprintln!("[debin] training no-context 19-type baseline...");
    let nocontext = NoContextCati::train(&ctx.train, &ctx.cati.embedder, &config);
    eprintln!("[debin] training signature k-NN baselines...");
    let knn_narrow = SignatureKnn::train(train.iter().copied(), SignatureWidth::TargetOnly);
    let knn_wide = SignatureKnn::train(train.iter().copied(), SignatureWidth::TargetPlusMinusOne);

    let cati_acc_19 = {
        let mut ok = 0.0;
        let mut n = 0u64;
        for ex in &test {
            let (_, _, ra, rn) = cati::pipeline_accuracy(&ctx.cati, ex);
            ok += ra * rn as f64;
            n += rn;
        }
        ok / n.max(1) as f64
    };
    let typers: Vec<(String, f64)> = vec![
        (
            RuleTyper.name().to_string(),
            variable_accuracy(&RuleTyper, test.iter().copied()),
        ),
        (
            format!("{} (target only)", knn_narrow.name()),
            variable_accuracy(&knn_narrow, test.iter().copied()),
        ),
        (
            format!("{} (target +/-1)", knn_wide.name()),
            variable_accuracy(&knn_wide, test.iter().copied()),
        ),
        (
            nocontext.name().to_string(),
            variable_accuracy(&nocontext, test.iter().copied()),
        ),
    ];

    println!("\nDEBIN comparison ({})\n", scale.name());
    let mut t17 = Table::new(&["method (17-type task)", "variable accuracy"]);
    t17.row(vec![
        "CATI (context VUCs)".into(),
        format!("{:.3}", cati17_acc),
    ]);
    t17.row(vec![
        "dependency-only (DEBIN-style features)".into(),
        format!("{:.3}", nocontext17_acc),
    ]);
    println!("{}", t17.render());
    println!("paper: CATI 0.84 vs DEBIN 0.73 (+11 points)\n");

    let mut t19 = Table::new(&["method (19-type task)", "variable accuracy"]);
    t19.row(vec!["CATI (full)".into(), format!("{:.3}", cati_acc_19)]);
    for (name, acc) in &typers {
        t19.row(vec![name.clone(), format!("{:.3}", acc)]);
    }
    println!("{}", t19.render());
    println!(
        "signature collision rates: target-only {:.1}%, +/-1 {:.1}% (uncertain samples)",
        knn_narrow.collision_rate() * 100.0,
        knn_wide.collision_rate() * 100.0
    );
    println!("Expected shape: CATI > no-context/k-NN/rules; gap ~= the paper's DEBIN gap.");
}
