//! Table V: per-type stage recalls, final accuracy, support, and the
//! same-type clustering statistics (cnt-same / cnt-all / c-rate).
//!
//! ```sh
//! cargo run --release -p cati-bench --bin exp_table5 -- --scale medium
//! ```

use cati::dataset::embed_extraction;
use cati::report::{cell, pct, Table};
use cati::vote;
use cati_analysis::clustering_stats;
use cati_bench::{load_ctx_observed, RunObs, Scale};
use cati_dwarf::{StageId, TypeClass};
use cati_synbin::Compiler;

fn main() {
    let scale = Scale::from_args();
    let run = RunObs::from_args("exp_table5");
    let ctx = load_ctx_observed(scale, Compiler::Gcc, run.obs());

    let n = TypeClass::ALL.len();
    // Per class: [stage-depth-0..2 recall numerators/denominators],
    // final accuracy, support.
    let mut stage_ok = vec![[0u64; 3]; n];
    let mut stage_n = vec![[0u64; 3]; n];
    let mut final_ok = vec![0u64; n];
    let mut support = vec![0u64; n];

    for (_, ex) in ctx.test.iter() {
        let xs = embed_extraction(ex, &ctx.cati.embedder);
        // Cache stage distributions for all VUCs.
        let stage_dists: Vec<(StageId, cati::Tensor)> = StageId::ALL
            .iter()
            .map(|&s| (s, ctx.cati.stages.stage_probs_batch(s, &xs)))
            .collect();
        let dist_of = |s: StageId, i: usize| -> &[f32] {
            stage_dists
                .iter()
                .find(|(x, _)| *x == s)
                .expect("stage cached")
                .1
                .row(i)
        };
        let leaf_dists = ctx.cati.stages.leaf_distributions_batch(&xs);

        for var in &ex.vars {
            let Some(class) = var.class else { continue };
            let ci = class.index();
            support[ci] += 1;
            // Per-stage voted prediction along the truth path.
            for (depth, (stage, truth_label)) in StageId::path_of(class).iter().enumerate() {
                let dists: Vec<&[f32]> = var
                    .vucs
                    .iter()
                    .map(|&v| dist_of(*stage, v as usize))
                    .collect();
                let pred = vote(&dists, ctx.cati.config.vote_threshold).class;
                stage_n[ci][depth] += 1;
                stage_ok[ci][depth] += u64::from(pred == *truth_label);
            }
            // Final composed decision.
            let dists: Vec<&[f32]> = var
                .vucs
                .iter()
                .map(|&v| leaf_dists.row(v as usize))
                .collect();
            let pred = vote(&dists, ctx.cati.config.vote_threshold).class;
            final_ok[ci] += u64::from(TypeClass::ALL[pred] == class);
        }
    }

    let clustering = clustering_stats(ctx.test.iter().map(|(_, e)| e));

    let mut table = Table::new(&[
        "Type", "S1-R", "S2-R", "S3-R", "ACC", "Support", "cnt-same", "cnt-all", "c-rate",
    ]);
    for class in TypeClass::ALL {
        let ci = class.index();
        let ratio = |ok: u64, n: u64| if n == 0 { 0.0 } else { ok as f64 / n as f64 };
        let depth_cell = |d: usize| {
            if stage_n[ci][d] == 0 {
                "-".to_string()
            } else {
                cell(ratio(stage_ok[ci][d], stage_n[ci][d]), stage_n[ci][d])
            }
        };
        let cs = &clustering.per_class[ci];
        table.row(vec![
            class.name().to_string(),
            depth_cell(0),
            depth_cell(1),
            depth_cell(2),
            cell(ratio(final_ok[ci], support[ci]), support[ci]),
            support[ci].to_string(),
            format!("{:.2}", cs.cnt_same()),
            format!("{:.2}", cs.cnt_all()),
            pct(cs.c_rate()),
        ]);
    }
    println!(
        "\nTable V — per-type stage recalls and clustering ({})\n",
        scale.name()
    );
    println!("{}", table.render());
    println!(
        "overall clustering: cnt-same {:.2}, cnt-all {:.2}, c-rate {}   (paper: ~53% same-type)",
        clustering.overall.cnt_same(),
        clustering.overall.cnt_all(),
        pct(clustering.overall.c_rate())
    );
    println!("Expected shape (paper): double/int strong; enum/short/long-long weak;");
    println!("final recall roughly tracks the clustering ratio.");
}
