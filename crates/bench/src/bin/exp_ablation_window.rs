//! Ablation: context window width and context-assembly mode.
//!
//! Two axes over the paper's core design choice (§II-A):
//!
//! 1. **Width** — models retrained with the context masked to ±w for
//!    w ∈ {0, 2, 5, 10}; w = 0 is the no-context baseline, the proxy
//!    for dependency-only methods like DEBIN/TypeMiner on orphan
//!    variables.
//! 2. **Mode** — the paper's function-local windows (out-of-range
//!    slots pad with BLANK) versus interprocedural windows (callee
//!    prologues / caller continuations spliced into the padding at
//!    call/ret boundaries, DESIGN.md §17). Stages are retrained per
//!    mode on matching extractions; the Word2Vec embedder is shared —
//!    spliced slots contain ordinary generalized instructions, so the
//!    vocabulary is identical.
//!
//! ```sh
//! cargo run --release -p cati-bench --bin exp_ablation_window -- --scale medium
//! cargo run --release -p cati-bench --bin exp_ablation_window -- --quick
//! ```
//!
//! `--quick` trims the width axis to {0, 10} for CI smoke runs.

use cati::dataset::embed_extraction;
use cati::report::Table;
use cati::{vote, ContextMode, Dataset, MultiStage};
use cati_analysis::{Extraction, FeatureView, WINDOW};
use cati_asm::generalize::GenInsn;
use cati_bench::{load_ctx_observed, RunObs, Scale};
use cati_dwarf::TypeClass;
use cati_synbin::Compiler;
use serde_json::json;

/// Blanks all instructions farther than `w` from the center.
fn mask_window(insns: &[GenInsn], w: usize) -> Vec<GenInsn> {
    insns
        .iter()
        .enumerate()
        .map(|(i, g)| {
            if i.abs_diff(WINDOW) <= w {
                g.clone()
            } else {
                GenInsn::blank()
            }
        })
        .collect()
}

fn mask_dataset(ds: &Dataset, w: usize) -> Dataset {
    Dataset {
        entries: ds
            .entries
            .iter()
            .map(|(app, ex)| {
                let mut ex = ex.clone();
                for vuc in &mut ex.vucs {
                    vuc.insns = mask_window(&vuc.insns, w);
                }
                (app.clone(), ex)
            })
            .collect(),
    }
}

fn accuracies(
    stages: &MultiStage,
    embedder: &cati_embedding::VucEmbedder,
    test: &Dataset,
    threshold: f32,
) -> (f64, f64) {
    let mut vuc_ok = 0u64;
    let mut vuc_n = 0u64;
    let mut var_ok = 0u64;
    let mut var_n = 0u64;
    for (_, ex) in test.iter() {
        let ex: &Extraction = ex;
        let xs = embed_extraction(ex, embedder);
        let dists = stages.leaf_distributions_batch(&xs);
        for (vuc, dist) in ex.vucs.iter().zip(dists.rows_iter()) {
            let Some(class) = vuc.class(&ex.vars) else {
                continue;
            };
            let pred = cati::argmax(dist);
            vuc_n += 1;
            vuc_ok += u64::from(TypeClass::ALL[pred] == class);
        }
        for var in &ex.vars {
            let Some(class) = var.class else { continue };
            let vd: Vec<&[f32]> = var.vucs.iter().map(|&v| dists.row(v as usize)).collect();
            let pred = vote(&vd, threshold).class;
            var_n += 1;
            var_ok += u64::from(TypeClass::ALL[pred] == class);
        }
    }
    (
        vuc_ok as f64 / vuc_n.max(1) as f64,
        var_ok as f64 / var_n.max(1) as f64,
    )
}

fn main() {
    let scale = Scale::from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    let run = RunObs::from_args("exp_ablation_window");
    let ctx = load_ctx_observed(scale, Compiler::Gcc, run.obs());
    let config = scale.config();

    // Axis 1: window width (function-local mode).
    let widths: &[usize] = if quick { &[0, 10] } else { &[0, 2, 5, 10] };
    let mut width_rows = Vec::new();
    let mut table = Table::new(&["window ±w", "VUC accuracy", "variable accuracy", "note"]);
    for &w in widths {
        eprintln!("[ablation] training with window ±{w}...");
        let train = mask_dataset(&ctx.train, w);
        let test = mask_dataset(&ctx.test, w);
        let stages = MultiStage::train(&train, &ctx.cati.embedder, &config, &cati::obs::NOOP);
        let (vuc, var) = accuracies(&stages, &ctx.cati.embedder, &test, config.vote_threshold);
        let note = match w {
            0 => "target only (no context)",
            10 => "paper's VUC",
            _ => "",
        };
        width_rows.push(json!({ "w": w, "vuc_accuracy": vuc, "var_accuracy": var }));
        table.row(vec![
            format!("{w}"),
            format!("{vuc:.4}"),
            format!("{var:.4}"),
            note.into(),
        ]);
    }
    println!("\nAblation — context window width ({})\n", scale.name());
    println!("{}", table.render());

    // Axis 2: context-assembly mode. Extract, retrain and score each
    // mode on its own datasets; window width stays at the full ±10.
    let mut mode_rows = Vec::new();
    let mut mode_table = Table::new(&["context mode", "VUC accuracy", "variable accuracy", "note"]);
    for mode in ContextMode::ALL {
        eprintln!("[ablation] training with context mode {mode}...");
        let train = Dataset::from_binaries_mode(
            &ctx.corpus.train,
            FeatureView::WithSymbols,
            mode,
            None,
            &cati::obs::NOOP,
        );
        let test = Dataset::from_binaries_mode(
            &ctx.corpus.test,
            FeatureView::Stripped,
            mode,
            None,
            &cati::obs::NOOP,
        );
        let stages = MultiStage::train(&train, &ctx.cati.embedder, &config, &cati::obs::NOOP);
        let (vuc, var) = accuracies(&stages, &ctx.cati.embedder, &test, config.vote_threshold);
        let note = match mode {
            ContextMode::FunctionLocal => "paper baseline",
            ContextMode::Interprocedural => "call/ret splicing",
        };
        mode_rows.push(json!({
            "mode": mode.name(),
            "vuc_accuracy": vuc,
            "var_accuracy": var,
        }));
        mode_table.row(vec![
            mode.name().to_string(),
            format!("{vuc:.4}"),
            format!("{var:.4}"),
            note.into(),
        ]);
    }
    println!("\nAblation — context-assembly mode ({})\n", scale.name());
    println!("{}", mode_table.render());
    println!("Expected shape: accuracy grows with w; the w=0 row is the uncertain-sample");
    println!("ceiling that motivates the VUC (paper §II). The interproc row shows what");
    println!("splicing real caller/callee context into the padding buys over BLANKs.");

    run.finish(&json!({
        "scale": scale.name(),
        "quick": quick,
        "window_ablation": width_rows,
        "mode_ablation": mode_rows,
    }));
}
