//! Ablation: context window width — the paper's core design choice
//! (w = 10, §II-A). Models are retrained with the context masked to
//! ±w for w ∈ {0, 2, 5, 10}; w = 0 is the no-context baseline, the
//! proxy for dependency-only methods like DEBIN/TypeMiner on orphan
//! variables.
//!
//! ```sh
//! cargo run --release -p cati-bench --bin exp_ablation_window -- --scale medium
//! ```

use cati::dataset::embed_extraction;
use cati::report::Table;
use cati::{vote, Dataset, MultiStage};
use cati_analysis::{Extraction, WINDOW};
use cati_asm::generalize::GenInsn;
use cati_bench::{load_ctx_observed, RunObs, Scale};
use cati_dwarf::TypeClass;
use cati_synbin::Compiler;

/// Blanks all instructions farther than `w` from the center.
fn mask_window(insns: &[GenInsn], w: usize) -> Vec<GenInsn> {
    insns
        .iter()
        .enumerate()
        .map(|(i, g)| {
            if i.abs_diff(WINDOW) <= w {
                g.clone()
            } else {
                GenInsn::blank()
            }
        })
        .collect()
}

fn mask_dataset(ds: &Dataset, w: usize) -> Dataset {
    Dataset {
        entries: ds
            .entries
            .iter()
            .map(|(app, ex)| {
                let mut ex = ex.clone();
                for vuc in &mut ex.vucs {
                    vuc.insns = mask_window(&vuc.insns, w);
                }
                (app.clone(), ex)
            })
            .collect(),
    }
}

fn accuracies(
    stages: &MultiStage,
    embedder: &cati_embedding::VucEmbedder,
    test: &Dataset,
    threshold: f32,
) -> (f64, f64) {
    let mut vuc_ok = 0u64;
    let mut vuc_n = 0u64;
    let mut var_ok = 0u64;
    let mut var_n = 0u64;
    for (_, ex) in test.iter() {
        let ex: &Extraction = ex;
        let xs = embed_extraction(ex, embedder);
        let dists = stages.leaf_distributions_batch(&xs);
        for (vuc, dist) in ex.vucs.iter().zip(dists.rows_iter()) {
            let Some(class) = vuc.class(&ex.vars) else {
                continue;
            };
            let pred = cati::argmax(dist);
            vuc_n += 1;
            vuc_ok += u64::from(TypeClass::ALL[pred] == class);
        }
        for var in &ex.vars {
            let Some(class) = var.class else { continue };
            let vd: Vec<&[f32]> = var.vucs.iter().map(|&v| dists.row(v as usize)).collect();
            let pred = vote(&vd, threshold).class;
            var_n += 1;
            var_ok += u64::from(TypeClass::ALL[pred] == class);
        }
    }
    (
        vuc_ok as f64 / vuc_n.max(1) as f64,
        var_ok as f64 / var_n.max(1) as f64,
    )
}

fn main() {
    let scale = Scale::from_args();
    let run = RunObs::from_args("exp_ablation_window");
    let ctx = load_ctx_observed(scale, Compiler::Gcc, run.obs());
    let config = scale.config();

    let mut table = Table::new(&["window ±w", "VUC accuracy", "variable accuracy", "note"]);
    for &w in &[0usize, 2, 5, 10] {
        eprintln!("[ablation] training with window ±{w}...");
        let train = mask_dataset(&ctx.train, w);
        let test = mask_dataset(&ctx.test, w);
        let stages = MultiStage::train(&train, &ctx.cati.embedder, &config, &cati::obs::NOOP);
        let (vuc, var) = accuracies(&stages, &ctx.cati.embedder, &test, config.vote_threshold);
        let note = match w {
            0 => "target only (no context)",
            10 => "paper's VUC",
            _ => "",
        };
        table.row(vec![
            format!("{w}"),
            format!("{vuc:.4}"),
            format!("{var:.4}"),
            note.into(),
        ]);
    }
    println!("\nAblation — context window width ({})\n", scale.name());
    println!("{}", table.render());
    println!("Expected shape: accuracy grows with w; the w=0 row is the uncertain-sample");
    println!("ceiling that motivates the VUC (paper §II).");
}
