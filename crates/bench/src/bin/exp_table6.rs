//! Table VI: per-application pipeline accuracy at VUC and variable
//! granularity (paper totals: 0.68 / 0.71).
//!
//! ```sh
//! cargo run --release -p cati-bench --bin exp_table6 -- --scale medium
//! ```

use cati::pipeline_accuracy;
use cati::report::Table;
use cati_bench::{load_ctx_observed, RunObs, Scale, TEST_APPS};
use cati_synbin::Compiler;

fn main() {
    let scale = Scale::from_args();
    let run = RunObs::from_args("exp_table6");
    let ctx = load_ctx_observed(scale, Compiler::Gcc, run.obs());
    let by_app = ctx.test.by_app();

    let mut table = Table::new(&["", "VUC Acc", "VUC Support", "Var Acc", "Var Support"]);
    let mut tot = (0.0f64, 0u64, 0.0f64, 0u64);
    for app in TEST_APPS {
        let mut acc = (0.0f64, 0u64, 0.0f64, 0u64);
        for (_, exs) in by_app.iter().filter(|(a, _)| a == app) {
            for ex in exs {
                let (va, vn, ra, rn) = pipeline_accuracy(&ctx.cati, ex);
                acc.0 += va * vn as f64;
                acc.1 += vn;
                acc.2 += ra * rn as f64;
                acc.3 += rn;
            }
        }
        tot.0 += acc.0;
        tot.1 += acc.1;
        tot.2 += acc.2;
        tot.3 += acc.3;
        table.row(vec![
            app.to_string(),
            format!("{:.2}", acc.0 / acc.1.max(1) as f64),
            acc.1.to_string(),
            format!("{:.2}", acc.2 / acc.3.max(1) as f64),
            acc.3.to_string(),
        ]);
    }
    table.row(vec![
        "Total".to_string(),
        format!("{:.2}", tot.0 / tot.1.max(1) as f64),
        tot.1.to_string(),
        format!("{:.2}", tot.2 / tot.3.max(1) as f64),
        tot.3.to_string(),
    ]);
    println!(
        "\nTable VI — pipeline accuracy per application ({})\n",
        scale.name()
    );
    println!("{}", table.render());
    println!("Paper totals: VUC 0.68 over >1M VUCs, variable 0.71 over >150k variables;");
    println!("voting lifts variable accuracy ~3 points over VUC accuracy.");
}
