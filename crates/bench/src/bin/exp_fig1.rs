//! Fig. 1: real uncertain-sample pairs — variables whose generalized
//! target instructions are identical but whose ground-truth types
//! differ. The paper shows two hand-picked pairs; this regenerator
//! mines them from the corpus and prints the most frequent collisions.
//!
//! ```sh
//! cargo run --release -p cati-bench --bin exp_fig1 -- --scale medium
//! ```

use cati_analysis::{Extraction, WINDOW};
use cati_bench::{load_ctx_observed, RunObs, Scale};
use cati_dwarf::TypeClass;
use cati_synbin::Compiler;
use std::collections::HashMap;

fn main() {
    let scale = Scale::from_args();
    let run = RunObs::from_args("exp_fig1");
    let ctx = load_ctx_observed(scale, Compiler::Gcc, run.obs());

    // signature -> class -> count, over 1-VUC variables (the orphan
    // population of paper Fig. 1 a/b).
    let mut table: HashMap<String, HashMap<TypeClass, u32>> = HashMap::new();
    let collect = |ds: &cati::Dataset, table: &mut HashMap<String, HashMap<TypeClass, u32>>| {
        for (_, ex) in ds.iter() {
            let ex: &Extraction = ex;
            for var in &ex.vars {
                let Some(class) = var.class else { continue };
                if var.vucs.len() != 1 {
                    continue;
                }
                let sig = ex.vucs[var.vucs[0] as usize].insns[WINDOW].to_string();
                *table.entry(sig).or_default().entry(class).or_insert(0) += 1;
            }
        }
    };
    collect(&ctx.train, &mut table);
    collect(&ctx.test, &mut table);

    let mut collisions: Vec<(String, Vec<(TypeClass, u32)>)> = table
        .into_iter()
        .filter(|(_, classes)| classes.len() >= 2)
        .map(|(sig, classes)| {
            let mut v: Vec<(TypeClass, u32)> = classes.into_iter().collect();
            v.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
            (sig, v)
        })
        .collect();
    collisions.sort_by_key(|(_, v)| std::cmp::Reverse(v.iter().map(|(_, c)| *c).sum::<u32>()));

    println!(
        "\nFig. 1 — uncertain samples mined from the corpus ({})\n",
        scale.name()
    );
    println!("single-VUC variables whose generalized target instruction collides");
    println!("across type classes (top 12 by frequency):\n");
    for (sig, classes) in collisions.iter().take(12) {
        let parts: Vec<String> = classes.iter().map(|(c, n)| format!("{c} ×{n}")).collect();
        println!("  {sig:<40} -> {}", parts.join(", "));
    }
    println!(
        "\n{} colliding signatures in total — no target-instruction-only method can \
         separate these populations (paper §II-B).",
        collisions.len()
    );
}
