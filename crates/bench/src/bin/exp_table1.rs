//! Table I: statistics of orphan variables and uncertain samples in
//! the training and testing sets.
//!
//! ```sh
//! cargo run --release -p cati-bench --bin exp_table1 -- --scale medium
//! ```

use cati::report::{pct, Table};
use cati_analysis::{orphan_stats, Extraction};
use cati_bench::{load_ctx_observed, RunObs, Scale};
use cati_synbin::Compiler;

fn main() {
    let scale = Scale::from_args();
    let run = RunObs::from_args("exp_table1");
    let ctx = load_ctx_observed(scale, Compiler::Gcc, run.obs());

    let train: Vec<&Extraction> = ctx.train.iter().map(|(_, e)| e).collect();
    let test: Vec<&Extraction> = ctx.test.iter().map(|(_, e)| e).collect();
    let train_stats = orphan_stats(train.iter().copied());
    let test_stats = orphan_stats(test.iter().copied());

    let mut table = Table::new(&["", "Training Set", "Testing Set"]);
    let row = |name: &str, a: u64, b: u64| vec![name.to_string(), a.to_string(), b.to_string()];
    table.row(row(
        "Variables",
        train_stats.variables,
        test_stats.variables,
    ));
    table.row(row("VUCs", train_stats.vucs, test_stats.vucs));
    table.row(row(
        "Variables with 1 VUC",
        train_stats.vars_1_vuc,
        test_stats.vars_1_vuc,
    ));
    table.row(row(
        "Uncertain Samples-1",
        train_stats.uncertain_1,
        test_stats.uncertain_1,
    ));
    table.row(row(
        "Variables with 2 VUCs",
        train_stats.vars_2_vuc,
        test_stats.vars_2_vuc,
    ));
    table.row(row(
        "Uncertain Samples-2",
        train_stats.uncertain_2,
        test_stats.uncertain_2,
    ));

    println!(
        "\nTable I — orphan variables and uncertain samples ({})\n",
        scale.name()
    );
    println!("{}", table.render());
    println!(
        "orphan rate: train {} / test {}   (paper: ~35% of variables)",
        pct(train_stats.orphan_rate()),
        pct(test_stats.orphan_rate())
    );
    println!(
        "uncertain rate among orphans: train {} / test {}   (paper: >97%)",
        pct(train_stats.uncertain_rate()),
        pct(test_stats.uncertain_rate())
    );
}
