//! Struct-member recovery: for variables the pipeline votes `struct`
//! or `struct*`, cluster the member-offset access idioms
//! (`disp(%reg)` after a frame-slot load, `lea`-seeded chases) into
//! `{offset, width}` member lists and score them against the DWARF
//! ground truth of the labeled twin.
//!
//! Recovery runs on the **stripped** binary only — DWARF supplies the
//! query span and the truth for scoring, never the evidence. Both
//! context modes run so the table shows what following a pointer one
//! call deep (interproc) buys over function-local chasing.
//!
//! ```sh
//! cargo run --release -p cati-bench --bin exp_fields -- --scale medium
//! ```

use cati::report::Table;
use cati::ContextMode;
use cati_analysis::{recover_struct_fields, score_fields, FieldQuery, FieldScore};
use cati_bench::{load_ctx_observed, RunObs, Scale};
use cati_dwarf::{CType, DebugInfo, StructDef, TypeClass};
use cati_synbin::Compiler;
use serde_json::json;

/// The ground truth behind one struct-voted variable: the definition
/// to score against, the query span, and whether the variable holds
/// the struct by value or by pointer.
struct Truth<'a> {
    def: &'a StructDef,
    span: u32,
    pointer: bool,
}

/// Resolves a variable's DWARF type to a scoreable struct definition.
/// By-value structs query with their own size; pointers query with
/// the pointee's size. Unions, arrays and opaque pointees are skipped
/// — there is no member list to score.
fn truth_of<'a>(di: &'a DebugInfo, ty: &CType) -> Option<Truth<'a>> {
    match ty.resolve() {
        CType::Struct(id) => {
            let def = di.types.structs.get(*id as usize)?;
            Some(Truth {
                def,
                span: def.size,
                pointer: false,
            })
        }
        CType::Pointer(inner) => match inner.resolve() {
            CType::Struct(id) => {
                let def = di.types.structs.get(*id as usize)?;
                Some(Truth {
                    def,
                    span: def.size,
                    pointer: true,
                })
            }
            _ => None,
        },
        _ => None,
    }
}

fn main() {
    let scale = Scale::from_args();
    let run = RunObs::from_args("exp_fields");
    let ctx = load_ctx_observed(scale, Compiler::Gcc, run.obs());

    let mut scores: Vec<(ContextMode, FieldScore)> = ContextMode::ALL
        .into_iter()
        .map(|m| (m, FieldScore::default()))
        .collect();
    let mut queries_total = 0usize;
    let mut vars_voted_struct = 0usize;

    for built in &ctx.corpus.test {
        let Some(debug_bytes) = &built.binary.debug else {
            continue;
        };
        let Ok(di) = DebugInfo::parse(debug_bytes) else {
            continue;
        };
        let stripped = built.binary.strip();
        let Ok(inferred) = ctx.cati.infer(&stripped) else {
            continue;
        };
        // Function index → DWARF function record, via the entry
        // address of each split body (the split is identical across
        // views, so stripped VarKeys address the labeled twin).
        let Ok(insns) = stripped.disassemble() else {
            continue;
        };
        let ranges = cati_analysis::split_functions(&insns, &stripped);
        let entries: Vec<u64> = ranges
            .iter()
            .map(|&(start, _)| insns.get(start).map(|l| l.addr).unwrap_or(0))
            .collect();

        let mut queries: Vec<FieldQuery> = Vec::new();
        let mut truths: Vec<Truth> = Vec::new();
        for var in &inferred {
            if !matches!(var.class, TypeClass::Struct | TypeClass::PtrStruct) {
                continue;
            }
            vars_voted_struct += 1;
            let Some(&entry) = entries.get(var.key.func as usize) else {
                continue;
            };
            let Some(fr) = di.functions.iter().find(|f| f.entry == entry) else {
                continue;
            };
            let Some(vr) = di.var_at_frame_offset(fr, var.key.offset) else {
                continue;
            };
            let Some(truth) = truth_of(&di, &vr.ty) else {
                continue;
            };
            queries.push(FieldQuery {
                key: var.key,
                span: truth.span,
                pointer: truth.pointer,
            });
            truths.push(truth);
        }
        if queries.is_empty() {
            continue;
        }
        queries_total += queries.len();
        for (mode, score) in &mut scores {
            let Ok(lists) = recover_struct_fields(&stripped, &queries, *mode) else {
                continue;
            };
            for (list, truth) in lists.iter().zip(&truths) {
                score.absorb(&score_fields(list, truth.def, &di.types));
            }
        }
    }

    let mut table = Table::new(&[
        "context mode",
        "precision",
        "recall",
        "F1",
        "width acc",
        "members found",
    ]);
    let mut rows = Vec::new();
    for (mode, score) in &scores {
        rows.push(json!({
            "mode": mode.name(),
            "precision": score.precision(),
            "recall": score.recall(),
            "f1": score.f1(),
            "width_accuracy": score.width_accuracy(),
            "true_positives": score.true_positives,
            "false_positives": score.false_positives,
            "false_negatives": score.false_negatives,
        }));
        table.row(vec![
            mode.name().to_string(),
            format!("{:.4}", score.precision()),
            format!("{:.4}", score.recall()),
            format!("{:.4}", score.f1()),
            format!("{:.4}", score.width_accuracy()),
            format!("{}", score.true_positives),
        ]);
    }
    println!(
        "\nStruct-member recovery ({}; {} struct-voted variables, {} scoreable)\n",
        scale.name(),
        vars_voted_struct,
        queries_total
    );
    println!("{}", table.render());
    println!("Precision counts predicted members whose offset exists in the DWARF");
    println!("definition; recall counts DWARF members some access idiom recovered;");
    println!("width acc is the fraction of true positives with the exact member size.");

    run.finish(&json!({
        "scale": scale.name(),
        "struct_voted_vars": vars_voted_struct,
        "scoreable_queries": queries_total,
        "field_recovery": rows,
    }));
}
