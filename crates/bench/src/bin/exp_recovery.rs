//! Variable-recovery evaluation (paper §IV-A assumption check): the
//! paper delegates variable *location* to IDA/DEBIN and cites ~90%
//! recovery; this experiment measures the same quantity on our
//! substrate, per optimization level.
//!
//! ```sh
//! cargo run --release -p cati-bench --bin exp_recovery -- --scale medium
//! ```

use cati::report::{pct, Table};
use cati_analysis::{recovery_stats, RecoveryStats};
use cati_bench::{RunObs, Scale, SEED};
use cati_synbin::{build_app, AppProfile, CodegenOptions, Compiler, OptLevel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    let run = RunObs::from_args("exp_recovery");
    let _main_span = cati::obs::SpanGuard::enter(run.obs(), "main");
    let reps = match scale {
        Scale::Small => 4,
        Scale::Medium => 12,
        Scale::Paper => 40,
    };
    let mut table = Table::new(&[
        "opt level",
        "oracle vars",
        "recovered",
        "recall",
        "precision",
    ]);
    for opt in OptLevel::ALL {
        let mut agg = RecoveryStats::default();
        let mut rng = StdRng::seed_from_u64(SEED ^ opt.0 as u64);
        for i in 0..reps {
            let profile = AppProfile::new(format!("rec{i}"));
            let opts = CodegenOptions {
                compiler: Compiler::Gcc,
                opt,
            };
            for built in build_app(&profile, opts, 0.5, &mut rng) {
                let s = recovery_stats(&built.binary).expect("labeled corpus binary");
                agg.oracle_vars += s.oracle_vars;
                agg.recovered += s.recovered;
                agg.stripped_vars += s.stripped_vars;
            }
        }
        table.row(vec![
            opt.to_string(),
            agg.oracle_vars.to_string(),
            agg.recovered.to_string(),
            pct(agg.recall()),
            pct(agg.precision()),
        ]);
    }
    println!(
        "\nVariable recovery vs debug-info oracle ({})\n",
        scale.name()
    );
    println!("{}", table.render());
    println!("paper context: DIVINE/DEBIN reach ~90% variable recovery; CATI's");
    println!("evaluation assumes locations are given (§VII-B).");
}
