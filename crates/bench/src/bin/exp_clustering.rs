//! The same-type variable clustering phenomenon (paper §II-B, Fig. 2):
//! in a ±10-instruction window, over half the variable instructions
//! share the target's type.
//!
//! ```sh
//! cargo run --release -p cati-bench --bin exp_clustering -- --scale medium
//! ```

use cati::report::{pct, Table};
use cati_analysis::clustering_stats;
use cati_bench::{load_ctx_observed, RunObs, Scale};
use cati_synbin::Compiler;

fn main() {
    let scale = Scale::from_args();
    let run = RunObs::from_args("exp_clustering");
    let ctx = load_ctx_observed(scale, Compiler::Gcc, run.obs());

    let report = clustering_stats(
        ctx.train
            .iter()
            .map(|(_, e)| e)
            .chain(ctx.test.iter().map(|(_, e)| e)),
    );
    println!("\nSame-type variable clustering (paper §II-B)\n");
    println!("VUCs surveyed:            {}", report.overall.vucs);
    println!(
        "variable instructions in their windows: {}",
        report.overall.total_var_insns
    );
    println!(
        "same-type instructions:   {} ({})",
        report.overall.same_class_insns,
        pct(report.overall.c_rate())
    );
    println!("paper: 540k variable instructions in 107k VUCs, >53% same-type\n");

    let mut table = Table::new(&["class", "vucs", "cnt-same", "cnt-all", "c-rate"]);
    for class in cati_dwarf::TypeClass::ALL {
        let cs = &report.per_class[class.index()];
        if cs.vucs == 0 {
            continue;
        }
        table.row(vec![
            class.name().to_string(),
            cs.vucs.to_string(),
            format!("{:.2}", cs.cnt_same()),
            format!("{:.2}", cs.cnt_all()),
            pct(cs.c_rate()),
        ]);
    }
    println!("{}", table.render());
}
