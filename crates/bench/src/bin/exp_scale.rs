//! Out-of-core scale: the learning curve and the flat-memory claim.
//!
//! The paper trains on 2,141 binaries held entirely in memory. The
//! streaming substrate (DESIGN.md §16) removes that ceiling: corpora
//! are generated chunk by chunk, embedded straight into on-disk
//! shards, and trained from those shards with only the model, one
//! minibatch, and the sample plan resident. This experiment proves
//! both halves at once, on a ladder of corpus sizes whose top rung is
//! **10× the paper** (21,410 binaries, grown from the profile matrix
//! at O0–O3 plus duplicate-symbol hostile mutants as augmentation):
//!
//! - the learning curve — held-out accuracy per corpus size — goes in
//!   `BENCH_scale.json`, and
//! - each rung runs in its own subprocess whose `VmHWM` is recorded,
//!   so the report shows peak RSS staying ~flat while the corpus
//!   grows 10×.
//!
//! `--scale` picks the ladder, not the training config (every rung
//! trains the same small CNN so the curve isolates corpus size):
//! small = CI seconds, medium = a minute, paper = the 2,141 → 21,410
//! headline ladder (~10 minutes, ~5 GB of shards under `target/`).
//!
//! ```sh
//! cargo run --release -p cati-bench --bin exp_scale -- --scale paper
//! ```

use cati::obs::NOOP;
use cati::{
    embedding_sentences, pipeline_accuracy, Cati, CheckpointDir, Config, Dataset, MultiStage,
    ShardSet, ShardWriter, StreamOptions, TrainIdentity,
};
use cati_analysis::FeatureView;
use cati_bench::{RunObs, Scale, SEED};
use cati_embedding::{VucEmbedder, Word2Vec};
use cati_synbin::{
    build_app, build_corpus, mutate, AppProfile, BuiltBinary, CodegenOptions, CorpusConfig,
    MutationKind, OptLevel,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde_json::{json, Value};
use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

/// Binaries generated and embedded per chunk — the out-of-core unit.
/// Memory per rung is O(chunk), never O(corpus).
const CHUNK_BINS: usize = 256;

/// One hostile mutant rides along per this many generated binaries.
const MUTANT_EVERY: usize = 8;

/// Shard granularity: ~88 MB per file at the experiment's row width.
const ROWS_PER_SHARD: usize = 131_072;

/// Every rung trains this exact config, so the learning curve varies
/// only the corpus. Caps are raised over [`Config::small`] so a
/// larger corpus can actually show up as more diverse samples.
fn scale_config() -> Config {
    Config {
        max_stage_samples: 12_000,
        max_sentences: 4_000,
        ..Config::small()
    }
}

/// Corpus-size ladder per `--scale`; the top paper rung is 10× the
/// paper's 2,141 training binaries.
fn rungs(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Small => vec![60, 120, 240],
        Scale::Medium => vec![535, 1_070, 2_141],
        Scale::Paper => vec![2_141, 4_282, 10_705, 21_410],
    }
}

fn workspace_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

/// Deterministic chunked corpus generator: cycles the 24-project
/// profile matrix across all four optimization levels, splicing in a
/// duplicate-symbol mutant every [`MUTANT_EVERY`] binaries, until
/// `target` binaries have been yielded. Only one chunk is ever alive.
struct CorpusStream {
    rng: StdRng,
    profiles: Vec<AppProfile>,
    cursor: usize,
    produced: usize,
    mutants: usize,
    target: usize,
}

impl CorpusStream {
    fn new(target: usize, seed: u64) -> CorpusStream {
        CorpusStream {
            rng: StdRng::seed_from_u64(seed),
            profiles: AppProfile::training_projects(24),
            cursor: 0,
            produced: 0,
            mutants: 0,
            target,
        }
    }

    /// The next chunk of up to [`CHUNK_BINS`] binaries, or `None`
    /// once `target` have been produced.
    fn next_chunk(&mut self) -> Option<Vec<BuiltBinary>> {
        if self.produced >= self.target {
            return None;
        }
        let mut chunk: Vec<BuiltBinary> =
            Vec::with_capacity(CHUNK_BINS + CHUNK_BINS / MUTANT_EVERY);
        while self.produced < self.target && chunk.len() < CHUNK_BINS {
            let profile = &self.profiles[self.cursor % self.profiles.len()];
            let opt = OptLevel::ALL[(self.cursor / self.profiles.len()) % OptLevel::ALL.len()];
            self.cursor += 1;
            let opts = CodegenOptions {
                compiler: cati_synbin::Compiler::Gcc,
                opt,
            };
            for built in build_app(profile, opts, 1.0, &mut self.rng) {
                if self.produced >= self.target {
                    break;
                }
                // Hostile augmentation: a duplicate-symbol mutant of
                // every MUTANT_EVERY-th binary joins the corpus (its
                // debug info survives, so its VUCs stay labeled).
                if self.produced % MUTANT_EVERY == MUTANT_EVERY - 1 {
                    let (mutant, record) = mutate(
                        &built.binary,
                        MutationKind::DuplicateSymbols,
                        self.produced as u64,
                    );
                    chunk.push(BuiltBinary {
                        binary: mutant,
                        app: format!("{}+{}", built.app, record.kind),
                        opts: built.opts,
                    });
                    self.mutants += 1;
                    self.produced += 1;
                    if self.produced >= self.target {
                        chunk.push(built);
                        self.produced += 1;
                        break;
                    }
                }
                chunk.push(built);
                self.produced += 1;
            }
        }
        Some(chunk)
    }
}

/// One rung, run inside its own subprocess so `VmHWM` measures
/// exactly this corpus size. Prints a single JSON line to stdout.
fn child_main(target: usize) {
    let config = scale_config();
    let work = workspace_path(&format!("target/cati-cache/scale/rung_{target}"));
    std::fs::remove_dir_all(&work).ok();
    let ckpt = CheckpointDir::open(&work).expect("open checkpoint dir");
    let shards_dir = ckpt.shards_dir();

    // Pass 1 over the stream: embed every labeled VUC straight into
    // on-disk shards. The Word2Vec embedder trains on sentences from
    // the first chunk only — a bounded sample whatever the corpus
    // size, exactly like `max_sentences` bounds the in-memory path.
    let t_all = Instant::now();
    let mut stream = CorpusStream::new(target, SEED ^ 0x5ca1e);
    let mut sentence_rng = StdRng::seed_from_u64(SEED);
    let mut writer: Option<ShardWriter> = None;
    let mut embedder: Option<VucEmbedder> = None;
    let (mut skipped, mut chunks) = (0usize, 0usize);
    while let Some(chunk) = stream.next_chunk() {
        chunks += 1;
        let emb = embedder.get_or_insert_with(|| {
            let sentences = embedding_sentences(&chunk, config.max_sentences, &mut sentence_rng);
            VucEmbedder::new(Word2Vec::train(&sentences, config.w2v))
        });
        let cols = emb.embed_dim() * cati_analysis::VUC_LEN;
        let writer = match writer.as_mut() {
            Some(w) => w,
            None => writer
                .insert(ShardWriter::create(&shards_dir, cols, ROWS_PER_SHARD).expect("shards")),
        };
        // Mutant extraction may legitimately fail; base binaries are
        // our own linker's output and must not.
        let exs: Vec<cati_analysis::Extraction> = chunk
            .par_iter()
            .map(|b| cati_analysis::extract(&b.binary, FeatureView::WithSymbols).ok())
            .collect::<Vec<_>>()
            .into_iter()
            .flatten()
            .collect();
        skipped += chunk.len() - exs.len();
        let labeled: Vec<(&cati_analysis::Extraction, usize, u8)> = exs
            .iter()
            .flat_map(|ex| {
                ex.vucs.iter().enumerate().filter_map(move |(v, vuc)| {
                    let class = vuc.class(&ex.vars)?;
                    Some((ex, v, class.index() as u8))
                })
            })
            .collect();
        for batch in labeled.chunks(1024) {
            let rows: Vec<(u8, Vec<f32>)> = batch
                .par_iter()
                .map(|&(ex, v, class)| (class, emb.embed_window(&ex.vucs[v].insns)))
                .collect();
            for (class, row) in &rows {
                writer.push(*class, row).expect("push row");
            }
        }
        eprintln!(
            "[rung {target}] chunk {chunks}: {} binaries streamed, {} rows on disk",
            stream.produced,
            writer.rows()
        );
    }
    let embedder = embedder.expect("empty corpus");
    let fingerprint = cati::embedder_fingerprint(&embedder).to_string();
    let rows = writer
        .expect("no shards written")
        .finish(&fingerprint)
        .expect("finish shards");
    let stage_s = t_all.elapsed().as_secs_f64();

    // Open re-verifies every shard digest — the integrity gate a
    // resumed run would pass through.
    let t = Instant::now();
    let shards = ShardSet::open(&shards_dir).expect("open shards");
    let verify_s = t.elapsed().as_secs_f64();
    let shard_bytes: u64 = std::fs::read_dir(&shards_dir)
        .expect("shards dir")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum();

    let identity = TrainIdentity {
        config: cati_analysis::digest_bytes(&serde_json::to_vec(&config).expect("config json"))
            .to_string(),
        data: shards.identity().to_string(),
    };
    let t = Instant::now();
    let stages = MultiStage::train_streamed(
        &shards,
        &config,
        &ckpt,
        &identity,
        StreamOptions::default(),
        &NOOP,
    )
    .expect("streamed training")
    .expect("full run");
    let train_s = t.elapsed().as_secs_f64();

    // Held-out accuracy on the fixed 12-app test set — the same
    // binaries at every rung, so the curve is comparable.
    let t = Instant::now();
    let cati = Cati {
        config,
        embedder,
        stages,
    };
    let test = build_corpus(&CorpusConfig::small(SEED)).test;
    let test_ds = Dataset::from_binaries(&test, FeatureView::Stripped);
    let (mut vuc_ok, mut vuc_n, mut var_ok, mut var_n) = (0.0, 0u64, 0.0, 0u64);
    for (_, ex) in &test_ds.entries {
        let (va, vn, aa, an) = pipeline_accuracy(&cati, ex);
        vuc_ok += va * vn as f64;
        vuc_n += vn;
        var_ok += aa * an as f64;
        var_n += an;
    }
    let eval_s = t.elapsed().as_secs_f64();
    std::fs::remove_dir_all(&work).ok();

    let peak_rss = cati::obs::peak_rss_bytes().unwrap_or(0);
    println!(
        "{}",
        json!({
            "binaries": stream.produced,
            "mutants": stream.mutants,
            "mutants_skipped": skipped,
            "rows": rows,
            "shard_bytes": shard_bytes,
            "stream_s": stage_s,
            "verify_s": verify_s,
            "train_s": train_s,
            "eval_s": eval_s,
            "vuc_accuracy": vuc_ok / vuc_n.max(1) as f64,
            "var_accuracy": var_ok / var_n.max(1) as f64,
            "test_vars": var_n,
            "peak_rss_bytes": peak_rss,
        })
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(w) = args.windows(2).find(|w| w[0] == "--child-rung") {
        child_main(w[1].parse().expect("rung size"));
        return;
    }

    let scale = Scale::from_args();
    let run = RunObs::from_args("exp_scale");
    let ladder = rungs(scale);
    let exe = std::env::current_exe().expect("current_exe");
    println!(
        "\nOut-of-core scale ({}; rungs {ladder:?} binaries; each in its own subprocess)\n",
        scale.name()
    );

    let mut results: Vec<Value> = Vec::new();
    for &target in &ladder {
        eprintln!("[scale] rung {target}...");
        let out = Command::new(&exe)
            .args(["--child-rung", &target.to_string()])
            .output()
            .expect("spawn rung subprocess");
        assert!(
            out.status.success(),
            "rung {target} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let line = String::from_utf8_lossy(&out.stdout);
        let line = line.trim().lines().last().expect("rung output");
        let record: Value = serde_json::from_str(line).expect("rung json");
        println!(
            "rung {target:>6}: {} rows, {:.1} MB shards, stream {:.1}s, train {:.1}s, \
             var-accuracy {:.3}, peak RSS {:.0} MB",
            record["rows"],
            record["shard_bytes"].as_u64().unwrap_or(0) as f64 / 1e6,
            record["stream_s"].as_f64().unwrap_or(0.0),
            record["train_s"].as_f64().unwrap_or(0.0),
            record["var_accuracy"].as_f64().unwrap_or(0.0),
            record["peak_rss_bytes"].as_u64().unwrap_or(0) as f64 / 1e6,
        );
        results.push(record);
    }

    // The headline: the corpus grew `corpus_growth`×, peak RSS only
    // `rss_growth`× — training memory is decoupled from corpus size.
    let field = |r: &Value, k: &str| r[k].as_u64().unwrap_or(0);
    let first = &results[0];
    let last = &results[results.len() - 1];
    let corpus_growth = field(last, "binaries") as f64 / field(first, "binaries").max(1) as f64;
    let rss_growth =
        field(last, "peak_rss_bytes") as f64 / field(first, "peak_rss_bytes").max(1) as f64;
    println!(
        "\ncorpus grew {corpus_growth:.1}x ({} -> {} binaries, {} -> {} rows); \
         peak RSS grew {rss_growth:.2}x ({:.0} -> {:.0} MB)",
        field(first, "binaries"),
        field(last, "binaries"),
        field(first, "rows"),
        field(last, "rows"),
        field(first, "peak_rss_bytes") as f64 / 1e6,
        field(last, "peak_rss_bytes") as f64 / 1e6,
    );
    if scale == Scale::Paper {
        assert!(
            field(last, "binaries") >= 21_410,
            "paper ladder must reach 10x the paper corpus"
        );
    }

    let rev = cati::obs::git_rev(std::path::Path::new("."));
    let stamped_ms = cati::obs::manifest::unix_ms();
    let report = json!({
        "experiment": "scale",
        "git_rev": rev.as_deref().unwrap_or("unknown"),
        "unix_ms": stamped_ms,
        "scale": scale.name(),
        "seed": SEED,
        "paper_train_binaries": 2_141,
        "config": scale_config(),
        "rungs": results,
        "corpus_growth": corpus_growth,
        "rss_growth": rss_growth,
        "note": "each rung is one subprocess: corpus generated in chunks, embedded into \
                 on-disk shards, trained out-of-core; peak_rss_bytes is the subprocess VmHWM",
    });
    let out = workspace_path("BENCH_scale.json");
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&report).expect("report json"),
    )
    .expect("write BENCH_scale.json");
    println!("wrote {}", out.display());

    let history_line = json!({
        "git_rev": rev.as_deref().unwrap_or("unknown"),
        "unix_ms": stamped_ms,
        "scale": scale.name(),
        "max_binaries": field(last, "binaries"),
        "max_rows": field(last, "rows"),
        "var_accuracy": last["var_accuracy"].as_f64().unwrap_or(0.0),
        "rss_growth": rss_growth,
    });
    cati::obs::bench::append_history(workspace_path("results/bench_history.jsonl"), &history_line)
        .expect("append bench history");
    run.finish(&json!({
        "experiment": "scale",
        "scale": scale.name(),
        "max_binaries": field(last, "binaries"),
        "corpus_growth": corpus_growth,
        "rss_growth": rss_growth,
    }));
}
