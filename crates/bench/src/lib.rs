//! `cati-bench` — experiment regenerators and benchmarks.
//!
//! One binary per table/figure of the paper's evaluation (see
//! DESIGN.md §4 for the index) plus criterion benchmarks. All
//! experiment binaries accept `--scale small|medium|paper` and share
//! a cached trained model per `(scale, seed, compiler)` under
//! `target/cati-cache/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cati::obs::{git_rev, Level, LogFormat, Observer, Recorder, RecorderConfig};
use cati::{ArtifactCache, Cati, Config, Dataset};
use cati_analysis::FeatureView;
use cati_synbin::{build_corpus, Compiler, Corpus, CorpusConfig};
use serde_json::{json, Value};
use std::path::{Path, PathBuf};

/// Experiment scale, selected with `--scale`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds of CPU; sanity-check quality.
    Small,
    /// Minutes of CPU; default for experiments.
    Medium,
    /// Paper-shaped sizes; expect long runtimes.
    Paper,
}

impl Scale {
    /// Parses `--scale <s>` from `std::env::args`, defaulting to
    /// [`Scale::Small`] (CI-friendly; pass `--scale medium` to get
    /// report-quality numbers).
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for w in args.windows(2) {
            if w[0] == "--scale" {
                return match w[1].as_str() {
                    "medium" => Scale::Medium,
                    "paper" => Scale::Paper,
                    _ => Scale::Small,
                };
            }
        }
        Scale::Small
    }

    /// The pipeline configuration for this scale.
    pub fn config(self) -> Config {
        match self {
            Scale::Small => Config::small(),
            Scale::Medium => Config::medium(),
            Scale::Paper => Config::paper(),
        }
    }

    /// The corpus configuration for this scale.
    pub fn corpus(self, seed: u64) -> CorpusConfig {
        match self {
            Scale::Small => CorpusConfig::small(seed),
            Scale::Medium => CorpusConfig::medium(seed),
            Scale::Paper => CorpusConfig::paper(seed),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
        }
    }
}

/// Default seed shared by experiments so they describe one corpus.
pub const SEED: u64 = 2020;

/// Shared telemetry harness for the `exp_*` binaries: one [`Recorder`]
/// configured from the common CLI flags, plus the run-manifest
/// plumbing, so every experiment gets spans, metrics, and a
/// `results/runs/<name>.jsonl` manifest for `cati report`.
///
/// Flags parsed from `std::env::args`:
///
/// - `--log-format text|json` — mirror events to stderr (default: text)
/// - `--log-level error|warn|info|debug` — mirror threshold
/// - `--batch-stats` — also record per-minibatch gradient norms
/// - `--manifest PATH` — manifest destination (default
///   `results/runs/<name>.jsonl` under the workspace root)
/// - `--no-manifest` — skip manifest writing
///
/// Experiments additionally honor `--cache-dir DIR` (see
/// [`artifact_cache_from_args`]) for on-disk extraction/embedding
/// reuse across runs.
pub struct RunObs {
    recorder: Recorder,
    name: String,
    manifest_path: Option<PathBuf>,
    finished: std::cell::Cell<bool>,
}

impl RunObs {
    /// Builds the harness for the experiment named `name`.
    pub fn from_args(name: &str) -> RunObs {
        let args: Vec<String> = std::env::args().collect();
        let arg = |flag: &str| args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone());
        let cfg = RecorderConfig {
            log: Some(
                arg("--log-format")
                    .map(|s| LogFormat::parse(&s))
                    .unwrap_or(LogFormat::Text),
            ),
            level: arg("--log-level")
                .map(|s| Level::parse(&s))
                .unwrap_or(Level::Info),
            batch_stats: args.iter().any(|a| a == "--batch-stats"),
        };
        let manifest_path = if args.iter().any(|a| a == "--no-manifest") {
            None
        } else {
            Some(
                arg("--manifest")
                    .map(PathBuf::from)
                    .unwrap_or_else(|| runs_dir().join(format!("{name}.jsonl"))),
            )
        };
        RunObs {
            recorder: Recorder::new(cfg),
            name: name.to_string(),
            manifest_path,
            finished: std::cell::Cell::new(false),
        }
    }

    /// The live observer to pass into instrumented pipeline APIs.
    pub fn obs(&self) -> &dyn Observer {
        &self.recorder
    }

    /// The recorder, for direct access to metrics and the timeline.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Writes the run manifest (unless `--no-manifest`), merging the
    /// experiment's own result fields from `extra` into the meta line
    /// alongside the standard `name` / `seed` / `git_rev` keys.
    /// Returns the manifest path when one was written.
    pub fn finish(&self, extra: &Value) -> Option<PathBuf> {
        self.finished.set(true);
        let path = self.manifest_path.as_ref()?;
        let mut meta = serde_json::Map::new();
        meta.insert("name".to_string(), json!(self.name.as_str()));
        meta.insert("seed".to_string(), json!(SEED));
        if let Some(rev) = git_rev(Path::new(env!("CARGO_MANIFEST_DIR"))) {
            meta.insert("git_rev".to_string(), json!(rev));
        }
        if let Value::Object(extra) = extra {
            for (k, v) in extra.iter() {
                meta.insert(k.clone(), v.clone());
            }
        }
        match self.recorder.write_manifest(path, &Value::Object(meta)) {
            Ok(()) => {
                eprintln!("[obs] wrote manifest {}", path.display());
                Some(path.clone())
            }
            Err(e) => {
                eprintln!("[obs] manifest write failed: {e}");
                None
            }
        }
    }
}

impl Drop for RunObs {
    /// Experiments that never call [`RunObs::finish`] still get their
    /// manifest written (with the standard meta only) on scope exit.
    fn drop(&mut self) {
        if !self.finished.get() {
            self.finish(&Value::Null);
        }
    }
}

fn runs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/runs")
}

/// A fully prepared experiment context.
pub struct Ctx {
    /// The corpus (train + test).
    pub corpus: Corpus,
    /// The trained system.
    pub cati: Cati,
    /// Labeled test-set extractions with the *stripped* feature view —
    /// the deployment posture (features from stripped code, labels
    /// from the unstripped twin for scoring).
    pub test: Dataset,
    /// Labeled training-set extractions (symbolized view).
    pub train: Dataset,
}

fn cache_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/cati-cache");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Parses `--cache-dir DIR` from `std::env::args`: the on-disk
/// content-addressed artifact cache shared by the experiments'
/// extraction (and inference embedding) phases. Absent flag means no
/// artifact cache; results are bit-identical either way.
pub fn artifact_cache_from_args() -> Option<ArtifactCache> {
    let args: Vec<String> = std::env::args().collect();
    let dir = args
        .windows(2)
        .find(|w| w[0] == "--cache-dir")
        .map(|w| w[1].clone())?;
    match ArtifactCache::open(&dir) {
        Ok(cache) => Some(cache),
        Err(e) => {
            eprintln!("[obs] cannot open artifact cache {dir}: {e}");
            None
        }
    }
}

/// Builds the corpus and trains (or loads a cached) model for `scale`
/// and `compiler`. `obs` receives the context-preparation telemetry:
/// `ctx.*` spans, extraction counters, and training events when the
/// cache misses.
pub fn load_ctx_observed(scale: Scale, compiler: Compiler, obs: &dyn Observer) -> Ctx {
    let config = scale.config();
    let corpus_cfg = scale.corpus(SEED).with_compiler(compiler);
    cati::obs::info!(
        obs,
        "building corpus ({}, {})...",
        scale.name(),
        compiler.name()
    );
    let corpus = {
        let _span = cati::obs::SpanGuard::enter(obs, "ctx.corpus");
        build_corpus(&corpus_cfg)
    };
    cati::obs::info!(
        obs,
        "{} train binaries, {} test binaries",
        corpus.train.len(),
        corpus.test.len()
    );
    let cache = cache_dir().join(format!(
        "cati-{}-{}-{SEED}.json",
        scale.name(),
        compiler.name()
    ));
    let cati = match Cati::load(&cache) {
        Ok(model) if model.config == config => {
            cati::obs::info!(obs, "loaded cached model {}", cache.display());
            model
        }
        _ => {
            cati::obs::info!(obs, "training model (no cache hit)...");
            let model = Cati::train(&corpus.train, &config, obs);
            if let Err(e) = model.save(&cache) {
                cati::obs::info!(obs, "cache write failed: {e}");
            }
            model
        }
    };
    cati::obs::info!(obs, "extracting test set...");
    let artifacts = artifact_cache_from_args();
    let _span = cati::obs::SpanGuard::enter(obs, "ctx.extract_test");
    let test =
        Dataset::from_binaries_cached(&corpus.test, FeatureView::Stripped, artifacts.as_ref(), obs);
    let train = Dataset::from_binaries_cached(
        &corpus.train,
        FeatureView::WithSymbols,
        artifacts.as_ref(),
        obs,
    );
    Ctx {
        corpus,
        cati,
        test,
        train,
    }
}

/// [`load_ctx_observed`] with progress mirrored to stderr and no
/// further telemetry — the drop-in for experiments that manage their
/// own observer separately.
pub fn load_ctx(scale: Scale, compiler: Compiler) -> Ctx {
    let obs = cati::obs::FnObserver(|line: &str| eprintln!("[ctx] {line}"));
    load_ctx_observed(scale, compiler, &obs)
}

/// The 12 test application names, in the paper's column order.
pub const TEST_APPS: [&str; 12] = [
    "bash",
    "bison",
    "cflow",
    "gawk",
    "grep",
    "gzip",
    "inetutils",
    "less",
    "nano",
    "R",
    "sed",
    "wget",
];
