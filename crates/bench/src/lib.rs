//! `cati-bench` — experiment regenerators and benchmarks.
//!
//! One binary per table/figure of the paper's evaluation (see
//! DESIGN.md §4 for the index) plus criterion benchmarks. All
//! experiment binaries accept `--scale small|medium|paper` and share
//! a cached trained model per `(scale, seed, compiler)` under
//! `target/cati-cache/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cati::{Cati, Config, Dataset};
use cati_analysis::FeatureView;
use cati_synbin::{build_corpus, Compiler, Corpus, CorpusConfig};
use std::path::PathBuf;

/// Experiment scale, selected with `--scale`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds of CPU; sanity-check quality.
    Small,
    /// Minutes of CPU; default for experiments.
    Medium,
    /// Paper-shaped sizes; expect long runtimes.
    Paper,
}

impl Scale {
    /// Parses `--scale <s>` from `std::env::args`, defaulting to
    /// [`Scale::Small`] (CI-friendly; pass `--scale medium` to get
    /// report-quality numbers).
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for w in args.windows(2) {
            if w[0] == "--scale" {
                return match w[1].as_str() {
                    "medium" => Scale::Medium,
                    "paper" => Scale::Paper,
                    _ => Scale::Small,
                };
            }
        }
        Scale::Small
    }

    /// The pipeline configuration for this scale.
    pub fn config(self) -> Config {
        match self {
            Scale::Small => Config::small(),
            Scale::Medium => Config::medium(),
            Scale::Paper => Config::paper(),
        }
    }

    /// The corpus configuration for this scale.
    pub fn corpus(self, seed: u64) -> CorpusConfig {
        match self {
            Scale::Small => CorpusConfig::small(seed),
            Scale::Medium => CorpusConfig::medium(seed),
            Scale::Paper => CorpusConfig::paper(seed),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
        }
    }
}

/// Default seed shared by experiments so they describe one corpus.
pub const SEED: u64 = 2020;

/// A fully prepared experiment context.
pub struct Ctx {
    /// The corpus (train + test).
    pub corpus: Corpus,
    /// The trained system.
    pub cati: Cati,
    /// Labeled test-set extractions with the *stripped* feature view —
    /// the deployment posture (features from stripped code, labels
    /// from the unstripped twin for scoring).
    pub test: Dataset,
    /// Labeled training-set extractions (symbolized view).
    pub train: Dataset,
}

fn cache_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/cati-cache");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Builds the corpus and trains (or loads a cached) model for `scale`
/// and `compiler`.
pub fn load_ctx(scale: Scale, compiler: Compiler) -> Ctx {
    let config = scale.config();
    let corpus_cfg = scale.corpus(SEED).with_compiler(compiler);
    eprintln!(
        "[ctx] building corpus ({}, {})...",
        scale.name(),
        compiler.name()
    );
    let corpus = build_corpus(&corpus_cfg);
    eprintln!(
        "[ctx] {} train binaries, {} test binaries",
        corpus.train.len(),
        corpus.test.len()
    );
    let cache = cache_dir().join(format!(
        "cati-{}-{}-{SEED}.json",
        scale.name(),
        compiler.name()
    ));
    let cati = match Cati::load(&cache) {
        Ok(model) if model.config == config => {
            eprintln!("[ctx] loaded cached model {}", cache.display());
            model
        }
        _ => {
            eprintln!("[ctx] training model (no cache hit)...");
            let model = Cati::train(&corpus.train, &config, |line| eprintln!("[train] {line}"));
            if let Err(e) = model.save(&cache) {
                eprintln!("[ctx] cache write failed: {e}");
            }
            model
        }
    };
    eprintln!("[ctx] extracting test set...");
    let test = Dataset::from_binaries(&corpus.test, FeatureView::Stripped);
    let train = Dataset::from_binaries(&corpus.train, FeatureView::WithSymbols);
    Ctx {
        corpus,
        cati,
        test,
        train,
    }
}

/// The 12 test application names, in the paper's column order.
pub const TEST_APPS: [&str; 12] = [
    "bash",
    "bison",
    "cflow",
    "gawk",
    "grep",
    "gzip",
    "inetutils",
    "less",
    "nano",
    "R",
    "sed",
    "wget",
];
