//! Criterion benchmarks for the substrate layers: disassembly,
//! generalization, extraction, embedding, CNN passes, voting, and
//! end-to-end per-binary inference (the paper's ~6 s/binary claim).

use cati::{embedding_sentences, Cati, Config};
use cati_analysis::{extract, FeatureView};
use cati_asm::fmt::NoSymbols;
use cati_asm::generalize::generalize;
use cati_embedding::{VucEmbedder, Word2Vec};
use cati_nn::{Adam, TextCnn, TextCnnConfig, Workspace};
use cati_synbin::{build_corpus, CorpusConfig};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_disassembly(c: &mut Criterion) {
    let corpus = build_corpus(&CorpusConfig::small(1));
    let bin = &corpus.train[0].binary;
    let mut g = c.benchmark_group("disassembly");
    g.throughput(Throughput::Bytes(bin.text.len() as u64));
    g.bench_function("linear_sweep", |b| {
        b.iter(|| bin.disassemble().unwrap());
    });
    g.finish();
}

fn bench_generalize(c: &mut Criterion) {
    let corpus = build_corpus(&CorpusConfig::small(2));
    let insns = corpus.train[0].binary.disassemble().unwrap();
    let mut g = c.benchmark_group("generalize");
    g.throughput(Throughput::Elements(insns.len() as u64));
    g.bench_function("table2_rules", |b| {
        b.iter(|| {
            insns
                .iter()
                .map(|l| generalize(&l.insn, &NoSymbols))
                .collect::<Vec<_>>()
        });
    });
    g.finish();
}

fn bench_extraction(c: &mut Criterion) {
    let corpus = build_corpus(&CorpusConfig::small(3));
    let bin = &corpus.train[0].binary;
    c.bench_function("vuc_extraction_per_binary", |b| {
        b.iter(|| extract(bin, FeatureView::WithSymbols).unwrap());
    });
}

fn bench_embedding(c: &mut Criterion) {
    let corpus = build_corpus(&CorpusConfig::small(4));
    let mut rng = StdRng::seed_from_u64(0);
    let sentences = embedding_sentences(&corpus.train[..4], 200, &mut rng);
    c.bench_function("word2vec_train_200_sentences", |b| {
        b.iter(|| Word2Vec::train(&sentences, cati_embedding::W2vConfig::tiny()));
    });
    let embedder = VucEmbedder::new(Word2Vec::train(
        &sentences,
        cati_embedding::W2vConfig::tiny(),
    ));
    let ex = extract(&corpus.train[0].binary, FeatureView::WithSymbols).unwrap();
    let window = &ex.vucs[0].insns;
    c.bench_function("embed_one_vuc", |b| {
        b.iter(|| embedder.embed_window(window));
    });
}

fn bench_cnn(c: &mut Criterion) {
    // Paper-scale forward/backward pass cost.
    let cfg = TextCnnConfig::paper(19);
    let model = TextCnn::new(cfg, 0);
    let x = vec![0.1f32; cfg.embed_dim * cfg.seq_len];
    c.bench_function("cnn_forward_paper_scale", |b| {
        let mut ws = Workspace::default();
        b.iter(|| {
            model.forward(&x, &mut ws);
        });
    });
    c.bench_function("cnn_backward_paper_scale", |b| {
        b.iter_batched(
            || (Workspace::default(), model.grad_buffers()),
            |(mut ws, mut grads)| model.backward(&x, 3, &mut ws, &mut grads),
            BatchSize::SmallInput,
        );
    });
    let small = TextCnn::new(TextCnnConfig::tiny(24, 5), 0);
    let xs: Vec<(Vec<f32>, usize)> = (0..64)
        .map(|i| (vec![0.05 * (i % 7) as f32; 24 * 21], i % 5))
        .collect();
    c.bench_function("cnn_train_epoch_64_tiny", |b| {
        b.iter_batched(
            || (small.clone(), Adam::new(1e-3), StdRng::seed_from_u64(1)),
            |(mut m, mut opt, mut rng)| m.train_epoch(&xs, &mut opt, 16, &mut rng),
            BatchSize::SmallInput,
        );
    });
}

fn bench_voting(c: &mut Criterion) {
    let dists: Vec<Vec<f32>> = (0..16)
        .map(|i| {
            let mut d = vec![0.03f32; 19];
            d[i % 19] = 0.46;
            d
        })
        .collect();
    c.bench_function("vote_16_vucs_19_classes", |b| {
        b.iter(|| cati::vote(&dists, 0.9));
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    // The paper's headline speed figure: seconds per stripped binary
    // for extraction + prediction + voting.
    let corpus = build_corpus(&CorpusConfig::small(5));
    let n = corpus.train.len().min(6);
    let cati = Cati::train(&corpus.train[..n], &Config::small(), &cati::obs::NOOP);
    let stripped = corpus.test[0].binary.strip();
    c.bench_function("infer_stripped_binary", |b| {
        b.iter(|| cati.infer(&stripped).unwrap());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_disassembly, bench_generalize, bench_extraction, bench_embedding,
              bench_cnn, bench_voting, bench_end_to_end
}
criterion_main!(benches);
