//! A minimal, dependency-free HTTP/1.1 layer over `std::net`.
//!
//! Just enough of the protocol for the serve daemon and its clients:
//! request line + headers + `Content-Length` body, `Connection:
//! close` responses. No chunked encoding, no keep-alive, no TLS —
//! every exchange is one connection, which keeps the concurrency
//! model (thread per connection, bounded work queue behind it)
//! trivially auditable.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Upper bound on a request body (a serialized [`cati_asm::binary::Binary`]
/// is well under this). Larger bodies are refused with 413 instead of
/// buffering unbounded attacker-controlled input.
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Upper bound on the request line plus headers.
pub const MAX_HEAD_BYTES: usize = 64 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, query string included (`/infer?mode=lenient`).
    pub path: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// A request-layer failure mapped to the status code the server
/// answers with.
#[derive(Debug)]
pub enum RequestError {
    /// Malformed request line, header, or `Content-Length` → 400.
    Malformed(String),
    /// Head or body over the hard size limits → 413.
    TooLarge(String),
    /// The peer hung up or the socket failed; nothing to answer.
    Io(io::Error),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Malformed(m) => write!(f, "malformed request: {m}"),
            RequestError::TooLarge(m) => write!(f, "request too large: {m}"),
            RequestError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl Request {
    /// A request with no headers or body.
    pub fn new(method: &str, path: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Adds a header (builder-style).
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl std::fmt::Display) -> Request {
        self.headers
            .push((name.to_ascii_lowercase(), value.to_string()));
        self
    }

    /// Sets the body (builder-style); `Content-Length` is emitted by
    /// [`Request::write_to`].
    #[must_use]
    pub fn with_body(mut self, body: impl Into<Vec<u8>>) -> Request {
        self.body = body.into();
        self
    }

    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The path without its query string, and the query string (empty
    /// when absent).
    pub fn route(&self) -> (&str, &str) {
        match self.path.split_once('?') {
            Some((p, q)) => (p, q),
            None => (self.path.as_str(), ""),
        }
    }

    /// Reads one request from a buffered stream.
    ///
    /// # Errors
    ///
    /// [`RequestError::Malformed`] for protocol violations,
    /// [`RequestError::TooLarge`] past the size limits,
    /// [`RequestError::Io`] when the socket fails (including a clean
    /// EOF before any byte, reported as `UnexpectedEof`).
    pub fn read_from(reader: &mut impl BufRead) -> Result<Request, RequestError> {
        let line = read_crlf_line(reader, MAX_HEAD_BYTES)?;
        if line.is_empty() {
            return Err(RequestError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before request line",
            )));
        }
        let mut parts = line.split(' ');
        let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(p), Some(v)) if parts.next().is_none() && !m.is_empty() => (m, p, v),
            _ => return Err(RequestError::Malformed(format!("request line `{line}`"))),
        };
        if !version.starts_with("HTTP/1.") {
            return Err(RequestError::Malformed(format!("version `{version}`")));
        }
        let mut headers = Vec::new();
        let mut head_bytes = line.len();
        loop {
            let line = read_crlf_line(reader, MAX_HEAD_BYTES)?;
            if line.is_empty() {
                break;
            }
            head_bytes += line.len();
            if head_bytes > MAX_HEAD_BYTES {
                return Err(RequestError::TooLarge(format!(
                    "headers exceed {MAX_HEAD_BYTES} bytes"
                )));
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(RequestError::Malformed(format!("header `{line}`")));
            };
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
            Some((_, v)) => v
                .parse::<usize>()
                .map_err(|_| RequestError::Malformed(format!("content-length `{v}`")))?,
            None => 0,
        };
        if content_length > MAX_BODY_BYTES {
            return Err(RequestError::TooLarge(format!(
                "body of {content_length} bytes exceeds {MAX_BODY_BYTES}"
            )));
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).map_err(RequestError::Io)?;
        Ok(Request {
            method: method.to_string(),
            path: path.to_string(),
            headers,
            body,
        })
    }

    /// Serializes the request (emitting `Content-Length` and
    /// `Connection: close`).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write!(w, "{} {} HTTP/1.1\r\n", self.method, self.path)?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "content-length: {}\r\n", self.body.len())?;
        write!(w, "connection: close\r\n\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// One HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (200, 503, ...).
    pub status: u16,
    /// Headers in emission order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response: `application/json` body with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: vec![("content-type".to_string(), "application/json".to_string())],
            body: body.into(),
        }
    }

    /// A plain-text response with an explicit content type (e.g. the
    /// Prometheus exposition format).
    pub fn text(status: u16, content_type: &str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: vec![("content-type".to_string(), content_type.to_string())],
            body: body.into(),
        }
    }

    /// Adds a header (builder-style).
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl std::fmt::Display) -> Response {
        self.headers
            .push((name.to_ascii_lowercase(), value.to_string()));
        self
    }

    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The canonical reason phrase of the status codes this server
    /// emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// Serializes the response (emitting `Content-Length` and
    /// `Connection: close`).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\n",
            self.status,
            Response::reason(self.status)
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "content-length: {}\r\n", self.body.len())?;
        write!(w, "connection: close\r\n\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }

    /// Reads one response from a buffered stream.
    ///
    /// # Errors
    ///
    /// Same taxonomy as [`Request::read_from`].
    pub fn read_from(reader: &mut impl BufRead) -> Result<Response, RequestError> {
        let line = read_crlf_line(reader, MAX_HEAD_BYTES)?;
        let status = line
            .strip_prefix("HTTP/1.1 ")
            .or_else(|| line.strip_prefix("HTTP/1.0 "))
            .and_then(|rest| rest.split(' ').next())
            .and_then(|code| code.parse::<u16>().ok())
            .ok_or_else(|| RequestError::Malformed(format!("status line `{line}`")))?;
        let mut headers = Vec::new();
        loop {
            let line = read_crlf_line(reader, MAX_HEAD_BYTES)?;
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(RequestError::Malformed(format!("header `{line}`")));
            };
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        let content_length = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok());
        let body = match content_length {
            Some(n) if n <= MAX_BODY_BYTES => {
                let mut body = vec![0u8; n];
                reader.read_exact(&mut body).map_err(RequestError::Io)?;
                body
            }
            Some(n) => {
                return Err(RequestError::TooLarge(format!("response body {n} bytes")));
            }
            // No Content-Length: read to EOF (Connection: close).
            None => {
                let mut body = Vec::new();
                reader.read_to_end(&mut body).map_err(RequestError::Io)?;
                body
            }
        };
        Ok(Response {
            status,
            headers,
            body,
        })
    }
}

/// Reads one `\r\n`- (or `\n`-) terminated line, without the
/// terminator, bounded by `max` bytes.
fn read_crlf_line(reader: &mut impl BufRead, max: usize) -> Result<String, RequestError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > max {
                    return Err(RequestError::TooLarge(format!("line exceeds {max} bytes")));
                }
            }
            Err(e) => return Err(RequestError::Io(e)),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| RequestError::Malformed("non-UTF-8 head".to_string()))
}

/// A blocking one-shot HTTP exchange over a fresh `TcpStream` — the
/// client the test harness and benchmarks drive the daemon with.
///
/// # Errors
///
/// I/O failures and malformed responses, as `io::Error`.
pub fn roundtrip(addr: SocketAddr, request: &Request) -> io::Result<Response> {
    roundtrip_with_timeout(addr, request, None)
}

/// [`roundtrip`] with an optional socket read timeout (the client-side
/// safety net; the server's own deadline machinery answers first).
///
/// # Errors
///
/// I/O failures and malformed responses, as `io::Error`.
pub fn roundtrip_with_timeout(
    addr: SocketAddr,
    request: &Request,
    timeout: Option<Duration>,
) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(timeout)?;
    request.write_to(&mut stream)?;
    let mut reader = BufReader::new(stream);
    Response::read_from(&mut reader).map_err(|e| match e {
        RequestError::Io(e) => e,
        other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /infer?mode=lenient HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = Request::read_from(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.route(), ("/infer", "mode=lenient"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_malformed_heads() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            &b"GET /x SPDY/3\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
        ] {
            assert!(
                matches!(
                    Request::read_from(&mut Cursor::new(raw)),
                    Err(RequestError::Malformed(_))
                ),
                "{raw:?} should be malformed"
            );
        }
    }

    #[test]
    fn oversized_bodies_are_too_large_not_buffered() {
        let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(matches!(
            Request::read_from(&mut Cursor::new(raw.as_bytes())),
            Err(RequestError::Malformed(_)) | Err(RequestError::TooLarge(_))
        ));
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            Request::read_from(&mut Cursor::new(raw.as_bytes())),
            Err(RequestError::TooLarge(_))
        ));
    }

    #[test]
    fn request_and_response_roundtrip_through_bytes() {
        let req = Request::new("POST", "/infer")
            .with_header("X-Cati-Hang-Limit-Ms", 250)
            .with_body(&b"{\"a\":1}"[..]);
        let mut wire = Vec::new();
        req.write_to(&mut wire).unwrap();
        let back = Request::read_from(&mut Cursor::new(&wire)).unwrap();
        assert_eq!(back.header("x-cati-hang-limit-ms"), Some("250"));
        assert_eq!(back.body, req.body);

        let resp = Response::json(503, &b"{\"error\":\"full\"}"[..]).with_header("x-v", "1");
        let mut wire = Vec::new();
        resp.write_to(&mut wire).unwrap();
        let back = Response::read_from(&mut Cursor::new(&wire)).unwrap();
        assert_eq!(back.status, 503);
        assert_eq!(back.header("x-v"), Some("1"));
        assert_eq!(back.body, resp.body);
    }

    #[test]
    fn eof_before_request_line_is_io_not_malformed() {
        assert!(matches!(
            Request::read_from(&mut Cursor::new(&b""[..])),
            Err(RequestError::Io(_))
        ));
    }
}
