//! `cati-serve` — a long-lived inference daemon for CATI.
//!
//! `cati infer` pays the full startup cost — loading the model,
//! opening caches — for every binary. This crate keeps one trained
//! [`cati::Cati`] resident behind a hand-rolled HTTP/1.1 front end
//! (plain [`std::net`], no async runtime) and amortizes that cost
//! across requests:
//!
//! - **Bounded admission**: a fixed-capacity work queue; overload is
//!   an immediate 503, never an unbounded backlog.
//! - **Cross-request micro-batching**: concurrent requests are
//!   coalesced into one `leaf_distributions_batch` pass. Rows are
//!   independent, so responses stay bit-identical to one-shot `cati
//!   infer --json`.
//! - **Hot swap**: `POST /admin/reload` atomically replaces the model;
//!   every response names the model version that computed it.
//! - **Deadlines**: the fuzz campaign's hang-limit machinery
//!   ([`timeout`]) turns slow requests into clean 504s.
//! - **Shared artifact tier**: an optional server-side
//!   [`cati::ArtifactCache`] keyed by binary digest.
//!
//! See DESIGN.md §13 and the README's "Serving" section.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod http;
pub mod server;
pub mod timeout;

pub use http::{roundtrip, roundtrip_with_timeout, Request, RequestError, Response};
pub use server::{model_version, ModelSlot, ServeConfig, Server, ServerHandle, BATCH_BUCKETS};
pub use timeout::{parse_duration, HangLimit};
