//! Hang-limit machinery shared by `cati fuzz` and the serve daemon.
//!
//! The fuzz campaign introduced the pattern: a wall-clock budget per
//! unit of work, checked against measured elapsed time — never a
//! preemptive timer, so a slow computation is *reported* (hang file,
//! 504) rather than torn down mid-write. This module single-sources
//! the duration parsing (`60s`, `500ms`, bare seconds) and the
//! exceeded-check so the two consumers cannot drift.

use std::time::Duration;

/// Parses a human duration argument: `60s`, `90` (seconds), `500ms`.
/// Surrounding whitespace is tolerated (config files and request
/// headers routinely carry it).
///
/// # Errors
///
/// Returns a message naming the bad input and what was expected — a
/// bare suffix (`"ms"`, `"s"`), an empty string, a non-integer, and
/// an out-of-range number each get a distinct, actionable message.
pub fn parse_duration(s: &str) -> Result<Duration, String> {
    let trimmed = s.trim();
    let (num, ms) = if let Some(v) = trimmed.strip_suffix("ms") {
        (v, true)
    } else {
        (trimmed.strip_suffix('s').unwrap_or(trimmed), false)
    };
    if num.is_empty() {
        return Err(format!(
            "bad duration `{s}`: missing a number (expected e.g. `60s`, `500ms`, or bare seconds)"
        ));
    }
    let n: u64 = num.parse().map_err(|e: std::num::ParseIntError| {
        format!("bad duration `{s}`: `{num}` is not a whole number ({e})")
    })?;
    Ok(if ms {
        Duration::from_millis(n)
    } else {
        Duration::from_secs(n)
    })
}

/// A wall-clock budget for one unit of work. `None` = unlimited.
///
/// The contract (inherited from `cati fuzz --hang-limit-ms`): the
/// work itself is never interrupted; callers measure elapsed time and
/// ask [`HangLimit::exceeded`] whether to report the unit as hung
/// (fuzz: `hang-*.json` reproducer; serve: a 504 response while the
/// abandoned computation finishes in the background).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HangLimit(pub Option<Duration>);

impl HangLimit {
    /// A limit of `ms` milliseconds (0 = unlimited).
    pub fn from_ms(ms: u64) -> HangLimit {
        HangLimit((ms > 0).then(|| Duration::from_millis(ms)))
    }

    /// No limit: nothing ever hangs.
    pub fn unlimited() -> HangLimit {
        HangLimit(None)
    }

    /// Whether `elapsed` blew the budget.
    pub fn exceeded(&self, elapsed: Duration) -> bool {
        self.0.is_some_and(|limit| elapsed > limit)
    }

    /// The budget as a `Duration`, if bounded.
    pub fn duration(&self) -> Option<Duration> {
        self.0
    }

    /// The budget in milliseconds (0 = unlimited), for reporting.
    pub fn as_ms(&self) -> u64 {
        self.0.map_or(0, |d| d.as_millis() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_seconds_millis_and_bare_numbers() {
        assert_eq!(parse_duration("60s").unwrap(), Duration::from_secs(60));
        assert_eq!(parse_duration("90").unwrap(), Duration::from_secs(90));
        assert_eq!(parse_duration("500ms").unwrap(), Duration::from_millis(500));
        assert_eq!(parse_duration("10ms").unwrap(), Duration::from_millis(10));
        assert!(parse_duration("abc").is_err());
        assert!(parse_duration("1.5s").is_err());
    }

    #[test]
    fn tolerates_surrounding_whitespace() {
        assert_eq!(parse_duration(" 5s ").unwrap(), Duration::from_secs(5));
        assert_eq!(
            parse_duration("\t250ms\n").unwrap(),
            Duration::from_millis(250)
        );
        assert_eq!(parse_duration(" 7 ").unwrap(), Duration::from_secs(7));
    }

    #[test]
    fn bare_suffixes_and_empty_input_get_a_clear_message() {
        for bad in ["ms", "s", "", "   "] {
            let err = parse_duration(bad).expect_err(bad);
            assert!(
                err.contains("missing a number"),
                "`{bad}` should name the missing number, got: {err}"
            );
        }
        // Internal whitespace is still rejected (the number must be
        // one token).
        assert!(parse_duration("5 s").is_err());
    }

    #[test]
    fn overflowing_numbers_are_rejected_not_wrapped() {
        // u64::MAX + 1.
        let err = parse_duration("18446744073709551616ms").expect_err("overflow");
        assert!(
            err.contains("18446744073709551616"),
            "overflow error should echo the input, got: {err}"
        );
        // The largest representable value still parses.
        assert_eq!(
            parse_duration("18446744073709551615ms").unwrap(),
            Duration::from_millis(u64::MAX)
        );
    }

    #[test]
    fn hang_limit_is_exclusive_at_the_bound() {
        let limit = HangLimit::from_ms(100);
        assert!(!limit.exceeded(Duration::from_millis(100)));
        assert!(limit.exceeded(Duration::from_millis(101)));
        assert!(!HangLimit::unlimited().exceeded(Duration::from_secs(3600)));
        assert_eq!(HangLimit::from_ms(0), HangLimit::unlimited());
        assert_eq!(HangLimit::from_ms(250).as_ms(), 250);
        assert_eq!(HangLimit::unlimited().as_ms(), 0);
    }
}
