//! Hang-limit machinery shared by `cati fuzz` and the serve daemon.
//!
//! The fuzz campaign introduced the pattern: a wall-clock budget per
//! unit of work, checked against measured elapsed time — never a
//! preemptive timer, so a slow computation is *reported* (hang file,
//! 504) rather than torn down mid-write. This module single-sources
//! the duration parsing (`60s`, `500ms`, bare seconds) and the
//! exceeded-check so the two consumers cannot drift.

use std::time::Duration;

/// Parses a human duration argument: `60s`, `90` (seconds), `500ms`.
///
/// # Errors
///
/// Returns a message naming the bad input.
pub fn parse_duration(s: &str) -> Result<Duration, String> {
    let (num, ms) = if let Some(v) = s.strip_suffix("ms") {
        (v, true)
    } else {
        (s.strip_suffix('s').unwrap_or(s), false)
    };
    let n: u64 = num.parse().map_err(|_| format!("bad duration `{s}`"))?;
    Ok(if ms {
        Duration::from_millis(n)
    } else {
        Duration::from_secs(n)
    })
}

/// A wall-clock budget for one unit of work. `None` = unlimited.
///
/// The contract (inherited from `cati fuzz --hang-limit-ms`): the
/// work itself is never interrupted; callers measure elapsed time and
/// ask [`HangLimit::exceeded`] whether to report the unit as hung
/// (fuzz: `hang-*.json` reproducer; serve: a 504 response while the
/// abandoned computation finishes in the background).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HangLimit(pub Option<Duration>);

impl HangLimit {
    /// A limit of `ms` milliseconds (0 = unlimited).
    pub fn from_ms(ms: u64) -> HangLimit {
        HangLimit((ms > 0).then(|| Duration::from_millis(ms)))
    }

    /// No limit: nothing ever hangs.
    pub fn unlimited() -> HangLimit {
        HangLimit(None)
    }

    /// Whether `elapsed` blew the budget.
    pub fn exceeded(&self, elapsed: Duration) -> bool {
        self.0.is_some_and(|limit| elapsed > limit)
    }

    /// The budget as a `Duration`, if bounded.
    pub fn duration(&self) -> Option<Duration> {
        self.0
    }

    /// The budget in milliseconds (0 = unlimited), for reporting.
    pub fn as_ms(&self) -> u64 {
        self.0.map_or(0, |d| d.as_millis() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_seconds_millis_and_bare_numbers() {
        assert_eq!(parse_duration("60s").unwrap(), Duration::from_secs(60));
        assert_eq!(parse_duration("90").unwrap(), Duration::from_secs(90));
        assert_eq!(parse_duration("500ms").unwrap(), Duration::from_millis(500));
        assert!(parse_duration("abc").is_err());
        assert!(parse_duration("1.5s").is_err());
    }

    #[test]
    fn hang_limit_is_exclusive_at_the_bound() {
        let limit = HangLimit::from_ms(100);
        assert!(!limit.exceeded(Duration::from_millis(100)));
        assert!(limit.exceeded(Duration::from_millis(101)));
        assert!(!HangLimit::unlimited().exceeded(Duration::from_secs(3600)));
        assert_eq!(HangLimit::from_ms(0), HangLimit::unlimited());
        assert_eq!(HangLimit::from_ms(250).as_ms(), 250);
        assert_eq!(HangLimit::unlimited().as_ms(), 0);
    }
}
